// Ablation E: dimensionality. The per-point constant of DBSCOUT is
// O(minPts * k_d) with k_d from Table I (21, 117, 609, 3903 for d=2..5);
// this harness measures how much of that worst case materializes on
// clustered data, where most neighbor cells are empty (the sparsity effect
// SS II points out below Table I).
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/dbscout.h"
#include "grid/neighborhood.h"

namespace {

using namespace dbscout;

PointSet ClusteredPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  PointSet out(dims);
  out.Reserve(n);
  std::vector<std::vector<double>> centers(12, std::vector<double>(dims));
  for (auto& center : centers) {
    for (auto& c : center) {
      c = rng.Uniform(-100.0, 100.0);
    }
  }
  std::vector<double> p(dims);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.02)) {
      for (size_t k = 0; k < dims; ++k) {
        p[k] = rng.Uniform(-120.0, 120.0);
      }
    } else {
      const auto& center = centers[rng.NextBounded(centers.size())];
      for (size_t k = 0; k < dims; ++k) {
        p[k] = rng.Gaussian(center[k], 2.0);
      }
    }
    out.Add(p);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = bench::FlagU64(argc, argv, "n", 60000);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 50));
  bench::PrintBanner("Ablation E: dimensionality and k_d",
                     "Table I + Lemma 6 (per-point constant is minPts*k_d)");
  std::printf("clustered data, n=%zu, minPts=%d, eps=2.5\n\n", n, min_pts);

  analysis::Table table({"d", "k_d", "Time (s)", "us/point",
                         "Distance comps", "Comps/point", "Outliers"});
  for (size_t d : {size_t{2}, size_t{3}, size_t{4}, size_t{5}}) {
    const PointSet points = ClusteredPoints(n, d, 83 + d);
    core::Params params;
    params.eps = 2.5;
    params.min_pts = min_pts;
    auto r = core::DetectSequential(points, params);
    if (!r.ok()) {
      std::fprintf(stderr, "d=%zu failed: %s\n", d,
                   r.status().ToString().c_str());
      return 1;
    }
    auto kd = grid::CountNeighborOffsets(d);
    uint64_t distance_comps = 0;
    for (const auto& phase : r->phases) {
      distance_comps += phase.distance_computations;
    }
    table.AddRow(
        {std::to_string(d), std::to_string(kd.ok() ? *kd : 0),
         StrFormat("%.2f", r->total_seconds),
         StrFormat("%.2f", r->total_seconds * 1e6 / static_cast<double>(n)),
         std::to_string(distance_comps),
         StrFormat("%.1f", static_cast<double>(distance_comps) /
                               static_cast<double>(n)),
         std::to_string(r->num_outliers())});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: distance comparisons per point saturate as d grows "
      "(most stencil cells are empty — the sparsity argument below Table I), "
      "but the stencil probing itself costs k_d hash lookups per non-dense "
      "cell and becomes the dominant constant: the concrete reason the "
      "paper targets low-dimensional (2D/3D) data.\n");
  return 0;
}

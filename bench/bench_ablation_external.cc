// Ablation C: the out-of-core engine. Streams a binary point file through
// DetectExternal at several memory budgets and checks the output against
// the in-memory engine — the single-machine answer to the paper's
// "billions of tuples" motivation. Reports the spill amplification (halo
// replication) and the largest stripe working set, i.e. the real memory
// ceiling.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "data/io.h"
#include "datasets/geo.h"
#include "external/external_detector.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 400000);
  const double eps = bench::FlagDouble(argc, argv, "eps", 1e6);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 100));
  bench::PrintBanner("Ablation C: out-of-core engine",
                     "SS I (scaling to very large settings) on one machine");
  std::printf("OSM-like n=%zu, eps=%g, minPts=%d\n\n", n, eps, min_pts);

  const PointSet points = datasets::OsmLike(n, 81);
  const std::string path = "/tmp/dbscout_bench_external.dbsc";
  if (Status s = SavePointsBinary(path, points); !s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return 1;
  }

  core::Params in_memory;
  in_memory.eps = eps;
  in_memory.min_pts = min_pts;
  auto reference = core::DetectSequential(points, in_memory);
  if (!reference.ok()) {
    std::fprintf(stderr, "in-memory run failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  std::printf("in-memory reference: %.2fs, %zu outliers\n\n",
              reference->total_seconds, reference->num_outliers());

  analysis::Table table({"Stripe budget (pts)", "Stripes", "Time (s)",
                         "Spilled records", "Max stripe pts", "Outliers",
                         "Exact?"});
  for (size_t budget : {n, n / 4, n / 16, n / 64}) {
    external::ExternalParams params;
    params.eps = eps;
    params.min_pts = min_pts;
    params.target_stripe_points = budget;
    params.tmp_dir = "/tmp";
    auto r = external::DetectExternal(path, params);
    if (!r.ok()) {
      std::fprintf(stderr, "budget=%zu failed: %s\n", budget,
                   r.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(budget), std::to_string(r->stripes),
                  StrFormat("%.2f", r->seconds),
                  std::to_string(r->spilled_records),
                  std::to_string(r->max_stripe_points),
                  std::to_string(r->num_outliers()),
                  r->outliers == reference->outliers ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::remove(path.c_str());
  std::printf(
      "\nExpected shape: identical outliers at every budget; the working "
      "set (max stripe pts) shrinks with the budget while spilled records "
      "grow mildly (halo replication) — memory traded for I/O, exactness "
      "untouched.\n");
  return 0;
}

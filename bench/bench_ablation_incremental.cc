// Ablation F: incremental vs batch maintenance of the outlier set on an
// append-only stream. The naive approach reruns batch DBSCOUT after every
// arriving chunk (quadratic total work); the incremental detector pays one
// stencil scan per insertion. Both are exact at every checkpoint (the test
// suite enforces equality); this harness measures the cost gap.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/dbscout.h"
#include "core/incremental.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 200000);
  const size_t chunks = bench::FlagU64(argc, argv, "chunks", 200);
  const double eps = bench::FlagDouble(argc, argv, "eps", 5e5);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 50));
  bench::PrintBanner("Ablation F: incremental vs batch-rerun maintenance",
                     "SS I (data generated and collected in a daily manner)");
  std::printf("OSM-like stream n=%zu in %zu chunks, eps=%g, minPts=%d\n\n",
              n, chunks, eps, min_pts);

  const PointSet stream = datasets::OsmLike(n, 91);
  core::Params params;
  params.eps = eps;
  params.min_pts = min_pts;

  // Strategy A: rerun batch DBSCOUT after every chunk.
  double batch_total = 0.0;
  {
    PointSet seen(stream.dims());
    const size_t chunk = (n + chunks - 1) / chunks;
    for (size_t begin = 0; begin < n; begin += chunk) {
      const size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        seen.Add(stream[i]);
      }
      WallTimer timer;
      auto r = core::DetectSequential(seen, params);
      if (!r.ok()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      batch_total += timer.ElapsedSeconds();
    }
  }

  // Strategy B: incremental insertions.
  double incremental_total = 0.0;
  size_t final_outliers = 0;
  {
    auto det = core::IncrementalDetector::Create(stream.dims(), params);
    if (!det.ok()) {
      std::fprintf(stderr, "%s\n", det.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    for (size_t i = 0; i < n; ++i) {
      if (auto added = det->Add(stream[i]); !added.ok()) {
        std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
        return 1;
      }
    }
    incremental_total = timer.ElapsedSeconds();
    final_outliers = det->Outliers().size();
  }

  analysis::Table table({"Strategy", "Total time (s)", "Final outliers"});
  table.AddRow({"batch rerun per chunk", StrFormat("%.2f", batch_total),
                std::to_string(final_outliers)});
  table.AddRow({"incremental inserts", StrFormat("%.2f", incremental_total),
                std::to_string(final_outliers)});
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: the rerun strategy's total grows with the number "
      "of checkpoints (full detection per chunk), the incremental total "
      "does not — it wins once updates are frequent. For a handful of bulk "
      "loads the batch engine's dense-cell shortcut keeps reruns cheaper: "
      "the incremental detector cannot early-exit its neighbor counting "
      "(counts must stay exact for future promotions). Sweep --chunks to "
      "see the crossover (~30 on this workload).\n");
  return 0;
}

// Ablation A (SS III-G): the three join realizations of the distance
// phases — plain textbook join, broadcast join, and grouping-before-join
// with early termination (the paper's default). All three return identical
// outliers; they differ wildly in shuffle volume and time, especially at
// low eps where more points need checking.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 60000);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 100));
  const double budget_s =
      static_cast<double>(bench::FlagU64(argc, argv, "budget-s", 120));
  bench::PrintBanner("Ablation A: join strategies (SS III-G)",
                     "broadcast join vs grouping-before-join vs plain join");
  std::printf("OSM-like n=%zu, minPts=%d (plain join skipped after a run "
              "exceeds %gs)\n\n",
              n, min_pts, budget_s);

  const PointSet points = datasets::OsmLike(n, 51);
  dataflow::ExecutionContext ctx(0, 64);

  analysis::Table table({"eps", "Strategy", "Time (s)", "Shuffled records",
                         "Distance comps", "Outliers"});
  bool plain_alive = true;
  for (double eps : {2.5e5, 5e5, 1e6, 2e6}) {
    for (core::JoinStrategy join :
         {core::JoinStrategy::kGrouped, core::JoinStrategy::kBroadcast,
          core::JoinStrategy::kPlain}) {
      if (join == core::JoinStrategy::kPlain && !plain_alive) {
        table.AddRow({StrFormat("%g", eps), core::JoinStrategyName(join), "-",
                      "-", "-", "-"});
        continue;
      }
      core::Params params;
      params.eps = eps;
      params.min_pts = min_pts;
      params.engine = core::Engine::kParallel;
      params.join = join;
      auto r = core::DetectParallel(points, params, &ctx);
      if (!r.ok()) {
        std::fprintf(stderr, "eps=%g %s failed: %s\n", eps,
                     core::JoinStrategyName(join),
                     r.status().ToString().c_str());
        return 1;
      }
      uint64_t distance_comps = 0;
      for (const auto& phase : r->phases) {
        distance_comps += phase.distance_computations;
      }
      if (join == core::JoinStrategy::kPlain &&
          r->total_seconds > budget_s) {
        plain_alive = false;
      }
      table.AddRow({StrFormat("%g", eps), core::JoinStrategyName(join),
                    StrFormat("%.2f", r->total_seconds),
                    std::to_string(r->shuffled_records),
                    std::to_string(distance_comps),
                    std::to_string(r->num_outliers())});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): grouped join dominates at low eps (up to "
      "~5x over the unoptimized join, fewer comparisons thanks to early "
      "termination); broadcast join shines at high eps; all strategies "
      "agree on the outliers.\n");
  return 0;
}

// Ablation D: sensitivity to minPts at fixed eps. minPts gates the
// dense-cell shortcut of Lemma 1: lower values make more cells dense, so
// more points are labeled core without any distance computation; higher
// values push points onto the join path. The distance-computation column
// exposes the mechanism directly.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 400000);
  const double eps = bench::FlagDouble(argc, argv, "eps", 5e5);
  bench::PrintBanner("Ablation D: minPts sensitivity",
                     "Lemma 1 (dense cells) and SS IV-B parameter choices");
  std::printf("OSM-like n=%zu, eps=%g\n\n", n, eps);

  const PointSet points = datasets::OsmLike(n, 82);
  analysis::Table table({"minPts", "Time (s)", "Dense cells", "Core cells",
                         "Distance comps", "Outliers"});
  for (int min_pts : {10, 25, 50, 100, 200, 400}) {
    core::Params params;
    params.eps = eps;
    params.min_pts = min_pts;
    auto r = core::DetectSequential(points, params);
    if (!r.ok()) {
      std::fprintf(stderr, "minPts=%d failed: %s\n", min_pts,
                   r.status().ToString().c_str());
      return 1;
    }
    uint64_t distance_comps = 0;
    for (const auto& phase : r->phases) {
      distance_comps += phase.distance_computations;
    }
    table.AddRow({std::to_string(min_pts),
                  StrFormat("%.2f", r->total_seconds),
                  std::to_string(r->num_dense_cells),
                  std::to_string(r->num_core_cells),
                  std::to_string(distance_comps),
                  std::to_string(r->num_outliers())});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: dense cells shrink as minPts grows, distance "
      "computations and time rise, and the outlier count grows "
      "monotonically (stricter density requirement).\n");
  return 0;
}

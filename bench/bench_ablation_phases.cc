// Ablation B: engine comparison and linearity evidence. Runs the
// sequential reference engine and the dataflow engine over a size sweep,
// reporting per-phase time and time-per-million-points — the single-machine
// counterpart of Fig. 10's linear scaling claim (Lemmas 4-8).
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t base_n = bench::FlagU64(argc, argv, "base-n", 50000);
  const double eps = bench::FlagDouble(argc, argv, "eps", 1e6);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 100));
  bench::PrintBanner("Ablation B: engines and phase breakdown",
                     "Lemmas 4-8 (every phase linear in n); SS III-A");
  std::printf("OSM-like sizes %zu..%zu, eps=%g, minPts=%d\n\n", base_n,
              base_n * 8, eps, min_pts);

  dataflow::ExecutionContext ctx(0, 64);
  analysis::Table table({"Points", "Engine", "grid", "dense map",
                         "core pts", "core map", "outliers", "total (s)",
                         "s per 1M pts"});
  for (size_t factor : {1u, 2u, 4u, 8u}) {
    const size_t n = base_n * factor;
    const PointSet points = datasets::OsmLike(n, 61);
    for (core::Engine engine :
         {core::Engine::kSequential, core::Engine::kParallel}) {
      core::Params params;
      params.eps = eps;
      params.min_pts = min_pts;
      params.engine = engine;
      params.join = core::JoinStrategy::kGrouped;
      const Result<core::Detection> r =
          engine == core::Engine::kSequential
              ? core::DetectSequential(points, params)
              : core::DetectParallel(points, params, &ctx);
      if (!r.ok()) {
        std::fprintf(stderr, "n=%zu %s failed: %s\n", n,
                     core::EngineName(engine),
                     r.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {
          HumanCount(static_cast<double>(n)), core::EngineName(engine)};
      for (const auto& phase : r->phases) {
        row.push_back(StrFormat("%.0fms", phase.seconds * 1e3));
      }
      row.push_back(StrFormat("%.2f", r->total_seconds));
      row.push_back(StrFormat("%.2f",
                              r->total_seconds * 1e6 /
                                  static_cast<double>(n)));
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: seconds-per-million-points roughly constant as n "
      "grows (linear complexity); the sequential engine is the faster "
      "single-machine path, the dataflow engine pays shuffle overhead in "
      "exchange for horizontal scalability.\n");
  return 0;
}

// Reproduces Fig. 11: DBSCOUT vs RP-DBSCAN running time on the (skewed)
// Geolife workload as eps varies. The paper's finding: on this heavily
// skewed dataset neither algorithm dominates — huge cells concentrate ~40%
// of the points, which favors RP-DBSCAN's cell summaries and taxes
// DBSCOUT's joins.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "baselines/rp_dbscan.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 200000);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 100));
  bench::PrintBanner("Fig. 11: Geolife, scalability with respect to eps",
                     "SS IV-B2 (no clear winner on the skewed dataset)");
  std::printf("Geolife-like n=%zu, minPts=%d\n\n", n, min_pts);

  const PointSet points = datasets::GeolifeLike(n, 21);
  dataflow::ExecutionContext ctx(0, 64);

  analysis::Table table({"eps", "DBSCOUT (s)", "RP-DBSCAN (s)",
                         "DBSCOUT outliers", "dense cells"});
  for (double eps : {150.0, 300.0, 600.0, 1200.0}) {
    core::Params params;
    params.eps = eps;
    params.min_pts = min_pts;
    params.engine = core::Engine::kParallel;
    params.join = core::JoinStrategy::kGrouped;
    auto dbscout_run = core::DetectParallel(points, params, &ctx);
    if (!dbscout_run.ok()) {
      std::fprintf(stderr, "DBSCOUT eps=%g failed: %s\n", eps,
                   dbscout_run.status().ToString().c_str());
      return 1;
    }
    baselines::RpDbscanParams rp_params;
    rp_params.eps = eps;
    rp_params.min_pts = min_pts;
    rp_params.rho = 0.01;
    rp_params.num_partitions = 8;
    auto rp_run = baselines::RpDbscan(points, rp_params);
    if (!rp_run.ok()) {
      std::fprintf(stderr, "RP-DBSCAN eps=%g failed: %s\n", eps,
                   rp_run.status().ToString().c_str());
      return 1;
    }
    table.AddRow({StrFormat("%g", eps),
                  StrFormat("%.2f", dbscout_run->total_seconds),
                  StrFormat("%.2f", rp_run->seconds),
                  std::to_string(dbscout_run->num_outliers()),
                  std::to_string(dbscout_run->num_dense_cells)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): times comparable across eps, with either "
      "algorithm slightly ahead depending on the eps value.\n");
  return 0;
}

// Reproduces Fig. 12: DBSCOUT vs RP-DBSCAN running time on the (evenly
// spread) OpenStreetMap workload as eps varies. The paper's finding:
// running times fall as eps grows (fewer cells), DBSCOUT wins nearly
// everywhere, and the gap is widest at the smallest eps (4.5x).
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "baselines/rp_dbscan.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 200000);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 100));
  bench::PrintBanner("Fig. 12: OpenStreetMap, scalability with respect to eps",
                     "SS IV-B2 (DBSCOUT fastest, largest gap at low eps)");
  std::printf("OSM-like n=%zu, minPts=%d\n\n", n, min_pts);

  const PointSet points = datasets::OsmLike(n, 22);
  dataflow::ExecutionContext ctx(0, 64);

  analysis::Table table({"eps", "DBSCOUT (s)", "RP-DBSCAN (s)", "speedup",
                         "DBSCOUT outliers"});
  for (double eps : {2.5e5, 5e5, 1e6, 2e6}) {
    core::Params params;
    params.eps = eps;
    params.min_pts = min_pts;
    params.engine = core::Engine::kParallel;
    params.join = core::JoinStrategy::kGrouped;
    auto dbscout_run = core::DetectParallel(points, params, &ctx);
    if (!dbscout_run.ok()) {
      std::fprintf(stderr, "DBSCOUT eps=%g failed: %s\n", eps,
                   dbscout_run.status().ToString().c_str());
      return 1;
    }
    baselines::RpDbscanParams rp_params;
    rp_params.eps = eps;
    rp_params.min_pts = min_pts;
    rp_params.rho = 0.01;
    rp_params.num_partitions = 8;
    auto rp_run = baselines::RpDbscan(points, rp_params);
    if (!rp_run.ok()) {
      std::fprintf(stderr, "RP-DBSCAN eps=%g failed: %s\n", eps,
                   rp_run.status().ToString().c_str());
      return 1;
    }
    table.AddRow({StrFormat("%g", eps),
                  StrFormat("%.2f", dbscout_run->total_seconds),
                  StrFormat("%.2f", rp_run->seconds),
                  StrFormat("%.1fx", rp_run->seconds /
                                         dbscout_run->total_seconds),
                  std::to_string(dbscout_run->num_outliers())});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): both curves fall with eps; DBSCOUT ahead "
      "throughout, up to ~4.5x at the smallest eps.\n");
  return 0;
}

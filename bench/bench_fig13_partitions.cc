// Reproduces Fig. 13: running time as a function of the number of data
// partitions on OpenStreetMap. The paper's finding: DBSCOUT improves with
// the first partition increases and then plateaus, while RP-DBSCAN
// degrades almost linearly (its per-partition cell dictionaries overlap
// more and more, inflating the merge).
//
// NOTE on this harness: the host runs the dataflow engine on however many
// cores it has, so the partition knob here measures the *structural*
// effect (shuffle bucket counts, per-partition dictionary overlap), which
// is exactly the quantity Fig. 13 isolates; the merged-entries and
// shuffled-records columns make the mechanism visible.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "baselines/rp_dbscan.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 1000000);
  const double eps = bench::FlagDouble(argc, argv, "eps", 2e6);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 100));
  const double rho = bench::FlagDouble(argc, argv, "rho", 0.3);
  bench::PrintBanner(
      "Fig. 13: OpenStreetMap, scalability vs number of partitions",
      "SS IV-B3 (DBSCOUT: drop then plateau; RP-DBSCAN: near-linear growth)");
  std::printf("OSM-like n=%zu, eps=%g, minPts=%d, rho=%g (occupancy-matched; "
              "see Tables IV/V note)\n\n",
              n, eps, min_pts, rho);

  const PointSet points = datasets::OsmLike(n, 23);
  dataflow::ExecutionContext ctx(0, 64);

  analysis::Table table({"Partitions", "DBSCOUT (s)", "vs P=4",
                         "RP-DBSCAN (s)", "vs P=4",
                         "dict entries pre-merge"});
  double dbscout_base = 0.0;
  double rp_base = 0.0;
  for (size_t partitions : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    core::Params params;
    params.eps = eps;
    params.min_pts = min_pts;
    params.engine = core::Engine::kParallel;
    params.join = core::JoinStrategy::kGrouped;
    params.num_partitions = partitions;
    auto dbscout_run = core::DetectParallel(points, params, &ctx);
    if (!dbscout_run.ok()) {
      std::fprintf(stderr, "DBSCOUT partitions=%zu failed: %s\n", partitions,
                   dbscout_run.status().ToString().c_str());
      return 1;
    }
    baselines::RpDbscanParams rp_params;
    rp_params.eps = eps;
    rp_params.min_pts = min_pts;
    rp_params.rho = rho;
    rp_params.num_partitions = partitions;
    auto rp_run = baselines::RpDbscan(points, rp_params);
    if (!rp_run.ok()) {
      std::fprintf(stderr, "RP-DBSCAN partitions=%zu failed: %s\n",
                   partitions, rp_run.status().ToString().c_str());
      return 1;
    }
    if (partitions == 4) {
      dbscout_base = dbscout_run->total_seconds;
      rp_base = rp_run->seconds;
    }
    table.AddRow({std::to_string(partitions),
                  StrFormat("%.2f", dbscout_run->total_seconds),
                  StrFormat("%.2fx", dbscout_run->total_seconds / dbscout_base),
                  StrFormat("%.2f", rp_run->seconds),
                  StrFormat("%.2fx", rp_run->seconds / rp_base),
                  std::to_string(rp_run->merged_entries)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): DBSCOUT's time falls then flattens as "
      "partitions grow; RP-DBSCAN's dictionary entries (and with them its "
      "time) keep climbing.\n");
  return 0;
}

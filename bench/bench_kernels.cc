// Kernel ablation: the SIMD batched-distance path vs the scalar reference.
//
// Two levels of evidence, both on the same OSM-like workload the paper-scale
// harnesses use:
//   1. Micro: raw kernel throughput (points/s) for CountWithinEps2 /
//      AnyWithinEps2 / MinSquaredDistance on a contiguous block, scalar vs
//      runtime-dispatched (SSE2/AVX2).
//   2. End to end: DetectSequential with kernels forced to scalar vs
//      dispatched, comparing the phase-3 (core_points) + phase-5 (outliers)
//      seconds — the distance-dominated part of the pipeline — and checking
//      that the outlier sets are identical (they must be bit-equal by the
//      kernel contract).
//
// Results are also written as machine-readable JSON (BENCH_kernels.json in
// the working directory) so CI or plotting scripts can track the speedup.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/dbscout.h"
#include "datasets/geo.h"
#include "simd/distance_kernel.h"

namespace {

using namespace dbscout;

double PhaseSeconds(const core::Detection& det, const char* name) {
  for (const auto& phase : det.phases) {
    if (phase.name == name) {
      return phase.seconds;
    }
  }
  return 0.0;
}

struct MicroResult {
  std::string kernel;
  size_t dims;
  double scalar_mpts;      // scalar throughput, million points/s
  double dispatched_mpts;  // dispatched throughput, million points/s
};

// Times `fn` over enough repetitions to fill ~80ms and returns million
// points scanned per second.
template <typename Fn>
double Throughput(size_t block_points, Fn&& fn) {
  fn();  // warm-up
  size_t reps = 1;
  double elapsed = 0.0;
  for (;;) {
    WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      fn();
    }
    elapsed = timer.ElapsedSeconds();
    if (elapsed > 0.08) {
      break;
    }
    reps *= 4;
  }
  return static_cast<double>(block_points) * static_cast<double>(reps) /
         elapsed / 1e6;
}

MicroResult MicroKernel(const char* kernel, size_t d, size_t n) {
  Rng rng(13 + d);
  std::vector<double> query(d);
  std::vector<double> block(n * d);
  for (auto& v : query) {
    v = rng.NextDouble();
  }
  for (auto& v : block) {
    v = rng.NextDouble();
  }
  // eps2 sized so roughly half the block hits: keeps branch behaviour
  // representative without triggering the early-exit cap.
  const double eps2 = 0.25 * static_cast<double>(d);
  const std::string name = kernel;
  auto run = [&](const simd::DistanceKernels& table) {
    return Throughput(n, [&] {
      if (name == "count_within") {
        volatile uint32_t sink = table.count_within[d](
            query.data(), block.data(), n, eps2, 0);
        (void)sink;
      } else if (name == "any_within") {
        // eps2=0 on random data: never hits, scans the whole block.
        volatile bool sink =
            table.any_within[d](query.data(), block.data(), n, 0.0);
        (void)sink;
      } else {
        volatile double sink =
            table.min_sqdist[d](query.data(), block.data(), n);
        (void)sink;
      }
    });
  };
  MicroResult out;
  out.kernel = kernel;
  out.dims = d;
  out.scalar_mpts = run(simd::ScalarKernels());
  out.dispatched_mpts = run(simd::DispatchedKernels());
  return out;
}

struct EndToEndResult {
  double scalar_hot_seconds;      // phase 3 + phase 5, scalar kernels
  double dispatched_hot_seconds;  // phase 3 + phase 5, dispatched kernels
  double scalar_total_seconds;
  double dispatched_total_seconds;
  size_t outliers;
  uint64_t outlier_hash;
  bool identical;
};

// Order-independent-free digest of the outlier index list (FNV-1a over the
// sorted indices the engines already emit in ascending order). Lets two
// builds compare result sets without shipping the full list around.
uint64_t HashIndices(const std::vector<uint32_t>& ids) {
  uint64_t h = 1469598103934665603ull;
  for (uint32_t id : ids) {
    h = (h ^ id) * 1099511628211ull;
  }
  return h;
}

EndToEndResult EndToEnd(const PointSet& points, const core::Params& params,
                        size_t repeats) {
  EndToEndResult out{};
  core::Detection scalar_det;
  core::Detection simd_det;
  for (bool force_scalar : {true, false}) {
    simd::ForceScalarKernels(force_scalar);
    double best_hot = 0.0, best_total = 0.0;
    core::Detection best;
    for (size_t r = 0; r < repeats; ++r) {
      auto det = core::DetectSequential(points, params);
      if (!det.ok()) {
        std::fprintf(stderr, "DetectSequential failed: %s\n",
                     det.status().ToString().c_str());
        std::exit(1);
      }
      const double hot =
          PhaseSeconds(*det, "core_points") + PhaseSeconds(*det, "outliers");
      if (r == 0 || hot < best_hot) {
        best_hot = hot;
        best_total = det->total_seconds;
        best = std::move(*det);
      }
    }
    if (force_scalar) {
      out.scalar_hot_seconds = best_hot;
      out.scalar_total_seconds = best_total;
      scalar_det = std::move(best);
    } else {
      out.dispatched_hot_seconds = best_hot;
      out.dispatched_total_seconds = best_total;
      simd_det = std::move(best);
    }
  }
  simd::ForceScalarKernels(false);
  out.outliers = simd_det.outliers.size();
  out.outlier_hash = HashIndices(simd_det.outliers);
  out.identical = scalar_det.outliers == simd_det.outliers &&
                  scalar_det.kinds == simd_det.kinds;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 1000000);
  const double eps = bench::FlagDouble(argc, argv, "eps", 1e6);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 100));
  const size_t repeats = bench::FlagU64(argc, argv, "repeats", 3);
  bench::PrintBanner("Kernel ablation: scalar vs SIMD distance path",
                     "SS III-B/III-D phase 3+5 inner loops");
  std::printf("dispatched kernel set: %s\n\n",
              simd::DispatchedKernels().name);

  // --- Micro throughput -------------------------------------------------
  const size_t block = 4096;
  std::vector<MicroResult> micro;
  for (size_t d : {size_t{2}, size_t{3}, size_t{5}, size_t{9}}) {
    micro.push_back(MicroKernel("count_within", d, block));
  }
  micro.push_back(MicroKernel("any_within", 2, block));
  micro.push_back(MicroKernel("min_sqdist", 2, block));
  std::printf("%-14s %4s %14s %14s %9s\n", "kernel", "dims",
              "scalar Mpt/s", "simd Mpt/s", "speedup");
  for (const auto& m : micro) {
    std::printf("%-14s %4zu %14.1f %14.1f %8.2fx\n", m.kernel.c_str(),
                m.dims, m.scalar_mpts, m.dispatched_mpts,
                m.dispatched_mpts / m.scalar_mpts);
  }

  // --- End to end -------------------------------------------------------
  std::printf("\nOSM-like n=%zu (2D), eps=%g, minPts=%d, best of %zu\n", n,
              eps, min_pts, repeats);
  const PointSet points = datasets::OsmLike(n, 77);
  core::Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  const EndToEndResult e2e = EndToEnd(points, params, repeats);
  const double hot_speedup =
      e2e.scalar_hot_seconds / e2e.dispatched_hot_seconds;
  std::printf("phase 3+5 (distance path): scalar %.3fs, simd %.3fs -> "
              "%.2fx\n",
              e2e.scalar_hot_seconds, e2e.dispatched_hot_seconds,
              hot_speedup);
  std::printf("end-to-end total:          scalar %.3fs, simd %.3fs -> "
              "%.2fx\n",
              e2e.scalar_total_seconds, e2e.dispatched_total_seconds,
              e2e.scalar_total_seconds / e2e.dispatched_total_seconds);
  std::printf("outliers: %zu (set hash %016" PRIx64
              "), scalar/simd results identical: %s\n",
              e2e.outliers, e2e.outlier_hash,
              e2e.identical ? "yes" : "NO (BUG)");

  // --- Machine-readable dump --------------------------------------------
  FILE* json = std::fopen("BENCH_kernels.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"dispatched_kernels\": \"%s\",\n",
                 simd::DispatchedKernels().name);
    std::fprintf(json, "  \"micro\": [\n");
    for (size_t i = 0; i < micro.size(); ++i) {
      const auto& m = micro[i];
      std::fprintf(json,
                   "    {\"kernel\": \"%s\", \"dims\": %zu, "
                   "\"scalar_mpts\": %.2f, \"dispatched_mpts\": %.2f, "
                   "\"speedup\": %.3f}%s\n",
                   m.kernel.c_str(), m.dims, m.scalar_mpts,
                   m.dispatched_mpts, m.dispatched_mpts / m.scalar_mpts,
                   i + 1 < micro.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"end_to_end\": {\n");
    std::fprintf(json, "    \"n\": %zu, \"eps\": %g, \"min_pts\": %d,\n", n,
                 eps, min_pts);
    std::fprintf(json,
                 "    \"scalar_phase35_seconds\": %.4f,\n"
                 "    \"dispatched_phase35_seconds\": %.4f,\n"
                 "    \"phase35_speedup\": %.3f,\n",
                 e2e.scalar_hot_seconds, e2e.dispatched_hot_seconds,
                 hot_speedup);
    std::fprintf(json,
                 "    \"scalar_total_seconds\": %.4f,\n"
                 "    \"dispatched_total_seconds\": %.4f,\n"
                 "    \"outliers\": %zu,\n"
                 "    \"outlier_hash\": \"%016" PRIx64
                 "\",\n"
                 "    \"identical_results\": %s\n  }\n}\n",
                 e2e.scalar_total_seconds, e2e.dispatched_total_seconds,
                 e2e.outliers, e2e.outlier_hash,
                 e2e.identical ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_kernels.json\n");
  }
  return e2e.identical ? 0 : 1;
}

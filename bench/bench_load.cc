// Load bench: open-loop latency for the TCP front-end under a mixed
// INGEST/QUERY workload (DESIGN.md sections 10 and 16).
//
// bench_service measures the in-process service (handle-level calls, no
// socket); this harness prices the full production path — frame encode,
// kernel socket hop, session read loop, dispatch, reply — from several
// concurrent connections at a *fixed arrival rate*. The generator is
// open-loop: every request has a scheduled send time on a precomputed
// timeline, and its latency is measured from that schedule, not from the
// moment the socket became free. A server that falls behind therefore
// accrues queueing delay in the percentiles instead of silently slowing
// the generator down (no coordinated omission).
//
// Each connection runs on its own thread with its own client; the target
// rate is split evenly across connections and the per-connection timelines
// are phase-staggered so aggregate arrivals are uniform. The mix is
// ingest-heavy by default (each ingest is a small batch, each query a
// probe near a previously ingested point).
//
// Human-readable progress goes to stderr; stdout is a single JSON object
// whose "load" section tools/bench_gate.sh merges into the fresh
// bench_service document, so committed gates live in BENCH_service.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "service/client.h"
#include "service/server.h"
#include "service/service.h"

namespace {

using namespace dbscout;

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double mean_us = 0;
};

LatencyStats Summarize(std::vector<double>& seconds) {
  LatencyStats stats;
  if (seconds.empty()) {
    return stats;
  }
  std::sort(seconds.begin(), seconds.end());
  const auto at = [&](double q) {
    const size_t i = static_cast<size_t>(q * (seconds.size() - 1));
    return seconds[i] * 1e6;
  };
  stats.p50_us = at(0.50);
  stats.p99_us = at(0.99);
  stats.p999_us = at(0.999);
  double total = 0;
  for (double s : seconds) {
    total += s;
  }
  stats.mean_us = total / seconds.size() * 1e6;
  return stats;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WorkerResult {
  std::vector<double> ingest_latencies;
  std::vector<double> query_latencies;
  size_t errors = 0;
  size_t late_sends = 0;  // requests whose scheduled time had already passed
};

}  // namespace

int main(int argc, char** argv) {
  const size_t connections = bench::FlagU64(argc, argv, "connections", 4);
  const double rate = bench::FlagDouble(argc, argv, "rate", 500);
  const double duration = bench::FlagDouble(argc, argv, "duration", 5);
  const size_t batch = bench::FlagU64(argc, argv, "batch", 64);
  const double query_fraction =
      bench::FlagDouble(argc, argv, "query-fraction", 0.5);
  const double eps = bench::FlagDouble(argc, argv, "eps", 1.0);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 8));
  const size_t shards = bench::FlagU64(argc, argv, "shards", 1);

  const size_t total_ops = static_cast<size_t>(rate * duration);
  const size_t per_conn = std::max<size_t>(1, total_ops / connections);
  std::fprintf(stderr,
               "bench_load: connections=%zu rate=%.0f/s duration=%.1fs "
               "ops=%zu batch=%zu query-fraction=%.2f shards=%zu\n",
               connections, rate, duration, per_conn * connections, batch,
               query_fraction, shards);

  service::ServiceOptions options;
  options.params.eps = eps;
  options.params.min_pts = min_pts;
  options.num_shards = shards;
  // Load run: admission shedding would turn tail latency into error counts.
  options.max_pending_ingests = per_conn * connections;
  service::DetectionService service(options);
  auto server = service::Server::Start(&service, service::ServerOptions{});
  if (!server.ok()) {
    std::fprintf(stderr, "bench_load: %s\n", server.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = (*server)->port();

  // Warm the collection so early probes hit a live grid rather than the
  // empty-collection fast path.
  {
    auto warm = service::Client::Connect("127.0.0.1", port);
    if (!warm.ok()) {
      std::fprintf(stderr, "bench_load: warm connect failed\n");
      return 1;
    }
    Rng rng(7);
    std::vector<double> coords;
    coords.reserve(2 * 512);
    for (size_t i = 0; i < 512; ++i) {
      coords.push_back(rng.Gaussian(0, 2.0));
      coords.push_back(rng.Gaussian(0, 2.0));
    }
    if (!warm->Ingest("load", 2, coords).ok()) {
      std::fprintf(stderr, "bench_load: warm ingest failed\n");
      return 1;
    }
  }

  // All timelines anchor to one start a moment in the future so every
  // connection thread is parked on its first deadline before the clock
  // starts — thread spawn jitter does not leak into the schedule.
  const double interval = connections / rate;  // per-connection spacing
  const double t0 = NowSeconds() + 0.2;

  std::vector<WorkerResult> results(connections);
  ThreadPool pool(connections);
  std::atomic<bool> failed{false};
  for (size_t c = 0; c < connections; ++c) {
    pool.Submit([&, c] {
      WorkerResult& out = results[c];
      auto client = service::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      Rng rng(1000 + c);
      out.ingest_latencies.reserve(per_conn);
      out.query_latencies.reserve(per_conn);
      // Phase-stagger: connection c fires at t0 + (k + c/C) * interval.
      const double phase = t0 + interval * static_cast<double>(c) /
                                    static_cast<double>(connections);
      for (size_t k = 0; k < per_conn; ++k) {
        const double scheduled = phase + interval * static_cast<double>(k);
        const double now = NowSeconds();
        if (scheduled > now) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(scheduled - now));
        } else {
          ++out.late_sends;
        }
        const bool is_query = rng.NextDouble() < query_fraction;
        bool ok;
        if (is_query) {
          const double x = rng.Gaussian(0, 2.0);
          const double y = rng.Gaussian(0, 2.0);
          ok = client->QueryPoint("load", {x, y}, /*want_score=*/false).ok();
        } else {
          std::vector<double> coords;
          coords.reserve(2 * batch);
          for (size_t i = 0; i < batch; ++i) {
            coords.push_back(rng.Gaussian(0, 2.0));
            coords.push_back(rng.Gaussian(0, 2.0));
          }
          ok = client->Ingest("load", 2, coords).ok();
        }
        // Open-loop latency: completion minus *scheduled* send.
        const double latency = NowSeconds() - scheduled;
        if (!ok) {
          ++out.errors;
          continue;
        }
        (is_query ? out.query_latencies : out.ingest_latencies)
            .push_back(latency);
      }
    });
  }
  pool.WaitIdle();
  const double wall = NowSeconds() - t0;
  (*server)->Stop();
  service.Stop();
  if (failed.load()) {
    std::fprintf(stderr, "bench_load: worker connect failed\n");
    return 1;
  }

  std::vector<double> ingest_all, query_all;
  size_t errors = 0, late = 0;
  for (const WorkerResult& r : results) {
    ingest_all.insert(ingest_all.end(), r.ingest_latencies.begin(),
                      r.ingest_latencies.end());
    query_all.insert(query_all.end(), r.query_latencies.begin(),
                     r.query_latencies.end());
    errors += r.errors;
    late += r.late_sends;
  }
  const size_t completed = ingest_all.size() + query_all.size();
  const double achieved = completed / wall;
  const LatencyStats ingest_lat = Summarize(ingest_all);
  const LatencyStats query_lat = Summarize(query_all);
  std::fprintf(stderr,
               "  %zu ops in %.2fs (%.0f/s achieved, %zu late, %zu errors)\n",
               completed, wall, achieved, late, errors);
  std::fprintf(stderr,
               "  ingest p50=%.1fus p99=%.1fus p999=%.1fus | "
               "query p50=%.1fus p99=%.1fus p999=%.1fus\n",
               ingest_lat.p50_us, ingest_lat.p99_us, ingest_lat.p999_us,
               query_lat.p50_us, query_lat.p99_us, query_lat.p999_us);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_load\",\n");
  std::printf("  \"load\": {\n");
  std::printf("    \"connections\": %zu,\n", connections);
  std::printf("    \"offered_rps\": %.0f,\n", rate);
  std::printf("    \"achieved_rps\": %.0f,\n", achieved);
  std::printf("    \"duration_s\": %.2f,\n", wall);
  std::printf("    \"late_sends\": %zu,\n", late);
  std::printf("    \"errors\": %zu,\n", errors);
  std::printf("    \"ingest\": {\"count\": %zu, \"p50_us\": %.1f, "
              "\"p99_us\": %.1f, \"p999_us\": %.1f, \"mean_us\": %.1f},\n",
              ingest_all.size(), ingest_lat.p50_us, ingest_lat.p99_us,
              ingest_lat.p999_us, ingest_lat.mean_us);
  std::printf("    \"query\": {\"count\": %zu, \"p50_us\": %.1f, "
              "\"p99_us\": %.1f, \"p999_us\": %.1f, \"mean_us\": %.1f}\n",
              query_all.size(), query_lat.p50_us, query_lat.p99_us,
              query_lat.p999_us, query_lat.mean_us);
  std::printf("  }\n");
  std::printf("}\n");
  return errors == 0 ? 0 : 1;
}

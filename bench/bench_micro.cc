// Micro-benchmarks (google-benchmark) for the building blocks underneath
// the paper's end-to-end numbers: grid construction (Algorithm 1+2),
// neighbor-stencil application, cell-map lookups, kd-tree k-NN (the LOF
// substrate), dataflow shuffles, and the sequential detector itself.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/dbscout.h"
#include "core/incremental.h"
#include "dataflow/pair_ops.h"
#include "datasets/geo.h"
#include "grid/cell_map.h"
#include "grid/grid.h"
#include "index/kdtree.h"
#include "simd/distance_kernel.h"

namespace {

using namespace dbscout;

PointSet MakePoints(size_t n) {
  return datasets::OsmLike(n, 77);
}

void BM_GridBuild(benchmark::State& state) {
  const PointSet points = MakePoints(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto g = grid::Grid::Build(points, 1e6);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridBuild)->Arg(10000)->Arg(100000);

void BM_NeighborStencilApply(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const PointSet points = MakePoints(20000);
  auto g = grid::Grid::Build(points, 1e6);
  auto stencil = grid::GetNeighborStencil(d == 2 ? 2 : d);
  // Apply the 2D data's stencil lookups against a real grid.
  auto stencil2 = grid::GetNeighborStencil(2);
  for (auto _ : state) {
    size_t hits = 0;
    for (uint32_t c = 0; c < g->num_cells(); ++c) {
      g->ForEachNeighborCell(c, **stencil2, [&](uint32_t) { ++hits; });
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * g->num_cells() *
                          (*stencil)->size());
}
BENCHMARK(BM_NeighborStencilApply)->Arg(2);

void BM_CellMapLookup(benchmark::State& state) {
  const PointSet points = MakePoints(50000);
  auto g = grid::Grid::Build(points, 1e6);
  grid::CellMap map;
  for (uint32_t c = 0; c < g->num_cells(); ++c) {
    const uint32_t count = static_cast<uint32_t>(g->CellSize(c));
    map.Insert(g->CoordOf(c), count, count >= 100);
  }
  for (auto _ : state) {
    size_t dense = 0;
    for (uint32_t c = 0; c < g->num_cells(); ++c) {
      dense += map.TypeOf(g->CoordOf(c)) == grid::CellType::kDense;
    }
    benchmark::DoNotOptimize(dense);
  }
  state.SetItemsProcessed(state.iterations() * g->num_cells());
}
BENCHMARK(BM_CellMapLookup);

void BM_KdTreeKnn(benchmark::State& state) {
  const PointSet points = MakePoints(static_cast<size_t>(state.range(0)));
  const index::KdTree tree = index::KdTree::Build(points);
  Rng rng(5);
  for (auto _ : state) {
    const uint32_t q = static_cast<uint32_t>(rng.NextBounded(points.size()));
    auto knn = tree.Knn(points[q], 6, q);
    benchmark::DoNotOptimize(knn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeKnn)->Arg(10000)->Arg(100000);

void BM_ReduceByKeyShuffle(benchmark::State& state) {
  dataflow::ExecutionContext ctx(0, 16);
  Rng rng(6);
  std::vector<std::pair<uint32_t, uint32_t>> records;
  records.reserve(200000);
  for (size_t i = 0; i < 200000; ++i) {
    records.emplace_back(static_cast<uint32_t>(rng.NextBounded(10000)), 1u);
  }
  auto ds = dataflow::Dataset<std::pair<uint32_t, uint32_t>>::FromVector(
      &ctx, records, 16);
  for (auto _ : state) {
    auto reduced =
        ReduceByKey(ds, [](uint32_t a, uint32_t b) { return a + b; });
    benchmark::DoNotOptimize(reduced);
  }
  state.SetItemsProcessed(state.iterations() * records.size());
}
BENCHMARK(BM_ReduceByKeyShuffle);

void BM_CellCoordHash(benchmark::State& state) {
  std::vector<grid::CellCoord> coords;
  Rng rng(4);
  for (int i = 0; i < 4096; ++i) {
    grid::CellCoord c = grid::CellCoord::Zero(3);
    for (size_t k = 0; k < 3; ++k) {
      c[k] = static_cast<int64_t>(rng.NextBounded(1 << 20)) - (1 << 19);
    }
    coords.push_back(c);
  }
  for (auto _ : state) {
    uint64_t acc = 0;
    for (const auto& c : coords) {
      acc ^= c.Hash();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * coords.size());
}
BENCHMARK(BM_CellCoordHash);

void BM_StencilEnumeration(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto count = grid::CountNeighborOffsets(d);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_StencilEnumeration)->Arg(3)->Arg(5)->Arg(7);

void BM_IncrementalAdd(benchmark::State& state) {
  const PointSet points = MakePoints(20000);
  core::Params params;
  params.eps = 1e6;
  params.min_pts = 100;
  for (auto _ : state) {
    state.PauseTiming();
    auto det = core::IncrementalDetector::Create(2, params);
    state.ResumeTiming();
    for (size_t i = 0; i < points.size(); ++i) {
      auto added = det->Add(points[i]);
      benchmark::DoNotOptimize(added);
    }
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_IncrementalAdd);

// --- Batched distance kernels (scalar reference vs CPU-dispatched). ------
// One query point against a contiguous block, the phase-3/5 inner loop.

struct KernelWorkload {
  std::vector<double> query;
  std::vector<double> block;
};

KernelWorkload MakeKernelWorkload(size_t n, size_t d) {
  Rng rng(11 + d);
  KernelWorkload w;
  w.query.resize(d);
  w.block.resize(n * d);
  for (auto& v : w.query) {
    v = rng.NextDouble();
  }
  for (auto& v : w.block) {
    v = rng.NextDouble();
  }
  return w;
}

void BM_KernelCountWithin(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const bool scalar = state.range(1) != 0;
  const size_t n = 4096;
  const KernelWorkload w = MakeKernelWorkload(n, d);
  const auto& table =
      scalar ? simd::ScalarKernels() : simd::DispatchedKernels();
  state.SetLabel(table.name);
  for (auto _ : state) {
    auto hits = table.count_within[d](w.query.data(), w.block.data(), n,
                                      0.25 * d, 0);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelCountWithin)
    ->ArgsProduct({{2, 3, 5, 9}, {1, 0}});

void BM_KernelAnyWithin(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const bool scalar = state.range(1) != 0;
  const size_t n = 4096;
  const KernelWorkload w = MakeKernelWorkload(n, d);
  const auto& table =
      scalar ? simd::ScalarKernels() : simd::DispatchedKernels();
  state.SetLabel(table.name);
  for (auto _ : state) {
    // eps2 = 0 with random data: no hit, full-block scan (worst case).
    auto any = table.any_within[d](w.query.data(), w.block.data(), n, 0.0);
    benchmark::DoNotOptimize(any);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelAnyWithin)->ArgsProduct({{2, 3}, {1, 0}});

void BM_KernelMinSqDist(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const bool scalar = state.range(1) != 0;
  const size_t n = 4096;
  const KernelWorkload w = MakeKernelWorkload(n, d);
  const auto& table =
      scalar ? simd::ScalarKernels() : simd::DispatchedKernels();
  state.SetLabel(table.name);
  for (auto _ : state) {
    auto best = table.min_sqdist[d](w.query.data(), w.block.data(), n);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelMinSqDist)->ArgsProduct({{2, 3}, {1, 0}});

void BM_DetectSequential(benchmark::State& state) {
  const PointSet points = MakePoints(static_cast<size_t>(state.range(0)));
  core::Params params;
  params.eps = 1e6;
  params.min_pts = 100;
  for (auto _ : state) {
    auto r = core::DetectSequential(points, params);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetectSequential)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();

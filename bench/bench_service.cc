// Service bench: sustained ingest throughput and query latency for the
// online detection service (DESIGN.md section 10).
//
// Two ingest modes are measured over the same stream:
//   async    IngestAsync + one final Drain — the apply loop coalesces the
//            queue, so N batches cost one snapshot publication per pass.
//   blocking one Dispatch(INGEST) per batch — each batch waits for its
//            snapshot, the per-request latency a synchronous client sees.
//
// Queries run through ServiceHandle, so every call pays the full wire
// encode/decode round trip (everything a TCP client costs minus the
// socket). Latencies are reported as p50/p99/p999 over the sorted sample.
//
// Human-readable progress goes to stderr; stdout is a single JSON object,
// so `bench_service > BENCH_service.json` captures the committed artifact.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "datasets/geo.h"
#include "service/handle.h"
#include "service/service.h"
#include "storage/store.h"

namespace {

using namespace dbscout;

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double mean_us = 0;
};

LatencyStats Summarize(std::vector<double>& seconds) {
  LatencyStats stats;
  if (seconds.empty()) {
    return stats;
  }
  std::sort(seconds.begin(), seconds.end());
  const auto at = [&](double q) {
    const size_t i = static_cast<size_t>(q * (seconds.size() - 1));
    return seconds[i] * 1e6;
  };
  stats.p50_us = at(0.50);
  stats.p99_us = at(0.99);
  stats.p999_us = at(0.999);
  double total = 0;
  for (double s : seconds) {
    total += s;
  }
  stats.mean_us = total / seconds.size() * 1e6;
  return stats;
}

std::vector<double> Batch(const PointSet& points, size_t begin, size_t end) {
  const size_t dims = points.dims();
  return std::vector<double>(points.values().begin() + begin * dims,
                             points.values().begin() + end * dims);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = bench::FlagU64(argc, argv, "n", 100000);
  const size_t batch = bench::FlagU64(argc, argv, "batch", 500);
  const size_t num_queries = bench::FlagU64(argc, argv, "queries", 20000);
  const double eps = bench::FlagDouble(argc, argv, "eps", 5e5);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 50));

  std::fprintf(stderr,
               "bench_service: n=%zu batch=%zu queries=%zu eps=%g minPts=%d\n",
               n, batch, num_queries, eps, min_pts);
  const PointSet stream = datasets::OsmLike(n, 91);

  service::ServiceOptions options;
  options.params.eps = eps;
  options.params.min_pts = min_pts;
  // Throughput run: admission must never shed, or we would measure the
  // enqueue path instead of the apply loop.
  options.max_pending_ingests = n;

  const uint16_t dims = static_cast<uint16_t>(stream.dims());

  // --- Ingest, async + coalesced. -----------------------------------------
  double async_seconds = 0;
  {
    service::DetectionService svc(options);
    WallTimer timer;
    for (size_t begin = 0; begin < n; begin += batch) {
      const size_t end = std::min(n, begin + batch);
      const Status s = svc.IngestAsync("bench", dims, Batch(stream, begin, end));
      if (!s.ok()) {
        std::fprintf(stderr, "async ingest: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    svc.Drain();
    async_seconds = timer.ElapsedSeconds();
    std::fprintf(stderr, "  async   %.3fs (%.0f pts/s)\n", async_seconds,
                 n / async_seconds);
  }

  // --- Sharded ingest sweep: the same async flow against 1 and N detector
  // shards (--shards, default 4). Each shard runs its own apply loop, so
  // with enough cores the scatter/ghost-exchange overhead is repaid by
  // parallel per-shard applies; on a single core the sweep instead prices
  // that overhead honestly (speedup <= 1). Both numbers re-run here so the
  // ratio is apples-to-apples within one process. ---------------------------
  const size_t sweep_shards = bench::FlagU64(argc, argv, "shards", 4);
  double shards1_rate = 0;
  double shardsN_rate = 0;
  for (const size_t num_shards : {size_t{1}, sweep_shards}) {
    service::ServiceOptions sopts = options;
    sopts.num_shards = num_shards;
    service::DetectionService ssvc(sopts);
    WallTimer timer;
    for (size_t begin = 0; begin < n; begin += batch) {
      const size_t end = std::min(n, begin + batch);
      const Status s =
          ssvc.IngestAsync("bench", dims, Batch(stream, begin, end));
      if (!s.ok()) {
        std::fprintf(stderr, "sharded ingest: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    ssvc.Drain();
    const double rate = n / timer.ElapsedSeconds();
    (num_shards == 1 ? shards1_rate : shardsN_rate) = rate;
    std::fprintf(stderr, "  sharded  shards=%zu %.0f pts/s\n", num_shards,
                 rate);
  }

  // --- Windowed ingest: steady-state throughput with TTL expiry active. ---
  // The service gets a logical clock that ticks once per enqueued batch and
  // a TTL of half the stream, so the sliding window turns over ~3 times
  // during the run: prefix expiry (detector Removes inside the apply loop)
  // overlaps the inserts exactly as in a production sliding window, and the
  // measured rate is the steady-state one, not append-only growth.
  double windowed_seconds = 0;
  uint64_t windowed_live = 0;
  uint64_t windowed_begin = 0;
  const size_t rounds = bench::FlagU64(argc, argv, "window-rounds", 2);
  {
    std::atomic<double> logical_now{0.0};
    service::ServiceOptions wopts = options;
    wopts.clock = [&logical_now] {
      return logical_now.load(std::memory_order_relaxed);
    };
    wopts.ttl_seconds =
        static_cast<double>(n / (2 * batch));  // in batch ticks
    wopts.max_pending_ingests = rounds * (n / batch + 1);
    service::DetectionService wsvc(wopts);
    // Sync every n/8 points: expiry stamps are taken per apply pass, so an
    // unbounded async burst would coalesce into one pass with one stamp
    // and the window would never age. Draining 8 times per round bounds
    // pass granularity at 1/4 of the TTL while keeping the coalesced
    // apply path hot.
    const size_t sync_every = std::max<size_t>(1, n / (8 * batch));
    size_t since_sync = 0;
    WallTimer timer;
    for (size_t r = 0; r < rounds; ++r) {
      for (size_t begin = 0; begin < n; begin += batch) {
        const size_t end = std::min(n, begin + batch);
        const Status s =
            wsvc.IngestAsync("bench", dims, Batch(stream, begin, end));
        if (!s.ok()) {
          std::fprintf(stderr, "windowed ingest: %s\n", s.ToString().c_str());
          return 1;
        }
        logical_now.store(logical_now.load(std::memory_order_relaxed) + 1.0,
                          std::memory_order_relaxed);
        if (++since_sync >= sync_every) {
          wsvc.Drain();
          since_sync = 0;
        }
      }
    }
    wsvc.Drain();
    windowed_seconds = timer.ElapsedSeconds();
    service::Request stats_req;
    stats_req.verb = service::Verb::kStats;
    stats_req.collection = "bench";
    const service::Response stats = wsvc.Dispatch(stats_req);
    windowed_live = stats.stats.live_points;
    windowed_begin = stats.stats.window_begin;
    std::fprintf(stderr,
                 "  windowed %.3fs (%.0f pts/s, live %llu of %zu ingested)\n",
                 windowed_seconds, rounds * n / windowed_seconds,
                 static_cast<unsigned long long>(windowed_live), rounds * n);
  }

  // --- Durable ingest sweep: the same async flow with a per-collection
  // WAL under each fsync policy. "never" prices the framing + append
  // write()s alone, "interval" the recommended group-commit mode (fsync at
  // most every 50ms, piggybacked on apply passes), "always" a full
  // fdatasync inside every durability barrier — the synchronous-commit
  // floor, reported but not gated (it measures the disk, not the code). --
  double durable_never_rate = 0;
  double durable_interval_rate = 0;
  double durable_always_rate = 0;
  {
    const std::string durable_root =
        (std::filesystem::temp_directory_path() / "dbscout_bench_durable")
            .string();
    const struct {
      const char* name;
      storage::FsyncPolicy policy;
      double* rate;
    } modes[] = {
        {"never", storage::FsyncPolicy::kNever, &durable_never_rate},
        {"interval", storage::FsyncPolicy::kInterval, &durable_interval_rate},
        {"always", storage::FsyncPolicy::kAlways, &durable_always_rate},
    };
    for (const auto& mode : modes) {
      const std::string dir = durable_root + "_" + mode.name;
      std::filesystem::remove_all(dir);
      service::ServiceOptions dopts = options;
      dopts.data_dir = dir;
      dopts.wal_fsync = mode.policy;
      {
        service::DetectionService dsvc(dopts);
        WallTimer timer;
        for (size_t begin = 0; begin < n; begin += batch) {
          const size_t end = std::min(n, begin + batch);
          const Status s =
              dsvc.IngestAsync("bench", dims, Batch(stream, begin, end));
          if (!s.ok()) {
            std::fprintf(stderr, "durable ingest (%s): %s\n", mode.name,
                         s.ToString().c_str());
            return 1;
          }
        }
        dsvc.Drain();
        *mode.rate = n / timer.ElapsedSeconds();
        std::fprintf(stderr, "  durable  fsync=%-8s %.0f pts/s\n", mode.name,
                     *mode.rate);
      }
      std::filesystem::remove_all(dir);
    }
  }

  // --- Ingest, blocking per batch; then queries against the result. -------
  service::DetectionService svc(options);
  service::ServiceHandle handle(&svc);
  double blocking_seconds = 0;
  std::vector<double> ingest_latencies;
  ingest_latencies.reserve(n / batch + 1);
  {
    WallTimer total;
    for (size_t begin = 0; begin < n; begin += batch) {
      const size_t end = std::min(n, begin + batch);
      service::Request request;
      request.verb = service::Verb::kIngest;
      request.collection = "bench";
      request.dims = dims;
      request.coords = Batch(stream, begin, end);
      WallTimer one;
      const auto response = handle.Call(request);
      ingest_latencies.push_back(one.ElapsedSeconds());
      if (!response.ok() || !response->status.ok()) {
        std::fprintf(stderr, "blocking ingest failed\n");
        return 1;
      }
    }
    blocking_seconds = total.ElapsedSeconds();
    std::fprintf(stderr, "  blocking %.3fs (%.0f pts/s)\n", blocking_seconds,
                 n / blocking_seconds);
  }

  // --- Query latency: half by-id, half probes near/far. --------------------
  Rng rng(17);
  std::vector<double> id_latencies, probe_latencies;
  id_latencies.reserve(num_queries / 2);
  probe_latencies.reserve(num_queries - num_queries / 2);
  size_t outliers_seen = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    service::Request request;
    request.collection = "bench";
    request.verb = service::Verb::kQuery;
    request.want_score = true;
    const bool by_id = (q % 2) == 0;
    if (by_id) {
      request.query_by_id = true;
      request.query_id = static_cast<uint32_t>(rng.NextBounded(n));
    } else {
      const size_t base = rng.NextBounded(n);
      request.query_point.assign(stream[base].begin(), stream[base].end());
      for (double& c : request.query_point) {
        c += rng.Gaussian(0, eps * 0.1);
      }
    }
    WallTimer one;
    const auto response = handle.Call(request);
    const double elapsed = one.ElapsedSeconds();
    if (!response.ok() || !response->status.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    (by_id ? id_latencies : probe_latencies).push_back(elapsed);
    if (response->query.kind == core::PointKind::kOutlier) {
      ++outliers_seen;
    }
  }
  const LatencyStats ingest_lat = Summarize(ingest_latencies);
  const LatencyStats id_lat = Summarize(id_latencies);
  const LatencyStats probe_lat = Summarize(probe_latencies);
  std::fprintf(stderr, "  query-id p50=%.1fus p99=%.1fus | probe p50=%.1fus "
               "p99=%.1fus | %zu outlier verdicts\n",
               id_lat.p50_us, id_lat.p99_us, probe_lat.p50_us,
               probe_lat.p99_us, outliers_seen);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_service\",\n");
  std::printf("  \"dataset\": {\"generator\": \"OsmLike\", \"n\": %zu, "
              "\"dims\": %u, \"seed\": 91},\n", n, dims);
  std::printf("  \"params\": {\"eps\": %g, \"min_pts\": %d, "
              "\"batch\": %zu},\n", eps, min_pts, batch);
  std::printf("  \"ingest\": {\n");
  std::printf("    \"async_points_per_sec\": %.0f,\n", n / async_seconds);
  std::printf("    \"blocking_points_per_sec\": %.0f,\n",
              n / blocking_seconds);
  std::printf("    \"blocking_batch_p50_us\": %.1f,\n", ingest_lat.p50_us);
  std::printf("    \"blocking_batch_p99_us\": %.1f,\n", ingest_lat.p99_us);
  std::printf("    \"blocking_batch_p999_us\": %.1f\n", ingest_lat.p999_us);
  std::printf("  },\n");
  std::printf("  \"sharded\": {\n");
  std::printf("    \"shards\": %zu,\n", sweep_shards);
  std::printf("    \"shards1_points_per_sec\": %.0f,\n", shards1_rate);
  std::printf("    \"shardsN_points_per_sec\": %.0f,\n", shardsN_rate);
  std::printf("    \"speedup_Nv1\": %.3f\n", shardsN_rate / shards1_rate);
  std::printf("  },\n");
  std::printf("  \"durable\": {\n");
  std::printf("    \"never_points_per_sec\": %.0f,\n", durable_never_rate);
  std::printf("    \"interval_points_per_sec\": %.0f,\n",
              durable_interval_rate);
  std::printf("    \"always_points_per_sec\": %.0f\n", durable_always_rate);
  std::printf("  },\n");
  std::printf("  \"windowed\": {\n");
  std::printf("    \"rounds\": %zu,\n", rounds);
  std::printf("    \"ttl_batches\": %zu,\n", n / (2 * batch));
  std::printf("    \"points_per_sec\": %.0f,\n",
              rounds * n / windowed_seconds);
  std::printf("    \"live_points\": %llu,\n",
              static_cast<unsigned long long>(windowed_live));
  std::printf("    \"window_begin\": %llu\n",
              static_cast<unsigned long long>(windowed_begin));
  std::printf("  },\n");
  std::printf("  \"query\": {\n");
  std::printf("    \"count\": %zu,\n", num_queries);
  std::printf("    \"by_id\": {\"p50_us\": %.1f, \"p99_us\": %.1f, "
              "\"p999_us\": %.1f, \"mean_us\": %.1f},\n",
              id_lat.p50_us, id_lat.p99_us, id_lat.p999_us, id_lat.mean_us);
  std::printf("    \"probe\": {\"p50_us\": %.1f, \"p99_us\": %.1f, "
              "\"p999_us\": %.1f, \"mean_us\": %.1f}\n",
              probe_lat.p50_us, probe_lat.p99_us, probe_lat.p999_us,
              probe_lat.mean_us);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}

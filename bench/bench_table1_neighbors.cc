// Reproduces Table I: the neighbor-cell constant k_d per dimensionality
// against the loose upper bound of Lemma 3, plus the enumeration cost.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "common/timer.h"
#include "grid/neighborhood.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t max_d = bench::FlagU64(argc, argv, "max-d", 9);
  bench::PrintBanner("Table I: neighbor-cell constant k_d",
                     "SS II, Table I (upper bound vs actual k_d, d=2..9)");

  analysis::Table table(
      {"d", "Upper bound", "Actual k_d", "Enumeration (ms)"});
  for (size_t d = 2; d <= max_d && d <= kMaxDims; ++d) {
    WallTimer timer;
    const Result<uint64_t> kd = grid::CountNeighborOffsets(d);
    const double ms = timer.ElapsedMillis();
    if (!kd.ok()) {
      std::fprintf(stderr, "d=%zu failed: %s\n", d,
                   kd.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(d),
                  std::to_string(grid::NeighborUpperBound(d)),
                  std::to_string(*kd), StrFormat("%.2f", ms)});
  }
  table.Print(std::cout);
  return 0;
}

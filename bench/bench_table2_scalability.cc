// Reproduces Table II + Fig. 10: average running time of DBSCOUT,
// RP-DBSCAN, and DDLOF as the number of input points grows — Geolife plus
// OpenStreetMap samples from 1% to 1000% (the >100% versions built by
// duplication with small noise, exactly as in SS IV-A2).
//
// Sizes are scaled to one machine (flag --base-n, default 200k points =
// the "100%" OpenStreetMap-like dataset). Missing values in the paper mean
// "out of memory or >4h"; here an algorithm is skipped (printed "-") once
// a run exceeds --budget-s seconds, reproducing those gaps honestly.
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "analysis/table.h"
#include "baselines/ddlof.h"
#include "baselines/rp_dbscan.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

namespace {

using namespace dbscout;

struct Timings {
  std::optional<double> dbscout;
  std::optional<double> rp_dbscan;
  std::optional<double> ddlof;
};

std::string Cell(const std::optional<double>& t) {
  return t ? StrFormat("%.1f", *t) : std::string("-");
}

}  // namespace

int main(int argc, char** argv) {
  const size_t base_n = bench::FlagU64(argc, argv, "base-n", 200000);
  const double budget_s =
      static_cast<double>(bench::FlagU64(argc, argv, "budget-s", 120));
  const double osm_eps = bench::FlagDouble(argc, argv, "osm-eps", 1e6);
  const double geolife_eps = bench::FlagDouble(argc, argv, "geolife-eps", 300);
  const int min_pts = static_cast<int>(bench::FlagU64(argc, argv, "min-pts",
                                                      100));
  bench::PrintBanner(
      "Table II + Fig. 10: scalability vs number of points",
      "SS IV-B1 (DBSCOUT linear; RP-DBSCAN slower, dies at 500%; DDLOF "
      "dies above 25%)");
  std::printf("base-n=%zu (the 100%% OSM-like sample), eps(OSM)=%g, "
              "eps(Geolife)=%g, minPts=%d, budget=%gs/run\n\n",
              base_n, osm_eps, geolife_eps, min_pts, budget_s);

  dataflow::ExecutionContext ctx(0, 64);
  core::Params dbscout_params;
  dbscout_params.min_pts = min_pts;
  dbscout_params.engine = core::Engine::kParallel;
  dbscout_params.join = core::JoinStrategy::kGrouped;

  baselines::RpDbscanParams rp_params;
  rp_params.min_pts = min_pts;
  rp_params.rho = 0.01;
  rp_params.num_partitions = 8;

  baselines::DdlofParams ddlof_params;
  ddlof_params.k = 6;
  ddlof_params.num_partitions = 16;

  bool dbscout_alive = true;
  bool rp_alive = true;
  bool ddlof_alive = true;

  auto run_all = [&](const PointSet& points, double eps) {
    Timings t;
    if (dbscout_alive) {
      dbscout_params.eps = eps;
      auto r = core::DetectParallel(points, dbscout_params, &ctx);
      if (r.ok()) {
        t.dbscout = r->total_seconds;
        dbscout_alive = r->total_seconds <= budget_s;
      }
    }
    if (rp_alive) {
      rp_params.eps = eps;
      auto r = baselines::RpDbscan(points, rp_params);
      if (r.ok()) {
        t.rp_dbscan = r->seconds;
        rp_alive = r->seconds <= budget_s;
      }
    }
    if (ddlof_alive) {
      auto r = baselines::Ddlof(points, ddlof_params);
      if (r.ok()) {
        t.ddlof = r->seconds;
        ddlof_alive = r->seconds <= budget_s;
      }
    }
    return t;
  };

  analysis::Table table({"Dataset", "Points", "DBSCOUT (s)", "RP-DBSCAN (s)",
                         "DDLOF (s)"});

  // Geolife row. The paper's DDLOF could not finish Geolife within 4 hours
  // because of the skew; the budget mechanism reproduces that behaviour
  // when DDLOF's replication blows past the time budget.
  {
    const PointSet geolife = datasets::GeolifeLike(base_n, 11);
    const Timings t = run_all(geolife, geolife_eps);
    table.AddRow({"Geolife", HumanCount(static_cast<double>(geolife.size())),
                  Cell(t.dbscout), Cell(t.rp_dbscan), Cell(t.ddlof)});
    // Table II runs DDLOF only on OpenStreetMap samples below; reset the
    // alive flags so a Geolife blow-up does not hide the OSM columns.
    dbscout_alive = rp_alive = ddlof_alive = true;
  }

  const PointSet osm = datasets::OsmLike(base_n, 12);
  const struct {
    const char* label;
    double fraction;  // <= 1: sample; > 1: duplication factor
  } sizes[] = {
      {"OpenStreetMap (1%)", 0.01},  {"OpenStreetMap (25%)", 0.25},
      {"OpenStreetMap (50%)", 0.50}, {"OpenStreetMap (75%)", 0.75},
      {"OpenStreetMap", 1.0},        {"OpenStreetMap (200%)", 2.0},
      {"OpenStreetMap (500%)", 5.0}, {"OpenStreetMap (1000%)", 10.0},
  };
  for (const auto& size : sizes) {
    PointSet points =
        size.fraction <= 1.0
            ? datasets::SampleFraction(osm, size.fraction, 13)
            : datasets::ScaleWithNoise(
                  osm, static_cast<size_t>(size.fraction), osm_eps / 100.0,
                  13);
    const Timings t = run_all(points, osm_eps);
    table.AddRow({size.label, HumanCount(static_cast<double>(points.size())),
                  Cell(t.dbscout), Cell(t.rp_dbscan), Cell(t.ddlof)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): DBSCOUT grows linearly and stays fastest; "
      "RP-DBSCAN trails it (up to ~10x at 200%%) and cannot reach 500%%; "
      "DDLOF is orders of magnitude slower and stops after 25%%.\n");
  return 0;
}

// Reproduces Table III: F1-score of the outlier class for DBSCOUT vs LOF,
// Isolation Forest, and One-Class SVM on nine labelled 2D datasets.
// Parameter selection follows the paper: DBSCOUT fixes minPts and reads
// eps off the k-distance elbow (no knowledge of the true contamination);
// LOF grid-searches K and is told the exact contamination, as are IF and
// OC-SVM (their nu).
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/kdistance.h"
#include "analysis/metrics.h"
#include "analysis/table.h"
#include "baselines/isolation_forest.h"
#include "baselines/lof.h"
#include "baselines/ocsvm.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/shapes.h"
#include "datasets/synthetic.h"

namespace {

using namespace dbscout;

struct Case {
  datasets::LabeledDataset data;
  int min_pts;
};

double F1Of(const datasets::LabeledDataset& data,
            const std::vector<uint32_t>& predicted) {
  return analysis::ConfusionFromIndices(data.labels, predicted).F1();
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 71);
  bench::PrintBanner("Table III: F1-score comparison",
                     "SS IV-C1 (DBSCOUT better or on par with LOF; both far "
                     "ahead of IF and OC-SVM)");

  std::vector<Case> cases;
  cases.push_back({datasets::Blobs(4000, 0.01, seed), 5});
  cases.push_back({datasets::BlobsVariedDensity(4000, 0.01, seed + 1), 5});
  cases.push_back({datasets::Circles(4000, 0.01, seed + 2), 5});
  cases.push_back({datasets::Moons(4000, 0.01, seed + 3), 5});
  cases.push_back({datasets::ClutoT4Like(8000, seed + 4), 10});
  cases.push_back({datasets::ClutoT5Like(8000, seed + 5), 10});
  cases.push_back({datasets::ClutoT7Like(10000, seed + 6), 10});
  cases.push_back({datasets::ClutoT8Like(8000, seed + 7), 10});
  cases.push_back({datasets::CureT2Like(4200, seed + 8), 10});

  analysis::Table table({"Dataset", "Algorithm", "Parameters", "F1-score"});
  for (const Case& c : cases) {
    const double contamination = c.data.Contamination();

    // DBSCOUT: minPts fixed, eps from the k-distance elbow.
    auto curve = analysis::ComputeKDistance(c.data.points, c.min_pts);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s: k-distance failed\n", c.data.name.c_str());
      return 1;
    }
    core::Params params;
    params.eps = curve->SuggestEpsUpper();
    params.min_pts = c.min_pts;
    auto detection = core::Detect(c.data.points, params);
    if (!detection.ok()) {
      std::fprintf(stderr, "%s: DBSCOUT failed\n", c.data.name.c_str());
      return 1;
    }
    table.AddRow({c.data.name, "DBSCOUT",
                  StrFormat("eps=%.4g, minPts=%d", params.eps, c.min_pts),
                  StrFormat("%.5f", F1Of(c.data, detection->outliers))});

    // LOF: grid search over K, contamination given.
    double best_lof = 0.0;
    int best_k = 0;
    for (int k : {5, 10, 16, 27, 50, 77, 106}) {
      if (static_cast<size_t>(k) >= c.data.points.size()) {
        continue;
      }
      auto lof = baselines::Lof(c.data.points, k);
      if (!lof.ok()) {
        continue;
      }
      const double f1 = F1Of(c.data, lof->TopFraction(contamination));
      if (f1 > best_lof) {
        best_lof = f1;
        best_k = k;
      }
    }
    table.AddRow({c.data.name, "LOF",
                  StrFormat("K=%d, nu=%.2g", best_k, contamination),
                  StrFormat("%.5f", best_lof)});

    // Isolation Forest: contamination given.
    baselines::IsolationForestParams if_params;
    if_params.seed = seed + 100;
    auto forest = baselines::IsolationForest(c.data.points, if_params);
    if (!forest.ok()) {
      std::fprintf(stderr, "%s: IF failed\n", c.data.name.c_str());
      return 1;
    }
    table.AddRow({c.data.name, "IF", StrFormat("nu=%.2g", contamination),
                  StrFormat("%.5f",
                            F1Of(c.data, forest->TopFraction(contamination)))});

    // One-Class SVM: nu = contamination.
    baselines::OneClassSvmParams svm_params;
    svm_params.nu = std::max(0.001, contamination);
    svm_params.seed = seed + 200;
    auto svm = baselines::OneClassSvm(c.data.points, svm_params);
    if (!svm.ok()) {
      std::fprintf(stderr, "%s: OC-SVM failed\n", c.data.name.c_str());
      return 1;
    }
    table.AddRow(
        {c.data.name, "OC-SVM", StrFormat("nu=%.2g", contamination),
         StrFormat("%.5f",
                   F1Of(c.data, svm->BottomFraction(contamination)))});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): DBSCOUT generally better or on par with "
      "LOF (despite not knowing the contamination); IF and OC-SVM far "
      "behind on the shaped datasets.\n");
  return 0;
}

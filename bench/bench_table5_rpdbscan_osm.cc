// Reproduces Table V: RP-DBSCAN detection accuracy on OpenStreetMap —
// TP/FP/FN of RP-DBSCAN's outliers against DBSCOUT's exact output across
// the OSM eps sweep. Same expected signature as Table IV: a consistent
// proportion of false positives, a tiny share of false negatives.
#include <cstdio>
#include <iostream>

#include "analysis/compare.h"
#include "analysis/table.h"
#include "baselines/rp_dbscan.h"
#include "bench_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;
  const size_t n = bench::FlagU64(argc, argv, "n", 200000);
  const int min_pts =
      static_cast<int>(bench::FlagU64(argc, argv, "min-pts", 100));
  const double rho = bench::FlagDouble(argc, argv, "rho", 0.3);
  bench::PrintBanner("Table V: RP-DBSCAN detection accuracy on OpenStreetMap",
                     "SS IV-C2 (FP-heavy superset, ~0.01% FN)");
  std::printf("OSM-like n=%zu, minPts=%d, rho=%g\n", n, min_pts, rho);
  std::printf(
      "NOTE: the paper uses rho=0.01 on billions of points, where sub-cells "
      "hold many points each. At this dataset size rho=0.01 produces "
      "singleton sub-cells (the summary degenerates to the exact data, zero "
      "error); the default rho here is chosen to match the paper's sub-cell "
      "occupancy regime instead. Pass --rho=0.01 to see the degenerate "
      "case.\n\n");

  const PointSet points = datasets::OsmLike(n, 42);

  analysis::Table table(
      {"eps", "DBSCOUT", "RP-DBSCAN", "TP", "FP", "FN", "FP rate"});
  for (double eps : {2.5e5, 5e5, 1e6, 2e6}) {
    core::Params params;
    params.eps = eps;
    params.min_pts = min_pts;
    auto exact = core::DetectSequential(points, params);
    if (!exact.ok()) {
      std::fprintf(stderr, "DBSCOUT eps=%g failed: %s\n", eps,
                   exact.status().ToString().c_str());
      return 1;
    }
    baselines::RpDbscanParams rp_params;
    rp_params.eps = eps;
    rp_params.min_pts = min_pts;
    rp_params.rho = rho;
    rp_params.num_partitions = 8;
    auto approx = baselines::RpDbscan(points, rp_params);
    if (!approx.ok()) {
      std::fprintf(stderr, "RP-DBSCAN eps=%g failed: %s\n", eps,
                   approx.status().ToString().c_str());
      return 1;
    }
    const auto diff =
        analysis::CompareOutlierSets(exact->outliers, approx->outliers);
    const double fp_rate =
        approx->outliers.empty()
            ? 0.0
            : static_cast<double>(diff.fp) /
                  static_cast<double>(approx->outliers.size());
    table.AddRow({StrFormat("%g", eps),
                  std::to_string(exact->outliers.size()),
                  std::to_string(approx->outliers.size()),
                  std::to_string(diff.tp), std::to_string(diff.fp),
                  std::to_string(diff.fn),
                  StrFormat("%.1f%%", 100.0 * fp_rate)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): a superset at every eps; FP a consistent "
      "share of RP-DBSCAN's output, FN near zero.\n");
  return 0;
}

#ifndef DBSCOUT_BENCH_BENCH_UTIL_H_
#define DBSCOUT_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/str_util.h"

namespace dbscout::bench {

/// Parses "--name=value" from argv; returns `fallback` when absent or
/// malformed. Benchmarks accept size knobs so the full paper-scale sweep
/// can be requested on bigger machines (defaults are sized for a laptop).
inline uint64_t FlagU64(int argc, char** argv, const char* name,
                        uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      const Result<uint64_t> parsed = ParseUint64(argv[i] + prefix.size());
      if (parsed.ok()) {
        return *parsed;
      }
    }
  }
  return fallback;
}

inline double FlagDouble(int argc, char** argv, const char* name,
                         double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      const Result<double> parsed = ParseDouble(argv[i] + prefix.size());
      if (parsed.ok()) {
        return *parsed;
      }
    }
  }
  return fallback;
}

/// Header line shared by all harnesses, so the bench log is self-describing.
inline void PrintBanner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("DBSCOUT reproduction | %s\n", experiment);
  std::printf("paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace dbscout::bench

#endif  // DBSCOUT_BENCH_BENCH_UTIL_H_

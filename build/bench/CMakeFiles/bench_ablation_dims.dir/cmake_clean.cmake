file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dims.dir/bench_ablation_dims.cc.o"
  "CMakeFiles/bench_ablation_dims.dir/bench_ablation_dims.cc.o.d"
  "bench_ablation_dims"
  "bench_ablation_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_dims.
# This may be replaced when dependencies are built.

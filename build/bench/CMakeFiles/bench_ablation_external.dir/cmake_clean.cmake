file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_external.dir/bench_ablation_external.cc.o"
  "CMakeFiles/bench_ablation_external.dir/bench_ablation_external.cc.o.d"
  "bench_ablation_external"
  "bench_ablation_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_external.
# This may be replaced when dependencies are built.

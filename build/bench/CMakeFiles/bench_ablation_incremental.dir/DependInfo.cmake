
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_incremental.cc" "bench/CMakeFiles/bench_ablation_incremental.dir/bench_ablation_incremental.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_incremental.dir/bench_ablation_incremental.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/dbscout_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/dbscout_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/external/CMakeFiles/dbscout_external.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbscout_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/dbscout_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dbscout_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/dbscout_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dbscout_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/dbscout_index.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dbscout_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbscout_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbscout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_incremental.dir/bench_ablation_incremental.cc.o"
  "CMakeFiles/bench_ablation_incremental.dir/bench_ablation_incremental.cc.o.d"
  "bench_ablation_incremental"
  "bench_ablation_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

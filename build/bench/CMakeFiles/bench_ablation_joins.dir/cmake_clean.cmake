file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_joins.dir/bench_ablation_joins.cc.o"
  "CMakeFiles/bench_ablation_joins.dir/bench_ablation_joins.cc.o.d"
  "bench_ablation_joins"
  "bench_ablation_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_joins.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_minpts.dir/bench_ablation_minpts.cc.o"
  "CMakeFiles/bench_ablation_minpts.dir/bench_ablation_minpts.cc.o.d"
  "bench_ablation_minpts"
  "bench_ablation_minpts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_minpts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_minpts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_phases.dir/bench_ablation_phases.cc.o"
  "CMakeFiles/bench_ablation_phases.dir/bench_ablation_phases.cc.o.d"
  "bench_ablation_phases"
  "bench_ablation_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_phases.
# This may be replaced when dependencies are built.

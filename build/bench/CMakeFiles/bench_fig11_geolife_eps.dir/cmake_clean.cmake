file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_geolife_eps.dir/bench_fig11_geolife_eps.cc.o"
  "CMakeFiles/bench_fig11_geolife_eps.dir/bench_fig11_geolife_eps.cc.o.d"
  "bench_fig11_geolife_eps"
  "bench_fig11_geolife_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_geolife_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

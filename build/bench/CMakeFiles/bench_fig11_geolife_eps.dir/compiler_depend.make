# Empty compiler generated dependencies file for bench_fig11_geolife_eps.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig12_osm_eps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_partitions.dir/bench_fig13_partitions.cc.o"
  "CMakeFiles/bench_fig13_partitions.dir/bench_fig13_partitions.cc.o.d"
  "bench_fig13_partitions"
  "bench_fig13_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig13_partitions.
# This may be replaced when dependencies are built.

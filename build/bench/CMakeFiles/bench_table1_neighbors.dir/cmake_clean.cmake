file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_neighbors.dir/bench_table1_neighbors.cc.o"
  "CMakeFiles/bench_table1_neighbors.dir/bench_table1_neighbors.cc.o.d"
  "bench_table1_neighbors"
  "bench_table1_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scalability.dir/bench_table2_scalability.cc.o"
  "CMakeFiles/bench_table2_scalability.dir/bench_table2_scalability.cc.o.d"
  "bench_table2_scalability"
  "bench_table2_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_rpdbscan_geolife.dir/bench_table4_rpdbscan_geolife.cc.o"
  "CMakeFiles/bench_table4_rpdbscan_geolife.dir/bench_table4_rpdbscan_geolife.cc.o.d"
  "bench_table4_rpdbscan_geolife"
  "bench_table4_rpdbscan_geolife.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_rpdbscan_geolife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

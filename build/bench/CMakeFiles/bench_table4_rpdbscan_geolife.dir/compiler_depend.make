# Empty compiler generated dependencies file for bench_table4_rpdbscan_geolife.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_rpdbscan_osm.dir/bench_table5_rpdbscan_osm.cc.o"
  "CMakeFiles/bench_table5_rpdbscan_osm.dir/bench_table5_rpdbscan_osm.cc.o.d"
  "bench_table5_rpdbscan_osm"
  "bench_table5_rpdbscan_osm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_rpdbscan_osm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

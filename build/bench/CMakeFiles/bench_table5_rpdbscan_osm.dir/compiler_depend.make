# Empty compiler generated dependencies file for bench_table5_rpdbscan_osm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/geolife_anomalies.dir/geolife_anomalies.cpp.o"
  "CMakeFiles/geolife_anomalies.dir/geolife_anomalies.cpp.o.d"
  "geolife_anomalies"
  "geolife_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolife_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

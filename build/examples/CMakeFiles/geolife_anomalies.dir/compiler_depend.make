# Empty compiler generated dependencies file for geolife_anomalies.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/out_of_core.dir/out_of_core.cpp.o"
  "CMakeFiles/out_of_core.dir/out_of_core.cpp.o.d"
  "out_of_core"
  "out_of_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for out_of_core.
# This may be replaced when dependencies are built.

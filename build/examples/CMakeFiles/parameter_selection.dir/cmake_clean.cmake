file(REMOVE_RECURSE
  "CMakeFiles/parameter_selection.dir/parameter_selection.cpp.o"
  "CMakeFiles/parameter_selection.dir/parameter_selection.cpp.o.d"
  "parameter_selection"
  "parameter_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for parameter_selection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sensor_monitoring.dir/sensor_monitoring.cpp.o"
  "CMakeFiles/sensor_monitoring.dir/sensor_monitoring.cpp.o.d"
  "sensor_monitoring"
  "sensor_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sensor_monitoring.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/streaming_detection.dir/streaming_detection.cpp.o"
  "CMakeFiles/streaming_detection.dir/streaming_detection.cpp.o.d"
  "streaming_detection"
  "streaming_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

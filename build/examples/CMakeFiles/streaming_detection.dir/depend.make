# Empty dependencies file for streaming_detection.
# This may be replaced when dependencies are built.

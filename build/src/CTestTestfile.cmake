# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("simd")
subdirs("data")
subdirs("grid")
subdirs("dataflow")
subdirs("index")
subdirs("core")
subdirs("external")
subdirs("baselines")
subdirs("datasets")
subdirs("analysis")
subdirs("cli")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/auc.cc" "src/analysis/CMakeFiles/dbscout_analysis.dir/auc.cc.o" "gcc" "src/analysis/CMakeFiles/dbscout_analysis.dir/auc.cc.o.d"
  "/root/repo/src/analysis/compare.cc" "src/analysis/CMakeFiles/dbscout_analysis.dir/compare.cc.o" "gcc" "src/analysis/CMakeFiles/dbscout_analysis.dir/compare.cc.o.d"
  "/root/repo/src/analysis/kdistance.cc" "src/analysis/CMakeFiles/dbscout_analysis.dir/kdistance.cc.o" "gcc" "src/analysis/CMakeFiles/dbscout_analysis.dir/kdistance.cc.o.d"
  "/root/repo/src/analysis/metrics.cc" "src/analysis/CMakeFiles/dbscout_analysis.dir/metrics.cc.o" "gcc" "src/analysis/CMakeFiles/dbscout_analysis.dir/metrics.cc.o.d"
  "/root/repo/src/analysis/table.cc" "src/analysis/CMakeFiles/dbscout_analysis.dir/table.cc.o" "gcc" "src/analysis/CMakeFiles/dbscout_analysis.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbscout_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbscout_data.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/dbscout_index.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dbscout_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dbscout_analysis.dir/auc.cc.o"
  "CMakeFiles/dbscout_analysis.dir/auc.cc.o.d"
  "CMakeFiles/dbscout_analysis.dir/compare.cc.o"
  "CMakeFiles/dbscout_analysis.dir/compare.cc.o.d"
  "CMakeFiles/dbscout_analysis.dir/kdistance.cc.o"
  "CMakeFiles/dbscout_analysis.dir/kdistance.cc.o.d"
  "CMakeFiles/dbscout_analysis.dir/metrics.cc.o"
  "CMakeFiles/dbscout_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/dbscout_analysis.dir/table.cc.o"
  "CMakeFiles/dbscout_analysis.dir/table.cc.o.d"
  "libdbscout_analysis.a"
  "libdbscout_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbscout_analysis.a"
)

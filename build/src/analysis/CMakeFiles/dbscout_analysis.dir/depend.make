# Empty dependencies file for dbscout_analysis.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dbscan.cc" "src/baselines/CMakeFiles/dbscout_baselines.dir/dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/dbscout_baselines.dir/dbscan.cc.o.d"
  "/root/repo/src/baselines/ddlof.cc" "src/baselines/CMakeFiles/dbscout_baselines.dir/ddlof.cc.o" "gcc" "src/baselines/CMakeFiles/dbscout_baselines.dir/ddlof.cc.o.d"
  "/root/repo/src/baselines/isolation_forest.cc" "src/baselines/CMakeFiles/dbscout_baselines.dir/isolation_forest.cc.o" "gcc" "src/baselines/CMakeFiles/dbscout_baselines.dir/isolation_forest.cc.o.d"
  "/root/repo/src/baselines/knorr.cc" "src/baselines/CMakeFiles/dbscout_baselines.dir/knorr.cc.o" "gcc" "src/baselines/CMakeFiles/dbscout_baselines.dir/knorr.cc.o.d"
  "/root/repo/src/baselines/lof.cc" "src/baselines/CMakeFiles/dbscout_baselines.dir/lof.cc.o" "gcc" "src/baselines/CMakeFiles/dbscout_baselines.dir/lof.cc.o.d"
  "/root/repo/src/baselines/ocsvm.cc" "src/baselines/CMakeFiles/dbscout_baselines.dir/ocsvm.cc.o" "gcc" "src/baselines/CMakeFiles/dbscout_baselines.dir/ocsvm.cc.o.d"
  "/root/repo/src/baselines/rp_dbscan.cc" "src/baselines/CMakeFiles/dbscout_baselines.dir/rp_dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/dbscout_baselines.dir/rp_dbscan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbscout_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbscout_data.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/dbscout_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/dbscout_index.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dbscout_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dbscout_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

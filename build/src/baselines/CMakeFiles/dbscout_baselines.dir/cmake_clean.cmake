file(REMOVE_RECURSE
  "CMakeFiles/dbscout_baselines.dir/dbscan.cc.o"
  "CMakeFiles/dbscout_baselines.dir/dbscan.cc.o.d"
  "CMakeFiles/dbscout_baselines.dir/ddlof.cc.o"
  "CMakeFiles/dbscout_baselines.dir/ddlof.cc.o.d"
  "CMakeFiles/dbscout_baselines.dir/isolation_forest.cc.o"
  "CMakeFiles/dbscout_baselines.dir/isolation_forest.cc.o.d"
  "CMakeFiles/dbscout_baselines.dir/knorr.cc.o"
  "CMakeFiles/dbscout_baselines.dir/knorr.cc.o.d"
  "CMakeFiles/dbscout_baselines.dir/lof.cc.o"
  "CMakeFiles/dbscout_baselines.dir/lof.cc.o.d"
  "CMakeFiles/dbscout_baselines.dir/ocsvm.cc.o"
  "CMakeFiles/dbscout_baselines.dir/ocsvm.cc.o.d"
  "CMakeFiles/dbscout_baselines.dir/rp_dbscan.cc.o"
  "CMakeFiles/dbscout_baselines.dir/rp_dbscan.cc.o.d"
  "libdbscout_baselines.a"
  "libdbscout_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

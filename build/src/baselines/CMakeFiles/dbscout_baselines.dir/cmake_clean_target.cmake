file(REMOVE_RECURSE
  "libdbscout_baselines.a"
)

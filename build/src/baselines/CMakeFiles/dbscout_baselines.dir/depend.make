# Empty dependencies file for dbscout_baselines.
# This may be replaced when dependencies are built.

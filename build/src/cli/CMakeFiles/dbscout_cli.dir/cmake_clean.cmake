file(REMOVE_RECURSE
  "CMakeFiles/dbscout_cli.dir/cli.cc.o"
  "CMakeFiles/dbscout_cli.dir/cli.cc.o.d"
  "CMakeFiles/dbscout_cli.dir/flags.cc.o"
  "CMakeFiles/dbscout_cli.dir/flags.cc.o.d"
  "libdbscout_cli.a"
  "libdbscout_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

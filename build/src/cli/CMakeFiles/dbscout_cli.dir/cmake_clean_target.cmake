file(REMOVE_RECURSE
  "libdbscout_cli.a"
)

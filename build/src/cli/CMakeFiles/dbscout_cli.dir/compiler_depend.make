# Empty compiler generated dependencies file for dbscout_cli.
# This may be replaced when dependencies are built.

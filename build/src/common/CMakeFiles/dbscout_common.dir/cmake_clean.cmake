file(REMOVE_RECURSE
  "CMakeFiles/dbscout_common.dir/csv.cc.o"
  "CMakeFiles/dbscout_common.dir/csv.cc.o.d"
  "CMakeFiles/dbscout_common.dir/logging.cc.o"
  "CMakeFiles/dbscout_common.dir/logging.cc.o.d"
  "CMakeFiles/dbscout_common.dir/rng.cc.o"
  "CMakeFiles/dbscout_common.dir/rng.cc.o.d"
  "CMakeFiles/dbscout_common.dir/status.cc.o"
  "CMakeFiles/dbscout_common.dir/status.cc.o.d"
  "CMakeFiles/dbscout_common.dir/str_util.cc.o"
  "CMakeFiles/dbscout_common.dir/str_util.cc.o.d"
  "CMakeFiles/dbscout_common.dir/thread_pool.cc.o"
  "CMakeFiles/dbscout_common.dir/thread_pool.cc.o.d"
  "libdbscout_common.a"
  "libdbscout_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

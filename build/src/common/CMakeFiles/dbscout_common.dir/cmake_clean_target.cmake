file(REMOVE_RECURSE
  "libdbscout_common.a"
)

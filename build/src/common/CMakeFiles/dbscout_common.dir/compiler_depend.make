# Empty compiler generated dependencies file for dbscout_common.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dbscout.cc" "src/core/CMakeFiles/dbscout_core.dir/dbscout.cc.o" "gcc" "src/core/CMakeFiles/dbscout_core.dir/dbscout.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/dbscout_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/dbscout_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/dbscout_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/dbscout_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/sequential.cc" "src/core/CMakeFiles/dbscout_core.dir/sequential.cc.o" "gcc" "src/core/CMakeFiles/dbscout_core.dir/sequential.cc.o.d"
  "/root/repo/src/core/shared.cc" "src/core/CMakeFiles/dbscout_core.dir/shared.cc.o" "gcc" "src/core/CMakeFiles/dbscout_core.dir/shared.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbscout_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dbscout_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbscout_data.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/dbscout_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dbscout_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

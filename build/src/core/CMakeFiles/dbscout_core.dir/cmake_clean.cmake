file(REMOVE_RECURSE
  "CMakeFiles/dbscout_core.dir/dbscout.cc.o"
  "CMakeFiles/dbscout_core.dir/dbscout.cc.o.d"
  "CMakeFiles/dbscout_core.dir/incremental.cc.o"
  "CMakeFiles/dbscout_core.dir/incremental.cc.o.d"
  "CMakeFiles/dbscout_core.dir/parallel.cc.o"
  "CMakeFiles/dbscout_core.dir/parallel.cc.o.d"
  "CMakeFiles/dbscout_core.dir/sequential.cc.o"
  "CMakeFiles/dbscout_core.dir/sequential.cc.o.d"
  "CMakeFiles/dbscout_core.dir/shared.cc.o"
  "CMakeFiles/dbscout_core.dir/shared.cc.o.d"
  "libdbscout_core.a"
  "libdbscout_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbscout_core.a"
)

# Empty dependencies file for dbscout_core.
# This may be replaced when dependencies are built.

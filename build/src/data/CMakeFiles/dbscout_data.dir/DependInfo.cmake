
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/dbscout_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/dbscout_data.dir/io.cc.o.d"
  "/root/repo/src/data/point_set.cc" "src/data/CMakeFiles/dbscout_data.dir/point_set.cc.o" "gcc" "src/data/CMakeFiles/dbscout_data.dir/point_set.cc.o.d"
  "/root/repo/src/data/point_stream.cc" "src/data/CMakeFiles/dbscout_data.dir/point_stream.cc.o" "gcc" "src/data/CMakeFiles/dbscout_data.dir/point_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbscout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

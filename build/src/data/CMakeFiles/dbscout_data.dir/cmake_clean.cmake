file(REMOVE_RECURSE
  "CMakeFiles/dbscout_data.dir/io.cc.o"
  "CMakeFiles/dbscout_data.dir/io.cc.o.d"
  "CMakeFiles/dbscout_data.dir/point_set.cc.o"
  "CMakeFiles/dbscout_data.dir/point_set.cc.o.d"
  "CMakeFiles/dbscout_data.dir/point_stream.cc.o"
  "CMakeFiles/dbscout_data.dir/point_stream.cc.o.d"
  "libdbscout_data.a"
  "libdbscout_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbscout_data.a"
)

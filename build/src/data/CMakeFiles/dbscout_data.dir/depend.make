# Empty dependencies file for dbscout_data.
# This may be replaced when dependencies are built.

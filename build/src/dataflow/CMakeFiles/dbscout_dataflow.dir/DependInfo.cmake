
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/context.cc" "src/dataflow/CMakeFiles/dbscout_dataflow.dir/context.cc.o" "gcc" "src/dataflow/CMakeFiles/dbscout_dataflow.dir/context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbscout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

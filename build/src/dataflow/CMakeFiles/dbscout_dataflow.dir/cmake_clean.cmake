file(REMOVE_RECURSE
  "CMakeFiles/dbscout_dataflow.dir/context.cc.o"
  "CMakeFiles/dbscout_dataflow.dir/context.cc.o.d"
  "libdbscout_dataflow.a"
  "libdbscout_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbscout_dataflow.a"
)

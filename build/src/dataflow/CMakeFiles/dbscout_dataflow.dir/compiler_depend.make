# Empty compiler generated dependencies file for dbscout_dataflow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbscout_datasets.dir/geo.cc.o"
  "CMakeFiles/dbscout_datasets.dir/geo.cc.o.d"
  "CMakeFiles/dbscout_datasets.dir/shapes.cc.o"
  "CMakeFiles/dbscout_datasets.dir/shapes.cc.o.d"
  "CMakeFiles/dbscout_datasets.dir/synthetic.cc.o"
  "CMakeFiles/dbscout_datasets.dir/synthetic.cc.o.d"
  "libdbscout_datasets.a"
  "libdbscout_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbscout_datasets.a"
)

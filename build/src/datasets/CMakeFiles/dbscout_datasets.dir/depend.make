# Empty dependencies file for dbscout_datasets.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbscout_external.dir/external_detector.cc.o"
  "CMakeFiles/dbscout_external.dir/external_detector.cc.o.d"
  "CMakeFiles/dbscout_external.dir/kdistance.cc.o"
  "CMakeFiles/dbscout_external.dir/kdistance.cc.o.d"
  "libdbscout_external.a"
  "libdbscout_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

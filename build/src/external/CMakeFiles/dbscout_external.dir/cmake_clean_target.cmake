file(REMOVE_RECURSE
  "libdbscout_external.a"
)

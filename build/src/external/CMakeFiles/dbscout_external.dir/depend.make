# Empty dependencies file for dbscout_external.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/external
# Build directory: /root/repo/build/src/external
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/cell_map.cc" "src/grid/CMakeFiles/dbscout_grid.dir/cell_map.cc.o" "gcc" "src/grid/CMakeFiles/dbscout_grid.dir/cell_map.cc.o.d"
  "/root/repo/src/grid/grid.cc" "src/grid/CMakeFiles/dbscout_grid.dir/grid.cc.o" "gcc" "src/grid/CMakeFiles/dbscout_grid.dir/grid.cc.o.d"
  "/root/repo/src/grid/neighborhood.cc" "src/grid/CMakeFiles/dbscout_grid.dir/neighborhood.cc.o" "gcc" "src/grid/CMakeFiles/dbscout_grid.dir/neighborhood.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbscout_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbscout_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dbscout_grid.dir/cell_map.cc.o"
  "CMakeFiles/dbscout_grid.dir/cell_map.cc.o.d"
  "CMakeFiles/dbscout_grid.dir/grid.cc.o"
  "CMakeFiles/dbscout_grid.dir/grid.cc.o.d"
  "CMakeFiles/dbscout_grid.dir/neighborhood.cc.o"
  "CMakeFiles/dbscout_grid.dir/neighborhood.cc.o.d"
  "libdbscout_grid.a"
  "libdbscout_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

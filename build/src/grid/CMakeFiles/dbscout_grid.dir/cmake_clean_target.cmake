file(REMOVE_RECURSE
  "libdbscout_grid.a"
)

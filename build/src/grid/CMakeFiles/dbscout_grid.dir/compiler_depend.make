# Empty compiler generated dependencies file for dbscout_grid.
# This may be replaced when dependencies are built.

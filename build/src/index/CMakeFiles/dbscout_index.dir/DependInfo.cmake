
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/kdtree.cc" "src/index/CMakeFiles/dbscout_index.dir/kdtree.cc.o" "gcc" "src/index/CMakeFiles/dbscout_index.dir/kdtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbscout_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dbscout_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dbscout_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

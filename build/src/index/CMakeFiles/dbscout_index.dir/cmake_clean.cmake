file(REMOVE_RECURSE
  "CMakeFiles/dbscout_index.dir/kdtree.cc.o"
  "CMakeFiles/dbscout_index.dir/kdtree.cc.o.d"
  "libdbscout_index.a"
  "libdbscout_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbscout_index.a"
)

# Empty dependencies file for dbscout_index.
# This may be replaced when dependencies are built.

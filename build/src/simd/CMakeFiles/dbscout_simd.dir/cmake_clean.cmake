file(REMOVE_RECURSE
  "CMakeFiles/dbscout_simd.dir/distance_kernel.cc.o"
  "CMakeFiles/dbscout_simd.dir/distance_kernel.cc.o.d"
  "libdbscout_simd.a"
  "libdbscout_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbscout_simd.a"
)

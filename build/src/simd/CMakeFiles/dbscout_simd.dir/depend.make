# Empty dependencies file for dbscout_simd.
# This may be replaced when dependencies are built.

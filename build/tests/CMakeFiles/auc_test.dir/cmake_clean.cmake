file(REMOVE_RECURSE
  "CMakeFiles/auc_test.dir/analysis/auc_test.cc.o"
  "CMakeFiles/auc_test.dir/analysis/auc_test.cc.o.d"
  "auc_test"
  "auc_test.pdb"
  "auc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

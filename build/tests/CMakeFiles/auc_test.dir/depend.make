# Empty dependencies file for auc_test.
# This may be replaced when dependencies are built.

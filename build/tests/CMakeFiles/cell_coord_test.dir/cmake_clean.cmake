file(REMOVE_RECURSE
  "CMakeFiles/cell_coord_test.dir/grid/cell_coord_test.cc.o"
  "CMakeFiles/cell_coord_test.dir/grid/cell_coord_test.cc.o.d"
  "cell_coord_test"
  "cell_coord_test.pdb"
  "cell_coord_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_coord_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cell_coord_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cell_map_test.dir/grid/cell_map_test.cc.o"
  "CMakeFiles/cell_map_test.dir/grid/cell_map_test.cc.o.d"
  "cell_map_test"
  "cell_map_test.pdb"
  "cell_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/compare_test.dir/analysis/compare_test.cc.o"
  "CMakeFiles/compare_test.dir/analysis/compare_test.cc.o.d"
  "compare_test"
  "compare_test.pdb"
  "compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/context_test.dir/dataflow/context_test.cc.o"
  "CMakeFiles/context_test.dir/dataflow/context_test.cc.o.d"
  "context_test"
  "context_test.pdb"
  "context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

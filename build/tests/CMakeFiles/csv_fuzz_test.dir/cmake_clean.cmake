file(REMOVE_RECURSE
  "CMakeFiles/csv_fuzz_test.dir/common/csv_fuzz_test.cc.o"
  "CMakeFiles/csv_fuzz_test.dir/common/csv_fuzz_test.cc.o.d"
  "csv_fuzz_test"
  "csv_fuzz_test.pdb"
  "csv_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

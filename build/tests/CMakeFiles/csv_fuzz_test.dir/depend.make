# Empty dependencies file for csv_fuzz_test.
# This may be replaced when dependencies are built.

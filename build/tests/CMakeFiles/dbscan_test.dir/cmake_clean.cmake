file(REMOVE_RECURSE
  "CMakeFiles/dbscan_test.dir/baselines/dbscan_test.cc.o"
  "CMakeFiles/dbscan_test.dir/baselines/dbscan_test.cc.o.d"
  "dbscan_test"
  "dbscan_test.pdb"
  "dbscan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

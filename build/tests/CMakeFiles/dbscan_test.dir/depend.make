# Empty dependencies file for dbscan_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dbscout_testutil.dir/testutil.cc.o"
  "CMakeFiles/dbscout_testutil.dir/testutil.cc.o.d"
  "libdbscout_testutil.a"
  "libdbscout_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdbscout_testutil.a"
)

# Empty compiler generated dependencies file for dbscout_testutil.
# This may be replaced when dependencies are built.

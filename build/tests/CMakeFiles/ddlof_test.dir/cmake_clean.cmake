file(REMOVE_RECURSE
  "CMakeFiles/ddlof_test.dir/baselines/ddlof_test.cc.o"
  "CMakeFiles/ddlof_test.dir/baselines/ddlof_test.cc.o.d"
  "ddlof_test"
  "ddlof_test.pdb"
  "ddlof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddlof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

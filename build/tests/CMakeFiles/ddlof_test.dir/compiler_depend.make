# Empty compiler generated dependencies file for ddlof_test.
# This may be replaced when dependencies are built.

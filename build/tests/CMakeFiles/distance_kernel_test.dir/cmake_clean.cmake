file(REMOVE_RECURSE
  "CMakeFiles/distance_kernel_test.dir/simd/distance_kernel_test.cc.o"
  "CMakeFiles/distance_kernel_test.dir/simd/distance_kernel_test.cc.o.d"
  "distance_kernel_test"
  "distance_kernel_test.pdb"
  "distance_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for distance_kernel_test.
# This may be replaced when dependencies are built.

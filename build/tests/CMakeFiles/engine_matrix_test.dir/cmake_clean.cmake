file(REMOVE_RECURSE
  "CMakeFiles/engine_matrix_test.dir/core/engine_matrix_test.cc.o"
  "CMakeFiles/engine_matrix_test.dir/core/engine_matrix_test.cc.o.d"
  "engine_matrix_test"
  "engine_matrix_test.pdb"
  "engine_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for engine_matrix_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/external_detector_test.dir/external/external_detector_test.cc.o"
  "CMakeFiles/external_detector_test.dir/external/external_detector_test.cc.o.d"
  "external_detector_test"
  "external_detector_test.pdb"
  "external_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

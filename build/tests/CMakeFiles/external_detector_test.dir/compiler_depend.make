# Empty compiler generated dependencies file for external_detector_test.
# This may be replaced when dependencies are built.

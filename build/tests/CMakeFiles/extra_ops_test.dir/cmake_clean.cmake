file(REMOVE_RECURSE
  "CMakeFiles/extra_ops_test.dir/dataflow/extra_ops_test.cc.o"
  "CMakeFiles/extra_ops_test.dir/dataflow/extra_ops_test.cc.o.d"
  "extra_ops_test"
  "extra_ops_test.pdb"
  "extra_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

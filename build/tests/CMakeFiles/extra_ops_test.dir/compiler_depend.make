# Empty compiler generated dependencies file for extra_ops_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/grid_property_test.dir/grid/grid_property_test.cc.o"
  "CMakeFiles/grid_property_test.dir/grid/grid_property_test.cc.o.d"
  "grid_property_test"
  "grid_property_test.pdb"
  "grid_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for grid_property_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/grid_test.dir/grid/grid_test.cc.o"
  "CMakeFiles/grid_test.dir/grid/grid_test.cc.o.d"
  "grid_test"
  "grid_test.pdb"
  "grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

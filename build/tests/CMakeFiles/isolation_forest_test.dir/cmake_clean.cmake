file(REMOVE_RECURSE
  "CMakeFiles/isolation_forest_test.dir/baselines/isolation_forest_test.cc.o"
  "CMakeFiles/isolation_forest_test.dir/baselines/isolation_forest_test.cc.o.d"
  "isolation_forest_test"
  "isolation_forest_test.pdb"
  "isolation_forest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

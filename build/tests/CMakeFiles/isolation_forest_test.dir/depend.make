# Empty dependencies file for isolation_forest_test.
# This may be replaced when dependencies are built.

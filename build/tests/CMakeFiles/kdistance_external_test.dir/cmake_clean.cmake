file(REMOVE_RECURSE
  "CMakeFiles/kdistance_external_test.dir/external/kdistance_external_test.cc.o"
  "CMakeFiles/kdistance_external_test.dir/external/kdistance_external_test.cc.o.d"
  "kdistance_external_test"
  "kdistance_external_test.pdb"
  "kdistance_external_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdistance_external_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

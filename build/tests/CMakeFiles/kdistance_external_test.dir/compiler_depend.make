# Empty compiler generated dependencies file for kdistance_external_test.
# This may be replaced when dependencies are built.

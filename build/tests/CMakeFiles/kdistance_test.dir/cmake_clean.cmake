file(REMOVE_RECURSE
  "CMakeFiles/kdistance_test.dir/analysis/kdistance_test.cc.o"
  "CMakeFiles/kdistance_test.dir/analysis/kdistance_test.cc.o.d"
  "kdistance_test"
  "kdistance_test.pdb"
  "kdistance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdistance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for kdistance_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kdtree_property_test.dir/index/kdtree_property_test.cc.o"
  "CMakeFiles/kdtree_property_test.dir/index/kdtree_property_test.cc.o.d"
  "kdtree_property_test"
  "kdtree_property_test.pdb"
  "kdtree_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdtree_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

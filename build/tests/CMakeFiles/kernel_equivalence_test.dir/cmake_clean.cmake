file(REMOVE_RECURSE
  "CMakeFiles/kernel_equivalence_test.dir/core/kernel_equivalence_test.cc.o"
  "CMakeFiles/kernel_equivalence_test.dir/core/kernel_equivalence_test.cc.o.d"
  "kernel_equivalence_test"
  "kernel_equivalence_test.pdb"
  "kernel_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

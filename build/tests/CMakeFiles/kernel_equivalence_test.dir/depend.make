# Empty dependencies file for kernel_equivalence_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/knorr_test.dir/baselines/knorr_test.cc.o"
  "CMakeFiles/knorr_test.dir/baselines/knorr_test.cc.o.d"
  "knorr_test"
  "knorr_test.pdb"
  "knorr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knorr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

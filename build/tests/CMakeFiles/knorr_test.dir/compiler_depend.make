# Empty compiler generated dependencies file for knorr_test.
# This may be replaced when dependencies are built.

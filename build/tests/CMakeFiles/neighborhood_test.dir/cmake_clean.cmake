file(REMOVE_RECURSE
  "CMakeFiles/neighborhood_test.dir/grid/neighborhood_test.cc.o"
  "CMakeFiles/neighborhood_test.dir/grid/neighborhood_test.cc.o.d"
  "neighborhood_test"
  "neighborhood_test.pdb"
  "neighborhood_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighborhood_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for neighborhood_test.
# This may be replaced when dependencies are built.

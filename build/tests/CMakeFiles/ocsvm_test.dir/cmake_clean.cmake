file(REMOVE_RECURSE
  "CMakeFiles/ocsvm_test.dir/baselines/ocsvm_test.cc.o"
  "CMakeFiles/ocsvm_test.dir/baselines/ocsvm_test.cc.o.d"
  "ocsvm_test"
  "ocsvm_test.pdb"
  "ocsvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

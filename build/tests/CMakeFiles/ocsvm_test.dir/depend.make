# Empty dependencies file for ocsvm_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pair_ops_test.dir/dataflow/pair_ops_test.cc.o"
  "CMakeFiles/pair_ops_test.dir/dataflow/pair_ops_test.cc.o.d"
  "pair_ops_test"
  "pair_ops_test.pdb"
  "pair_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

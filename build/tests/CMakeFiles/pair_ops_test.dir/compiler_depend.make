# Empty compiler generated dependencies file for pair_ops_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/point_set_test.dir/data/point_set_test.cc.o"
  "CMakeFiles/point_set_test.dir/data/point_set_test.cc.o.d"
  "point_set_test"
  "point_set_test.pdb"
  "point_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

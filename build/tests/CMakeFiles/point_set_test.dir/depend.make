# Empty dependencies file for point_set_test.
# This may be replaced when dependencies are built.

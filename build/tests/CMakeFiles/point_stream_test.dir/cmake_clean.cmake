file(REMOVE_RECURSE
  "CMakeFiles/point_stream_test.dir/data/point_stream_test.cc.o"
  "CMakeFiles/point_stream_test.dir/data/point_stream_test.cc.o.d"
  "point_stream_test"
  "point_stream_test.pdb"
  "point_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for point_stream_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rp_dbscan_test.dir/baselines/rp_dbscan_test.cc.o"
  "CMakeFiles/rp_dbscan_test.dir/baselines/rp_dbscan_test.cc.o.d"
  "rp_dbscan_test"
  "rp_dbscan_test.pdb"
  "rp_dbscan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

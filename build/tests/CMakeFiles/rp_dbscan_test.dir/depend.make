# Empty dependencies file for rp_dbscan_test.
# This may be replaced when dependencies are built.

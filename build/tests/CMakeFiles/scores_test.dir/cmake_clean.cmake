file(REMOVE_RECURSE
  "CMakeFiles/scores_test.dir/core/scores_test.cc.o"
  "CMakeFiles/scores_test.dir/core/scores_test.cc.o.d"
  "scores_test"
  "scores_test.pdb"
  "scores_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scores_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for scores_test.
# This may be replaced when dependencies are built.

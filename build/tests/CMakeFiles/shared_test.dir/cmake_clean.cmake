file(REMOVE_RECURSE
  "CMakeFiles/shared_test.dir/core/shared_test.cc.o"
  "CMakeFiles/shared_test.dir/core/shared_test.cc.o.d"
  "shared_test"
  "shared_test.pdb"
  "shared_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

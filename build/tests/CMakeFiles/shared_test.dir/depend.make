# Empty dependencies file for shared_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/str_util_test.dir/common/str_util_test.cc.o"
  "CMakeFiles/str_util_test.dir/common/str_util_test.cc.o.d"
  "str_util_test"
  "str_util_test.pdb"
  "str_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/str_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

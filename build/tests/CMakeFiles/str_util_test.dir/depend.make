# Empty dependencies file for str_util_test.
# This may be replaced when dependencies are built.

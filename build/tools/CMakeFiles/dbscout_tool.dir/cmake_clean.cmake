file(REMOVE_RECURSE
  "CMakeFiles/dbscout_tool.dir/dbscout_main.cc.o"
  "CMakeFiles/dbscout_tool.dir/dbscout_main.cc.o.d"
  "dbscout"
  "dbscout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscout_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

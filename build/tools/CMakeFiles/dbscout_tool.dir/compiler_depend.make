# Empty compiler generated dependencies file for dbscout_tool.
# This may be replaced when dependencies are built.

# Sanitizer build modes for dbscout.
#
# Usage:
#   cmake -B build-asan -S . -DDBSCOUT_SANITIZE=address,undefined
#   cmake -B build-tsan -S . -DDBSCOUT_SANITIZE=thread
#
# DBSCOUT_SANITIZE is a comma- or semicolon-separated subset of
# {address, undefined, thread}. `thread` cannot be combined with `address`
# (the runtimes are mutually exclusive). The module:
#   * appends the -fsanitize compile and link flags globally,
#   * forces frame pointers and debug info so reports have usable stacks,
#   * exports DBSCOUT_SANITIZER_TEST_ENV, a list of VAR=VALUE entries that
#     tests/CMakeLists.txt attaches to every registered test so the
#     suppression files under tools/sanitizers/ are always in effect and
#     findings abort the test (halt_on_error) instead of scrolling past.

set(DBSCOUT_SANITIZE "" CACHE STRING
  "Sanitizer list: comma/semicolon-separated subset of address;undefined;thread")

set(DBSCOUT_SANITIZER_TEST_ENV "")
set(DBSCOUT_SANITIZERS "")

if(NOT DBSCOUT_SANITIZE STREQUAL "")
  string(REPLACE "," ";" DBSCOUT_SANITIZERS "${DBSCOUT_SANITIZE}")
  string(TOLOWER "${DBSCOUT_SANITIZERS}" DBSCOUT_SANITIZERS)
  list(REMOVE_DUPLICATES DBSCOUT_SANITIZERS)

  foreach(san IN LISTS DBSCOUT_SANITIZERS)
    if(NOT san MATCHES "^(address|undefined|thread)$")
      message(FATAL_ERROR
        "DBSCOUT_SANITIZE: unknown sanitizer '${san}' "
        "(expected address, undefined, or thread)")
    endif()
  endforeach()

  if("thread" IN_LIST DBSCOUT_SANITIZERS AND
     "address" IN_LIST DBSCOUT_SANITIZERS)
    message(FATAL_ERROR
      "DBSCOUT_SANITIZE: 'thread' and 'address' cannot be combined; "
      "run two separate builds")
  endif()

  set(_supp_dir "${CMAKE_SOURCE_DIR}/tools/sanitizers")

  # Usable stack traces in every report.
  add_compile_options(-g -fno-omit-frame-pointer)

  if("address" IN_LIST DBSCOUT_SANITIZERS)
    add_compile_options(-fsanitize=address)
    add_link_options(-fsanitize=address)
    list(APPEND DBSCOUT_SANITIZER_TEST_ENV
      "ASAN_OPTIONS=detect_stack_use_after_return=1:strict_string_checks=1:suppressions=${_supp_dir}/asan.supp"
      "LSAN_OPTIONS=suppressions=${_supp_dir}/lsan.supp")
  endif()

  if("undefined" IN_LIST DBSCOUT_SANITIZERS)
    # -fno-sanitize-recover turns every UB finding into a hard failure so
    # ctest cannot pass over a diagnosed violation.
    add_compile_options(-fsanitize=undefined -fno-sanitize-recover=all)
    add_link_options(-fsanitize=undefined)
    list(APPEND DBSCOUT_SANITIZER_TEST_ENV
      "UBSAN_OPTIONS=print_stacktrace=1:suppressions=${_supp_dir}/ubsan.supp")
  endif()

  if("thread" IN_LIST DBSCOUT_SANITIZERS)
    add_compile_options(-fsanitize=thread)
    add_link_options(-fsanitize=thread)
    list(APPEND DBSCOUT_SANITIZER_TEST_ENV
      "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1:suppressions=${_supp_dir}/tsan.supp")
  endif()

  message(STATUS "dbscout: sanitizers enabled: ${DBSCOUT_SANITIZERS}")
endif()

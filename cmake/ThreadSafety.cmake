# Clang thread-safety-analysis build mode for dbscout.
#
# Usage:
#   CC=clang CXX=clang++ cmake -B build-tsa -S . -DDBSCOUT_THREAD_SAFETY=ON
#   cmake --build build-tsa
#
# Turns on `-Wthread-safety -Werror=thread-safety` for the targets whose
# locking is expressed through src/common/thread_annotations.h (common,
# grid, core, dataflow, obs, service, storage — everything that owns a
# Mutex).
# Any access to a DBSCOUT_GUARDED_BY member outside its mutex, any missing
# DBSCOUT_REQUIRES on a helper called under a lock, any lock leak on an
# early return then fails the build instead of a nightly TSan run.
#
# The analysis only exists in clang; requesting the mode under another
# compiler is a configure-time error (a silent no-op would report green
# without checking anything). Targets opt in via
# dbscout_enable_thread_safety(<target>), a no-op when the mode is off.

option(DBSCOUT_THREAD_SAFETY
  "Enable clang -Wthread-safety (as errors) on the annotated targets" OFF)

if(DBSCOUT_THREAD_SAFETY AND NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR
    "DBSCOUT_THREAD_SAFETY=ON requires clang (got "
    "${CMAKE_CXX_COMPILER_ID}); configure with CC=clang CXX=clang++")
endif()

function(dbscout_enable_thread_safety target)
  if(DBSCOUT_THREAD_SAFETY)
    target_compile_options(${target} PRIVATE
      -Wthread-safety -Werror=thread-safety)
  endif()
endfunction()

if(DBSCOUT_THREAD_SAFETY)
  message(STATUS "dbscout: clang thread-safety analysis enabled (-Werror)")
endif()

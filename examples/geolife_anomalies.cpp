// Geospatial anomaly detection at scale: run the parallel (dataflow)
// DBSCOUT engine on a Geolife-like skewed GPS workload, compare the three
// join strategies of SS III-G, and inspect per-phase and shuffle metrics —
// the single-machine analogue of the paper's Spark deployment.
//
//   ./build/examples/geolife_anomalies [num_points]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "core/dbscout.h"
#include "datasets/geo.h"

int main(int argc, char** argv) {
  using namespace dbscout;

  size_t n = 100000;
  if (argc > 1) {
    const Result<uint64_t> parsed = ParseUint64(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "usage: %s [num_points]\n", argv[0]);
      return 1;
    }
    n = static_cast<size_t>(*parsed);
  }

  std::printf("generating Geolife-like GPS workload: %s points (3D)...\n",
              HumanCount(static_cast<double>(n)).c_str());
  const PointSet points = datasets::GeolifeLike(n, /*seed=*/2026);

  dataflow::ExecutionContext ctx(/*num_threads=*/0,
                                 /*default_partitions=*/32);
  core::Params params;
  params.eps = 300.0;   // trajectory-scale density at this dataset size
  params.min_pts = 100; // the setting of the paper's efficiency study
  params.engine = core::Engine::kParallel;

  // The plain textbook join (JoinStrategy::kPlain) is deliberately omitted
  // here — it shuffles an order of magnitude more records (see
  // bench_ablation_joins for the three-way comparison).
  for (const core::JoinStrategy join :
       {core::JoinStrategy::kGrouped, core::JoinStrategy::kBroadcast}) {
    params.join = join;
    ctx.ResetMetrics();
    const Result<core::Detection> result =
        core::DetectParallel(points, params, &ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "%s strategy failed: %s\n",
                   core::JoinStrategyName(join),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\n[%s join] %.2fs total, %zu outliers, %llu records shuffled\n",
        core::JoinStrategyName(join), result->total_seconds,
        result->num_outliers(),
        static_cast<unsigned long long>(result->shuffled_records));
    for (const auto& phase : result->phases) {
      std::printf("  %-15s %8.1f ms  %12llu dist-comps\n",
                  phase.name.c_str(), phase.seconds * 1e3,
                  static_cast<unsigned long long>(
                      phase.distance_computations));
    }
  }

  // The dataflow engine records one row per transformation, like the Spark
  // web UI the paper reads its timings from. Show the heaviest stages of
  // the last run.
  std::printf("\nheaviest dataflow stages (last run):\n");
  auto stages = ctx.stages();
  std::sort(stages.begin(), stages.end(),
            [](const auto& a, const auto& b) { return a.seconds > b.seconds; });
  for (size_t i = 0; i < stages.size() && i < 6; ++i) {
    std::printf("  %-20s %8.1f ms  in=%llu out=%llu shuffled=%llu\n",
                stages[i].name.c_str(), stages[i].seconds * 1e3,
                static_cast<unsigned long long>(stages[i].records_in),
                static_cast<unsigned long long>(stages[i].records_out),
                static_cast<unsigned long long>(stages[i].shuffled_records));
  }
  return 0;
}

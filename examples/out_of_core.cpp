// Out-of-core detection: find the outliers of a binary point file that may
// be far larger than memory, and verify the result equals the in-memory
// engine's. Demonstrates the two-pass ghost-zone execution and its memory
// knob.
//
//   ./build/examples/out_of_core [num_points]
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "core/dbscout.h"
#include "data/io.h"
#include "datasets/geo.h"
#include "external/external_detector.h"

int main(int argc, char** argv) {
  using namespace dbscout;

  size_t n = 300000;
  if (argc > 1) {
    const Result<uint64_t> parsed = ParseUint64(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "usage: %s [num_points]\n", argv[0]);
      return 1;
    }
    n = static_cast<size_t>(*parsed);
  }

  // Write a GPS-like workload to disk; in production this file would come
  // from your ingestion pipeline (format: data/io.h, "DBSC" binary).
  const std::string path = "/tmp/out_of_core_points.dbsc";
  std::printf("writing %s points to %s...\n",
              HumanCount(static_cast<double>(n)).c_str(), path.c_str());
  const PointSet points = datasets::OsmLike(n, 7);
  if (Status s = SavePointsBinary(path, points); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  external::ExternalParams params;
  params.eps = 5e5;
  params.min_pts = 100;
  // Pretend we can only afford ~1/8 of the dataset in memory at once.
  params.target_stripe_points = n / 8;
  params.tmp_dir = "/tmp";

  const Result<external::ExternalDetection> result =
      external::DetectExternal(path, params);
  if (!result.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "out-of-core: %zu outliers of %s points in %.2fs\n"
      "  stripes=%zu  spilled=%s records (%.2fx the input)\n"
      "  largest working set: %s points (budget was %s)\n",
      result->num_outliers(), HumanCount(static_cast<double>(n)).c_str(),
      result->seconds, result->stripes,
      HumanCount(static_cast<double>(result->spilled_records)).c_str(),
      static_cast<double>(result->spilled_records) / static_cast<double>(n),
      HumanCount(static_cast<double>(result->max_stripe_points)).c_str(),
      HumanCount(static_cast<double>(params.target_stripe_points)).c_str());

  // Cross-check against the in-memory engine (possible here because the
  // demo dataset does fit in memory).
  core::Params in_memory;
  in_memory.eps = params.eps;
  in_memory.min_pts = params.min_pts;
  const Result<core::Detection> reference = core::Detect(points, in_memory);
  if (reference.ok()) {
    std::printf("in-memory check: %zu outliers in %.2fs -> %s\n",
                reference->num_outliers(), reference->total_seconds,
                reference->outliers == result->outliers ? "identical"
                                                        : "MISMATCH");
  }
  std::remove(path.c_str());
  return 0;
}

// Parameter selection the way the paper does it (SS IV-C1): fix minPts,
// plot the distance to the minPts-th neighbor sorted descending, and take
// eps from the uppermost part of the elbow. This example renders the curve
// as ASCII, runs DBSCOUT at the suggested eps, and scores the result
// against ground truth — no contamination estimate required, unlike LOF/IF.
//
//   ./build/examples/parameter_selection
#include <algorithm>
#include <cstdio>

#include "analysis/kdistance.h"
#include "analysis/metrics.h"
#include "core/dbscout.h"
#include "datasets/synthetic.h"

int main() {
  using namespace dbscout;

  const datasets::LabeledDataset data =
      datasets::Moons(/*n=*/6000, /*contamination=*/0.02, /*seed=*/9);
  std::printf("dataset: %s, %zu points, %.1f%% true outliers\n",
              data.name.c_str(), data.points.size(),
              100.0 * data.Contamination());

  const int min_pts = 5;
  const Result<analysis::KDistanceCurve> curve =
      analysis::ComputeKDistance(data.points, min_pts);
  if (!curve.ok()) {
    std::fprintf(stderr, "k-distance failed: %s\n",
                 curve.status().ToString().c_str());
    return 1;
  }

  // ASCII rendering of the sorted k-distance curve (log-spaced samples so
  // the elbow region is visible).
  std::printf("\n%d-distance curve (sorted descending):\n", min_pts);
  const auto& d = curve->distances;
  const double top = d.front();
  size_t index = 0;
  while (index < d.size()) {
    const int bar = top > 0 ? static_cast<int>(60.0 * d[index] / top) : 0;
    std::printf("  %7zu | %-60s %.4f\n", index,
                std::string(static_cast<size_t>(bar), '#').c_str(), d[index]);
    index = index == 0 ? 1 : index * 4;
  }

  const double eps = curve->SuggestEps();
  std::printf("\nsuggested eps at the elbow: %.4f\n", eps);

  core::Params params;
  params.eps = eps;
  params.min_pts = min_pts;
  const Result<core::Detection> detection = core::Detect(data.points, params);
  if (!detection.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 detection.status().ToString().c_str());
    return 1;
  }
  const analysis::BinaryConfusion confusion =
      analysis::ConfusionFromIndices(data.labels, detection->outliers);
  std::printf(
      "DBSCOUT(eps=%.4f, minPts=%d): %zu outliers | precision=%.3f "
      "recall=%.3f F1=%.3f\n",
      eps, min_pts, detection->num_outliers(), confusion.Precision(),
      confusion.Recall(), confusion.F1());

  // Sensitivity: the elbow choice is robust — nearby eps values give
  // similar quality.
  std::printf("\nsensitivity around the elbow:\n");
  for (double factor : {0.5, 0.75, 1.0, 1.5, 2.0}) {
    core::Params p = params;
    p.eps = eps * factor;
    const auto r = core::Detect(data.points, p);
    if (!r.ok()) {
      continue;
    }
    const auto c = analysis::ConfusionFromIndices(data.labels, r->outliers);
    std::printf("  eps=%.4f (%.2fx): %5zu outliers, F1=%.3f\n", p.eps,
                factor, r->num_outliers(), c.F1());
  }
  return 0;
}

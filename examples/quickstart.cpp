// Quickstart: generate a small 2D dataset with a few planted outliers, run
// DBSCOUT, and inspect the result. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "analysis/metrics.h"
#include "core/dbscout.h"
#include "datasets/synthetic.h"

int main() {
  using namespace dbscout;

  // Three Gaussian blobs (4000 points) plus 1% uniform outliers, with
  // ground-truth labels — the "Blobs" dataset of the paper's Table III.
  const datasets::LabeledDataset data = datasets::Blobs(
      /*n=*/4000, /*contamination=*/0.01, /*seed=*/42);
  std::printf("dataset: %zu points, %zu true outliers\n", data.points.size(),
              data.NumOutliers());

  // Detect density outliers: points not within eps of any core point
  // (exactly DBSCAN's noise, found in linear time without clustering).
  core::Params params;
  params.eps = 0.55;
  params.min_pts = 5;
  const Result<core::Detection> result = core::Detect(data.points, params);
  if (!result.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const core::Detection& detection = *result;

  std::printf("grid: %zu non-empty cells (%zu dense, %zu core)\n",
              detection.num_cells, detection.num_dense_cells,
              detection.num_core_cells);
  std::printf("labels: %zu core, %zu border, %zu outliers\n",
              detection.num_core, detection.num_border,
              detection.num_outliers());

  std::printf("first outliers:");
  for (size_t i = 0; i < detection.outliers.size() && i < 8; ++i) {
    const uint32_t p = detection.outliers[i];
    std::printf(" #%u(%.2f, %.2f)", p, data.points.at(p, 0),
                data.points.at(p, 1));
  }
  std::printf("\n");

  // Score against the ground truth.
  const analysis::BinaryConfusion confusion =
      analysis::ConfusionFromIndices(data.labels, detection.outliers);
  std::printf("quality: precision=%.3f recall=%.3f F1=%.3f\n",
              confusion.Precision(), confusion.Recall(), confusion.F1());

  // Per-phase cost of the five DBSCOUT steps.
  for (const auto& phase : detection.phases) {
    std::printf("phase %-15s %8.2f ms  %12llu distance computations\n",
                phase.name.c_str(), phase.seconds * 1e3,
                static_cast<unsigned long long>(phase.distance_computations));
  }
  return 0;
}

// Sensor-fleet monitoring: detect anomalous readings in a stream of 3D
// telemetry batches (temperature, vibration, current draw). Each batch is
// screened with DBSCOUT; the flagged readings are then cross-checked
// against LOF and Isolation Forest to show where the density definition
// agrees with score-based detectors (cf. Table III of the paper).
//
//   ./build/examples/sensor_monitoring
#include <cstdio>
#include <vector>

#include "analysis/compare.h"
#include "baselines/isolation_forest.h"
#include "baselines/lof.h"
#include "common/rng.h"
#include "core/dbscout.h"
#include "data/point_set.h"

namespace {

using namespace dbscout;

/// One batch of readings: healthy machines cluster around a few operating
/// modes; faults drift away on one or more axes.
PointSet MakeBatch(size_t n, size_t faults, uint64_t seed) {
  Rng rng(seed);
  PointSet batch(3);
  const double modes[3][3] = {
      {45.0, 0.8, 3.1},   // idle
      {62.0, 2.1, 7.4},   // nominal load
      {71.0, 3.0, 9.8},   // peak load
  };
  for (size_t i = 0; i < n - faults; ++i) {
    const auto& mode = modes[rng.NextBounded(3)];
    batch.Add({rng.Gaussian(mode[0], 1.2), rng.Gaussian(mode[1], 0.15),
               rng.Gaussian(mode[2], 0.4)});
  }
  for (size_t i = 0; i < faults; ++i) {
    // Faults: overheating, bearing wear (vibration), or current spikes.
    switch (rng.NextBounded(3)) {
      case 0:
        batch.Add({rng.Uniform(85.0, 110.0), rng.Gaussian(2.0, 0.3),
                   rng.Gaussian(8.0, 0.5)});
        break;
      case 1:
        batch.Add({rng.Gaussian(60.0, 2.0), rng.Uniform(6.0, 12.0),
                   rng.Gaussian(7.0, 0.5)});
        break;
      default:
        batch.Add({rng.Gaussian(60.0, 2.0), rng.Gaussian(2.0, 0.3),
                   rng.Uniform(15.0, 25.0)});
        break;
    }
  }
  return batch;
}

}  // namespace

int main() {
  core::Params params;
  params.eps = 2.5;
  params.min_pts = 8;

  for (int batch_id = 0; batch_id < 3; ++batch_id) {
    const size_t faults = 5 + 3 * batch_id;
    const PointSet batch = MakeBatch(3000, faults, 100 + batch_id);
    const Result<core::Detection> screened = core::Detect(batch, params);
    if (!screened.ok()) {
      std::fprintf(stderr, "batch %d failed: %s\n", batch_id,
                   screened.status().ToString().c_str());
      return 1;
    }
    std::printf("batch %d: %zu readings, DBSCOUT flagged %zu (planted %zu)\n",
                batch_id, batch.size(), screened->num_outliers(), faults);

    // Cross-check with the score-based detectors at the same contamination.
    const double contamination =
        static_cast<double>(screened->num_outliers()) /
        static_cast<double>(batch.size());
    const auto lof = baselines::Lof(batch, 8);
    baselines::IsolationForestParams if_params;
    const auto forest = baselines::IsolationForest(batch, if_params);
    if (lof.ok() && forest.ok()) {
      const auto lof_flagged = lof->TopFraction(contamination);
      const auto if_flagged = forest->TopFraction(contamination);
      const auto lof_diff =
          analysis::CompareOutlierSets(screened->outliers, lof_flagged);
      const auto if_diff =
          analysis::CompareOutlierSets(screened->outliers, if_flagged);
      std::printf("  agreement with DBSCOUT: LOF %llu/%zu, IForest %llu/%zu\n",
                  static_cast<unsigned long long>(lof_diff.tp),
                  screened->num_outliers(),
                  static_cast<unsigned long long>(if_diff.tp),
                  screened->num_outliers());
    }

    // In production the flagged readings would page an operator; print the
    // most extreme one per batch.
    if (!screened->outliers.empty()) {
      const uint32_t p = screened->outliers.front();
      std::printf("  e.g. reading #%u: temp=%.1fC vib=%.2Fg current=%.1fA\n",
                  p, batch.at(p, 0), batch.at(p, 1), batch.at(p, 2));
    }
  }
  return 0;
}

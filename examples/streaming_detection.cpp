// Streaming detection: maintain the exact outlier set of an append-only
// GPS feed with the incremental detector. New fixes arrive in small
// batches; after each batch the labels are exactly what a full batch rerun
// would produce — watch lone early fixes get "rescued" into border points
// as their neighborhoods fill in.
//
//   ./build/examples/streaming_detection
#include <cstdio>

#include "core/dbscout.h"
#include "core/incremental.h"
#include "datasets/geo.h"

int main() {
  using namespace dbscout;

  core::Params params;
  params.eps = 400.0;
  params.min_pts = 30;
  auto detector = core::IncrementalDetector::Create(3, params);
  if (!detector.ok()) {
    std::fprintf(stderr, "%s\n", detector.status().ToString().c_str());
    return 1;
  }

  // One day of GPS fixes, replayed in 10 batches.
  const PointSet day = datasets::GeolifeLike(50000, 99);
  const size_t batch_size = day.size() / 10;
  size_t cursor = 0;
  size_t previous_outliers = 0;
  for (int batch = 1; batch <= 10; ++batch) {
    const size_t end =
        batch == 10 ? day.size() : cursor + batch_size;
    for (; cursor < end; ++cursor) {
      if (auto added = detector->Add(day[cursor]); !added.ok()) {
        std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
        return 1;
      }
    }
    const size_t outliers = detector->Outliers().size();
    std::printf(
        "batch %2d: %6zu points seen | %5zu outliers (%+6.2f%% of feed) | "
        "%6zu core | %zu cells\n",
        batch, detector->size(), outliers,
        100.0 * static_cast<double>(outliers) /
            static_cast<double>(detector->size()),
        detector->num_core(), detector->num_cells());
    previous_outliers = outliers;
  }

  // Show the monotone rescue effect: how many of the first batch's
  // outliers were later absorbed into dense regions.
  size_t early_still_outlier = 0;
  for (uint32_t i = 0; i < batch_size; ++i) {
    early_still_outlier +=
        detector->KindOf(i) == core::PointKind::kOutlier;
  }
  std::printf(
      "\nof the first batch's points, %zu remain outliers at end of day "
      "(insertions only ever rescue outliers, never create them "
      "retroactively).\n",
      early_still_outlier);

  // The incremental labels equal a from-scratch batch run (the invariant
  // the test suite enforces); demonstrate it once here.
  const Result<core::Detection> batch_run = core::Detect(day, params);
  if (batch_run.ok()) {
    std::printf("final cross-check vs batch DBSCOUT: %s\n",
                batch_run->outliers == detector->Outliers() ? "identical"
                                                            : "MISMATCH");
  }
  (void)previous_outliers;
  return 0;
}

#include "analysis/auc.h"

#include <algorithm>
#include <vector>

namespace dbscout::analysis {

double RocAuc(std::span<const uint8_t> truth,
              std::span<const double> scores) {
  const size_t n = truth.size();
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] < scores[b];
  });
  // Rank sum of the positive class with average ranks over ties.
  double positive_rank_sum = 0.0;
  uint64_t positives = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      ++j;
    }
    const double average_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (size_t k = i; k < j; ++k) {
      if (truth[order[k]]) {
        positive_rank_sum += average_rank;
        ++positives;
      }
    }
    i = j;
  }
  const uint64_t negatives = n - positives;
  if (positives == 0 || negatives == 0) {
    return 0.5;
  }
  const double u = positive_rank_sum -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) *
              static_cast<double>(negatives));
}

double AveragePrecision(std::span<const uint8_t> truth,
                        std::span<const double> scores) {
  const size_t n = truth.size();
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (scores[a] != scores[b]) {
      return scores[a] > scores[b];
    }
    // Pessimistic tie-break: negatives ranked ahead of positives.
    return truth[a] < truth[b];
  });
  uint64_t positives_total = 0;
  for (uint8_t t : truth) {
    positives_total += t;
  }
  if (positives_total == 0) {
    return 0.0;
  }
  double ap = 0.0;
  uint64_t true_positives = 0;
  for (size_t rank = 0; rank < n; ++rank) {
    if (truth[order[rank]]) {
      ++true_positives;
      ap += static_cast<double>(true_positives) /
            static_cast<double>(rank + 1);
    }
  }
  return ap / static_cast<double>(positives_total);
}

}  // namespace dbscout::analysis

#ifndef DBSCOUT_ANALYSIS_AUC_H_
#define DBSCOUT_ANALYSIS_AUC_H_

#include <cstdint>
#include <span>

namespace dbscout::analysis {

/// Area under the ROC curve for score-based detectors (larger score = more
/// anomalous), computed rank-based (Mann-Whitney U) with average ranks for
/// ties. Returns 0.5 when either class is empty. Complements the F1 of
/// Table III with a threshold-free quality measure for LOF / IF / OC-SVM
/// style scores.
double RocAuc(std::span<const uint8_t> truth, std::span<const double> scores);

/// Average precision (area under the precision-recall curve, step-wise),
/// the usual summary for heavily imbalanced outlier problems. Ties are
/// broken pessimistically (negatives first), so the value is a lower
/// bound. Returns 0 when there are no positives.
double AveragePrecision(std::span<const uint8_t> truth,
                        std::span<const double> scores);

}  // namespace dbscout::analysis

#endif  // DBSCOUT_ANALYSIS_AUC_H_

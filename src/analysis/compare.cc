#include "analysis/compare.h"

namespace dbscout::analysis {

OutlierDiff CompareOutlierSets(std::span<const uint32_t> reference,
                               std::span<const uint32_t> candidate) {
  OutlierDiff diff;
  size_t i = 0;
  size_t j = 0;
  while (i < reference.size() && j < candidate.size()) {
    if (reference[i] == candidate[j]) {
      ++diff.tp;
      ++i;
      ++j;
    } else if (reference[i] < candidate[j]) {
      ++diff.fn;
      ++i;
    } else {
      ++diff.fp;
      ++j;
    }
  }
  diff.fn += reference.size() - i;
  diff.fp += candidate.size() - j;
  return diff;
}

}  // namespace dbscout::analysis

#ifndef DBSCOUT_ANALYSIS_COMPARE_H_
#define DBSCOUT_ANALYSIS_COMPARE_H_

#include <cstdint>
#include <span>

namespace dbscout::analysis {

/// Agreement of a candidate outlier set against a reference (exact) one —
/// the TP/FP/FN split of Tables IV and V, where DBSCOUT's exact output is
/// the reference and RP-DBSCAN's is the candidate.
struct OutlierDiff {
  uint64_t tp = 0;  // in both sets
  uint64_t fp = 0;  // candidate only
  uint64_t fn = 0;  // reference only
};

/// Both spans must be sorted ascending and duplicate-free.
OutlierDiff CompareOutlierSets(std::span<const uint32_t> reference,
                               std::span<const uint32_t> candidate);

}  // namespace dbscout::analysis

#endif  // DBSCOUT_ANALYSIS_COMPARE_H_

#include "analysis/kdistance.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "index/kdtree.h"

namespace dbscout::analysis {

namespace {

/// Normalized distance of curve point i to the chord through the curve's
/// endpoints; the quantity both elbow locators maximize.
double ChordDistance(const std::vector<double>& d, size_t i) {
  const double x_span = static_cast<double>(d.size() - 1);
  const double y_span = std::max(1e-300, d.front() - d.back());
  const double x = static_cast<double>(i) / x_span;
  const double y = (d[i] - d.back()) / y_span;
  // Chord runs from (0,1) to (1,0); distance ~ |x + y - 1|.
  return std::abs(x + y - 1.0);
}

}  // namespace

double KDistanceCurve::SuggestEps() const {
  const size_t n = distances.size();
  if (n == 0) {
    return 0.0;
  }
  if (n < 3) {
    return distances.back();
  }
  double best = -1.0;
  size_t best_index = n - 1;
  for (size_t i = 0; i < n; ++i) {
    const double dist = ChordDistance(distances, i);
    if (dist > best) {
      best = dist;
      best_index = i;
    }
  }
  return distances[best_index];
}

double KDistanceCurve::SuggestEpsUpper(double headroom) const {
  // A curvature-region walk is unreliable here: on contaminated data the
  // chord distance stays high from the knee all the way up the outlier
  // cliff, so the "region" bleeds into outlier-scale distances. A fixed
  // headroom over the knee is the transparent automation of "choose eps in
  // the uppermost part of the elbow zone" and needs no labels.
  return headroom * SuggestEps();
}

Result<KDistanceCurve> ComputeKDistance(const PointSet& points, int k,
                                        size_t sample, uint64_t seed) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  const size_t n = points.size();
  if (n < 2) {
    return Status::InvalidArgument("need at least 2 points");
  }
  if (static_cast<size_t>(k) >= n) {
    return Status::InvalidArgument("k must be < number of points");
  }
  KDistanceCurve curve;
  curve.k = k;
  const index::KdTree tree = index::KdTree::Build(points);

  std::vector<uint32_t> queries;
  if (sample > 0 && sample < n) {
    Rng rng(seed);
    queries.reserve(sample);
    for (size_t i = 0; i < sample; ++i) {
      queries.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
    }
  } else {
    queries.resize(n);
    for (size_t i = 0; i < n; ++i) {
      queries[i] = static_cast<uint32_t>(i);
    }
  }
  curve.distances.reserve(queries.size());
  for (uint32_t i : queries) {
    const auto knn = tree.Knn(points[i], static_cast<size_t>(k),
                              static_cast<int64_t>(i));
    curve.distances.push_back(knn.empty() ? 0.0 : knn.back().distance);
  }
  std::sort(curve.distances.begin(), curve.distances.end(),
            std::greater<double>());
  return curve;
}

}  // namespace dbscout::analysis

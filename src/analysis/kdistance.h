#ifndef DBSCOUT_ANALYSIS_KDISTANCE_H_
#define DBSCOUT_ANALYSIS_KDISTANCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::analysis {

/// The sorted k-distance curve of a dataset: for each point, the distance
/// to its k-th nearest neighbor (self excluded), sorted descending. Plotting
/// it and reading eps off the elbow is the standard DBSCAN/DBSCOUT
/// parameter-selection recipe the paper uses for Table III.
struct KDistanceCurve {
  int k = 0;
  /// Descending k-distances (one per point, or per sampled point).
  std::vector<double> distances;

  /// The suggested eps: the value at the point of maximum curvature (the
  /// knee), located by the maximum distance to the chord between the
  /// curve's endpoints.
  double SuggestEps() const;

  /// The paper's variant (SS IV-C1): eps "in the uppermost part of the
  /// elbow zone", automated as the knee value times a small headroom
  /// factor. Label-free; more robust than the bare knee when clusters have
  /// heterogeneous densities and the elbow is gradual.
  double SuggestEpsUpper(double headroom = 1.25) const;
};

/// Computes the curve; when sample > 0 and smaller than the dataset, only
/// `sample` random points are evaluated (the curve's shape, not its exact
/// membership, is what matters).
Result<KDistanceCurve> ComputeKDistance(const PointSet& points, int k,
                                        size_t sample = 0, uint64_t seed = 1);

}  // namespace dbscout::analysis

#endif  // DBSCOUT_ANALYSIS_KDISTANCE_H_

#include "analysis/metrics.h"

namespace dbscout::analysis {

BinaryConfusion ConfusionFromIndices(std::span<const uint8_t> truth,
                                     std::span<const uint32_t> predicted) {
  std::vector<uint8_t> labels(truth.size(), 0);
  for (uint32_t i : predicted) {
    if (i < labels.size()) {
      labels[i] = 1;
    }
  }
  return ConfusionFromLabels(truth, labels);
}

BinaryConfusion ConfusionFromLabels(std::span<const uint8_t> truth,
                                    std::span<const uint8_t> predicted) {
  BinaryConfusion c;
  const size_t n = truth.size();
  for (size_t i = 0; i < n; ++i) {
    const bool actual = truth[i] != 0;
    const bool guessed = i < predicted.size() && predicted[i] != 0;
    if (actual && guessed) {
      ++c.tp;
    } else if (!actual && guessed) {
      ++c.fp;
    } else if (actual && !guessed) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

}  // namespace dbscout::analysis

#ifndef DBSCOUT_ANALYSIS_METRICS_H_
#define DBSCOUT_ANALYSIS_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dbscout::analysis {

/// Binary confusion counts for the outlier class (positive = outlier).
struct BinaryConfusion {
  uint64_t tp = 0;
  uint64_t fp = 0;
  uint64_t fn = 0;
  uint64_t tn = 0;

  double Precision() const {
    return tp + fp == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  /// F1 of the outlier class — the quality metric of Table III.
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Confusion of predicted outlier indices against 0/1 ground-truth labels.
/// `predicted` must contain valid indices into `truth`; duplicates are
/// counted once.
BinaryConfusion ConfusionFromIndices(std::span<const uint8_t> truth,
                                     std::span<const uint32_t> predicted);

/// Confusion of two aligned 0/1 label vectors (1 = outlier).
BinaryConfusion ConfusionFromLabels(std::span<const uint8_t> truth,
                                    std::span<const uint8_t> predicted);

}  // namespace dbscout::analysis

#endif  // DBSCOUT_ANALYSIS_METRICS_H_

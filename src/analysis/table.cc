#include "analysis/table.h"

#include <algorithm>

#include "common/logging.h"

namespace dbscout::analysis {

void Table::AddRow(std::vector<std::string> cells) {
  DBSCOUT_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace dbscout::analysis

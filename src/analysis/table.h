#ifndef DBSCOUT_ANALYSIS_TABLE_H_
#define DBSCOUT_ANALYSIS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace dbscout::analysis {

/// Minimal fixed-width ASCII table renderer used by the benchmark
/// harnesses to print paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule, columns padded to their widest cell.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbscout::analysis

#endif  // DBSCOUT_ANALYSIS_TABLE_H_

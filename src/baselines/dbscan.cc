#include "baselines/dbscan.h"

#include <deque>

#include "common/timer.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"

namespace dbscout::baselines {

std::vector<uint32_t> DbscanResult::Noise() const {
  std::vector<uint32_t> noise;
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster[i] == kNoise) {
      noise.push_back(static_cast<uint32_t>(i));
    }
  }
  return noise;
}

Result<DbscanResult> Dbscan(const PointSet& points, double eps, int min_pts) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be > 0");
  }
  if (min_pts < 1) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }
  WallTimer timer;
  DBSCOUT_ASSIGN_OR_RETURN(grid::Grid g, grid::Grid::Build(points, eps));
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(points.dims()));
  const size_t n = points.size();
  const double eps2 = eps * eps;
  const uint32_t min_pts_u = static_cast<uint32_t>(min_pts);

  // Precompute per-cell neighbor lists lazily per cell (reused buffer).
  const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
  std::vector<std::vector<uint32_t>> cell_neighbors(num_cells);
  for (uint32_t c = 0; c < num_cells; ++c) {
    g.ForEachNeighborCell(
        c, *stencil, [&](uint32_t nc) { cell_neighbors[c].push_back(nc); });
  }

  // Core detection: identical counting to DBSCOUT's phase 3, with dense
  // cells short-circuited (Lemma 1 applies to DBSCAN equally).
  std::vector<uint8_t> is_core(n, 0);
  for (uint32_t c = 0; c < num_cells; ++c) {
    const auto cell_points = g.PointsInCell(c);
    if (cell_points.size() >= min_pts_u) {
      for (uint32_t p : cell_points) {
        is_core[p] = 1;
      }
      continue;
    }
    for (uint32_t p : cell_points) {
      const auto pv = points[p];
      uint32_t count = 0;
      for (uint32_t nc : cell_neighbors[c]) {
        for (uint32_t q : g.PointsInCell(nc)) {
          if (PointSet::SquaredDistance(pv, points[q]) <= eps2 &&
              ++count >= min_pts_u) {
            is_core[p] = 1;
            break;
          }
        }
        if (is_core[p]) {
          break;
        }
      }
    }
  }

  // Cluster expansion: BFS from each unassigned core point; border points
  // adopt the first cluster that reaches them. This is the pass DBSCOUT
  // does not need — it exists only to materialize the clusters.
  DbscanResult result;
  result.cluster.assign(n, DbscanResult::kNoise);
  int32_t next_cluster = 0;
  std::deque<uint32_t> queue;
  for (uint32_t seed = 0; seed < n; ++seed) {
    if (!is_core[seed] || result.cluster[seed] != DbscanResult::kNoise) {
      continue;
    }
    const int32_t cluster_id = next_cluster++;
    result.cluster[seed] = cluster_id;
    queue.push_back(seed);
    while (!queue.empty()) {
      const uint32_t p = queue.front();
      queue.pop_front();
      const auto pv = points[p];
      const uint32_t c = g.CellIdOfPoint(p);
      for (uint32_t nc : cell_neighbors[c]) {
        for (uint32_t r : g.PointsInCell(nc)) {
          if (result.cluster[r] != DbscanResult::kNoise) {
            continue;
          }
          if (PointSet::SquaredDistance(pv, points[r]) <= eps2) {
            result.cluster[r] = cluster_id;
            if (is_core[r]) {
              queue.push_back(r);
            }
          }
        }
      }
    }
  }
  result.num_clusters = static_cast<size_t>(next_cluster);
  for (uint8_t c : is_core) {
    result.num_core += c;
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace dbscout::baselines

#ifndef DBSCOUT_BASELINES_DBSCAN_H_
#define DBSCOUT_BASELINES_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::baselines {

/// Output of exact DBSCAN clustering.
struct DbscanResult {
  /// Per-point cluster id; kNoise (-1) for noise points.
  std::vector<int32_t> cluster;
  size_t num_clusters = 0;
  size_t num_core = 0;
  double seconds = 0.0;

  static constexpr int32_t kNoise = -1;

  /// Indices of noise points, ascending. DBSCAN noise coincides exactly
  /// with the outlier set of Definition 3 — the property DBSCOUT builds on.
  std::vector<uint32_t> Noise() const;
};

/// Exact DBSCAN (Ester et al. 1996) accelerated with the same epsilon-grid
/// DBSCOUT uses (Gunawan-style). This is the "naive approach" of the paper's
/// introduction: it computes the full clustering even when only the outliers
/// are needed, paying an extra cluster-expansion pass that DBSCOUT skips.
Result<DbscanResult> Dbscan(const PointSet& points, double eps, int min_pts);

}  // namespace dbscout::baselines

#endif  // DBSCOUT_BASELINES_DBSCAN_H_

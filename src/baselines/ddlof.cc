#include "baselines/ddlof.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.h"
#include "common/timer.h"
#include "dataflow/dataset.h"
#include "dataflow/pair_ops.h"
#include "index/kdtree.h"

namespace dbscout::baselines {
namespace {

constexpr double kMaxLrd = 1e12;

/// One point's k nearest neighbors, the record type of the k-NN round.
struct KnnRecord {
  uint32_t point = 0;
  std::vector<index::Neighbor> neighbors;
};

/// Exact LOF of one point against the full dataset; used in the correction
/// round. The k-distances of the point's neighbors are memoized in
/// `k_distance_cache` (-1 = not yet computed).
double GlobalLofScore(const PointSet& points, const index::KdTree& tree,
                      uint32_t p, int k,
                      std::vector<double>* k_distance_cache) {
  auto k_dist = [&](uint32_t q) {
    double& cached = (*k_distance_cache)[q];
    if (cached < 0.0) {
      const auto knn = tree.Knn(points[q], static_cast<size_t>(k),
                                static_cast<int64_t>(q));
      cached = knn.empty() ? 0.0 : knn.back().distance;
    }
    return cached;
  };
  auto lrd_of = [&](uint32_t q) {
    const auto knn = tree.Knn(points[q], static_cast<size_t>(k),
                              static_cast<int64_t>(q));
    double reach_sum = 0.0;
    for (const auto& nb : knn) {
      reach_sum += std::max(k_dist(nb.index), nb.distance);
    }
    if (reach_sum <= 0.0 || knn.empty()) {
      return kMaxLrd;
    }
    return std::min(kMaxLrd, static_cast<double>(knn.size()) / reach_sum);
  };
  const auto knn = tree.Knn(points[p], static_cast<size_t>(k),
                            static_cast<int64_t>(p));
  if (knn.empty()) {
    return 1.0;
  }
  double neighbor_lrd_sum = 0.0;
  for (const auto& nb : knn) {
    neighbor_lrd_sum += lrd_of(nb.index);
  }
  return neighbor_lrd_sum / (static_cast<double>(knn.size()) * lrd_of(p));
}

}  // namespace

std::vector<uint32_t> DdlofResult::TopFraction(double contamination) const {
  const size_t n = scores.size();
  const size_t count = std::min(
      n, static_cast<size_t>(std::ceil(contamination * static_cast<double>(n))));
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::partial_sort(
      order.begin(), order.begin() + count, order.end(),
      [this](uint32_t a, uint32_t b) { return scores[a] > scores[b]; });
  std::vector<uint32_t> top(order.begin(), order.begin() + count);
  std::sort(top.begin(), top.end());
  return top;
}

Result<DdlofResult> Ddlof(const PointSet& points, const DdlofParams& params) {
  if (params.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (params.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  WallTimer timer;
  DdlofResult result;
  const size_t n = points.size();
  result.scores.assign(n, 1.0);
  if (n <= 1) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  const size_t kk = std::min(static_cast<size_t>(params.k), n - 1);

  // ---- Round 1: grid partitioning with support replication. ------------
  // Stripes along the widest dimension; skewed data therefore produces
  // heavily unbalanced partitions, the behaviour that sinks DDLOF in the
  // paper's Geolife experiment.
  const auto box = points.Bounds();
  size_t dim = 0;
  double width = 0.0;
  for (size_t d = 0; d < points.dims(); ++d) {
    const double extent = box.max[d] - box.min[d];
    if (extent > width) {
      width = extent;
      dim = d;
    }
  }
  const size_t parts = width > 0.0 ? params.num_partitions : 1;
  const double stripe = width > 0.0 ? width / static_cast<double>(parts) : 1.0;

  // Margin estimate: 2x a sampled high-percentile k-distance, covering the
  // lrd's one-hop dependency on neighbors' k-distances.
  const index::KdTree global_tree = index::KdTree::Build(points);
  Rng rng(params.seed);
  std::vector<double> sampled;
  const size_t samples = std::min(params.margin_sample, n);
  sampled.reserve(samples);
  for (size_t s = 0; s < samples; ++s) {
    const uint32_t i = static_cast<uint32_t>(rng.NextBounded(n));
    const auto knn = global_tree.Knn(points[i], kk, static_cast<int64_t>(i));
    sampled.push_back(knn.empty() ? 0.0 : knn.back().distance);
  }
  std::sort(sampled.begin(), sampled.end());
  const double p99 = sampled[static_cast<size_t>(
      std::min(sampled.size() - 1,
               static_cast<size_t>(0.99 * static_cast<double>(sampled.size()))))];
  const double margin = 2.0 * p99;

  auto stripe_of = [&](double x) {
    if (width <= 0.0) {
      return size_t{0};
    }
    const double t = (x - box.min[dim]) / stripe;
    const auto s = static_cast<int64_t>(std::floor(t));
    return static_cast<size_t>(
        std::clamp<int64_t>(s, 0, static_cast<int64_t>(parts) - 1));
  };

  std::vector<std::vector<uint32_t>> owned(parts);
  std::vector<std::vector<uint32_t>> support(parts);
  for (uint32_t i = 0; i < n; ++i) {
    const double x = points.at(i, dim);
    const size_t home = stripe_of(x);
    owned[home].push_back(i);
    const size_t lo = stripe_of(x - margin);
    const size_t hi = stripe_of(x + margin);
    for (size_t s = lo; s <= hi; ++s) {
      if (s != home) {
        support[s].push_back(i);
        ++result.replicated_points;
      }
    }
  }

  // ---- Round 2: per-partition k-NN of owned points. ---------------------
  dataflow::ExecutionContext ctx(/*num_threads=*/0, parts);
  const uint64_t shuffle_base = ctx.Summary().shuffled_records;
  typename dataflow::Dataset<KnnRecord>::Partitions knn_parts(parts);
  std::vector<uint32_t> corrections;
  for (size_t s = 0; s < parts; ++s) {
    if (owned[s].empty()) {
      continue;
    }
    PointSet local(points.dims());
    local.Reserve(owned[s].size() + support[s].size());
    std::vector<uint32_t> global_id;
    global_id.reserve(owned[s].size() + support[s].size());
    for (uint32_t i : owned[s]) {
      local.Add(points[i]);
      global_id.push_back(i);
    }
    for (uint32_t i : support[s]) {
      local.Add(points[i]);
      global_id.push_back(i);
    }
    result.max_partition_load =
        std::max(result.max_partition_load, local.size());
    if (local.size() <= kk) {
      // Too few local points to answer k-NN: correct everything owned.
      for (uint32_t i : owned[s]) {
        corrections.push_back(i);
      }
      continue;
    }
    const index::KdTree tree = index::KdTree::Build(local);
    knn_parts[s].reserve(owned[s].size());
    for (size_t li = 0; li < owned[s].size(); ++li) {
      KnnRecord record;
      record.point = global_id[li];
      record.neighbors = tree.Knn(local[li], kk, static_cast<int64_t>(li));
      for (auto& nb : record.neighbors) {
        nb.index = global_id[nb.index];  // translate to global point ids
      }
      if (!record.neighbors.empty() &&
          record.neighbors.back().distance > margin) {
        corrections.push_back(record.point);  // boundary-unsafe
      }
      knn_parts[s].push_back(std::move(record));
    }
  }
  auto knn_ds = dataflow::Dataset<KnnRecord>::FromPartitions(
      &ctx, std::move(knn_parts));

  // ---- Round 3: shuffled k-distance exchange -> lrd. --------------------
  // reach-dist_k(p, o) = max(k-distance(o), dist(p, o)) needs o's
  // k-distance, so every (p, o) edge is shipped to o, joined with o's
  // k-distance, and the reachability sums reduced back onto p.
  auto kdist = knn_ds.Map(
      [](const KnnRecord& r) {
        return std::make_pair(
            r.point, r.neighbors.empty() ? 0.0 : r.neighbors.back().distance);
      },
      "KDistances");
  auto edges = knn_ds.FlatMap<std::pair<uint32_t, std::pair<uint32_t, double>>>(
      [](const KnnRecord& r,
         std::vector<std::pair<uint32_t, std::pair<uint32_t, double>>>* sink) {
        for (const auto& nb : r.neighbors) {
          sink->push_back({nb.index, {r.point, nb.distance}});
        }
      },
      "EmitEdges");
  auto reach = Join(kdist, edges, parts, std::hash<uint32_t>(), "JoinKDist");
  auto reach_per_point = ReduceByKey(
      reach.Map(
          [](const std::pair<uint32_t,
                             std::pair<double, std::pair<uint32_t, double>>>&
                 rec) {
            const double neighbor_kdist = rec.second.first;
            const uint32_t p = rec.second.second.first;
            const double dist = rec.second.second.second;
            return std::make_pair(
                p, std::make_pair(std::max(neighbor_kdist, dist), uint32_t{1}));
          },
          "ReachDistances"),
      [](const std::pair<double, uint32_t>& a,
         const std::pair<double, uint32_t>& b) {
        return std::make_pair(a.first + b.first, a.second + b.second);
      },
      parts, std::hash<uint32_t>(), "SumReach");
  auto lrd = reach_per_point.Map(
      [](const std::pair<uint32_t, std::pair<double, uint32_t>>& rec) {
        const double sum = rec.second.first;
        const double count = rec.second.second;
        const double value =
            sum <= 0.0 ? kMaxLrd : std::min(kMaxLrd, count / sum);
        return std::make_pair(rec.first, value);
      },
      "Lrd");

  // ---- Round 4: shuffled lrd exchange -> LOF. ---------------------------
  auto lrd_edges = knn_ds.FlatMap<std::pair<uint32_t, uint32_t>>(
      [](const KnnRecord& r,
         std::vector<std::pair<uint32_t, uint32_t>>* sink) {
        for (const auto& nb : r.neighbors) {
          sink->push_back({nb.index, r.point});
        }
      },
      "EmitLrdRequests");
  auto neighbor_lrds =
      Join(lrd, lrd_edges, parts, std::hash<uint32_t>(), "JoinLrd");
  auto lrd_sums = ReduceByKey(
      neighbor_lrds.Map(
          [](const std::pair<uint32_t, std::pair<double, uint32_t>>& rec) {
            return std::make_pair(
                rec.second.second,
                std::make_pair(rec.second.first, uint32_t{1}));
          },
          "NeighborLrds"),
      [](const std::pair<double, uint32_t>& a,
         const std::pair<double, uint32_t>& b) {
        return std::make_pair(a.first + b.first, a.second + b.second);
      },
      parts, std::hash<uint32_t>(), "SumLrd");
  auto scores =
      Join(lrd, lrd_sums, parts, std::hash<uint32_t>(), "JoinOwnLrd");
  scores.ForEach(
      [&result](
          const std::pair<uint32_t,
                          std::pair<double, std::pair<double, uint32_t>>>&
              rec) {
        const double own_lrd = rec.second.first;
        const double neighbor_sum = rec.second.second.first;
        const double neighbor_count = rec.second.second.second;
        if (own_lrd > 0.0 && neighbor_count > 0) {
          result.scores[rec.first] =
              neighbor_sum / (neighbor_count * own_lrd);
        }
      });
  result.shuffled_records = ctx.Summary().shuffled_records - shuffle_base;

  // ---- Round 5: correction of boundary-unsafe points. -------------------
  std::sort(corrections.begin(), corrections.end());
  corrections.erase(std::unique(corrections.begin(), corrections.end()),
                    corrections.end());
  result.corrected_points = corrections.size();
  std::vector<double> k_distance_cache(n, -1.0);
  for (uint32_t p : corrections) {
    result.scores[p] = GlobalLofScore(points, global_tree, p, params.k,
                                      &k_distance_cache);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace dbscout::baselines

#ifndef DBSCOUT_BASELINES_DDLOF_H_
#define DBSCOUT_BASELINES_DDLOF_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"
#include "dataflow/context.h"

namespace dbscout::baselines {

/// Configuration of the DDLOF-like distributed LOF baseline.
struct DdlofParams {
  /// LOF neighborhood size (the paper's experiments use k = 6).
  int k = 6;
  /// Number of spatial partitions ("reducers").
  size_t num_partitions = 16;
  /// Sample size used to estimate the support (replication) margin.
  size_t margin_sample = 512;
  uint64_t seed = 1;
};

/// Output of a DDLOF run.
struct DdlofResult {
  std::vector<double> scores;
  double seconds = 0.0;
  /// Total points replicated into support areas — the quantity that blows
  /// up on skewed data and makes DDLOF fail where DBSCOUT does not (SS IV-B1
  /// of the paper: DDLOF could not finish Geolife within 4 hours).
  size_t replicated_points = 0;
  /// Size of the largest single partition incl. its support area.
  size_t max_partition_load = 0;
  /// Points whose local k-NN radius exceeded the support margin and were
  /// recomputed against the full dataset in the correction round.
  size_t corrected_points = 0;
  /// Records moved by the MapReduce-style k-distance/lrd/LOF exchange
  /// rounds (~4*k per point) — the structural cost that keeps DDLOF an
  /// order of magnitude behind DBSCOUT in Table II.
  uint64_t shuffled_records = 0;

  std::vector<uint32_t> TopFraction(double contamination) const;
};

/// Distributed LOF in the style of DDLOF (Yan et al., KDD'17), executed as
/// a sequence of MapReduce-style jobs on the in-process dataflow engine:
///
///   1. grid partitioning into `num_partitions` stripes along the widest
///      dimension, plus replication of a support margin wide enough that
///      k-NN queries resolve locally (margin = 2x a sampled k-distance
///      upper bound);
///   2. per-partition k-NN of every owned point;
///   3. a shuffled k-distance exchange (reachability distances need the
///      *neighbor's* k-distance), REDUCEBYKEY into local reachability
///      densities;
///   4. a shuffled lrd exchange, REDUCEBYKEY into LOF scores;
///   5. a correction round recomputing boundary-unsafe points (local k-NN
///      radius beyond the margin) against the full dataset.
///
/// The materialized exchanges of rounds 3-4 (~4k records per point) are
/// what make the real DDLOF orders of magnitude slower than DBSCOUT's two
/// linear passes, and the margin-driven replication of round 1 is what
/// sinks it on skewed data; both costs are reproduced here structurally.
Result<DdlofResult> Ddlof(const PointSet& points, const DdlofParams& params);

}  // namespace dbscout::baselines

#endif  // DBSCOUT_BASELINES_DDLOF_H_

#include "baselines/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"

namespace dbscout::baselines {
namespace {

/// Average unsuccessful-search path length of a BST with n nodes; the
/// normalizer c(n) of the isolation-forest score.
double AveragePathLength(double n) {
  if (n <= 1.0) {
    return 0.0;
  }
  const double harmonic = std::log(n - 1.0) + 0.5772156649015329;
  return 2.0 * harmonic - 2.0 * (n - 1.0) / n;
}

/// One isolation tree node. Leaves carry the size of the point subset that
/// reached them (left < 0 marks a leaf).
struct TreeNode {
  int32_t left = -1;
  int32_t right = -1;
  uint16_t split_dim = 0;
  double split_value = 0.0;
  uint32_t size = 0;
};

class IsolationTree {
 public:
  IsolationTree(const PointSet& points, std::vector<uint32_t> sample,
                int max_depth, Rng* rng)
      : points_(&points) {
    BuildNode(std::move(sample), 0, max_depth, rng);
  }

  /// Path length of `p`, with the standard c(leaf size) adjustment.
  double PathLength(std::span<const double> p) const {
    int32_t node = 0;
    int depth = 0;
    for (;;) {
      const TreeNode& tn = nodes_[node];
      if (tn.left < 0) {
        return depth + AveragePathLength(static_cast<double>(tn.size));
      }
      node = p[tn.split_dim] < tn.split_value ? tn.left : tn.right;
      ++depth;
    }
  }

 private:
  int32_t BuildNode(std::vector<uint32_t> sample, int depth, int max_depth,
                    Rng* rng) {
    const int32_t id = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[id].size = static_cast<uint32_t>(sample.size());
    if (sample.size() <= 1 || depth >= max_depth) {
      return id;
    }
    // Pick a random dimension with non-zero extent; if all are degenerate
    // the subset is identical points -> leaf.
    const size_t d = points_->dims();
    uint16_t dim = 0;
    double lo = 0.0;
    double hi = 0.0;
    bool found = false;
    for (size_t attempt = 0; attempt < 2 * d; ++attempt) {
      dim = static_cast<uint16_t>(rng->NextBounded(d));
      lo = hi = points_->at(sample[0], dim);
      for (uint32_t i : sample) {
        lo = std::min(lo, points_->at(i, dim));
        hi = std::max(hi, points_->at(i, dim));
      }
      if (hi > lo) {
        found = true;
        break;
      }
    }
    if (!found) {
      return id;
    }
    const double split = rng->Uniform(lo, hi);
    std::vector<uint32_t> left_sample;
    std::vector<uint32_t> right_sample;
    for (uint32_t i : sample) {
      (points_->at(i, dim) < split ? left_sample : right_sample).push_back(i);
    }
    if (left_sample.empty() || right_sample.empty()) {
      return id;  // degenerate split (split == hi with duplicates)
    }
    sample.clear();
    sample.shrink_to_fit();
    const int32_t left = BuildNode(std::move(left_sample), depth + 1,
                                   max_depth, rng);
    const int32_t right = BuildNode(std::move(right_sample), depth + 1,
                                    max_depth, rng);
    nodes_[id].left = left;
    nodes_[id].right = right;
    nodes_[id].split_dim = dim;
    nodes_[id].split_value = split;
    return id;
  }

  const PointSet* points_;
  std::vector<TreeNode> nodes_;
};

}  // namespace

std::vector<uint32_t> IsolationForestResult::TopFraction(
    double contamination) const {
  const size_t n = scores.size();
  const size_t count = std::min(
      n, static_cast<size_t>(std::ceil(contamination * static_cast<double>(n))));
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::partial_sort(
      order.begin(), order.begin() + count, order.end(),
      [this](uint32_t a, uint32_t b) { return scores[a] > scores[b]; });
  std::vector<uint32_t> top(order.begin(), order.begin() + count);
  std::sort(top.begin(), top.end());
  return top;
}

Result<IsolationForestResult> IsolationForest(
    const PointSet& points, const IsolationForestParams& params) {
  if (params.num_trees < 1) {
    return Status::InvalidArgument("num_trees must be >= 1");
  }
  if (params.subsample < 2) {
    return Status::InvalidArgument("subsample must be >= 2");
  }
  WallTimer timer;
  IsolationForestResult result;
  const size_t n = points.size();
  result.scores.assign(n, 0.5);
  if (n < 2) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  Rng rng(params.seed);
  const size_t psi = std::min(params.subsample, n);
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(psi)))) + 1;

  std::vector<IsolationTree> trees;
  trees.reserve(params.num_trees);
  std::vector<uint32_t> all(n);
  for (size_t i = 0; i < n; ++i) {
    all[i] = static_cast<uint32_t>(i);
  }
  for (int t = 0; t < params.num_trees; ++t) {
    // Partial Fisher-Yates: draw psi distinct indices.
    std::vector<uint32_t> sample(all);
    for (size_t i = 0; i < psi; ++i) {
      const size_t j = i + rng.NextBounded(n - i);
      std::swap(sample[i], sample[j]);
    }
    sample.resize(psi);
    trees.emplace_back(points, std::move(sample), max_depth, &rng);
  }

  const double c = AveragePathLength(static_cast<double>(psi));
  for (size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (const auto& tree : trees) {
      total += tree.PathLength(points[i]);
    }
    const double mean = total / static_cast<double>(trees.size());
    result.scores[i] = std::pow(2.0, c > 0.0 ? -mean / c : 0.0);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace dbscout::baselines

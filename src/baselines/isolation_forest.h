#ifndef DBSCOUT_BASELINES_ISOLATION_FOREST_H_
#define DBSCOUT_BASELINES_ISOLATION_FOREST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::baselines {

/// Configuration of the Isolation Forest baseline (Liu et al., ICDM'08).
struct IsolationForestParams {
  int num_trees = 100;
  /// Subsample size per tree (the canonical psi = 256).
  size_t subsample = 256;
  uint64_t seed = 3;
};

/// Output of an Isolation Forest run. Scores follow the standard
/// normalization s(x) = 2^(-E[h(x)]/c(psi)) in (0, 1]; larger = more
/// anomalous (0.5 is the "no structure" baseline).
struct IsolationForestResult {
  std::vector<double> scores;
  double seconds = 0.0;

  /// The ceil(contamination * n) highest-scoring points, ascending by index.
  std::vector<uint32_t> TopFraction(double contamination) const;
};

/// Trains an isolation forest on `points` and scores every point.
Result<IsolationForestResult> IsolationForest(
    const PointSet& points, const IsolationForestParams& params);

}  // namespace dbscout::baselines

#endif  // DBSCOUT_BASELINES_ISOLATION_FOREST_H_

#include "baselines/knorr.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"

namespace dbscout::baselines {

Result<KnorrResult> KnorrOutliers(const PointSet& points,
                                  const KnorrParams& params) {
  if (!(params.radius > 0.0)) {
    return Status::InvalidArgument("radius must be > 0");
  }
  if (params.fraction <= 0.0 || params.fraction >= 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1)");
  }
  WallTimer timer;
  KnorrResult result;
  const size_t n = points.size();
  if (n == 0) {
    return result;
  }
  // p is NOT an outlier once it has more than threshold neighbors
  // (itself excluded) within the radius.
  const uint64_t threshold = static_cast<uint64_t>(
      std::floor((1.0 - params.fraction) * static_cast<double>(n)));
  DBSCOUT_ASSIGN_OR_RETURN(grid::Grid g,
                           grid::Grid::Build(points, params.radius));
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(points.dims()));
  const double r2 = params.radius * params.radius;

  std::vector<uint32_t> neighbor_cells;
  for (uint32_t c = 0; c < g.num_cells(); ++c) {
    const auto cell_points = g.PointsInCell(c);
    // Dense-cell shortcut (the Lemma 1 idea transposed): a cell with more
    // than threshold+1 points clears every member outright, since the cell
    // diagonal is the radius.
    if (cell_points.size() > threshold + 1) {
      continue;
    }
    neighbor_cells.clear();
    g.ForEachNeighborCell(c, *stencil,
                          [&](uint32_t nc) { neighbor_cells.push_back(nc); });
    for (uint32_t p : cell_points) {
      const auto pv = points[p];
      uint64_t count = 0;
      bool cleared = false;
      for (uint32_t nc : neighbor_cells) {
        for (uint32_t q : g.PointsInCell(nc)) {
          if (q != p && PointSet::SquaredDistance(pv, points[q]) <= r2 &&
              ++count > threshold) {
            cleared = true;
            break;
          }
        }
        if (cleared) {
          break;
        }
      }
      if (!cleared) {
        result.outliers.push_back(p);
      }
    }
  }
  std::sort(result.outliers.begin(), result.outliers.end());
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace dbscout::baselines

#ifndef DBSCOUT_BASELINES_KNORR_H_
#define DBSCOUT_BASELINES_KNORR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::baselines {

/// Configuration of the classical distance-based outlier definition of
/// Knorr & Ng (reference [11] of the paper): p is a DB(fraction, radius)
/// outlier when at least `fraction` of the dataset lies farther than
/// `radius` from it.
struct KnorrParams {
  double radius = 1.0;
  /// Minimum fraction of the dataset that must be beyond `radius`
  /// (e.g. 0.99).
  double fraction = 0.99;
};

struct KnorrResult {
  std::vector<uint32_t> outliers;  // ascending
  double seconds = 0.0;
};

/// Grid-accelerated DB-outlier detection: the neighbor count threshold
/// floor((1 - fraction) * n) is evaluated with the same eps-cell grid and
/// k_d stencil DBSCOUT uses (here with eps = radius), including the
/// dense-cell shortcut and early termination — demonstrating that the
/// paper's grid machinery accelerates the whole distance-based family,
/// not just Definition 3.
Result<KnorrResult> KnorrOutliers(const PointSet& points,
                                  const KnorrParams& params);

}  // namespace dbscout::baselines

#endif  // DBSCOUT_BASELINES_KNORR_H_

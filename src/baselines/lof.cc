#include "baselines/lof.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "index/kdtree.h"

namespace dbscout::baselines {
namespace {

// Cap for the local reachability density of points whose k neighbors are
// all duplicates (sum of reachability distances is zero).
constexpr double kMaxLrd = 1e12;

}  // namespace

std::vector<uint32_t> LofResult::TopFraction(double contamination) const {
  const size_t n = scores.size();
  const size_t count = std::min(
      n, static_cast<size_t>(std::ceil(contamination * static_cast<double>(n))));
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::partial_sort(order.begin(), order.begin() + count, order.end(),
                    [this](uint32_t a, uint32_t b) {
                      return scores[a] > scores[b];
                    });
  std::vector<uint32_t> top(order.begin(), order.begin() + count);
  std::sort(top.begin(), top.end());
  return top;
}

std::vector<uint32_t> LofResult::AboveThreshold(double threshold) const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > threshold) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

Result<LofResult> Lof(const PointSet& points, int k) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  const size_t n = points.size();
  if (n > 0 && static_cast<size_t>(k) >= n) {
    return Status::InvalidArgument("k must be < number of points");
  }
  WallTimer timer;
  LofResult result;
  result.scores.assign(n, 1.0);
  if (n == 0) {
    return result;
  }

  const index::KdTree tree = index::KdTree::Build(points);

  // Pass 1: k nearest neighbors (excluding self) and k-distance per point.
  std::vector<std::vector<index::Neighbor>> knn(n);
  std::vector<double> k_distance(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    knn[i] = tree.Knn(points[i], static_cast<size_t>(k),
                      static_cast<int64_t>(i));
    k_distance[i] = knn[i].empty() ? 0.0 : knn[i].back().distance;
  }

  // Pass 2: local reachability density.
  std::vector<double> lrd(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (const auto& nb : knn[i]) {
      reach_sum += std::max(k_distance[nb.index], nb.distance);
    }
    if (reach_sum <= 0.0 || knn[i].empty()) {
      lrd[i] = kMaxLrd;
    } else {
      lrd[i] = std::min(kMaxLrd,
                        static_cast<double>(knn[i].size()) / reach_sum);
    }
  }

  // Pass 3: LOF score = mean neighbor lrd / own lrd.
  for (size_t i = 0; i < n; ++i) {
    if (knn[i].empty()) {
      continue;
    }
    double neighbor_lrd_sum = 0.0;
    for (const auto& nb : knn[i]) {
      neighbor_lrd_sum += lrd[nb.index];
    }
    result.scores[i] =
        neighbor_lrd_sum / (static_cast<double>(knn[i].size()) * lrd[i]);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace dbscout::baselines

#ifndef DBSCOUT_BASELINES_LOF_H_
#define DBSCOUT_BASELINES_LOF_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::baselines {

/// Output of a Local Outlier Factor run. Scores near 1 mean inlier; the
/// larger the score, the more isolated the point relative to its k
/// neighborhood.
struct LofResult {
  std::vector<double> scores;
  double seconds = 0.0;

  /// The ceil(contamination * n) highest-scoring points, ascending by
  /// index — the usual way LOF is turned into a labeling when the outlier
  /// proportion is known (how the paper configures LOF for Table III).
  std::vector<uint32_t> TopFraction(double contamination) const;

  /// All points with score > threshold, ascending by index.
  std::vector<uint32_t> AboveThreshold(double threshold) const;
};

/// Exact LOF (Breunig et al. 2000) over a kd-tree: k-distance, reachability
/// distance, local reachability density, and the LOF ratio. Duplicate-heavy
/// data (zero k-distance) is handled by capping the local reachability
/// density, matching scikit-learn's behavior closely enough for ranking.
Result<LofResult> Lof(const PointSet& points, int k);

}  // namespace dbscout::baselines

#endif  // DBSCOUT_BASELINES_LOF_H_

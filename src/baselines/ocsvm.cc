#include "baselines/ocsvm.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"

namespace dbscout::baselines {
namespace {

/// The scikit-learn "scale" bandwidth: 1 / (d * Var(X)) with the variance
/// taken over all coordinates.
double ScaleGamma(const PointSet& points) {
  const auto& values = points.values();
  if (values.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  const double m = static_cast<double>(values.size());
  const double mean = sum / m;
  const double var = sum_sq / m - mean * mean;
  const double denom = static_cast<double>(points.dims()) * var;
  return denom > 0.0 ? 1.0 / denom : 1.0;
}

}  // namespace

std::vector<uint32_t> OneClassSvmResult::Outliers() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < decision.size(); ++i) {
    if (decision[i] < 0.0) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

std::vector<uint32_t> OneClassSvmResult::BottomFraction(
    double contamination) const {
  const size_t n = decision.size();
  const size_t count = std::min(
      n, static_cast<size_t>(std::ceil(contamination * static_cast<double>(n))));
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::partial_sort(
      order.begin(), order.begin() + count, order.end(),
      [this](uint32_t a, uint32_t b) { return decision[a] < decision[b]; });
  std::vector<uint32_t> bottom(order.begin(), order.begin() + count);
  std::sort(bottom.begin(), bottom.end());
  return bottom;
}

Result<OneClassSvmResult> OneClassSvm(const PointSet& points,
                                      const OneClassSvmParams& params) {
  if (!(params.nu > 0.0) || params.nu > 1.0) {
    return Status::InvalidArgument("nu must be in (0, 1]");
  }
  if (params.num_features < 1) {
    return Status::InvalidArgument("num_features must be >= 1");
  }
  if (params.epochs < 1) {
    return Status::InvalidArgument("epochs must be >= 1");
  }
  WallTimer timer;
  OneClassSvmResult result;
  const size_t n = points.size();
  result.decision.assign(n, 0.0);
  if (n == 0) {
    return result;
  }
  const size_t d = points.dims();
  const size_t feat = params.num_features;
  const double gamma = params.gamma > 0.0 ? params.gamma : ScaleGamma(points);

  // Random Fourier features for the RBF kernel exp(-gamma |x-y|^2):
  // omega ~ N(0, 2*gamma*I), b ~ U[0, 2*pi), z(x) = sqrt(2/D) cos(wx + b).
  Rng rng(params.seed);
  const double omega_scale = std::sqrt(2.0 * gamma);
  std::vector<double> omega(feat * d);
  std::vector<double> bias(feat);
  for (auto& w : omega) {
    w = omega_scale * rng.NextGaussian();
  }
  for (auto& b : bias) {
    b = rng.Uniform(0.0, 2.0 * M_PI);
  }
  const double z_scale = std::sqrt(2.0 / static_cast<double>(feat));
  std::vector<double> features(n * feat);
  for (size_t i = 0; i < n; ++i) {
    const auto p = points[i];
    for (size_t f = 0; f < feat; ++f) {
      double dot = bias[f];
      for (size_t k = 0; k < d; ++k) {
        dot += omega[f * d + k] * p[k];
      }
      features[i * feat + f] = z_scale * std::cos(dot);
    }
  }

  // Full-batch gradient descent on the nu-formulation primal:
  //   L(w, rho) = 1/2 |w|^2 - rho + 1/(nu n) sum max(0, rho - w.z_i).
  std::vector<double> w(feat, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < feat; ++f) {
      w[f] += features[i * feat + f] / static_cast<double>(n);
    }
  }
  double rho = 0.0;
  std::vector<double> scores(n, 0.0);
  std::vector<double> grad(feat, 0.0);
  const double inv_nu_n = 1.0 / (params.nu * static_cast<double>(n));
  for (int epoch = 0; epoch < params.epochs; ++epoch) {
    const double lr = params.learning_rate / (1.0 + 0.3 * epoch);
    for (size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (size_t f = 0; f < feat; ++f) {
        s += w[f] * features[i * feat + f];
      }
      scores[i] = s;
    }
    std::copy(w.begin(), w.end(), grad.begin());
    double violators = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (scores[i] < rho) {
        violators += 1.0;
        for (size_t f = 0; f < feat; ++f) {
          grad[f] -= inv_nu_n * features[i * feat + f];
        }
      }
    }
    for (size_t f = 0; f < feat; ++f) {
      w[f] -= lr * grad[f];
    }
    rho -= lr * (-1.0 + inv_nu_n * violators);
  }

  // Calibrate rho to the nu-quantile of the final scores: exactly a nu
  // fraction of the training set falls outside, matching how the paper
  // pins the contamination to the known outlier proportion.
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t f = 0; f < feat; ++f) {
      s += w[f] * features[i * feat + f];
    }
    scores[i] = s;
  }
  std::vector<double> sorted = scores;
  const size_t q = std::min(
      n - 1, static_cast<size_t>(params.nu * static_cast<double>(n)));
  std::nth_element(sorted.begin(), sorted.begin() + q, sorted.end());
  rho = sorted[q];
  for (size_t i = 0; i < n; ++i) {
    result.decision[i] = scores[i] - rho;
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace dbscout::baselines

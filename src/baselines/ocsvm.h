#ifndef DBSCOUT_BASELINES_OCSVM_H_
#define DBSCOUT_BASELINES_OCSVM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::baselines {

/// Configuration of the One-Class SVM baseline (Schoelkopf et al., 1999).
struct OneClassSvmParams {
  /// Upper bound on the fraction of training points treated as outliers
  /// (the nu of the classical formulation).
  double nu = 0.05;
  /// RBF kernel bandwidth gamma; <= 0 selects the scikit-learn "scale"
  /// heuristic 1 / (d * var(X)).
  double gamma = 0.0;
  /// Random Fourier feature dimension used to approximate the RBF kernel.
  size_t num_features = 256;
  int epochs = 30;
  double learning_rate = 0.1;
  uint64_t seed = 5;
};

/// Output of a One-Class SVM run. decision(x) = w . z(x) - rho; negative
/// values are outliers.
struct OneClassSvmResult {
  std::vector<double> decision;
  double seconds = 0.0;

  /// Points with a negative decision value, ascending by index.
  std::vector<uint32_t> Outliers() const;

  /// The ceil(contamination * n) lowest-decision points, ascending by index.
  std::vector<uint32_t> BottomFraction(double contamination) const;
};

/// One-Class SVM trained in the primal on a random-Fourier-feature map of
/// the RBF kernel (Rahimi & Recht 2007), optimized with averaged SGD on the
/// nu-formulation objective
///   min  1/2 |w|^2 - rho + 1/(nu n) sum max(0, rho - w.z(x_i)).
/// This is the standard scalable stand-in for the exact kernel OC-SVM the
/// paper takes from scikit-learn; the decision boundary (and hence the F1
/// ranking in Table III) matches the kernel method closely on 2D data.
Result<OneClassSvmResult> OneClassSvm(const PointSet& points,
                                      const OneClassSvmParams& params);

}  // namespace dbscout::baselines

#endif  // DBSCOUT_BASELINES_OCSVM_H_

#include "baselines/rp_dbscan.h"

#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "grid/cell_coord.h"
#include "grid/neighborhood.h"

namespace dbscout::baselines {
namespace {

using grid::CellCoord;
using grid::CellCoordHash;

struct SubCell {
  uint32_t count = 0;
  uint32_t representative = 0;  // point index of the first point seen
  uint8_t core = 0;             // representative classified core
};

CellCoord CoordOf(std::span<const double> p, double side, size_t dims) {
  CellCoord c = CellCoord::Zero(dims);
  for (size_t k = 0; k < dims; ++k) {
    c[k] = static_cast<int64_t>(std::floor(p[k] / side));
  }
  return c;
}

/// Union-find over sub-cell ids for the cell-graph clustering step.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

Status RpDbscanParams::Validate() const {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be > 0");
  }
  if (min_pts < 1) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }
  if (!(rho > 0.0) || rho > 1.0) {
    return Status::InvalidArgument(
        StrFormat("rho must be in (0, 1], got %g", rho));
  }
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  return Status::OK();
}

Result<RpDbscanResult> RpDbscan(const PointSet& points,
                                const RpDbscanParams& params) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  const size_t d = points.dims();
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(d));
  WallTimer timer;
  RpDbscanResult result;
  const size_t n = points.size();
  result.is_outlier.assign(n, 0);
  if (n == 0) {
    return result;
  }
  const double eps2 = params.eps * params.eps;
  const double side = params.eps / std::sqrt(static_cast<double>(d));
  const double sub_side = side * params.rho;
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);

  // ---- Random partitioning + per-partition sub-cell dictionaries. ------
  Rng rng(params.seed);
  std::vector<std::vector<uint32_t>> partitions(params.num_partitions);
  for (uint32_t i = 0; i < n; ++i) {
    partitions[rng.NextBounded(params.num_partitions)].push_back(i);
  }
  using LocalDict = std::unordered_map<CellCoord, SubCell, CellCoordHash>;
  std::vector<LocalDict> local_dicts(params.num_partitions);
  for (size_t p = 0; p < params.num_partitions; ++p) {
    for (uint32_t i : partitions[p]) {
      const CellCoord sub = CoordOf(points[i], sub_side, d);
      auto [it, inserted] = local_dicts[p].try_emplace(sub);
      if (inserted) {
        it->second.representative = i;
      }
      ++it->second.count;
    }
    result.merged_entries += local_dicts[p].size();
  }

  // ---- Merge into the global two-level dictionary (broadcast stand-in).
  LocalDict dictionary;
  for (const auto& local : local_dicts) {
    for (const auto& [sub, info] : local) {
      auto [it, inserted] = dictionary.try_emplace(sub, info);
      if (!inserted) {
        it->second.count += info.count;  // keep the first representative
      }
    }
  }
  result.num_subcells = dictionary.size();

  // Flatten for indexed access and group sub-cells by their eps-cell.
  std::vector<CellCoord> sub_coords;
  std::vector<SubCell> sub_cells;
  sub_coords.reserve(dictionary.size());
  sub_cells.reserve(dictionary.size());
  std::unordered_map<CellCoord, std::vector<uint32_t>, CellCoordHash>
      cell_to_subs;
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> cell_counts;
  for (const auto& [sub, info] : dictionary) {
    const uint32_t id = static_cast<uint32_t>(sub_cells.size());
    sub_coords.push_back(sub);
    sub_cells.push_back(info);
    const CellCoord cell = CoordOf(points[info.representative], side, d);
    cell_to_subs[cell].push_back(id);
    cell_counts[cell] += info.count;
  }
  result.num_cells = cell_counts.size();
  auto cell_is_dense = [&](const CellCoord& cell) {
    auto it = cell_counts.find(cell);
    return it != cell_counts.end() && it->second >= min_pts;
  };

  // Approximate neighbor count of a query location: every sub-cell whose
  // representative lies within eps contributes its full count.
  auto approx_count = [&](std::span<const double> query,
                          const CellCoord& cell) {
    uint64_t count = 0;
    for (const grid::CellOffset& offset : stencil->offsets) {
      const CellCoord neighbor = cell.Translated({offset.data(), d});
      auto it = cell_to_subs.find(neighbor);
      if (it == cell_to_subs.end()) {
        continue;
      }
      for (uint32_t s : it->second) {
        const auto rep = points[sub_cells[s].representative];
        if (PointSet::SquaredDistance(query, rep) <= eps2) {
          count += sub_cells[s].count;
          if (count >= min_pts) {
            return count;
          }
        }
      }
    }
    return count;
  };

  // ---- Core marking of sub-cell representatives. ------------------------
  for (uint32_t s = 0; s < sub_cells.size(); ++s) {
    const uint32_t rep = sub_cells[s].representative;
    const CellCoord cell = CoordOf(points[rep], side, d);
    if (cell_is_dense(cell) || approx_count(points[rep], cell) >= min_pts) {
      sub_cells[s].core = 1;
    }
  }

  // ---- Cell-graph clustering over core representatives. ----------------
  // Two core sub-cells of the same eps-cell are always within eps of each
  // other (the cell diagonal is eps), so each cell's core sub-cells form
  // one component outright; cross-cell edges then need only the first
  // successful representative pair per cell pair — exactly the cell-level
  // merging that keeps RP-DBSCAN's cell graph tractable.
  UnionFind uf(sub_cells.size());
  for (const auto& [cell, subs] : cell_to_subs) {
    uint32_t first_core = UINT32_MAX;
    for (uint32_t s : subs) {
      if (!sub_cells[s].core) {
        continue;
      }
      if (first_core == UINT32_MAX) {
        first_core = s;
      } else {
        uf.Union(first_core, s);
      }
    }
  }
  for (const auto& [cell, subs] : cell_to_subs) {
    uint32_t anchor = UINT32_MAX;
    for (uint32_t s : subs) {
      if (sub_cells[s].core) {
        anchor = s;
        break;
      }
    }
    if (anchor == UINT32_MAX) {
      continue;  // no core sub-cell in this cell
    }
    for (const grid::CellOffset& offset : stencil->offsets) {
      const CellCoord neighbor = cell.Translated({offset.data(), d});
      if (!(cell < neighbor)) {
        continue;  // visit each cell pair once
      }
      auto it = cell_to_subs.find(neighbor);
      if (it == cell_to_subs.end()) {
        continue;
      }
      bool linked = false;
      for (uint32_t s : subs) {
        if (!sub_cells[s].core) {
          continue;
        }
        const auto rep = points[sub_cells[s].representative];
        for (uint32_t t : it->second) {
          if (!sub_cells[t].core) {
            continue;
          }
          if (PointSet::SquaredDistance(
                  rep, points[sub_cells[t].representative]) <= eps2) {
            uf.Union(s, t);
            linked = true;
            break;  // one edge joins the two cells' components
          }
        }
        if (linked) {
          break;
        }
      }
    }
  }
  std::unordered_map<uint32_t, uint32_t> roots;
  for (uint32_t s = 0; s < sub_cells.size(); ++s) {
    if (sub_cells[s].core) {
      roots.emplace(uf.Find(s), static_cast<uint32_t>(roots.size()));
    }
  }
  result.num_clusters = roots.size();

  // ---- Sub-cell classification. -----------------------------------------
  // RP-DBSCAN's point-count reduction: every decision is made once per
  // sub-cell through its representative, and all points of the sub-cell
  // inherit the label. A non-core sub-cell is "covered" (border) when its
  // representative lies within eps of some core representative. This
  // rep-to-rep granularity is what makes the output approximate: borderline
  // border points get declared noise when their representatives sit just
  // beyond eps (false-positive outliers — the superset tendency of Tables
  // IV-V), while a true outlier sharing a sub-cell with covered points is
  // absorbed into the border (the rare false negatives).
  std::vector<uint8_t> sub_is_outlier(sub_cells.size(), 0);
  for (uint32_t s = 0; s < sub_cells.size(); ++s) {
    if (sub_cells[s].core) {
      continue;
    }
    const auto rep = points[sub_cells[s].representative];
    const CellCoord cell = CoordOf(rep, side, d);
    if (cell_is_dense(cell)) {
      continue;  // exact: dense cells contain no noise (Lemma 1)
    }
    bool covered = false;
    for (const grid::CellOffset& offset : stencil->offsets) {
      const CellCoord neighbor = cell.Translated({offset.data(), d});
      auto it = cell_to_subs.find(neighbor);
      if (it == cell_to_subs.end()) {
        continue;
      }
      for (uint32_t t : it->second) {
        if (sub_cells[t].core &&
            PointSet::SquaredDistance(
                rep, points[sub_cells[t].representative]) <= eps2) {
          covered = true;
          break;
        }
      }
      if (covered) {
        break;
      }
    }
    sub_is_outlier[s] = covered ? 0 : 1;
  }

  // ---- Point labeling: inherit the sub-cell's label. ---------------------
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> sub_ids;
  sub_ids.reserve(sub_coords.size());
  for (uint32_t s = 0; s < sub_coords.size(); ++s) {
    sub_ids.emplace(sub_coords[s], s);
  }
  for (uint32_t i = 0; i < n; ++i) {
    const CellCoord sub = CoordOf(points[i], sub_side, d);
    auto it = sub_ids.find(sub);
    if (it != sub_ids.end() && sub_is_outlier[it->second]) {
      result.is_outlier[i] = 1;
      result.outliers.push_back(i);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace dbscout::baselines

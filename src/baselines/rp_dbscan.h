#ifndef DBSCOUT_BASELINES_RP_DBSCAN_H_
#define DBSCOUT_BASELINES_RP_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::baselines {

/// Configuration of the RP-DBSCAN-like approximate parallel DBSCAN.
struct RpDbscanParams {
  double eps = 1.0;
  int min_pts = 100;
  /// Approximation granularity: sub-cells have side rho * (eps/sqrt(d)).
  /// The authors' suggested default, used for all of the paper's
  /// experiments, is 0.01.
  double rho = 0.01;
  /// Random partitions whose per-partition sub-cell dictionaries are built
  /// independently and then merged (the source of RP-DBSCAN's negative
  /// partition-count scaling in Fig. 13).
  size_t num_partitions = 8;
  uint64_t seed = 7;

  Status Validate() const;
};

/// Output of an RP-DBSCAN run.
struct RpDbscanResult {
  /// Per-point outlier labels (1 = noise/outlier).
  std::vector<uint8_t> is_outlier;
  /// Outlier indices, ascending.
  std::vector<uint32_t> outliers;
  size_t num_clusters = 0;
  size_t num_cells = 0;
  /// Non-empty sub-cells in the merged two-level dictionary.
  size_t num_subcells = 0;
  /// Total sub-cell entries across per-partition dictionaries before the
  /// merge — grows with the partition count for the same data.
  size_t merged_entries = 0;
  double seconds = 0.0;
};

/// Approximate parallel DBSCAN in the style of RP-DBSCAN (Song & Lee,
/// SIGMOD'18): points are randomly partitioned; every partition builds a
/// two-level cell dictionary (eps-cells subdivided into rho-granular
/// sub-cells, each summarized by one representative point and a count);
/// dictionaries are merged and broadcast; core/noise decisions then use the
/// sub-cell summaries instead of the raw points.
///
/// The rho-approximation makes the outlier set inexact in exactly the way
/// the paper measures (Tables IV-V): coverage checks only see sub-cell
/// representatives, so some truly covered points are missed (false-positive
/// outliers, a superset tendency), while counts attributed to a whole
/// sub-cell through its representative occasionally promote a true outlier
/// to core (rare false negatives).
Result<RpDbscanResult> RpDbscan(const PointSet& points,
                                const RpDbscanParams& params);

}  // namespace dbscout::baselines

#endif  // DBSCOUT_BASELINES_RP_DBSCAN_H_

#include "cli/cli.h"

#include <fstream>
#include <string>
#include <vector>

#include "analysis/compare.h"
#include "analysis/kdistance.h"
#include "analysis/metrics.h"
#include "cli/flags.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/dbscout.h"
#include "core/incremental.h"
#include "data/io.h"
#include "datasets/geo.h"
#include "datasets/shapes.h"
#include "datasets/synthetic.h"
#include "external/external_detector.h"
#include "external/kdistance.h"
#include "obs/trace.h"

namespace dbscout::cli {
namespace {

constexpr const char* kUsage = R"(dbscout — density-based scalable outlier detection (DBSCOUT, ICDE'21)

usage: dbscout <command> [--flag=value ...]

commands:
  detect    --input=FILE --eps=X --min-pts=N
            [--format=csv|binary]           input format (default: by extension)
            [--engine=sequential|parallel|shared|external|incremental]
            [--partitions=P]                parallel engine partitions
            [--stripe-points=S]             external engine memory knob
            [--scores]                      also compute core distances
            [--output=FILE]                 write outlier indices (one per line)
            [--trace-out=FILE]              write a Chrome/Perfetto trace of
                                            the per-phase (and per-stripe /
                                            per-worker) execution spans
            run DBSCOUT; prints a summary, optionally writes the outliers

  kdist     --input=FILE --k=N [--format=...] [--sample=M] [--streaming]
            k-distance curve stats and the suggested eps (knee and upper
            elbow); --streaming reservoir-samples a binary file in one pass
            without loading it

  generate  --dataset=NAME --n=N --output=FILE [--seed=S]
            [--contamination=C] [--labels=FILE] [--format=csv|binary]
            datasets: blobs blobs-vd circles moons cluto-t4 cluto-t5
                      cluto-t7 cluto-t8 cure-t2 geolife osm

  compare   --reference=FILE --candidate=FILE
            diff two outlier-index files (TP/FP/FN, Tables IV-V style)

  evaluate  --labels=FILE --predicted=FILE
            F1/precision/recall of predicted outlier indices against 0/1 labels

  help      this text
)";

Result<PointSet> LoadInput(const std::string& path,
                           const std::string& format) {
  std::string fmt = format;
  if (fmt.empty()) {
    fmt = path.size() > 4 && path.substr(path.size() - 4) == ".csv"
              ? "csv"
              : "binary";
  }
  if (fmt == "csv") {
    return LoadPointsCsv(path);
  }
  if (fmt == "binary") {
    return LoadPointsBinary(path);
  }
  return Status::InvalidArgument("unknown --format=" + fmt);
}

Status WriteIndices(const std::string& path,
                    const std::vector<uint32_t>& indices) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot create file: " + path);
  }
  for (uint32_t i : indices) {
    out << i << '\n';
  }
  if (!out) {
    return Status::IoError("write failure: " + path);
  }
  return Status::OK();
}

Result<std::vector<uint32_t>> ReadIndices(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  std::vector<uint32_t> indices;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) {
      continue;
    }
    Result<uint64_t> value = ParseUint64(Trim(line));
    if (!value.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s line %zu: %s", path.c_str(), line_no,
                    value.status().message().c_str()));
    }
    indices.push_back(static_cast<uint32_t>(*value));
  }
  return indices;
}

Status CmdDetect(const Flags& flags, std::ostream& out) {
  DBSCOUT_RETURN_IF_ERROR(flags.CheckAllowed(
      {"input", "format", "eps", "min-pts", "engine", "partitions",
       "stripe-points", "scores", "output", "trace-out"}));
  DBSCOUT_RETURN_IF_ERROR(flags.CheckRequired({"input", "eps", "min-pts"}));
  const std::string input = flags.GetString("input");
  DBSCOUT_ASSIGN_OR_RETURN(const double eps, flags.GetDouble("eps", 0.0));
  DBSCOUT_ASSIGN_OR_RETURN(const uint64_t min_pts,
                           flags.GetUint("min-pts", 0));
  const std::string engine = flags.GetString("engine", "sequential");

  // Spans accumulate here while the detection runs; written out at the end
  // of whichever engine path executed.
  obs::TraceCollector trace;
  obs::TraceCollector* const trace_ptr =
      flags.Has("trace-out") ? &trace : nullptr;
  auto write_trace = [&]() -> Status {
    if (trace_ptr == nullptr) {
      return Status::OK();
    }
    return trace.WriteChromeJson(flags.GetString("trace-out"));
  };

  if (engine == "external") {
    external::ExternalParams params;
    params.eps = eps;
    params.min_pts = static_cast<int>(min_pts);
    params.trace = trace_ptr;
    DBSCOUT_ASSIGN_OR_RETURN(
        params.target_stripe_points,
        flags.GetUint("stripe-points", params.target_stripe_points));
    DBSCOUT_ASSIGN_OR_RETURN(auto detection,
                             external::DetectExternal(input, params));
    out << StrFormat(
        "external: %zu outliers, %llu core, %llu border | cells=%zu "
        "dense=%zu stripes=%zu spilled=%llu max-stripe=%zu | %.3fs\n",
        detection.num_outliers(),
        static_cast<unsigned long long>(detection.num_core),
        static_cast<unsigned long long>(detection.num_border),
        detection.num_cells, detection.num_dense_cells, detection.stripes,
        static_cast<unsigned long long>(detection.spilled_records),
        detection.max_stripe_points, detection.seconds);
    if (flags.Has("output")) {
      DBSCOUT_RETURN_IF_ERROR(
          WriteIndices(flags.GetString("output"), detection.outliers));
    }
    return write_trace();
  }

  DBSCOUT_ASSIGN_OR_RETURN(PointSet points,
                           LoadInput(input, flags.GetString("format")));
  core::Params params;
  params.eps = eps;
  params.min_pts = static_cast<int>(min_pts);
  params.compute_scores = flags.GetBool("scores");
  params.trace = trace_ptr;
  DBSCOUT_ASSIGN_OR_RETURN(const uint64_t partitions,
                           flags.GetUint("partitions", 0));
  params.num_partitions = partitions;
  if (engine == "incremental") {
    // Append-only maintenance: every point is inserted one at a time and
    // the labeling is exact after each insertion. This is the engine the
    // detection service (src/service) runs on; the CLI path feeds the
    // whole file through it as one stream.
    DBSCOUT_ASSIGN_OR_RETURN(
        core::IncrementalDetector detector,
        core::IncrementalDetector::Create(points.dims(), params));
    WallTimer timer;
    DBSCOUT_RETURN_IF_ERROR(detector.AddBatch(points));
    const double seconds = timer.ElapsedSeconds();
    const std::vector<uint32_t> outliers = detector.Outliers();
    out << StrFormat(
        "incremental: %zu points -> %zu outliers, %zu core | cells=%zu | "
        "%llu dist-comps | %.3fs\n",
        points.size(), outliers.size(), detector.num_core(),
        detector.num_cells(),
        static_cast<unsigned long long>(detector.distance_computations()),
        seconds);
    if (flags.Has("output")) {
      DBSCOUT_RETURN_IF_ERROR(
          WriteIndices(flags.GetString("output"), outliers));
    }
    return write_trace();
  }
  if (engine == "sequential") {
    params.engine = core::Engine::kSequential;
  } else if (engine == "parallel") {
    params.engine = core::Engine::kParallel;
  } else if (engine == "shared") {
    params.engine = core::Engine::kSharedMemory;
  } else {
    return Status::InvalidArgument("unknown --engine=" + engine);
  }
  DBSCOUT_ASSIGN_OR_RETURN(auto detection, core::Detect(points, params));
  out << StrFormat(
      "%s: %zu points -> %zu outliers, %zu core, %zu border | cells=%zu "
      "dense=%zu core-cells=%zu | %.3fs\n",
      core::EngineName(params.engine), points.size(),
      detection.num_outliers(), detection.num_core, detection.num_border,
      detection.num_cells, detection.num_dense_cells,
      detection.num_core_cells, detection.total_seconds);
  for (const auto& phase : detection.phases) {
    out << StrFormat("  %-15s %9.2f ms  %12llu dist-comps\n",
                     phase.name.c_str(), phase.seconds * 1e3,
                     static_cast<unsigned long long>(
                         phase.distance_computations));
  }
  if (params.compute_scores && !detection.outliers.empty()) {
    out << "top outliers by core distance:\n";
    std::vector<uint32_t> ranked = detection.outliers;
    std::sort(ranked.begin(), ranked.end(), [&](uint32_t a, uint32_t b) {
      return detection.core_distance[a] > detection.core_distance[b];
    });
    for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
      out << StrFormat("  #%u  core-distance=%g\n", ranked[i],
                       detection.core_distance[ranked[i]]);
    }
  }
  if (flags.Has("output")) {
    DBSCOUT_RETURN_IF_ERROR(
        WriteIndices(flags.GetString("output"), detection.outliers));
  }
  return write_trace();
}

Status CmdKdist(const Flags& flags, std::ostream& out) {
  DBSCOUT_RETURN_IF_ERROR(
      flags.CheckAllowed({"input", "format", "k", "sample", "streaming"}));
  DBSCOUT_RETURN_IF_ERROR(flags.CheckRequired({"input", "k"}));
  DBSCOUT_ASSIGN_OR_RETURN(const uint64_t k, flags.GetUint("k", 0));
  DBSCOUT_ASSIGN_OR_RETURN(const uint64_t sample, flags.GetUint("sample", 0));

  if (flags.GetBool("streaming")) {
    // Out-of-core path: one streaming pass, reservoir sample.
    DBSCOUT_ASSIGN_OR_RETURN(
        auto sampled,
        external::SampleKDistance(flags.GetString("input"),
                                  static_cast<int>(k),
                                  sample == 0 ? 5000 : sample));
    const auto& curve = sampled.curve;
    out << StrFormat(
        "streamed %llu points, sampled %zu | k=%d: max=%g median=%g "
        "min=%g\n",
        static_cast<unsigned long long>(sampled.total_points),
        sampled.sample_size, curve.k, curve.distances.front(),
        curve.distances[curve.distances.size() / 2],
        curve.distances.back());
    out << StrFormat(
        "suggested eps (sample-inflated, see docs): knee=%g "
        "upper-elbow=%g\n",
        curve.SuggestEps(), curve.SuggestEpsUpper());
    return Status::OK();
  }

  DBSCOUT_ASSIGN_OR_RETURN(
      PointSet points,
      LoadInput(flags.GetString("input"), flags.GetString("format")));
  DBSCOUT_ASSIGN_OR_RETURN(
      auto curve,
      analysis::ComputeKDistance(points, static_cast<int>(k), sample));
  out << StrFormat(
      "k=%d over %zu points: max=%g median=%g min=%g\n", curve.k,
      curve.distances.size(), curve.distances.front(),
      curve.distances[curve.distances.size() / 2], curve.distances.back());
  out << StrFormat("suggested eps: knee=%g upper-elbow=%g\n",
                   curve.SuggestEps(), curve.SuggestEpsUpper());
  return Status::OK();
}

Status CmdGenerate(const Flags& flags, std::ostream& out) {
  DBSCOUT_RETURN_IF_ERROR(flags.CheckAllowed(
      {"dataset", "n", "output", "seed", "contamination", "labels",
       "format"}));
  DBSCOUT_RETURN_IF_ERROR(flags.CheckRequired({"dataset", "n", "output"}));
  const std::string name = flags.GetString("dataset");
  DBSCOUT_ASSIGN_OR_RETURN(const uint64_t n, flags.GetUint("n", 0));
  DBSCOUT_ASSIGN_OR_RETURN(const uint64_t seed, flags.GetUint("seed", 1));
  DBSCOUT_ASSIGN_OR_RETURN(const double contamination,
                           flags.GetDouble("contamination", 0.02));

  PointSet points(2);
  std::vector<uint8_t> labels;
  bool labeled = true;
  if (name == "blobs") {
    auto ds = datasets::Blobs(n, contamination, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "blobs-vd") {
    auto ds = datasets::BlobsVariedDensity(n, contamination, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "circles") {
    auto ds = datasets::Circles(n, contamination, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "moons") {
    auto ds = datasets::Moons(n, contamination, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "cluto-t4") {
    auto ds = datasets::ClutoT4Like(n, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "cluto-t5") {
    auto ds = datasets::ClutoT5Like(n, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "cluto-t7") {
    auto ds = datasets::ClutoT7Like(n, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "cluto-t8") {
    auto ds = datasets::ClutoT8Like(n, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "cure-t2") {
    auto ds = datasets::CureT2Like(n, seed);
    points = std::move(ds.points);
    labels = std::move(ds.labels);
  } else if (name == "geolife") {
    points = datasets::GeolifeLike(n, seed);
    labeled = false;
  } else if (name == "osm") {
    points = datasets::OsmLike(n, seed);
    labeled = false;
  } else {
    return Status::InvalidArgument("unknown --dataset=" + name);
  }

  const std::string output = flags.GetString("output");
  const std::string format = flags.GetString("format", "binary");
  if (format == "csv") {
    DBSCOUT_RETURN_IF_ERROR(SavePointsCsv(output, points));
  } else if (format == "binary") {
    DBSCOUT_RETURN_IF_ERROR(SavePointsBinary(output, points));
  } else {
    return Status::InvalidArgument("unknown --format=" + format);
  }
  if (flags.Has("labels")) {
    if (!labeled) {
      return Status::InvalidArgument("--labels: dataset '" + name +
                                     "' has no ground-truth labels");
    }
    std::vector<uint32_t> outlier_indices;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i]) {
        outlier_indices.push_back(static_cast<uint32_t>(i));
      }
    }
    DBSCOUT_RETURN_IF_ERROR(
        WriteIndices(flags.GetString("labels"), outlier_indices));
  }
  out << StrFormat("wrote %zu points (%zud) to %s\n", points.size(),
                   points.dims(), output.c_str());
  return Status::OK();
}

Status CmdCompare(const Flags& flags, std::ostream& out) {
  DBSCOUT_RETURN_IF_ERROR(flags.CheckAllowed({"reference", "candidate"}));
  DBSCOUT_RETURN_IF_ERROR(flags.CheckRequired({"reference", "candidate"}));
  DBSCOUT_ASSIGN_OR_RETURN(auto reference,
                           ReadIndices(flags.GetString("reference")));
  DBSCOUT_ASSIGN_OR_RETURN(auto candidate,
                           ReadIndices(flags.GetString("candidate")));
  std::sort(reference.begin(), reference.end());
  std::sort(candidate.begin(), candidate.end());
  const auto diff = analysis::CompareOutlierSets(reference, candidate);
  out << StrFormat(
      "reference=%zu candidate=%zu | TP=%llu FP=%llu FN=%llu\n",
      reference.size(), candidate.size(),
      static_cast<unsigned long long>(diff.tp),
      static_cast<unsigned long long>(diff.fp),
      static_cast<unsigned long long>(diff.fn));
  return Status::OK();
}

Status CmdEvaluate(const Flags& flags, std::ostream& out) {
  DBSCOUT_RETURN_IF_ERROR(flags.CheckAllowed({"labels", "predicted"}));
  DBSCOUT_RETURN_IF_ERROR(flags.CheckRequired({"labels", "predicted"}));
  // Ground truth: a file of outlier indices plus the total implied by the
  // largest predicted/true index is ambiguous, so labels are given as a
  // numeric CSV of 0/1 rows.
  DBSCOUT_ASSIGN_OR_RETURN(NumericCsv labels_csv,
                           ReadNumericCsv(flags.GetString("labels")));
  if (labels_csv.cols != 1) {
    return Status::InvalidArgument("--labels must be a single-column 0/1 CSV");
  }
  std::vector<uint8_t> truth(labels_csv.rows);
  for (size_t i = 0; i < labels_csv.rows; ++i) {
    truth[i] = labels_csv.values[i] != 0.0;
  }
  DBSCOUT_ASSIGN_OR_RETURN(auto predicted,
                           ReadIndices(flags.GetString("predicted")));
  const auto confusion = analysis::ConfusionFromIndices(truth, predicted);
  out << StrFormat(
      "precision=%.5f recall=%.5f F1=%.5f | TP=%llu FP=%llu FN=%llu "
      "TN=%llu\n",
      confusion.Precision(), confusion.Recall(), confusion.F1(),
      static_cast<unsigned long long>(confusion.tp),
      static_cast<unsigned long long>(confusion.fp),
      static_cast<unsigned long long>(confusion.fn),
      static_cast<unsigned long long>(confusion.tn));
  return Status::OK();
}

}  // namespace

int RunCli(int argc, const char* const* argv, std::ostream& out,
           std::ostream& err) {
  Result<Flags> flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    err << "error: " << flags.status().message() << "\n" << kUsage;
    return 2;
  }
  const std::string& command = flags->command();
  Status status;
  if (command == "detect") {
    status = CmdDetect(*flags, out);
  } else if (command == "kdist") {
    status = CmdKdist(*flags, out);
  } else if (command == "generate") {
    status = CmdGenerate(*flags, out);
  } else if (command == "compare") {
    status = CmdCompare(*flags, out);
  } else if (command == "evaluate") {
    status = CmdEvaluate(*flags, out);
  } else if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  } else {
    err << "error: unknown command '" << command << "'\n" << kUsage;
    return 2;
  }
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace dbscout::cli

#ifndef DBSCOUT_CLI_CLI_H_
#define DBSCOUT_CLI_CLI_H_

#include <ostream>

namespace dbscout::cli {

/// Entry point of the `dbscout` command-line tool (tools/dbscout_main.cc is
/// a thin wrapper). Streams are injected so tests can drive the tool
/// in-process. Returns a process exit code.
///
/// Commands:
///   detect    run DBSCOUT on a CSV/binary point file
///   kdist     k-distance curve and suggested eps (parameter selection)
///   generate  write one of the library's datasets to a file
///   compare   diff two outlier-index files (TP/FP/FN)
///   evaluate  score predicted outliers against 0/1 ground-truth labels
///   help      usage
int RunCli(int argc, const char* const* argv, std::ostream& out,
           std::ostream& err);

}  // namespace dbscout::cli

#endif  // DBSCOUT_CLI_CLI_H_

#include "cli/flags.h"

#include "common/str_util.h"

namespace dbscout::cli {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  if (argc < 2) {
    return Status::InvalidArgument("missing command");
  }
  flags.command_ = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.size() < 3 || token[0] != '-' || token[1] != '-') {
      return Status::InvalidArgument("expected --flag[=value], got: " + token);
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      flags.values_[token.substr(2)] = "";
    } else {
      flags.values_[token.substr(2, eq - 2)] = token.substr(eq + 1);
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  Result<double> parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("--" + name + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<uint64_t> Flags::GetUint(const std::string& name,
                                uint64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  Result<uint64_t> parsed = ParseUint64(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("--" + name + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Status Flags::CheckAllowed(const std::vector<std::string>& allowed) const {
  for (const auto& [name, value] : values_) {
    bool known = false;
    for (const auto& candidate : allowed) {
      known |= candidate == name;
    }
    if (!known) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
  }
  return Status::OK();
}

Status Flags::CheckRequired(const std::vector<std::string>& required) const {
  for (const auto& name : required) {
    if (!Has(name)) {
      return Status::InvalidArgument("missing required flag --" + name);
    }
  }
  return Status::OK();
}

}  // namespace dbscout::cli

#ifndef DBSCOUT_CLI_FLAGS_H_
#define DBSCOUT_CLI_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace dbscout::cli {

/// Parsed command line of the form:
///   dbscout <command> --flag=value --switch ...
/// Flags are "--name=value" or bare "--name" (value ""). Positional
/// arguments after the command are rejected (every input is a named flag,
/// which keeps invocations self-describing in shell history).
class Flags {
 public:
  /// Parses argv[1..); argv[1] is the command. Fails on malformed tokens.
  static Result<Flags> Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  bool Has(const std::string& name) const {
    return values_.find(name) != values_.end();
  }

  /// Typed getters: error when present-but-malformed, fallback when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<uint64_t> GetUint(const std::string& name, uint64_t fallback) const;
  bool GetBool(const std::string& name) const { return Has(name); }

  /// Returns an error naming any flag not in `allowed` (typo protection).
  Status CheckAllowed(const std::vector<std::string>& allowed) const;

  /// Returns an error naming any flag of `required` that is missing.
  Status CheckRequired(const std::vector<std::string>& required) const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
};

}  // namespace dbscout::cli

#endif  // DBSCOUT_CLI_FLAGS_H_

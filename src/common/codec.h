#ifndef DBSCOUT_COMMON_CODEC_H_
#define DBSCOUT_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/str_util.h"

namespace dbscout {

/// Little-endian binary append/read helpers shared by every framed
/// encoding in the repo: the service wire protocol and the storage WAL
/// and snapshot files speak the same byte discipline, so a payload
/// recorded by one layer is decodable by the other's tooling. memcpy
/// keeps this alignment- and strict-aliasing-safe; on LE hosts it
/// compiles to a plain store/load.
template <typename T>
void Put(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint8_t raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  // push_back per byte rather than insert(): GCC 12 mis-fires
  // -Wstringop-overflow on single-byte range inserts.
  for (uint8_t b : raw) {
    out->push_back(b);
  }
}

// resize + memcpy rather than range insert(): same GCC 12 misfire as
// above. The pragma shields the resize itself — once these are inlined
// from a header GCC 12 also mis-models vector::resize's memset as
// writing into a zero-size region.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
inline void PutBytes(std::vector<uint8_t>* out, const std::string& s) {
  const size_t old_size = out->size();
  out->resize(old_size + s.size());
  if (!s.empty()) {
    std::memcpy(out->data() + old_size, s.data(), s.size());
  }
}

inline void PutString(std::vector<uint8_t>* out, const std::string& s) {
  Put<uint16_t>(out, static_cast<uint16_t>(s.size()));
  PutBytes(out, s);
}

inline void PutDoubles(std::vector<uint8_t>* out,
                       std::span<const double> values) {
  const size_t old_size = out->size();
  out->resize(old_size + values.size() * sizeof(double));
  if (!values.empty()) {
    std::memcpy(out->data() + old_size, values.data(),
                values.size() * sizeof(double));
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// Bounds-checked sequential reader over a payload. Every Read checks
/// the remaining length before touching memory, so embedded lengths are
/// never trusted and a truncated or hostile payload yields a clean
/// InvalidArgument instead of an out-of-bounds read.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  template <typename T>
  Result<T> Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) {
      return Truncated();
    }
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  Result<std::string> ReadString(size_t max_len) {
    DBSCOUT_ASSIGN_OR_RETURN(const uint16_t len, Read<uint16_t>());
    if (len > max_len) {
      return Status::InvalidArgument(
          StrFormat("string length %u exceeds cap %zu", len, max_len));
    }
    if (data_.size() - pos_ < len) {
      return Truncated();
    }
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return out;
  }

  Result<std::string> ReadBytes(uint64_t count) {
    if (data_.size() - pos_ < count) {
      return Truncated();
    }
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                    count);
    pos_ += count;
    return out;
  }

  Result<std::vector<double>> ReadDoubles(uint64_t count) {
    if ((data_.size() - pos_) / sizeof(double) < count) {
      return Truncated();
    }
    std::vector<double> out(count);
    std::memcpy(out.data(), data_.data() + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
    return out;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }

  Status Truncated() const {
    return Status::InvalidArgument(
        StrFormat("malformed frame: truncated at byte %zu of %zu", pos_,
                  data_.size()));
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_CODEC_H_

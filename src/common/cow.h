#ifndef DBSCOUT_COMMON_COW_H_
#define DBSCOUT_COMMON_COW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace dbscout {

/// Chunked, copy-on-write growable array built for a single-writer /
/// many-reader regime with explicit snapshot points:
///
///  - One writer appends and overwrites entries through this object.
///  - Freeze() produces a FrozenChunkedVector: an immutable view of the
///    first size() entries that shares the chunk storage (O(size/chunk)
///    pointer copies, no element copies).
///  - After a Freeze, the first overwrite of an entry inside a frozen chunk
///    clones that chunk (copy-on-write), so frozen views never observe the
///    change. Appends never clone: they write slots at indices >= every
///    frozen view's size, which no reader dereferences. Publishing a frozen
///    view to another thread therefore only needs a release/acquire edge on
///    the view pointer itself (the detection service publishes snapshots
///    through an atomic shared_ptr).
///
/// This is the storage idiom behind the service's epoch snapshots: labels
/// mutate sparsely per insertion (a rescue flips an old entry), so cloning
/// only touched chunks keeps snapshot publication O(changed) instead of
/// O(n).
template <typename T>
class CowChunkedVector {
 public:
  /// 1024 entries per chunk: big enough to amortize the shared_ptr
  /// bookkeeping, small enough that a clone after a sparse write is cheap.
  static constexpr size_t kChunkShift = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;

 private:
  struct Chunk {
    T data[kChunkSize];
  };

 public:

  CowChunkedVector() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Reads entry i (writer-side view; readers go through a frozen view).
  T operator[](size_t i) const {
    return chunks_[i >> kChunkShift]->data[i & (kChunkSize - 1)];
  }

  /// Appends one entry. Never clones: the slot is beyond every frozen
  /// view's bound, so writing it in a shared chunk is race-free.
  void PushBack(T value) {
    const size_t chunk = size_ >> kChunkShift;
    if (chunk == chunks_.size()) {
      chunks_.push_back(std::make_shared<Chunk>());
      chunk_owner_serial_.push_back(freeze_serial_);
    }
    chunks_[chunk]->data[size_ & (kChunkSize - 1)] = value;
    ++size_;
  }

  /// Overwrites entry i, cloning its chunk first if any frozen view may
  /// still reference it (i.e. the chunk predates the latest Freeze()).
  void Set(size_t i, T value) {
    const size_t chunk = i >> kChunkShift;
    if (chunk_owner_serial_[chunk] != freeze_serial_) {
      chunks_[chunk] = std::make_shared<Chunk>(*chunks_[chunk]);
      chunk_owner_serial_[chunk] = freeze_serial_;
    }
    chunks_[chunk]->data[i & (kChunkSize - 1)] = value;
  }

  /// Immutable view of the current contents; O(size/kChunkSize).
  class Frozen {
   public:
    Frozen() = default;
    size_t size() const { return size_; }
    T operator[](size_t i) const {
      return chunks_[i >> kChunkShift]->data[i & (kChunkSize - 1)];
    }

   private:
    friend class CowChunkedVector;
    std::vector<std::shared_ptr<const Chunk>> chunks_;
    size_t size_ = 0;
  };

  Frozen Freeze() {
    Frozen view;
    view.chunks_.assign(chunks_.begin(), chunks_.end());
    view.size_ = size_;
    ++freeze_serial_;
    return view;
  }

 private:
  std::vector<std::shared_ptr<Chunk>> chunks_;
  /// Serial at which each chunk was created/cloned; a chunk is exclusively
  /// owned (safe to overwrite in place) iff its serial matches the current
  /// freeze serial.
  std::vector<uint64_t> chunk_owner_serial_;
  size_t size_ = 0;
  uint64_t freeze_serial_ = 0;
};

/// Append-only chunked row store for fixed-width rows of doubles (the
/// service-side point storage). Rows are immutable once written, so frozen
/// views share all chunks unconditionally and appends never clone; each row
/// is contiguous within one chunk so readers get a std::span per point.
class ChunkedRows {
 public:
  static constexpr size_t kRowsPerChunk = 1024;

  explicit ChunkedRows(size_t width = 2) : width_(width) {}

  size_t width() const { return width_; }
  size_t size() const { return rows_; }

  std::span<const double> operator[](size_t i) const {
    return {chunks_[i / kRowsPerChunk]->data() +
                (i % kRowsPerChunk) * width_,
            width_};
  }

  /// Appends one row; `row` must have exactly width() entries.
  void PushBack(std::span<const double> row) {
    const size_t chunk = rows_ / kRowsPerChunk;
    if (chunk == chunks_.size()) {
      chunks_.push_back(
          std::make_shared<std::vector<double>>(kRowsPerChunk * width_));
    }
    double* dst =
        chunks_[chunk]->data() + (rows_ % kRowsPerChunk) * width_;
    for (size_t k = 0; k < width_; ++k) {
      dst[k] = row[k];
    }
    ++rows_;
  }

  /// Immutable view of the first size() rows.
  class Frozen {
   public:
    Frozen() = default;
    size_t size() const { return rows_; }
    size_t width() const { return width_; }
    std::span<const double> operator[](size_t i) const {
      return {chunks_[i / kRowsPerChunk]->data() +
                  (i % kRowsPerChunk) * width_,
              width_};
    }

   private:
    friend class ChunkedRows;
    std::vector<std::shared_ptr<const std::vector<double>>> chunks_;
    size_t rows_ = 0;
    size_t width_ = 0;
  };

  Frozen Freeze() const {
    Frozen view;
    view.chunks_.assign(chunks_.begin(), chunks_.end());
    view.rows_ = rows_;
    view.width_ = width_;
    return view;
  }

 private:
  size_t width_;
  size_t rows_ = 0;
  std::vector<std::shared_ptr<std::vector<double>>> chunks_;
};

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_COW_H_

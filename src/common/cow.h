#ifndef DBSCOUT_COMMON_COW_H_
#define DBSCOUT_COMMON_COW_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_annotations.h"

namespace dbscout {

/// Chunked, copy-on-write growable array built for a phased writer /
/// many-reader regime with explicit snapshot points:
///
///  - Structural operations (PushBack, Freeze) are single-writer: exactly
///    one thread, with no concurrent access of any kind.
///  - Between structural operations, multiple worker threads may call
///    Set() and operator[] concurrently as long as no two threads touch
///    the same index ("disjoint-index phase"). The sharded apply pipeline
///    uses this: stripe tasks overwrite labels/counts for their own points
///    while reading neighbors owned by no concurrent writer.
///  - Freeze() produces an immutable view of the first size() entries that
///    shares the chunk storage (O(size/chunk) pointer copies, no element
///    copies).
///  - After a Freeze, the first overwrite of an entry inside a frozen chunk
///    clones that chunk (copy-on-write), so frozen views never observe the
///    change. Appends never clone: they write slots at indices >= every
///    frozen view's size, which no reader dereferences. Publishing a frozen
///    view to another thread therefore only needs a release/acquire edge on
///    the view pointer itself (the detection service publishes snapshots
///    through an atomic shared_ptr).
///
/// Concurrency protocol for the disjoint-index phase: each chunk carries an
/// atomic owner serial and an atomic "live" chunk pointer. Set() fast-paths
/// on serial == freeze serial; on mismatch it takes the per-vector clone
/// mutex, re-checks, clones, then publishes the fresh chunk with a release
/// store of the live pointer before the release store of the serial.
/// Readers acquire-load the live pointer, so they see either the old chunk
/// (valid: nothing writes old chunks once a freeze interposed) or the fully
/// copied new one. Old chunks displaced mid-phase are parked on a retire
/// list (raw live pointers loaded by in-flight readers must outlive the
/// phase) and released at the next structural operation.
///
/// This is the storage idiom behind the service's epoch snapshots: labels
/// mutate sparsely per insertion (a rescue flips an old entry), so cloning
/// only touched chunks keeps snapshot publication O(changed) instead of
/// O(n).
template <typename T>
class CowChunkedVector {
 public:
  /// 1024 entries per chunk: big enough to amortize the shared_ptr
  /// bookkeeping, small enough that a clone after a sparse write is cheap.
  static constexpr size_t kChunkShift = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;

 private:
  struct Chunk {
    T data[kChunkSize];
  };

  /// Per-chunk bookkeeping. `owner` holds the lifetime; `live` is what
  /// readers dereference (always == owner.get(), but atomically
  /// publishable); `serial` says which freeze period the chunk was created
  /// or cloned in. Movable (for vector growth during single-writer
  /// appends), never copied.
  struct Slot {
    std::shared_ptr<Chunk> owner;
    std::atomic<Chunk*> live;
    std::atomic<uint64_t> serial;

    Slot(std::shared_ptr<Chunk> chunk, uint64_t created_serial)
        : owner(std::move(chunk)), live(owner.get()), serial(created_serial) {}
    Slot(Slot&& other) noexcept
        : owner(std::move(other.owner)),
          live(other.live.load(std::memory_order_relaxed)),
          serial(other.serial.load(std::memory_order_relaxed)) {}
    Slot& operator=(Slot&&) = delete;
  };

 public:
  CowChunkedVector() = default;
  CowChunkedVector(CowChunkedVector&&) noexcept = default;
  CowChunkedVector& operator=(CowChunkedVector&&) noexcept = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Reads entry i. Safe concurrently with disjoint-index Set() calls on
  /// other threads: the acquire load pairs with Set()'s release publication
  /// of a cloned chunk.
  T operator[](size_t i) const {
    return chunks_[i >> kChunkShift]
        .live.load(std::memory_order_acquire)
        ->data[i & (kChunkSize - 1)];
  }

  /// Appends one entry (structural: single-writer, no concurrent access).
  /// Never clones: the slot is beyond every frozen view's bound, so
  /// writing it in a shared chunk is race-free.
  void PushBack(T value) {
    const size_t chunk = size_ >> kChunkShift;
    if (chunk == chunks_.size()) {
      chunks_.emplace_back(std::make_shared<Chunk>(), freeze_serial_);
    }
    chunks_[chunk].live.load(std::memory_order_relaxed)
        ->data[size_ & (kChunkSize - 1)] = value;
    ++size_;
  }

  /// Overwrites entry i, cloning its chunk first if any frozen view may
  /// still reference it (i.e. the chunk predates the latest Freeze()).
  /// Callable from multiple threads concurrently when every thread's index
  /// set is disjoint; first writers to a stale chunk serialize on the
  /// clone mutex.
  void Set(size_t i, T value) { *MutableSlot(i) = value; }

  /// Writable pointer to entry i, cloning its chunk first under the same
  /// protocol as Set(). The pointer stays valid for the rest of the
  /// current phase (chunks displaced later in the phase are retired, not
  /// freed) — hot read-modify-write loops use this to pay the clone check
  /// once per access instead of once per read plus once per write.
  T* MutableSlot(size_t i) {
    Slot& slot = chunks_[i >> kChunkShift];
    if (slot.serial.load(std::memory_order_acquire) != freeze_serial_) {
      MutexLock lock(*clone_mu_);
      if (slot.serial.load(std::memory_order_relaxed) != freeze_serial_) {
        auto fresh = std::make_shared<Chunk>(*slot.owner);
        retired_.push_back(std::move(slot.owner));
        slot.owner = std::move(fresh);
        slot.live.store(slot.owner.get(), std::memory_order_release);
        slot.serial.store(freeze_serial_, std::memory_order_release);
      }
    }
    return slot.live.load(std::memory_order_acquire)->data +
           (i & (kChunkSize - 1));
  }

  /// Immutable view of the current contents; O(size/kChunkSize).
  class Frozen {
   public:
    Frozen() = default;
    size_t size() const { return size_; }
    T operator[](size_t i) const {
      return chunks_[i >> kChunkShift]->data[i & (kChunkSize - 1)];
    }

   private:
    friend class CowChunkedVector;
    std::vector<std::shared_ptr<const Chunk>> chunks_;
    size_t size_ = 0;
  };

  /// Structural: single-writer, no concurrent access. Releases chunks
  /// retired by mid-phase clones (no in-flight raw reader can outlive the
  /// phase barrier that precedes a structural call).
  Frozen Freeze() {
    Frozen view;
    view.chunks_.reserve(chunks_.size());
    for (const Slot& slot : chunks_) {
      view.chunks_.push_back(slot.owner);
    }
    view.size_ = size_;
    ++freeze_serial_;
    {
      // Structurally single-writer (no clone can race a Freeze), but taking
      // the mutex keeps the guarded-by contract checkable and costs one
      // uncontended lock per freeze.
      MutexLock lock(*clone_mu_);
      retired_.clear();
    }
    return view;
  }

 private:
  std::vector<Slot> chunks_;
  /// Old chunks displaced by mid-phase clones, kept alive until the next
  /// structural operation so concurrent readers' raw `live` pointers stay
  /// valid.
  std::vector<std::shared_ptr<Chunk>> retired_ DBSCOUT_GUARDED_BY(*clone_mu_);
  /// Serializes first-touch clones; unique_ptr keeps the vector movable.
  std::unique_ptr<Mutex> clone_mu_ = std::make_unique<Mutex>();
  size_t size_ = 0;
  /// Bumped by Freeze(); a chunk is exclusively owned (safe to overwrite
  /// in place) iff its serial matches. Written only during structural
  /// operations, read-only during concurrent phases.
  uint64_t freeze_serial_ = 0;
};

/// Append-only chunked row store for fixed-width rows of doubles (the
/// service-side point storage). Rows are immutable once written, so frozen
/// views share all chunks unconditionally and appends never clone; each row
/// is contiguous within one chunk so readers get a std::span per point.
class ChunkedRows {
 public:
  static constexpr size_t kRowsPerChunk = 1024;

  explicit ChunkedRows(size_t width = 2) : width_(width) {}

  size_t width() const { return width_; }
  size_t size() const { return rows_; }

  std::span<const double> operator[](size_t i) const {
    return {chunks_[i / kRowsPerChunk]->data() +
                (i % kRowsPerChunk) * width_,
            width_};
  }

  /// Appends one row; `row` must have exactly width() entries.
  void PushBack(std::span<const double> row) {
    const size_t chunk = rows_ / kRowsPerChunk;
    if (chunk == chunks_.size()) {
      chunks_.push_back(
          std::make_shared<std::vector<double>>(kRowsPerChunk * width_));
    }
    double* dst =
        chunks_[chunk]->data() + (rows_ % kRowsPerChunk) * width_;
    for (size_t k = 0; k < width_; ++k) {
      dst[k] = row[k];
    }
    ++rows_;
  }

  /// Immutable view of the first size() rows.
  class Frozen {
   public:
    Frozen() = default;
    size_t size() const { return rows_; }
    size_t width() const { return width_; }
    std::span<const double> operator[](size_t i) const {
      return {chunks_[i / kRowsPerChunk]->data() +
                  (i % kRowsPerChunk) * width_,
              width_};
    }

   private:
    friend class ChunkedRows;
    std::vector<std::shared_ptr<const std::vector<double>>> chunks_;
    size_t rows_ = 0;
    size_t width_ = 0;
  };

  Frozen Freeze() const {
    Frozen view;
    view.chunks_.assign(chunks_.begin(), chunks_.end());
    view.rows_ = rows_;
    view.width_ = width_;
    return view;
  }

 private:
  size_t width_;
  size_t rows_ = 0;
  std::vector<std::shared_ptr<std::vector<double>>> chunks_;
};

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_COW_H_

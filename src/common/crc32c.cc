#include "common/crc32c.h"

#include <array>

namespace dbscout {
namespace {

// Reflected CRC-32C table, built once at static-init time. A 256-entry
// byte-at-a-time table keeps the implementation portable (no SSE4.2
// requirement) while still hashing ~1 GB/s — the WAL fsync, not the
// checksum, is the durability bottleneck.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t len) {
  const std::array<uint32_t, 256>& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFF];
  }
  return ~crc;
}

uint32_t Crc32c(std::span<const uint8_t> data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace dbscout

#ifndef DBSCOUT_COMMON_CRC32C_H_
#define DBSCOUT_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace dbscout {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum the storage layer stamps on every WAL frame and snapshot
/// file. Chosen over plain CRC-32 for its better burst-error detection;
/// this is the same polynomial iSCSI, ext4, and LevelDB/RocksDB use, so
/// recorded files are checkable with standard tooling.
uint32_t Crc32c(std::span<const uint8_t> data);

/// Incremental form: feed `crc` the previous return value (or 0 for the
/// first chunk) to checksum data arriving in pieces.
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t len);

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_CRC32C_H_

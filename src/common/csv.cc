#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace dbscout {

Result<NumericCsv> ParseNumericCsv(std::string_view text,
                                   const CsvOptions& options) {
  NumericCsv out;
  size_t line_no = 0;
  size_t begin = 0;
  int rows_to_skip = options.skip_rows;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view line = text.substr(begin, end - begin);
    const bool last = end == text.size();
    begin = end + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (rows_to_skip > 0) {
      --rows_to_skip;
      if (last) break;
      continue;
    }
    if (Trim(line).empty()) {
      if (last) break;
      if (options.allow_blank_lines) continue;
      return Status::InvalidArgument(
          StrFormat("blank line at line %zu", line_no));
    }
    const auto fields = Split(line, options.separator);
    if (out.rows == 0) {
      out.cols = fields.size();
    } else if (fields.size() != out.cols) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), out.cols));
    }
    for (const auto& field : fields) {
      Result<double> value = ParseDouble(field);
      if (!value.ok()) {
        return Status::InvalidArgument(StrFormat(
            "line %zu: %s", line_no, value.status().message().c_str()));
      }
      out.values.push_back(*value);
    }
    ++out.rows;
    if (last) break;
  }
  return out;
}

Result<NumericCsv> ReadNumericCsv(const std::string& path,
                                  const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failure: " + path);
  }
  const std::string text = buffer.str();
  Result<NumericCsv> parsed = ParseNumericCsv(text, options);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

Status WriteNumericCsv(const std::string& path, const double* values,
                       size_t rows, size_t cols, char separator) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot create file: " + path);
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c != 0) {
        std::fputc(separator, f);
      }
      std::fprintf(f, "%.17g", values[r * cols + c]);
    }
    std::fputc('\n', f);
  }
  if (std::fclose(f) != 0) {
    return Status::IoError("write failure: " + path);
  }
  return Status::OK();
}

}  // namespace dbscout

#ifndef DBSCOUT_COMMON_CSV_H_
#define DBSCOUT_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace dbscout {

/// Options for ReadNumericCsv.
struct CsvOptions {
  char separator = ',';
  /// Skip this many leading lines (e.g. a header row).
  int skip_rows = 0;
  /// When true, blank lines anywhere in the file are skipped; otherwise a
  /// blank line is an error.
  bool allow_blank_lines = true;
};

/// A parsed numeric CSV: `values` holds rows*cols doubles row-major.
struct NumericCsv {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> values;
};

/// Reads a strictly numeric CSV file. Every data row must have the same
/// number of fields; malformed numbers or ragged rows produce
/// InvalidArgument with the offending line number.
Result<NumericCsv> ReadNumericCsv(const std::string& path,
                                  const CsvOptions& options = {});

/// Parses numeric CSV from an in-memory buffer (same contract as
/// ReadNumericCsv).
Result<NumericCsv> ParseNumericCsv(std::string_view text,
                                   const CsvOptions& options = {});

/// Writes rows*cols doubles (row-major) as CSV with "%.17g" precision so a
/// write/read round-trip is lossless.
Status WriteNumericCsv(const std::string& path, const double* values,
                       size_t rows, size_t cols, char separator = ',');

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_CSV_H_

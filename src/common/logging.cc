#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace dbscout {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message) {
  static std::mutex mu;
  const auto now = std::chrono::system_clock::now();
  const std::time_t now_t = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
  localtime_r(&now_t, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);

  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    std::fprintf(stderr, "%s %s.%03d %s:%d] %s\n", LevelTag(level), ts,
                 static_cast<int>(ms), base, line, message.c_str());
    std::fflush(stderr);
  }
  if (level == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace dbscout

#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <utility>

#include "common/thread_annotations.h"

namespace dbscout {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Emit mutex plus the installed sink it guards, as one struct so the
/// guarded-by relation is expressible. Function-local static (leaked) so
/// logging works during static initialization of other TUs.
struct Emitter {
  Mutex mu;
  std::function<void(const LogRecord&)> sink DBSCOUT_GUARDED_BY(mu);
};

Emitter& GlobalEmitter() {
  static Emitter* const emitter = new Emitter;
  return *emitter;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessStart())
      .count();
}

void SetLogSink(std::function<void(const LogRecord&)> sink) {
  Emitter& emitter = GlobalEmitter();
  MutexLock lock(emitter.mu);
  emitter.sink = std::move(sink);
}

namespace internal {

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t now_t = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
  localtime_r(&now_t, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);

  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }

  LogRecord record;
  record.level = level;
  record.file = base;
  record.line = line;
  record.thread_id = CurrentThreadId();
  record.mono_seconds = MonotonicSeconds();
  record.message = message;

  {
    Emitter& emitter = GlobalEmitter();
    MutexLock lock(emitter.mu);
    if (emitter.sink) {
      emitter.sink(record);
    } else {
      std::fprintf(stderr, "%s %s.%03d %10.6f T%u %s:%d] %s\n",
                   LevelTag(level), ts, static_cast<int>(ms),
                   record.mono_seconds, record.thread_id, base, line,
                   message.c_str());
      std::fflush(stderr);
    }
    // Abort while still holding the emit lock: a second thread racing into
    // its own kFatal blocks on the mutex instead of interleaving its
    // message with this one's final line.
    if (level == LogLevel::kFatal) {
      std::abort();
    }
  }
}

}  // namespace internal
}  // namespace dbscout

#ifndef DBSCOUT_COMMON_LOGGING_H_
#define DBSCOUT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dbscout {

/// Severity levels for the library logger. kFatal aborts the process after
/// emitting the message.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level; messages below it are dropped. The default
/// is kInfo. Thread-safe.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line to stderr (thread-safe); aborts on kFatal.
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message);

/// Stream-style log-message collector used by the DBSCOUT_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dbscout

/// Stream-style logging: DBSCOUT_LOG(kInfo) << "built grid with " << n;
#define DBSCOUT_LOG(level)                                             \
  if (::dbscout::LogLevel::level < ::dbscout::GetLogLevel()) {         \
  } else                                                               \
    ::dbscout::internal::LogMessage(::dbscout::LogLevel::level,        \
                                    __FILE__, __LINE__)                \
        .stream()

/// Always-on invariant check (enabled in release builds too); logs the failed
/// condition and aborts.
#define DBSCOUT_CHECK(cond)                                          \
  if (cond) {                                                        \
  } else                                                             \
    ::dbscout::internal::LogMessage(::dbscout::LogLevel::kFatal,     \
                                    __FILE__, __LINE__)              \
            .stream()                                                \
        << "Check failed: " #cond " "

#endif  // DBSCOUT_COMMON_LOGGING_H_

#ifndef DBSCOUT_COMMON_LOGGING_H_
#define DBSCOUT_COMMON_LOGGING_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace dbscout {

/// Severity levels for the library logger. kFatal aborts the process after
/// emitting the message.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level; messages below it are dropped. The default
/// is kInfo. Thread-safe.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

/// Small dense id of the calling thread (0, 1, 2, ... in first-use order),
/// stable for the thread's lifetime. Appears in every log line and in trace
/// spans, so the two can be correlated. Cheaper and shorter than the opaque
/// std::thread::id.
uint32_t CurrentThreadId();

/// Monotonic seconds since the process logger was first used (steady
/// clock). The timestamp printed on every log line.
double MonotonicSeconds();

/// One structured log line, as delivered to a log sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";  // basename, static lifetime (__FILE__)
  int line = 0;
  uint32_t thread_id = 0;
  double mono_seconds = 0.0;  // MonotonicSeconds() at emit time
  std::string message;
};

/// Redirects log lines to `sink` instead of stderr (pass nullptr to restore
/// stderr). The sink is called under the logger's emit mutex — it must not
/// log. Used by tests and by the service to capture structured lines.
/// Thread-safe; kFatal still aborts after the sink returns.
void SetLogSink(std::function<void(const LogRecord&)> sink);

namespace internal {

/// Emits one formatted log line to stderr or the installed sink
/// (thread-safe); aborts on kFatal while still holding the emit lock, so
/// two racing fatals cannot interleave their abort messages.
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message);

/// Stream-style log-message collector used by the DBSCOUT_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dbscout

/// Stream-style logging: DBSCOUT_LOG(kInfo) << "built grid with " << n;
#define DBSCOUT_LOG(level)                                             \
  if (::dbscout::LogLevel::level < ::dbscout::GetLogLevel()) {         \
  } else                                                               \
    ::dbscout::internal::LogMessage(::dbscout::LogLevel::level,        \
                                    __FILE__, __LINE__)                \
        .stream()

/// Always-on invariant check (enabled in release builds too); logs the failed
/// condition and aborts.
#define DBSCOUT_CHECK(cond)                                          \
  if (cond) {                                                        \
  } else                                                             \
    ::dbscout::internal::LogMessage(::dbscout::LogLevel::kFatal,     \
                                    __FILE__, __LINE__)              \
            .stream()                                                \
        << "Check failed: " #cond " "

#endif  // DBSCOUT_COMMON_LOGGING_H_

#ifndef DBSCOUT_COMMON_RESULT_H_
#define DBSCOUT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dbscout {

/// Result<T> carries either a value of type T or a non-OK Status. It is the
/// return type of fallible library functions that produce a value.
///
/// Usage:
///   Result<PointSet> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   PointSet points = std::move(r).value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Constructing from an OK
  /// status without a value is a programming error and is normalized to
  /// kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return value_.has_value(); }

  /// The status: OK() when a value is present.
  const Status& status() const { return status_; }

  /// Accessors require ok(); enforced with assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a value.
};

#define DBSCOUT_MACRO_CONCAT_INNER_(a, b) a##b
#define DBSCOUT_MACRO_CONCAT_(a, b) DBSCOUT_MACRO_CONCAT_INNER_(a, b)

/// Assigns the value of a Result expression to `lhs`, or propagates its error
/// Status to the caller.
#define DBSCOUT_ASSIGN_OR_RETURN(lhs, expr) \
  DBSCOUT_ASSIGN_OR_RETURN_IMPL_(           \
      DBSCOUT_MACRO_CONCAT_(dbscout_result_tmp_, __LINE__), lhs, expr)

#define DBSCOUT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_RESULT_H_

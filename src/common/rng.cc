#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dbscout {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro requires a non-zero state; splitmix64 expansion guarantees it
  // with overwhelming probability, and we guard the degenerate case anyway.
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller transform; caches the second deviate.
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace dbscout

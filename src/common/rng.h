#ifndef DBSCOUT_COMMON_RNG_H_
#define DBSCOUT_COMMON_RNG_H_

#include <cstdint>

namespace dbscout {

/// Deterministic, fast pseudo-random number generator (xoshiro256++ seeded
/// via splitmix64). All dataset generators and randomized algorithms in this
/// library take an explicit seed so experiments are reproducible bit-for-bit
/// across runs and partition counts.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n);

  /// Standard normal deviate (Box–Muller; deterministic).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Splits off an independent generator; the child stream is decorrelated
  /// from the parent's future output.
  Rng Split();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_RNG_H_

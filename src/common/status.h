#ifndef DBSCOUT_COMMON_STATUS_H_
#define DBSCOUT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dbscout {

/// Error categories used across the library. Modeled after the
/// Status idiom common in database systems (RocksDB, Arrow): library
/// functions never throw across the public API; they return a Status
/// (or a Result<T>, see result.h) instead.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIoError = 2,
  kNotFound = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  /// The operation was refused because the system is (temporarily) over
  /// capacity — e.g. the detection service's ingest queue is at its
  /// admission cap, or the server has no free session slot. Retryable.
  kUnavailable = 7,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying either success (ok) or an error code plus a
/// human-readable message. Copyable and movable. [[nodiscard]]: silently
/// dropping a Status hides failures, so discarding one is a compile error;
/// cast to void in the rare case a failure is intentionally ignored.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// non-empty message is allowed but discouraged.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or Result<T> (Result is constructible from Status).
#define DBSCOUT_RETURN_IF_ERROR(expr)               \
  do {                                              \
    ::dbscout::Status dbscout_status_tmp_ = (expr); \
    if (!dbscout_status_tmp_.ok()) {                \
      return dbscout_status_tmp_;                   \
    }                                               \
  } while (false)

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_STATUS_H_

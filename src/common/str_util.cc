#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dbscout {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t begin = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.push_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty numeric field");
  }
  // strtod needs NUL termination; copy into a small buffer.
  char buf[64];
  if (trimmed.size() >= sizeof(buf)) {
    return Status::InvalidArgument("numeric field too long: " +
                                   std::string(trimmed));
  }
  std::memcpy(buf, trimmed.data(), trimmed.size());
  buf[trimmed.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf, &end);
  if (end != buf + trimmed.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed number: " + std::string(trimmed));
  }
  return value;
}

Result<uint64_t> ParseUint64(std::string_view text) {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty integer field");
  }
  uint64_t value = 0;
  for (char c : trimmed) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed integer: " +
                                     std::string(trimmed));
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::OutOfRange("integer overflow: " + std::string(trimmed));
    }
    value = value * 10 + digit;
  }
  return value;
}

std::string HumanCount(double value) {
  const char* suffix = "";
  if (value >= 1e9) {
    value /= 1e9;
    suffix = "B";
  } else if (value >= 1e6) {
    value /= 1e6;
    suffix = "M";
  } else if (value >= 1e3) {
    value /= 1e3;
    suffix = "k";
  }
  return StrFormat("%.2f%s", value, suffix);
}

std::string ErrnoToString(int errnum) {
  char buf[256];
#if defined(_GNU_SOURCE) || (defined(__GLIBC__) && defined(__USE_GNU))
  // GNU strerror_r may return a static string instead of filling buf.
  return strerror_r(errnum, buf, sizeof(buf));
#else
  if (strerror_r(errnum, buf, sizeof(buf)) != 0) {
    return StrFormat("errno %d", errnum);
  }
  return buf;
#endif
}

}  // namespace dbscout

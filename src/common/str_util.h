#ifndef DBSCOUT_COMMON_STR_UTIL_H_
#define DBSCOUT_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dbscout {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a double; rejects trailing garbage, empty input, and NaN text is
/// accepted only as produced by the writer ("nan").
Result<double> ParseDouble(std::string_view text);

/// Parses a non-negative integer.
Result<uint64_t> ParseUint64(std::string_view text);

/// Human-readable count, e.g. 1234567 -> "1.23M".
std::string HumanCount(double value);

/// Thread-safe strerror: formats `errnum` via strerror_r into a fresh
/// string. std::strerror returns a pointer into static storage and is
/// flagged by concurrency-mt-unsafe; every errno-to-text path goes
/// through here instead.
std::string ErrnoToString(int errnum);

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_STR_UTIL_H_

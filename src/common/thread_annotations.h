#ifndef DBSCOUT_COMMON_THREAD_ANNOTATIONS_H_
#define DBSCOUT_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Clang thread-safety-analysis attributes plus the annotated lock types the
/// rest of the library uses. Under `clang -Wthread-safety` every access to a
/// DBSCOUT_GUARDED_BY member outside its mutex is a compile error; under GCC
/// (and anything else without the attribute) the macros expand to nothing and
/// the wrappers are zero-cost shims over std::mutex, so the normal Release
/// build is unaffected. cmake/ThreadSafety.cmake turns the analysis on as
/// `-Werror=thread-safety` for the annotated targets.
///
/// Conventions (see DESIGN.md §13):
///  - every long-lived mutex member is a `Mutex`, never a bare std::mutex;
///  - every member it protects carries DBSCOUT_GUARDED_BY(mu_);
///  - helpers called with the lock held are annotated DBSCOUT_REQUIRES(mu_);
///  - condition waits go through `CondVar` with an explicit while loop, never
///    the predicate-lambda overloads (the analysis treats lambdas as separate
///    unlocked functions, so a predicate reading guarded state cannot be
///    proven safe).

#if defined(__clang__) && !defined(SWIG)
#define DBSCOUT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DBSCOUT_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

#define DBSCOUT_CAPABILITY(x) DBSCOUT_THREAD_ANNOTATION_(capability(x))
#define DBSCOUT_SCOPED_CAPABILITY DBSCOUT_THREAD_ANNOTATION_(scoped_lockable)
#define DBSCOUT_GUARDED_BY(x) DBSCOUT_THREAD_ANNOTATION_(guarded_by(x))
#define DBSCOUT_PT_GUARDED_BY(x) DBSCOUT_THREAD_ANNOTATION_(pt_guarded_by(x))
#define DBSCOUT_ACQUIRED_BEFORE(...) \
  DBSCOUT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DBSCOUT_ACQUIRED_AFTER(...) \
  DBSCOUT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define DBSCOUT_REQUIRES(...) \
  DBSCOUT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DBSCOUT_ACQUIRE(...) \
  DBSCOUT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DBSCOUT_RELEASE(...) \
  DBSCOUT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DBSCOUT_TRY_ACQUIRE(...) \
  DBSCOUT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DBSCOUT_EXCLUDES(...) \
  DBSCOUT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define DBSCOUT_ASSERT_CAPABILITY(x) \
  DBSCOUT_THREAD_ANNOTATION_(assert_capability(x))
#define DBSCOUT_RETURN_CAPABILITY(x) DBSCOUT_THREAD_ANNOTATION_(lock_returned(x))
#define DBSCOUT_NO_THREAD_SAFETY_ANALYSIS \
  DBSCOUT_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dbscout {

/// std::mutex with the `capability` attribute so the analysis can track it.
/// Lowercase lock()/unlock()/try_lock() keep it BasicLockable, which is what
/// lets CondVar (condition_variable_any) wait on it directly.
class DBSCOUT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DBSCOUT_ACQUIRE() { mu_.lock(); }
  void unlock() DBSCOUT_RELEASE() { mu_.unlock(); }
  bool try_lock() DBSCOUT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex; the annotated replacement for std::lock_guard (which
/// the analysis cannot see through when wrapping our Mutex).
class DBSCOUT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DBSCOUT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DBSCOUT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Callers hold the mutex (enforced by
/// DBSCOUT_REQUIRES) and loop on their predicate explicitly:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// Implemented over condition_variable_any, which waits on any BasicLockable;
/// the extra indirection vs condition_variable is one virtual-free shared
/// mutex inside libstdc++'s wait path and is invisible next to the wait
/// itself.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it before returning.
  void Wait(Mutex& mu) DBSCOUT_REQUIRES(mu) { cv_.wait(mu); }

  /// Wait with a timeout; returns cv_status::timeout if `d` elapsed first.
  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      DBSCOUT_REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_THREAD_ANNOTATIONS_H_

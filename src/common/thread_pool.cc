#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace dbscout {
namespace {

// Tracks whether the current thread is already running inside a pool task so
// nested ParallelFor calls can fall back to inline execution.
thread_local bool t_inside_pool_task = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  WaitIdle();
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) {
    idle_.Wait(mu_);
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_task = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) {
        task_available_.Wait(mu_);
      }
      if (queue_.empty()) {
        return;  // Shutting down with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_.NotifyAll();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  ParallelForChunked(count, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

void ThreadPool::ParallelForChunked(
    size_t count, const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (t_inside_pool_task || threads_.size() == 1 || count == 1) {
    fn(0, count);
    return;
  }
  const size_t num_chunks = std::min(count, threads_.size());
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  // `done` must be mutated and read under done_mu (not a bare atomic): the
  // caller may only pass the wait after the final worker has released the
  // lock, making that unlock the worker's last touch of these locals —
  // otherwise the caller can destroy them while the worker still holds or
  // is about to take the mutex.
  size_t done = 0;
  Mutex done_mu;
  CondVar done_cv;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(count, begin + chunk);
    Submit([&, begin, end] {
      fn(begin, end);
      MutexLock lock(done_mu);
      if (++done == num_chunks) {
        done_cv.NotifyAll();
      }
    });
  }
  MutexLock lock(done_mu);
  while (done != num_chunks) {
    done_cv.Wait(done_mu);
  }
}

void ThreadPool::ParallelForDynamic(
    size_t count, size_t chunk_size,
    const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (chunk_size == 0) {
    chunk_size = std::max<size_t>(1, count / (8 * threads_.size()));
  }
  if (t_inside_pool_task || threads_.size() == 1 || count <= chunk_size) {
    fn(0, count);
    return;
  }
  const size_t num_workers =
      std::min(threads_.size(), (count + chunk_size - 1) / chunk_size);
  std::atomic<size_t> next{0};
  // Guarded by done_mu; see ParallelForChunked for why this cannot be a
  // bare atomic checked outside the lock.
  size_t done = 0;
  Mutex done_mu;
  CondVar done_cv;
  for (size_t w = 0; w < num_workers; ++w) {
    Submit([&, chunk_size] {
      for (;;) {
        const size_t begin = next.fetch_add(chunk_size);
        if (begin >= count) {
          break;
        }
        fn(begin, std::min(count, begin + chunk_size));
      }
      MutexLock lock(done_mu);
      if (++done == num_workers) {
        done_cv.NotifyAll();
      }
    });
  }
  MutexLock lock(done_mu);
  while (done != num_workers) {
    done_cv.Wait(done_mu);
  }
}

}  // namespace dbscout

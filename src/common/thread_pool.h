#ifndef DBSCOUT_COMMON_THREAD_POOL_H_
#define DBSCOUT_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace dbscout {

/// Fixed-size worker pool. Tasks are arbitrary void() callables; WaitIdle()
/// blocks until every submitted task has finished. The pool is the execution
/// substrate of the dataflow engine (dataflow/context.h).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues one task. Tasks must not throw; a throwing task aborts the
  /// process (the library itself is exception-free).
  void Submit(std::function<void()> task) DBSCOUT_EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle() DBSCOUT_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, count), distributing contiguous chunks over the
  /// workers, and waits for completion. Reentrant calls (fn itself calling
  /// ParallelFor on the same pool) run inline to avoid deadlock.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Runs fn(chunk_begin, chunk_end) over ~num_threads contiguous chunks and
  /// waits. Lower overhead than per-index ParallelFor.
  void ParallelForChunked(
      size_t count, const std::function<void(size_t, size_t)>& fn);

  /// Like ParallelForChunked, but dynamically load-balanced: workers claim
  /// chunks of `chunk_size` indices from a shared atomic counter until the
  /// range is exhausted. Use when per-index cost is skewed (e.g. grid cells
  /// with wildly different populations), where static chunking leaves
  /// workers idle. chunk_size 0 picks count / (8 * num_threads), min 1.
  /// Reentrant calls run inline, like ParallelForChunked.
  void ParallelForDynamic(
      size_t count, size_t chunk_size,
      const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop() DBSCOUT_EXCLUDES(mu_);

  Mutex mu_;
  CondVar task_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ DBSCOUT_GUARDED_BY(mu_);
  size_t active_ DBSCOUT_GUARDED_BY(mu_) = 0;
  bool shutting_down_ DBSCOUT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // immutable after the constructor
};

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_THREAD_POOL_H_

#ifndef DBSCOUT_COMMON_TIMER_H_
#define DBSCOUT_COMMON_TIMER_H_

#include <chrono>

namespace dbscout {

/// Monotonic wall-clock timer. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed seconds to `*sink` on destruction. Useful for
/// accumulating per-phase timings.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace dbscout

#endif  // DBSCOUT_COMMON_TIMER_H_

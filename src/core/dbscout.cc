#include "core/dbscout.h"

#include <thread>

#include "common/str_util.h"

namespace dbscout::core {

Status Params::Validate() const {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument(StrFormat("eps must be > 0, got %g", eps));
  }
  if (min_pts < 1) {
    return Status::InvalidArgument(
        StrFormat("min_pts must be >= 1, got %d", min_pts));
  }
  return Status::OK();
}

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kSequential:
      return "sequential";
    case Engine::kParallel:
      return "parallel";
    case Engine::kSharedMemory:
      return "shared-memory";
  }
  return "unknown";
}

const char* JoinStrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kPlain:
      return "plain";
    case JoinStrategy::kBroadcast:
      return "broadcast";
    case JoinStrategy::kGrouped:
      return "grouped";
  }
  return "unknown";
}

Result<Detection> Detect(const PointSet& points, const Params& params) {
  switch (params.engine) {
    case Engine::kSequential:
      return DetectSequential(points, params);
    case Engine::kSharedMemory: {
      ThreadPool pool(std::thread::hardware_concurrency());
      return DetectSharedMemory(points, params, &pool);
    }
    case Engine::kParallel: {
      dataflow::ExecutionContext ctx(
          /*num_threads=*/0,
          /*default_partitions=*/params.num_partitions);
      return DetectParallel(points, params, &ctx);
    }
  }
  return Status::Internal("unknown engine");
}

}  // namespace dbscout::core

#ifndef DBSCOUT_CORE_DBSCOUT_H_
#define DBSCOUT_CORE_DBSCOUT_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/detection.h"
#include "core/params.h"
#include "data/point_set.h"
#include "dataflow/context.h"

namespace dbscout::core {

/// Runs DBSCOUT on `points` and returns the exact set of density outliers
/// per Definitions 1-3 (equivalently: the noise points of DBSCAN with the
/// same eps/minPts). Dispatches to the engine selected in `params`; the
/// parallel engine creates a transient execution context.
///
/// Complexity: O(n * minPts * k_d) — linear in n for fixed parameters
/// (Lemmas 4-8).
Result<Detection> Detect(const PointSet& points, const Params& params);

/// Single-threaded direct implementation over the CSR grid. This is the
/// library's reference implementation: exact, allocation-light, and the
/// oracle the test suite compares every other path against.
Result<Detection> DetectSequential(const PointSet& points,
                                   const Params& params);

/// Dataflow implementation following Algorithms 1-5 of the paper, running on
/// `ctx` (its thread pool, partitioning default, and metrics sink). All
/// three join strategies produce identical detections; they differ in
/// shuffle volume and memory footprint.
Result<Detection> DetectParallel(const PointSet& points, const Params& params,
                                 dataflow::ExecutionContext* ctx);

/// Shared-memory multi-threaded implementation over one CSR grid: phases 3
/// and 5 are parallelized over cells on `pool` (every point belongs to
/// exactly one cell, so label writes are race-free). Identical output to
/// the other engines; the scale-up (not scale-out) design point of SS V.
Result<Detection> DetectSharedMemory(const PointSet& points,
                                     const Params& params, ThreadPool* pool);

}  // namespace dbscout::core

#endif  // DBSCOUT_CORE_DBSCOUT_H_

#ifndef DBSCOUT_CORE_DETECTION_H_
#define DBSCOUT_CORE_DETECTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dbscout::core {

/// Final classification of each input point. The three kinds partition the
/// dataset: core points (Definition 2), outliers (Definition 3), and border
/// points (non-core points within eps of some core point).
enum class PointKind : uint8_t {
  kCore = 0,
  kBorder = 1,
  kOutlier = 2,
};

/// Wall time and work counters for one of the five DBSCOUT phases.
struct PhaseStats {
  std::string name;
  double seconds = 0.0;
  /// Point-to-point distance evaluations submitted in this phase. With the
  /// batched kernels this counts the block points handed to a kernel call;
  /// the kernel's internal batch-granular early exit may evaluate slightly
  /// fewer, so this is a tight upper bound on the work actually done.
  uint64_t distance_computations = 0;
  /// Records produced by this phase (emitted pairs for the join phases).
  uint64_t records = 0;
};

/// Output of a DBSCOUT run.
struct Detection {
  /// Per-point classification, index-aligned with the input PointSet.
  std::vector<PointKind> kinds;
  /// Indices of outlier points, ascending.
  std::vector<uint32_t> outliers;

  size_t num_core = 0;
  size_t num_border = 0;

  // Grid statistics.
  size_t num_cells = 0;
  size_t num_dense_cells = 0;
  size_t num_core_cells = 0;

  /// Distance to the nearest core point within the neighbor-cell horizon,
  /// per point; only filled when Params::compute_scores is set. 0 for core
  /// points; <= eps for border points; > eps for outliers, with +infinity
  /// when no core point exists within the horizon at all. Ranks outliers
  /// by how far outside any dense region they sit.
  std::vector<double> core_distance;

  /// Per-phase timings/counters, in execution order.
  std::vector<PhaseStats> phases;
  /// Records moved by shuffles (parallel engine only).
  uint64_t shuffled_records = 0;
  double total_seconds = 0.0;

  size_t num_outliers() const { return outliers.size(); }
};

}  // namespace dbscout::core

#endif  // DBSCOUT_CORE_DETECTION_H_

#include "core/incremental.h"

#include <cmath>

#include "common/str_util.h"
#include "core/phases/phase_kernels.h"

namespace dbscout::core {

Result<IncrementalDetector> IncrementalDetector::Create(size_t dims,
                                                        const Params& params) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  if (dims < 1 || dims > kMaxDims) {
    return Status::InvalidArgument(
        StrFormat("dims=%zu out of supported range [1, %zu]", dims, kMaxDims));
  }
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(dims));
  return IncrementalDetector(dims, params, stencil);
}

IncrementalDetector::IncrementalDetector(size_t dims, const Params& params,
                                         const grid::NeighborStencil* stencil)
    : params_(params),
      stencil_(stencil),
      side_(params.eps / std::sqrt(static_cast<double>(dims))),
      eps2_(params.eps * params.eps),
      points_(dims) {}

grid::CellCoord IncrementalDetector::CoordOf(
    std::span<const double> p) const {
  grid::CellCoord coord = grid::CellCoord::Zero(points_.dims());
  for (size_t k = 0; k < p.size(); ++k) {
    coord[k] = static_cast<int64_t>(std::floor(p[k] / side_));
  }
  return coord;
}

void IncrementalDetector::Promote(uint32_t q) {
  is_core_[q] = 1;
  if (kinds_[q] != PointKind::kCore) {
    num_core_ += 1;
    kinds_[q] = PointKind::kCore;
  }
  const grid::CellCoord home = CoordOf(points_[q]);
  ++cells_[home].core_points;
  // Rescue: every current outlier within eps of the new core point becomes
  // a border point (Definition 3).
  const auto qv = points_[q];
  for (const grid::CellOffset& offset : stencil_->offsets) {
    const grid::CellCoord neighbor =
        home.Translated({offset.data(), points_.dims()});
    auto it = cells_.find(neighbor);
    if (it == cells_.end()) {
      continue;
    }
    for (uint32_t r : it->second.points) {
      if (kinds_[r] == PointKind::kOutlier &&
          PointSet::SquaredDistance(qv, points_[r]) <= eps2_) {
        kinds_[r] = PointKind::kBorder;
      }
    }
  }
}

Result<uint32_t> IncrementalDetector::Add(std::span<const double> point) {
  if (point.size() != points_.dims()) {
    return Status::InvalidArgument(
        StrFormat("point has %zu dims, detector expects %zu", point.size(),
                  points_.dims()));
  }
  for (double v : point) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite coordinate");
    }
    if (std::abs(std::floor(v / side_)) > 4.0e18) {
      return Status::OutOfRange("cell index overflow");
    }
  }
  const uint32_t x = static_cast<uint32_t>(points_.size());
  points_.Add(point);
  kinds_.push_back(PointKind::kOutlier);  // provisional
  neighbor_counts_.push_back(1);          // itself
  is_core_.push_back(0);

  const grid::CellCoord home = CoordOf(point);
  const uint32_t min_pts = static_cast<uint32_t>(params_.min_pts);

  // One stencil scan: count x's neighbors, bump theirs, and collect the
  // points whose count just crossed minPts.
  std::vector<uint32_t> promoted;
  bool covered_by_core = false;
  for (const grid::CellOffset& offset : stencil_->offsets) {
    const grid::CellCoord neighbor =
        home.Translated({offset.data(), points_.dims()});
    auto it = cells_.find(neighbor);
    if (it == cells_.end()) {
      continue;
    }
    for (uint32_t q : it->second.points) {
      if (PointSet::SquaredDistance(point, points_[q]) > eps2_) {
        continue;
      }
      ++neighbor_counts_[x];
      covered_by_core |= is_core_[q] != 0;
      if (phases::CrossesDensityThreshold(++neighbor_counts_[q], min_pts)) {
        promoted.push_back(q);
      }
    }
  }
  // Register x only now, so the scan above never saw it.
  cells_[home].points.push_back(x);

  for (uint32_t q : promoted) {
    Promote(q);
  }
  if (phases::IsDense(neighbor_counts_[x], min_pts)) {
    Promote(x);
  } else if (covered_by_core || !promoted.empty()) {
    // Any point promoted by this insertion is within eps of x by
    // construction, so x is covered either way.
    kinds_[x] = PointKind::kBorder;
  }
  return x;
}

Status IncrementalDetector::AddBatch(const PointSet& batch) {
  if (batch.dims() != points_.dims()) {
    return Status::InvalidArgument("batch dims mismatch");
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    DBSCOUT_RETURN_IF_ERROR(Add(batch[i]).status());
  }
  return Status::OK();
}

std::vector<uint32_t> IncrementalDetector::Outliers() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == PointKind::kOutlier) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

}  // namespace dbscout::core

#include "core/incremental.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "common/str_util.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/phases/insert_kernels.h"
#include "core/phases/phase_kernels.h"
#include "grid/regions.h"

namespace dbscout::core {
namespace {

grid::CellCoord CellCoordFor(std::span<const double> p, double side,
                             size_t dims) {
  grid::CellCoord coord = grid::CellCoord::Zero(dims);
  for (size_t k = 0; k < p.size(); ++k) {
    coord[k] = static_cast<int64_t>(std::floor(p[k] / side));
  }
  return coord;
}

Status ValidateCoordinates(std::span<const double> point, size_t dims,
                           double side) {
  if (point.size() != dims) {
    return Status::InvalidArgument(
        StrFormat("point has %zu dims, detector expects %zu", point.size(),
                  dims));
  }
  for (double v : point) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite coordinate");
    }
    if (std::abs(std::floor(v / side)) > 4.0e18) {
      return Status::OutOfRange("cell index overflow");
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// IncrementalSnapshot.
// ---------------------------------------------------------------------------

std::vector<PointKind> IncrementalSnapshot::Kinds() const {
  std::vector<PointKind> out;
  out.reserve(kinds_.size());
  for (size_t i = 0; i < kinds_.size(); ++i) {
    out.push_back(kinds_[i]);
  }
  return out;
}

std::vector<uint32_t> IncrementalSnapshot::Outliers() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == PointKind::kOutlier && alive_[i] != 0) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

double IncrementalSnapshot::NearestCoreDistance(
    uint32_t i, uint64_t* distance_comps) const {
  if (kinds_[i] == PointKind::kCore) {
    return 0.0;
  }
  const auto pv = points_[i];
  const grid::CellCoord home = CellCoordFor(pv, side_, dims());
  double best2 = std::numeric_limits<double>::infinity();
  for (const grid::CellOffset& offset : stencil_->offsets) {
    const grid::CellCoord neighbor = home.Translated({offset.data(), dims()});
    auto it = cells_.find(neighbor);
    if (it == cells_.end() || it->second.core_points == 0) {
      continue;
    }
    for (uint32_t q : *it->second.points) {
      if (kinds_[q] != PointKind::kCore) {
        continue;
      }
      const double d2 = PointSet::SquaredDistance(pv, points_[q]);
      ++*distance_comps;
      if (d2 < best2) {
        best2 = d2;
      }
    }
  }
  return std::sqrt(best2);
}

Result<ProbeResult> IncrementalSnapshot::Classify(
    std::span<const double> point, bool want_score) const {
  DBSCOUT_RETURN_IF_ERROR(ValidateCoordinates(point, dims(), side_));
  const uint32_t min_pts = static_cast<uint32_t>(params_.min_pts);
  const grid::CellCoord home = CellCoordFor(point, side_, dims());

  ProbeResult out;
  uint64_t count = 1;  // the probe itself (Definition 2)
  bool covered = false;
  double best2 = std::numeric_limits<double>::infinity();
  for (const grid::CellOffset& offset : stencil_->offsets) {
    const grid::CellCoord neighbor =
        home.Translated({offset.data(), dims()});
    auto it = cells_.find(neighbor);
    if (it == cells_.end()) {
      continue;
    }
    for (uint32_t q : *it->second.points) {
      const double d2 = PointSet::SquaredDistance(point, points_[q]);
      ++out.distance_comps;
      const bool within = d2 <= eps2_;
      // Promotion-aware core test: q is core in prefix+probe either when it
      // already is, or when the probe itself is the neighbor that pushes
      // q's count onto the minPts threshold.
      bool q_core = kinds_[q] == PointKind::kCore;
      if (within && !q_core) {
        q_core = phases::CrossesDensityThreshold(neighbor_counts_[q] + 1,
                                                 min_pts);
      }
      if (within) {
        ++count;
        covered |= q_core;
      }
      if (want_score && q_core && d2 < best2) {
        best2 = d2;
      }
    }
  }
  if (phases::IsDense(count, min_pts)) {
    out.kind = PointKind::kCore;
  } else {
    out.kind = covered ? PointKind::kBorder : PointKind::kOutlier;
  }
  if (want_score) {
    out.score = out.kind == PointKind::kCore ? 0.0 : std::sqrt(best2);
  }
  return out;
}

// ---------------------------------------------------------------------------
// IncrementalDetector.
// ---------------------------------------------------------------------------

Result<IncrementalDetector> IncrementalDetector::Create(size_t dims,
                                                        const Params& params) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  if (dims < 1 || dims > kMaxDims) {
    return Status::InvalidArgument(
        StrFormat("dims=%zu out of supported range [1, %zu]", dims, kMaxDims));
  }
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(dims));
  return IncrementalDetector(dims, params, stencil);
}

IncrementalDetector::IncrementalDetector(size_t dims, const Params& params,
                                         const grid::NeighborStencil* stencil)
    : params_(params),
      stencil_(stencil),
      kernels_(phases::BindKernels(dims)),
      side_(params.eps / std::sqrt(static_cast<double>(dims))),
      eps2_(params.eps * params.eps),
      block_width_(grid::HaloSlabs(dims)),
      points_(dims) {}

grid::CellCoord IncrementalDetector::CoordOf(
    std::span<const double> p) const {
  return CellCoordFor(p, side_, points_.width());
}

void IncrementalDetector::EnsureOwnedCell(Cell* cell) {
  if (cell->points == nullptr) {
    cell->points = std::make_shared<std::vector<uint32_t>>();
    cell->serial = freeze_serial_;
  } else if (cell->serial != freeze_serial_) {
    // A snapshot still shares the index vector: clone before mutating so
    // its readers keep the frozen contents (appending in place could also
    // reallocate the buffer out from under them). The coords mirror is
    // detector-private — no snapshot reads it — so it never clones.
    cell->points = std::make_shared<std::vector<uint32_t>>(*cell->points);
    cell->serial = freeze_serial_;
  }
}

void IncrementalDetector::AppendToCell(Cell* cell, uint32_t x,
                                       std::span<const double> pv) {
  EnsureOwnedCell(cell);
  cell->points->push_back(x);
  cell->coords.insert(cell->coords.end(), pv.begin(), pv.end());
  cell->outlier_points += 1;  // provisional kOutlier label
}

IncrementalDetector::Cell* IncrementalDetector::GetOrCreateCell(
    const grid::CellCoord& coord) {
  auto [it, fresh] = cells_.try_emplace(coord);
  Cell* cell = &it->second;
  if (fresh) {
    // Wire the neighbor caches both ways: the stencil is symmetric (the
    // Definition 8 condition depends only on |j_i|), so this cell belongs
    // in exactly the caches of the cells it now caches.
    const size_t dims = points_.width();
    for (size_t k = 0; k < dims; ++k) {
      cell->box_origin[k] = static_cast<double>(coord[k]) * side_;
    }
    cell->neighbors.reserve(stencil_->size());
    for (const grid::CellOffset& offset : stencil_->offsets) {
      const grid::CellCoord neighbor = coord.Translated({offset.data(), dims});
      auto nit = cells_.find(neighbor);
      if (nit == cells_.end() || &nit->second == cell) {
        continue;
      }
      cell->neighbors.push_back(&nit->second);
      nit->second.neighbors.push_back(cell);
    }
    cell->neighbors.push_back(cell);  // self, last
  }
  return cell;
}

IncrementalDetector::Cell* IncrementalDetector::CellAt(
    const grid::CellCoord& coord) {
  return &cells_.find(coord)->second;
}

void IncrementalDetector::Promote(uint32_t q, ApplyCtx* ctx) {
  const size_t dims = points_.width();
  const auto qv = points_[q];
  Cell* home = CellAt(CoordOf(qv));
  if (kinds_[q] != PointKind::kCore) {
    ctx->core_delta += 1;
    if (kinds_[q] == PointKind::kOutlier) {
      ctx->outlier_delta -= 1;
      home->outlier_points -= 1;
    }
    kinds_.Set(q, PointKind::kCore);
  }
  home->core_points += 1;
  // Rescue: every current outlier within eps of the new core point becomes
  // a border point (Definition 3). Cells without outliers skip outright.
  for (Cell* cell : home->neighbors) {
    if (cell->outlier_points == 0 ||
        phases::CellBoxBeyondEps(qv.data(), cell->box_origin.data(), dims,
                                 side_, eps2_)) {
      continue;
    }
    const std::vector<uint32_t>& idx = *cell->points;
    const double* block = cell->coords.data();
    for (size_t i = 0; i < idx.size(); ++i) {
      if (kinds_[idx[i]] != PointKind::kOutlier) {
        continue;
      }
      ++ctx->distance_comps;
      if (PointSet::SquaredDistance(qv, {block + i * dims, dims}) <= eps2_) {
        kinds_.Set(idx[i], PointKind::kBorder);
        ctx->outlier_delta -= 1;
        cell->outlier_points -= 1;
      }
    }
  }
}

void IncrementalDetector::ApplyPoint(uint32_t x, std::span<const double> pv,
                                     Cell* home_cell, ApplyCtx* ctx) {
  const uint32_t min_pts = static_cast<uint32_t>(params_.min_pts);
  ctx->promoted.clear();
  uint32_t count_x = 1;
  bool covered_by_core = false;
  // One pass over the cached neighbor cells: flag x's eps-neighbors per
  // packed cell block, then bump the flagged points' counts and collect
  // the ones whose count just crossed minPts.
  const size_t dims = points_.width();
  for (Cell* cell : home_cell->neighbors) {
    const size_t n = cell->points == nullptr ? 0 : cell->points->size();
    if (n == 0 || phases::CellBoxBeyondEps(pv.data(), cell->box_origin.data(),
                                           dims, side_, eps2_)) {
      continue;
    }
    // Room for one full word past the block so the walk below can read the
    // flags 8 at a time; the pad is zeroed so it never reads as a hit.
    if (ctx->flags.size() < n + sizeof(uint64_t)) {
      ctx->flags.resize(n + sizeof(uint64_t));
    }
    uint32_t hits = phases::NeighborFlagsScanCell(
        kernels_, pv.data(), cell->coords.data(), n, eps2_,
        ctx->flags.data(), &ctx->distance_comps);
    if (hits == 0) {
      continue;
    }
    std::memset(ctx->flags.data() + n, 0, sizeof(uint64_t));
    count_x += hits;
    const uint32_t* idx = cell->points->data();
    const uint8_t* flags = ctx->flags.data();
    // Word-at-a-time walk of the 0/1 flag bytes: only flagged entries cost
    // anything (a set flag is a single bit at its byte's LSB position).
    for (size_t i = 0; hits > 0; i += sizeof(uint64_t)) {
      uint64_t word;
      std::memcpy(&word, flags + i, sizeof(word));
      while (word != 0) {
        const size_t j = i + (static_cast<size_t>(std::countr_zero(word)) >> 3);
        word &= word - 1;
        --hits;
        const uint32_t q = idx[j];
        if (!covered_by_core) {
          covered_by_core = kinds_[q] == PointKind::kCore;
        }
        uint32_t* cnt = neighbor_counts_.MutableSlot(q);
        const uint32_t new_count = ++*cnt;
        if (phases::CrossesDensityThreshold(new_count, min_pts)) {
          ctx->promoted.push_back(q);
        }
      }
    }
  }
  neighbor_counts_.Set(x, count_x);
  // Register x only now, so the scan above never saw it.
  AppendToCell(home_cell, x, pv);

  for (uint32_t q : ctx->promoted) {
    Promote(q, ctx);
  }
  if (phases::IsDense(count_x, min_pts)) {
    Promote(x, ctx);
  } else if (covered_by_core || !ctx->promoted.empty()) {
    // Any point promoted by this insertion is within eps of x by
    // construction, so x is covered either way. A Promote above may have
    // already rescued x (it sits in its cell with a provisional outlier
    // label), in which case the counter was already adjusted.
    if (kinds_[x] == PointKind::kOutlier) {
      kinds_.Set(x, PointKind::kBorder);
      ctx->outlier_delta -= 1;
      home_cell->outlier_points -= 1;
    }
  }
}

void IncrementalDetector::ApplyGroupBatched(
    const std::vector<uint32_t>& members, Cell* home_cell, ApplyCtx* ctx) {
  const size_t dims = points_.width();
  const uint32_t min_pts = static_cast<uint32_t>(params_.min_pts);
  const size_t m = members.size();
  ctx->promoted.clear();
  ctx->member_counts.assign(m, 1);  // each point neighbors itself
  ctx->member_covered.assign(m, 0);

  // ---- Home block, one member at a time: the block grows as members
  // append, so each intra-group pair is counted exactly once (by the later
  // member), mirroring the sequential path. Hits at positions >= pre_n are
  // earlier members of this very group — their counts accumulate locally
  // and publish with everyone else's at the end. ----
  EnsureOwnedCell(home_cell);
  const size_t pre_n = home_cell->points->size();
  for (size_t i = 0; i < m; ++i) {
    const uint32_t x = members[i];
    const auto pv = points_[x];
    const size_t n = home_cell->points->size();
    if (n > 0) {
      if (ctx->flags.size() < n + sizeof(uint64_t)) {
        ctx->flags.resize(n + sizeof(uint64_t));
      }
      uint32_t hits = phases::NeighborFlagsScanCell(
          kernels_, pv.data(), home_cell->coords.data(), n, eps2_,
          ctx->flags.data(), &ctx->distance_comps);
      if (hits > 0) {
        std::memset(ctx->flags.data() + n, 0, sizeof(uint64_t));
        ctx->member_counts[i] += hits;
        const uint32_t* idx = home_cell->points->data();
        const uint8_t* flags = ctx->flags.data();
        for (size_t base = 0; hits > 0; base += sizeof(uint64_t)) {
          uint64_t word;
          std::memcpy(&word, flags + base, sizeof(word));
          while (word != 0) {
            const size_t j =
                base + (static_cast<size_t>(std::countr_zero(word)) >> 3);
            word &= word - 1;
            --hits;
            if (j >= pre_n) {
              ctx->member_counts[j - pre_n] += 1;
              continue;
            }
            const uint32_t q = idx[j];
            if (!ctx->member_covered[i]) {
              ctx->member_covered[i] = kinds_[q] == PointKind::kCore;
            }
            uint32_t* cnt = neighbor_counts_.MutableSlot(q);
            if (phases::CrossesDensityThreshold(++*cnt, min_pts)) {
              ctx->promoted.push_back(q);
            }
          }
        }
      }
    }
    AppendToCell(home_cell, x, pv);
  }

  // ---- Neighbor blocks, members batched: per-position flag bytes sum
  // into `acc`, so a block point hit by k members pays one count update of
  // +k (threshold crossing detected in batched form), not k scattered
  // read-modify-writes. Coverage uses a per-block core mask built at most
  // once per group; kinds_ is stable here because promotions defer. ----
  for (Cell* cell : home_cell->neighbors) {
    if (cell == home_cell) {
      continue;  // self (last) was the home pass above
    }
    const size_t n = cell->points == nullptr ? 0 : cell->points->size();
    if (n == 0) {
      continue;
    }
    const double* block = cell->coords.data();
    ctx->acc.assign(n, 0);
    if (ctx->flags.size() < n) {
      ctx->flags.resize(n);
    }
    bool any_hits = false;
    bool mask_built = false;
    for (size_t i = 0; i < m; ++i) {
      const auto pv = points_[members[i]];
      if (phases::CellBoxBeyondEps(pv.data(), cell->box_origin.data(), dims,
                                   side_, eps2_)) {
        continue;
      }
      const uint32_t hits = phases::NeighborFlagsScanCell(
          kernels_, pv.data(), block, n, eps2_, ctx->flags.data(),
          &ctx->distance_comps);
      if (hits == 0) {
        continue;
      }
      any_hits = true;
      ctx->member_counts[i] += hits;
      const uint8_t* flags = ctx->flags.data();
      uint32_t* acc = ctx->acc.data();
      for (size_t j = 0; j < n; ++j) {
        acc[j] += flags[j];
      }
      if (!ctx->member_covered[i] && cell->core_points > 0) {
        if (!mask_built) {
          ctx->core_mask.assign(n, 0);
          const uint32_t* idx = cell->points->data();
          for (size_t j = 0; j < n; ++j) {
            ctx->core_mask[j] = kinds_[idx[j]] == PointKind::kCore;
          }
          mask_built = true;
        }
        const uint8_t* mask = ctx->core_mask.data();
        uint8_t covered = 0;
        for (size_t j = 0; j < n; ++j) {
          covered |= flags[j] & mask[j];
        }
        ctx->member_covered[i] = covered;
      }
    }
    if (!any_hits) {
      continue;
    }
    const uint32_t* idx = cell->points->data();
    const uint32_t* acc = ctx->acc.data();
    for (size_t j = 0; j < n; ++j) {
      const uint32_t added = acc[j];
      if (added == 0) {
        continue;
      }
      uint32_t* cnt = neighbor_counts_.MutableSlot(idx[j]);
      const uint32_t old_count = *cnt;
      *cnt = old_count + added;
      if (phases::CrossesDensityThresholdBy(old_count, added, min_pts)) {
        ctx->promoted.push_back(idx[j]);
      }
    }
  }

  // ---- Publish member counts, then run the deferred promotions: their
  // rescue scans see every member registered (provisional outliers), so
  // members covered only by cores this group minted get rescued here. ----
  for (size_t i = 0; i < m; ++i) {
    neighbor_counts_.Set(members[i], ctx->member_counts[i]);
  }
  for (uint32_t q : ctx->promoted) {
    Promote(q, ctx);
  }
  for (size_t i = 0; i < m; ++i) {
    const uint32_t x = members[i];
    if (phases::IsDense(ctx->member_counts[i], min_pts)) {
      Promote(x, ctx);
    } else if (ctx->member_covered[i] && kinds_[x] == PointKind::kOutlier) {
      kinds_.Set(x, PointKind::kBorder);
      ctx->outlier_delta -= 1;
      home_cell->outlier_points -= 1;
    }
  }
}

void IncrementalDetector::MergeCtx(const ApplyCtx& ctx) {
  num_core_ = static_cast<size_t>(static_cast<int64_t>(num_core_) +
                                  ctx.core_delta);
  num_outliers_ = static_cast<size_t>(static_cast<int64_t>(num_outliers_) +
                                      ctx.outlier_delta);
  distance_comps_ += ctx.distance_comps;
}

Status IncrementalDetector::ValidatePoint(std::span<const double> point) const {
  return ValidateCoordinates(point, points_.width(), side_);
}

Result<uint32_t> IncrementalDetector::Add(std::span<const double> point) {
  DBSCOUT_RETURN_IF_ERROR(
      ValidateCoordinates(point, points_.width(), side_));
  const uint32_t x = static_cast<uint32_t>(points_.size());
  points_.PushBack(point);
  kinds_.PushBack(PointKind::kOutlier);  // provisional
  neighbor_counts_.PushBack(1);          // itself
  alive_.PushBack(1);
  num_outliers_ += 1;
  live_points_ += 1;

  Cell* home_cell = GetOrCreateCell(CoordOf(point));
  ApplyCtx ctx;
  ApplyPoint(x, point, home_cell, &ctx);
  MergeCtx(ctx);
  return x;
}

Status IncrementalDetector::AddBatch(const PointSet& batch) {
  return AddBatchParallel(batch, nullptr, nullptr);
}

Status IncrementalDetector::AddBatchParallel(const PointSet& batch,
                                             ThreadPool* pool,
                                             ApplyStats* stats) {
  const size_t dims = points_.width();
  if (batch.dims() != dims) {
    return Status::InvalidArgument("batch dims mismatch");
  }
  if (stats != nullptr) {
    stats->shards = 1;
    stats->shard_seconds.clear();
  }
  const size_t n = batch.size();
  if (n == 0) {
    return Status::OK();
  }
  // Validate everything up front: the batch applies atomically or not at
  // all (the serial append below must never half-commit).
  for (size_t i = 0; i < n; ++i) {
    DBSCOUT_RETURN_IF_ERROR(ValidateCoordinates(batch[i], dims, side_));
  }

  // ---- Serial pre-phase: append rows and group points by home cell. ----
  const uint32_t base = static_cast<uint32_t>(points_.size());
  struct Group {
    grid::CellCoord coord;
    Cell* cell = nullptr;
    int64_t block = 0;
    std::vector<uint32_t> members;  // ascending appended indices
  };
  std::vector<Group> groups;
  std::unordered_map<grid::CellCoord, size_t, grid::CellCoordHash> group_of;
  for (size_t i = 0; i < n; ++i) {
    const auto p = batch[i];
    points_.PushBack(p);
    kinds_.PushBack(PointKind::kOutlier);  // provisional
    neighbor_counts_.PushBack(1);          // itself
    alive_.PushBack(1);
    const grid::CellCoord home = CoordOf(p);
    auto [it, fresh] = group_of.try_emplace(home, groups.size());
    if (fresh) {
      Group g;
      g.coord = home;
      g.block = grid::SlabBlock(home[0], block_width_);
      groups.push_back(std::move(g));
    }
    groups[it->second].members.push_back(base + static_cast<uint32_t>(i));
  }
  num_outliers_ += n;
  live_points_ += n;
  // Create every home cell now, serially: the wave tasks then only read
  // the cell map's structure and the (now stable) cached neighbor lists,
  // never insert, so no rehash or cache rewiring can happen under a
  // concurrent task.
  for (Group& g : groups) {
    g.cell = GetOrCreateCell(g.coord);
  }

  // ---- Partition home-cell groups into slab-block shard tasks. ----
  std::unordered_map<int64_t, std::vector<size_t>> blocks;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    blocks[groups[gi].block].push_back(gi);
  }

  // Small groups insert point-by-point; larger ones amortize their
  // neighbor-block scans across the whole group (the batched path pays a
  // per-block accumulator sweep, which only wins once several members
  // share it).
  constexpr size_t kGroupBatchThreshold = 8;
  auto run_group = [&](const Group& g, ApplyCtx* ctx) {
    if (g.members.size() >= kGroupBatchThreshold) {
      ApplyGroupBatched(g.members, g.cell, ctx);
      return;
    }
    for (uint32_t x : g.members) {
      ApplyPoint(x, points_[x], g.cell, ctx);
    }
  };

  if (pool == nullptr || blocks.size() < 2) {
    WallTimer timer;
    ApplyCtx ctx;
    for (const auto& [block, gis] : blocks) {
      for (size_t gi : gis) {
        run_group(groups[gi], &ctx);
      }
    }
    MergeCtx(ctx);
    if (stats != nullptr) {
      stats->shard_seconds.push_back(timer.ElapsedSeconds());
    }
    return Status::OK();
  }

  // ---- Three conflict-free waves (see grid/regions.h: same-wave blocks
  // are >= 3 apart, and a block task's read/write footprint spans at most
  // one block to each side). Each task owns a private ApplyCtx; counter
  // deltas and shard timings merge under the mutex as tasks finish. ----
  if (stats != nullptr) {
    stats->shards = blocks.size();
  }
  Mutex merge_mu;
  for (int wave = 0; wave < grid::kNumWaves; ++wave) {
    for (const auto& [block, gis] : blocks) {
      if (grid::WaveOf(block) != wave) {
        continue;
      }
      const std::vector<size_t>* task_groups = &gis;
      pool->Submit([this, task_groups, &groups, &run_group, &merge_mu,
                    stats] {
        WallTimer timer;
        ApplyCtx ctx;
        for (size_t gi : *task_groups) {
          run_group(groups[gi], &ctx);
        }
        MutexLock lock(merge_mu);
        MergeCtx(ctx);
        if (stats != nullptr) {
          stats->shard_seconds.push_back(timer.ElapsedSeconds());
        }
      });
    }
    // Wave barrier: the next wave's blocks may read state this wave wrote.
    pool->WaitIdle();
  }
  return Status::OK();
}

Status IncrementalDetector::Remove(uint32_t id) {
  if (id >= kinds_.size()) {
    return Status::InvalidArgument(
        StrFormat("remove: id %u was never inserted", id));
  }
  if (alive_[id] == 0) {
    return Status::NotFound(StrFormat("remove: id %u already removed", id));
  }
  const size_t dims = points_.width();
  const uint32_t min_pts = static_cast<uint32_t>(params_.min_pts);
  const auto pv = points_[id];
  const grid::CellCoord home = CoordOf(pv);
  const PointKind old_kind = kinds_[id];
  ApplyCtx ctx;

  // ---- Unregister id from its home cell (swap-erase of both parallel
  // arrays) so the scans below never see it. ----
  Cell* home_cell = CellAt(home);
  EnsureOwnedCell(home_cell);
  {
    std::vector<uint32_t>& idx = *home_cell->points;
    std::vector<double>& coords = home_cell->coords;
    const size_t pos =
        std::find(idx.begin(), idx.end(), id) - idx.begin();
    const size_t last = idx.size() - 1;
    idx[pos] = idx[last];
    idx.pop_back();
    std::copy_n(coords.begin() + last * dims, dims,
                coords.begin() + pos * dims);
    coords.resize(last * dims);
  }
  if (old_kind == PointKind::kCore) {
    home_cell->core_points -= 1;
    ctx.core_delta -= 1;
  } else if (old_kind == PointKind::kOutlier) {
    ctx.outlier_delta -= 1;
    home_cell->outlier_points -= 1;
  }
  // Emptied cells stay in the map as stubs: the cached neighbor pointers
  // wired at creation must never dangle.
  alive_.Set(id, 0);
  live_points_ -= 1;

  // ---- Decrement the counts of id's eps-neighbors; a core point whose
  // count falls off the minPts threshold demotes. Border neighbors of a
  // removed core may have lost their cover: collect them for re-check. ----
  std::vector<uint32_t> demoted;
  std::vector<uint32_t> candidates;
  for (Cell* cell : home_cell->neighbors) {
    const size_t cn = cell->points == nullptr ? 0 : cell->points->size();
    if (cn == 0 || phases::CellBoxBeyondEps(pv.data(), cell->box_origin.data(),
                                            dims, side_, eps2_)) {
      continue;
    }
    if (ctx.flags.size() < cn) {
      ctx.flags.resize(cn);
    }
    uint32_t hits = phases::NeighborFlagsScanCell(
        kernels_, pv.data(), cell->coords.data(), cn, eps2_,
        ctx.flags.data(), &ctx.distance_comps);
    const uint32_t* idx = cell->points->data();
    for (size_t i = 0; i < cn && hits > 0; ++i) {
      if (!ctx.flags[i]) {
        continue;
      }
      --hits;
      const uint32_t q = idx[i];
      const uint32_t old_count = neighbor_counts_[q];
      neighbor_counts_.Set(q, old_count - 1);
      if (phases::LeavesDensityThreshold(old_count, min_pts)) {
        demoted.push_back(q);  // was exactly at the threshold: core until now
      } else if (old_kind == PointKind::kCore &&
                 kinds_[q] == PointKind::kBorder) {
        candidates.push_back(q);
      }
    }
  }

  // ---- Demotions: core -> provisional border, then re-derive coverage
  // for every border point in reach of a lost core (the demoted points
  // themselves included). Demotions never cascade — neighbor counts are
  // independent of core status — so one round settles the core set. ----
  for (uint32_t q : demoted) {
    kinds_.Set(q, PointKind::kBorder);
    ctx.core_delta -= 1;
    CellAt(CoordOf(points_[q]))->core_points -= 1;
    candidates.push_back(q);
  }
  for (uint32_t q : demoted) {
    const auto qv = points_[q];
    for (Cell* cell : CellAt(CoordOf(qv))->neighbors) {
      const size_t cn = cell->points == nullptr ? 0 : cell->points->size();
      if (cn == 0 ||
          phases::CellBoxBeyondEps(qv.data(), cell->box_origin.data(), dims,
                                   side_, eps2_)) {
        continue;
      }
      if (ctx.flags.size() < cn) {
        ctx.flags.resize(cn);
      }
      uint32_t hits = phases::NeighborFlagsScanCell(
          kernels_, qv.data(), cell->coords.data(), cn, eps2_,
          ctx.flags.data(), &ctx.distance_comps);
      const uint32_t* idx = cell->points->data();
      for (size_t i = 0; i < cn && hits > 0; ++i) {
        if (!ctx.flags[i]) {
          continue;
        }
        --hits;
        if (kinds_[idx[i]] == PointKind::kBorder) {
          candidates.push_back(idx[i]);
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (uint32_t c : candidates) {
    if (kinds_[c] != PointKind::kBorder) {
      continue;  // promoted-away or already handled
    }
    const auto cv = points_[c];
    Cell* candidate_home = CellAt(CoordOf(cv));
    bool covered = false;
    for (Cell* cell : candidate_home->neighbors) {
      if (cell->core_points == 0 || cell->points == nullptr ||
          phases::CellBoxBeyondEps(cv.data(), cell->box_origin.data(), dims,
                                   side_, eps2_)) {
        continue;
      }
      if (phases::AnyCoreWithinCell(
              cv, cell->coords.data(), cell->points->data(),
              cell->points->size(), dims, eps2_,
              [this](uint32_t r) { return kinds_[r]; },
              &ctx.distance_comps)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      kinds_.Set(c, PointKind::kOutlier);
      ctx.outlier_delta += 1;
      candidate_home->outlier_points += 1;
    }
  }
  MergeCtx(ctx);
  return Status::OK();
}

std::vector<PointKind> IncrementalDetector::kinds() const {
  std::vector<PointKind> out;
  out.reserve(kinds_.size());
  for (size_t i = 0; i < kinds_.size(); ++i) {
    out.push_back(kinds_[i]);
  }
  return out;
}

std::vector<uint32_t> IncrementalDetector::Outliers() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == PointKind::kOutlier && alive_[i] != 0) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

std::shared_ptr<const IncrementalSnapshot> IncrementalDetector::SnapshotNow() {
  auto snap = std::make_shared<IncrementalSnapshot>();
  snap->params_ = params_;
  snap->stencil_ = stencil_;
  snap->side_ = side_;
  snap->eps2_ = eps2_;
  snap->points_ = points_.Freeze();
  snap->kinds_ = kinds_.Freeze();
  snap->neighbor_counts_ = neighbor_counts_.Freeze();
  snap->alive_ = alive_.Freeze();
  snap->cells_.reserve(cells_.size());
  for (const auto& [coord, cell] : cells_) {
    snap->cells_.emplace(coord,
                         IncrementalSnapshot::SnapCell{
                             cell.points, cell.core_points});
  }
  snap->num_core_ = num_core_;
  snap->num_outliers_ = num_outliers_;
  snap->live_points_ = live_points_;
  // From here on, the first write into any chunk or cell the snapshot
  // shares must clone it.
  ++freeze_serial_;
  return snap;
}

}  // namespace dbscout::core

#include "core/incremental.h"

#include <cmath>
#include <limits>

#include "common/str_util.h"
#include "core/phases/phase_kernels.h"

namespace dbscout::core {
namespace {

grid::CellCoord CellCoordFor(std::span<const double> p, double side,
                             size_t dims) {
  grid::CellCoord coord = grid::CellCoord::Zero(dims);
  for (size_t k = 0; k < p.size(); ++k) {
    coord[k] = static_cast<int64_t>(std::floor(p[k] / side));
  }
  return coord;
}

Status ValidateCoordinates(std::span<const double> point, size_t dims,
                           double side) {
  if (point.size() != dims) {
    return Status::InvalidArgument(
        StrFormat("point has %zu dims, detector expects %zu", point.size(),
                  dims));
  }
  for (double v : point) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite coordinate");
    }
    if (std::abs(std::floor(v / side)) > 4.0e18) {
      return Status::OutOfRange("cell index overflow");
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// IncrementalSnapshot.
// ---------------------------------------------------------------------------

std::vector<PointKind> IncrementalSnapshot::Kinds() const {
  std::vector<PointKind> out;
  out.reserve(kinds_.size());
  for (size_t i = 0; i < kinds_.size(); ++i) {
    out.push_back(kinds_[i]);
  }
  return out;
}

std::vector<uint32_t> IncrementalSnapshot::Outliers() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == PointKind::kOutlier) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

double IncrementalSnapshot::NearestCoreDistance(
    uint32_t i, uint64_t* distance_comps) const {
  if (kinds_[i] == PointKind::kCore) {
    return 0.0;
  }
  const auto pv = points_[i];
  const grid::CellCoord home = CellCoordFor(pv, side_, dims());
  double best2 = std::numeric_limits<double>::infinity();
  for (const grid::CellOffset& offset : stencil_->offsets) {
    const grid::CellCoord neighbor = home.Translated({offset.data(), dims()});
    auto it = cells_.find(neighbor);
    if (it == cells_.end() || it->second.core_points == 0) {
      continue;
    }
    for (uint32_t q : *it->second.points) {
      if (kinds_[q] != PointKind::kCore) {
        continue;
      }
      const double d2 = PointSet::SquaredDistance(pv, points_[q]);
      ++*distance_comps;
      if (d2 < best2) {
        best2 = d2;
      }
    }
  }
  return std::sqrt(best2);
}

Result<ProbeResult> IncrementalSnapshot::Classify(
    std::span<const double> point, bool want_score) const {
  DBSCOUT_RETURN_IF_ERROR(ValidateCoordinates(point, dims(), side_));
  const uint32_t min_pts = static_cast<uint32_t>(params_.min_pts);
  const grid::CellCoord home = CellCoordFor(point, side_, dims());

  ProbeResult out;
  uint64_t count = 1;  // the probe itself (Definition 2)
  bool covered = false;
  double best2 = std::numeric_limits<double>::infinity();
  for (const grid::CellOffset& offset : stencil_->offsets) {
    const grid::CellCoord neighbor =
        home.Translated({offset.data(), dims()});
    auto it = cells_.find(neighbor);
    if (it == cells_.end()) {
      continue;
    }
    for (uint32_t q : *it->second.points) {
      const double d2 = PointSet::SquaredDistance(point, points_[q]);
      ++out.distance_comps;
      const bool within = d2 <= eps2_;
      // Promotion-aware core test: q is core in prefix+probe either when it
      // already is, or when the probe itself is the neighbor that pushes
      // q's count onto the minPts threshold.
      bool q_core = kinds_[q] == PointKind::kCore;
      if (within && !q_core) {
        q_core = phases::CrossesDensityThreshold(neighbor_counts_[q] + 1,
                                                 min_pts);
      }
      if (within) {
        ++count;
        covered |= q_core;
      }
      if (want_score && q_core && d2 < best2) {
        best2 = d2;
      }
    }
  }
  if (phases::IsDense(count, min_pts)) {
    out.kind = PointKind::kCore;
  } else {
    out.kind = covered ? PointKind::kBorder : PointKind::kOutlier;
  }
  if (want_score) {
    out.score = out.kind == PointKind::kCore ? 0.0 : std::sqrt(best2);
  }
  return out;
}

// ---------------------------------------------------------------------------
// IncrementalDetector.
// ---------------------------------------------------------------------------

Result<IncrementalDetector> IncrementalDetector::Create(size_t dims,
                                                        const Params& params) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  if (dims < 1 || dims > kMaxDims) {
    return Status::InvalidArgument(
        StrFormat("dims=%zu out of supported range [1, %zu]", dims, kMaxDims));
  }
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(dims));
  return IncrementalDetector(dims, params, stencil);
}

IncrementalDetector::IncrementalDetector(size_t dims, const Params& params,
                                         const grid::NeighborStencil* stencil)
    : params_(params),
      stencil_(stencil),
      side_(params.eps / std::sqrt(static_cast<double>(dims))),
      eps2_(params.eps * params.eps),
      points_(dims) {}

grid::CellCoord IncrementalDetector::CoordOf(
    std::span<const double> p) const {
  return CellCoordFor(p, side_, points_.width());
}

std::vector<uint32_t>* IncrementalDetector::MutableCellPoints(Cell* cell) {
  if (cell->points == nullptr) {
    cell->points = std::make_shared<std::vector<uint32_t>>();
    cell->serial = freeze_serial_;
  } else if (cell->serial != freeze_serial_) {
    // A snapshot still shares this vector: clone before mutating so its
    // readers keep the frozen contents (appending in place could also
    // reallocate the buffer out from under them).
    cell->points = std::make_shared<std::vector<uint32_t>>(*cell->points);
    cell->serial = freeze_serial_;
  }
  return cell->points.get();
}

void IncrementalDetector::Promote(uint32_t q) {
  if (kinds_[q] != PointKind::kCore) {
    num_core_ += 1;
    if (kinds_[q] == PointKind::kOutlier) {
      num_outliers_ -= 1;
    }
    kinds_.Set(q, PointKind::kCore);
  }
  const grid::CellCoord home = CoordOf(points_[q]);
  ++cells_[home].core_points;
  // Rescue: every current outlier within eps of the new core point becomes
  // a border point (Definition 3).
  const auto qv = points_[q];
  for (const grid::CellOffset& offset : stencil_->offsets) {
    const grid::CellCoord neighbor =
        home.Translated({offset.data(), points_.width()});
    auto it = cells_.find(neighbor);
    if (it == cells_.end() || it->second.points == nullptr) {
      continue;
    }
    for (uint32_t r : *it->second.points) {
      if (kinds_[r] != PointKind::kOutlier) {
        continue;
      }
      ++distance_comps_;
      if (PointSet::SquaredDistance(qv, points_[r]) <= eps2_) {
        kinds_.Set(r, PointKind::kBorder);
        num_outliers_ -= 1;
      }
    }
  }
}

Result<uint32_t> IncrementalDetector::Add(std::span<const double> point) {
  DBSCOUT_RETURN_IF_ERROR(
      ValidateCoordinates(point, points_.width(), side_));
  const uint32_t x = static_cast<uint32_t>(points_.size());
  points_.PushBack(point);
  kinds_.PushBack(PointKind::kOutlier);  // provisional
  num_outliers_ += 1;
  neighbor_counts_.PushBack(1);  // itself

  const grid::CellCoord home = CoordOf(point);
  const uint32_t min_pts = static_cast<uint32_t>(params_.min_pts);

  // One stencil scan: count x's neighbors, bump theirs, and collect the
  // points whose count just crossed minPts.
  std::vector<uint32_t> promoted;
  uint32_t count_x = 1;
  bool covered_by_core = false;
  for (const grid::CellOffset& offset : stencil_->offsets) {
    const grid::CellCoord neighbor =
        home.Translated({offset.data(), points_.width()});
    auto it = cells_.find(neighbor);
    if (it == cells_.end() || it->second.points == nullptr) {
      continue;
    }
    for (uint32_t q : *it->second.points) {
      ++distance_comps_;
      if (PointSet::SquaredDistance(point, points_[q]) > eps2_) {
        continue;
      }
      ++count_x;
      covered_by_core |= kinds_[q] == PointKind::kCore;
      const uint32_t new_count = neighbor_counts_[q] + 1;
      neighbor_counts_.Set(q, new_count);
      if (phases::CrossesDensityThreshold(new_count, min_pts)) {
        promoted.push_back(q);
      }
    }
  }
  neighbor_counts_.Set(x, count_x);
  // Register x only now, so the scan above never saw it.
  {
    Cell& cell = cells_[home];
    MutableCellPoints(&cell)->push_back(x);
  }

  for (uint32_t q : promoted) {
    Promote(q);
  }
  if (phases::IsDense(count_x, min_pts)) {
    Promote(x);
  } else if (covered_by_core || !promoted.empty()) {
    // Any point promoted by this insertion is within eps of x by
    // construction, so x is covered either way. A Promote above may have
    // already rescued x (it sits in its cell with a provisional outlier
    // label), in which case the counter was already adjusted.
    if (kinds_[x] == PointKind::kOutlier) {
      kinds_.Set(x, PointKind::kBorder);
      num_outliers_ -= 1;
    }
  }
  return x;
}

Status IncrementalDetector::AddBatch(const PointSet& batch) {
  if (batch.dims() != points_.width()) {
    return Status::InvalidArgument("batch dims mismatch");
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    DBSCOUT_RETURN_IF_ERROR(Add(batch[i]).status());
  }
  return Status::OK();
}

std::vector<PointKind> IncrementalDetector::kinds() const {
  std::vector<PointKind> out;
  out.reserve(kinds_.size());
  for (size_t i = 0; i < kinds_.size(); ++i) {
    out.push_back(kinds_[i]);
  }
  return out;
}

std::vector<uint32_t> IncrementalDetector::Outliers() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == PointKind::kOutlier) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

std::shared_ptr<const IncrementalSnapshot> IncrementalDetector::SnapshotNow() {
  auto snap = std::make_shared<IncrementalSnapshot>();
  snap->params_ = params_;
  snap->stencil_ = stencil_;
  snap->side_ = side_;
  snap->eps2_ = eps2_;
  snap->points_ = points_.Freeze();
  snap->kinds_ = kinds_.Freeze();
  snap->neighbor_counts_ = neighbor_counts_.Freeze();
  snap->cells_.reserve(cells_.size());
  for (const auto& [coord, cell] : cells_) {
    snap->cells_.emplace(coord,
                         IncrementalSnapshot::SnapCell{
                             cell.points, cell.core_points});
  }
  snap->num_core_ = num_core_;
  snap->num_outliers_ = num_outliers_;
  // From here on, the first write into any chunk or cell the snapshot
  // shares must clone it.
  ++freeze_serial_;
  return snap;
}

}  // namespace dbscout::core

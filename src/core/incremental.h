#ifndef DBSCOUT_CORE_INCREMENTAL_H_
#define DBSCOUT_CORE_INCREMENTAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/detection.h"
#include "core/params.h"
#include "data/point_set.h"
#include "grid/cell_coord.h"
#include "grid/neighborhood.h"

namespace dbscout::core {

/// Exact incremental DBSCOUT for append-only streams (the paper's
/// motivation of data "generated and collected in a daily manner"): points
/// are added one batch at a time and the outlier labeling is maintained
/// exactly after every insertion — equal, at any moment, to what
/// DetectSequential would produce on the points seen so far (enforced by
/// tests).
///
/// Insertions are monotone under Definitions 1-3: neighbor counts only
/// grow, so core points stay core and non-outliers stay non-outliers; the
/// only transitions are non-core -> core (a count crossing minPts) and
/// outlier -> border (a rescue by a newly-core point). Each insertion
/// therefore costs one stencil scan for the new point plus one stencil
/// scan per point it promotes to core — O(minPts * k_d) amortized, the
/// same constant as the batch algorithm's per-point cost.
class IncrementalDetector {
 public:
  /// Fails on invalid params or dims outside [1, kMaxDims].
  static Result<IncrementalDetector> Create(size_t dims, const Params& params);

  IncrementalDetector(IncrementalDetector&&) noexcept = default;
  IncrementalDetector& operator=(IncrementalDetector&&) noexcept = default;

  /// Inserts one point; returns its index. The label of the new point and
  /// every affected older point is updated before returning.
  Result<uint32_t> Add(std::span<const double> point);

  /// Inserts every point of `batch` (same dims) in order.
  Status AddBatch(const PointSet& batch);

  size_t size() const { return points_.size(); }
  size_t dims() const { return points_.dims(); }
  const PointSet& points() const { return points_; }

  /// Current classification of point i.
  PointKind KindOf(uint32_t i) const { return kinds_[i]; }
  const std::vector<PointKind>& kinds() const { return kinds_; }

  /// Current outlier indices, ascending.
  std::vector<uint32_t> Outliers() const;

  size_t num_core() const { return num_core_; }
  size_t num_cells() const { return cells_.size(); }

 private:
  struct Cell {
    std::vector<uint32_t> points;
    uint32_t core_points = 0;  // core cell iff > 0
  };

  IncrementalDetector(size_t dims, const Params& params,
                      const grid::NeighborStencil* stencil);

  grid::CellCoord CoordOf(std::span<const double> p) const;

  /// Marks q core and rescues outliers within eps of it.
  void Promote(uint32_t q);

  Params params_;
  const grid::NeighborStencil* stencil_;
  double side_ = 0.0;
  double eps2_ = 0.0;

  PointSet points_;
  std::vector<PointKind> kinds_;
  std::vector<uint32_t> neighbor_counts_;  // |{q : dist <= eps}|, self incl.
  std::vector<uint8_t> is_core_;
  std::unordered_map<grid::CellCoord, Cell, grid::CellCoordHash> cells_;
  size_t num_core_ = 0;
};

}  // namespace dbscout::core

#endif  // DBSCOUT_CORE_INCREMENTAL_H_

#ifndef DBSCOUT_CORE_INCREMENTAL_H_
#define DBSCOUT_CORE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/cow.h"
#include "common/result.h"
#include "core/detection.h"
#include "core/params.h"
#include "data/point_set.h"
#include "grid/cell_coord.h"
#include "grid/neighborhood.h"

namespace dbscout::core {

/// Result of classifying a hypothetical ("probe") point against a frozen
/// epoch of the incremental detector, without inserting it.
struct ProbeResult {
  /// The label the probe point would receive from DetectSequential run on
  /// the epoch's points plus the probe point itself (promotion-aware: a
  /// prefix point that the probe would push onto the minPts threshold
  /// counts as core for coverage).
  PointKind kind = PointKind::kOutlier;
  /// Distance to the nearest core point within the neighbor-cell horizon
  /// (0 for core probes, +infinity when no core point is in range). Only
  /// filled when requested; mirrors Detection::core_distance semantics.
  double score = 0.0;
  /// Point-to-point distance evaluations this classification performed.
  uint64_t distance_comps = 0;
};

/// An immutable view of the incremental detector's state at one epoch (=
/// number of points inserted when the snapshot was taken). Snapshots share
/// chunked storage with the live detector via copy-on-write, so taking one
/// costs O(epoch / chunk-size) pointer copies, and any number of threads
/// may read a snapshot concurrently with further insertions into the
/// producing detector — provided the snapshot pointer itself is published
/// with release/acquire ordering (the detection service stores it in a
/// std::atomic shared_ptr).
class IncrementalSnapshot {
 public:
  IncrementalSnapshot() = default;

  /// Number of points this snapshot covers; labels answer for exactly the
  /// first epoch() points of the insertion sequence.
  uint64_t epoch() const { return kinds_.size(); }
  size_t dims() const { return points_.width(); }
  size_t num_core() const { return num_core_; }
  size_t num_outliers() const { return num_outliers_; }
  size_t num_cells() const { return cells_.size(); }
  const Params& params() const { return params_; }

  /// Label of point i (< epoch()) at this epoch.
  PointKind KindOf(uint32_t i) const { return kinds_[i]; }

  /// Materialized copy of all labels, index-aligned with insertion order.
  std::vector<PointKind> Kinds() const;

  /// Outlier indices at this epoch, ascending.
  std::vector<uint32_t> Outliers() const;

  /// Coordinates of point i (< epoch()).
  std::span<const double> PointAt(uint32_t i) const { return points_[i]; }

  /// Classifies a point NOT in the set against this epoch: the label it
  /// would receive from DetectSequential on epoch-points + probe. Fails on
  /// dims mismatch or non-finite coordinates. `want_score` additionally
  /// computes the nearest-core distance (disables no early exits here; the
  /// scan always walks the full stencil).
  Result<ProbeResult> Classify(std::span<const double> point,
                               bool want_score) const;

  /// Distance from existing point i (< epoch()) to its nearest core point
  /// within the neighbor-cell horizon — Detection::core_distance
  /// semantics: 0 for core points, +infinity when no core point is in
  /// range. Adds the distance evaluations performed to *distance_comps.
  double NearestCoreDistance(uint32_t i, uint64_t* distance_comps) const;

 private:
  friend class IncrementalDetector;

  struct SnapCell {
    std::shared_ptr<const std::vector<uint32_t>> points;
    uint32_t core_points = 0;
  };

  Params params_;
  const grid::NeighborStencil* stencil_ = nullptr;
  double side_ = 0.0;
  double eps2_ = 0.0;

  ChunkedRows::Frozen points_;
  CowChunkedVector<PointKind>::Frozen kinds_;
  CowChunkedVector<uint32_t>::Frozen neighbor_counts_;
  std::unordered_map<grid::CellCoord, SnapCell, grid::CellCoordHash> cells_;
  size_t num_core_ = 0;
  size_t num_outliers_ = 0;
};

/// Exact incremental DBSCOUT for append-only streams (the paper's
/// motivation of data "generated and collected in a daily manner"): points
/// are added one batch at a time and the outlier labeling is maintained
/// exactly after every insertion — equal, at any moment, to what
/// DetectSequential would produce on the points seen so far (enforced by
/// tests).
///
/// Insertions are monotone under Definitions 1-3: neighbor counts only
/// grow, so core points stay core and non-outliers stay non-outliers; the
/// only transitions are non-core -> core (a count crossing minPts) and
/// outlier -> border (a rescue by a newly-core point). Each insertion
/// therefore costs one stencil scan for the new point plus one stencil
/// scan per point it promotes to core — O(minPts * k_d) amortized, the
/// same constant as the batch algorithm's per-point cost.
///
/// Threading contract: all mutating calls (Add/AddBatch/SnapshotNow) must
/// come from one writer at a time; SnapshotNow() hands out immutable views
/// that other threads may read concurrently with subsequent writes (the
/// storage is copy-on-write at chunk/cell granularity, see common/cow.h).
class IncrementalDetector {
 public:
  /// Fails on invalid params or dims outside [1, kMaxDims].
  static Result<IncrementalDetector> Create(size_t dims, const Params& params);

  IncrementalDetector(IncrementalDetector&&) noexcept = default;
  IncrementalDetector& operator=(IncrementalDetector&&) noexcept = default;

  /// Inserts one point; returns its index. The label of the new point and
  /// every affected older point is updated before returning.
  Result<uint32_t> Add(std::span<const double> point);

  /// Inserts every point of `batch` (same dims) in order.
  Status AddBatch(const PointSet& batch);

  size_t size() const { return kinds_.size(); }
  size_t dims() const { return points_.width(); }

  /// Epoch = number of points inserted so far (the prefix length a
  /// snapshot taken now would cover).
  uint64_t epoch() const { return kinds_.size(); }

  /// Current classification of point i.
  PointKind KindOf(uint32_t i) const { return kinds_[i]; }
  /// Materialized copy of all labels (insertion order).
  std::vector<PointKind> kinds() const;

  /// Current outlier indices, ascending.
  std::vector<uint32_t> Outliers() const;

  size_t num_core() const { return num_core_; }
  size_t num_outliers() const { return num_outliers_; }
  size_t num_cells() const { return cells_.size(); }

  /// Total point-to-point distance evaluations performed by insertions
  /// (monotone; the service's STATS verb reports deltas per apply pass).
  uint64_t distance_computations() const { return distance_comps_; }

  /// Freezes the current state into an immutable snapshot. O(cells +
  /// size/chunk-size); subsequent writes copy-on-write only the chunks and
  /// cells they touch. Must be called from the writer thread.
  std::shared_ptr<const IncrementalSnapshot> SnapshotNow();

 private:
  struct Cell {
    /// COW: cloned on first mutation after a SnapshotNow(), so snapshots
    /// keep the pre-mutation vector.
    std::shared_ptr<std::vector<uint32_t>> points;
    uint32_t core_points = 0;  // core cell iff > 0
    uint64_t serial = 0;       // freeze serial at last clone/create
  };

  IncrementalDetector(size_t dims, const Params& params,
                      const grid::NeighborStencil* stencil);

  grid::CellCoord CoordOf(std::span<const double> p) const;

  /// The cell's point list, cloned first if a snapshot still shares it.
  std::vector<uint32_t>* MutableCellPoints(Cell* cell);

  /// Marks q core and rescues outliers within eps of it.
  void Promote(uint32_t q);

  Params params_;
  const grid::NeighborStencil* stencil_;
  double side_ = 0.0;
  double eps2_ = 0.0;

  ChunkedRows points_;
  CowChunkedVector<PointKind> kinds_;
  CowChunkedVector<uint32_t> neighbor_counts_;  // |{q: dist <= eps}|, self incl.
  std::unordered_map<grid::CellCoord, Cell, grid::CellCoordHash> cells_;
  size_t num_core_ = 0;
  size_t num_outliers_ = 0;
  uint64_t freeze_serial_ = 0;
  uint64_t distance_comps_ = 0;
};

}  // namespace dbscout::core

#endif  // DBSCOUT_CORE_INCREMENTAL_H_

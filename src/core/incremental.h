#ifndef DBSCOUT_CORE_INCREMENTAL_H_
#define DBSCOUT_CORE_INCREMENTAL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/cow.h"
#include "common/result.h"
#include "core/detection.h"
#include "core/params.h"
#include "core/phases/phase_kernels.h"
#include "data/point_set.h"
#include "grid/cell_coord.h"
#include "grid/neighborhood.h"

namespace dbscout {
class ThreadPool;
}

namespace dbscout::core {

/// Result of classifying a hypothetical ("probe") point against a frozen
/// epoch of the incremental detector, without inserting it.
struct ProbeResult {
  /// The label the probe point would receive from DetectSequential run on
  /// the epoch's points plus the probe point itself (promotion-aware: a
  /// prefix point that the probe would push onto the minPts threshold
  /// counts as core for coverage).
  PointKind kind = PointKind::kOutlier;
  /// Distance to the nearest core point within the neighbor-cell horizon
  /// (0 for core probes, +infinity when no core point is in range). Only
  /// filled when requested; mirrors Detection::core_distance semantics.
  double score = 0.0;
  /// Point-to-point distance evaluations this classification performed.
  uint64_t distance_comps = 0;
};

/// Per-pass statistics of one (possibly sharded) batch apply: how many
/// region shards the batch split into and how long each executed shard
/// task ran. Feeds the service's dbscout_apply_shards gauge and
/// dbscout_apply_shard_seconds histogram.
struct ApplyStats {
  size_t shards = 1;
  std::vector<double> shard_seconds;
};

/// An immutable view of the incremental detector's state at one epoch (=
/// number of points inserted when the snapshot was taken). Snapshots share
/// chunked storage with the live detector via copy-on-write, so taking one
/// costs O(epoch / chunk-size) pointer copies, and any number of threads
/// may read a snapshot concurrently with further insertions into the
/// producing detector — provided the snapshot pointer itself is published
/// with release/acquire ordering (the detection service stores it in a
/// std::atomic shared_ptr).
class IncrementalSnapshot {
 public:
  IncrementalSnapshot() = default;

  /// Number of points this snapshot covers; labels answer for exactly the
  /// first epoch() points of the insertion sequence (removed points carry
  /// their last label but are excluded from Outliers() and flagged dead in
  /// the alive mask).
  uint64_t epoch() const { return kinds_.size(); }
  size_t dims() const { return points_.width(); }
  size_t num_core() const { return num_core_; }
  size_t num_outliers() const { return num_outliers_; }
  size_t num_cells() const { return cells_.size(); }
  /// Points inserted and not yet removed at this epoch.
  size_t live_points() const { return live_points_; }
  const Params& params() const { return params_; }

  /// Label of point i (< epoch()) at this epoch.
  PointKind KindOf(uint32_t i) const { return kinds_[i]; }

  /// False when point i was removed (explicitly or by window expiry).
  bool IsAlive(uint32_t i) const { return alive_[i] != 0; }

  /// Materialized copy of all labels, index-aligned with insertion order.
  /// Removed points keep the label they had when removed.
  std::vector<PointKind> Kinds() const;

  /// Live outlier indices at this epoch, ascending (removed points never
  /// appear).
  std::vector<uint32_t> Outliers() const;

  /// Coordinates of point i (< epoch()).
  std::span<const double> PointAt(uint32_t i) const { return points_[i]; }

  /// Classifies a point NOT in the set against this epoch: the label it
  /// would receive from DetectSequential on the epoch's live points +
  /// probe. Fails on dims mismatch or non-finite coordinates.
  /// `want_score` additionally computes the nearest-core distance
  /// (disables no early exits here; the scan always walks the full
  /// stencil).
  Result<ProbeResult> Classify(std::span<const double> point,
                               bool want_score) const;

  /// Distance from existing point i (< epoch()) to its nearest core point
  /// within the neighbor-cell horizon — Detection::core_distance
  /// semantics: 0 for core points, +infinity when no core point is in
  /// range. Adds the distance evaluations performed to *distance_comps.
  double NearestCoreDistance(uint32_t i, uint64_t* distance_comps) const;

 private:
  friend class IncrementalDetector;

  struct SnapCell {
    std::shared_ptr<const std::vector<uint32_t>> points;
    uint32_t core_points = 0;
  };

  Params params_;
  const grid::NeighborStencil* stencil_ = nullptr;
  double side_ = 0.0;
  double eps2_ = 0.0;

  ChunkedRows::Frozen points_;
  CowChunkedVector<PointKind>::Frozen kinds_;
  CowChunkedVector<uint32_t>::Frozen neighbor_counts_;
  CowChunkedVector<uint8_t>::Frozen alive_;
  std::unordered_map<grid::CellCoord, SnapCell, grid::CellCoordHash> cells_;
  size_t num_core_ = 0;
  size_t num_outliers_ = 0;
  size_t live_points_ = 0;
};

/// Exact incremental DBSCOUT for online streams (the paper's motivation of
/// data "generated and collected in a daily manner"): points are added one
/// batch at a time — and, for sliding-window workloads, removed again —
/// while the outlier labeling is maintained exactly after every mutation:
/// equal, at any moment, to what DetectSequential would produce on the
/// live points (enforced by tests).
///
/// Insertions are monotone under Definitions 1-3: neighbor counts only
/// grow, so core points stay core and non-outliers stay non-outliers; the
/// only transitions are non-core -> core (a count crossing minPts) and
/// outlier -> border (a rescue by a newly-core point). Each insertion
/// therefore costs one stencil scan for the new point plus one stencil
/// scan per point it promotes to core — O(minPts * k_d) amortized, the
/// same constant as the batch algorithm's per-point cost.
///
/// Removals break that monotonicity, so Remove() re-derives the affected
/// transitions: counts of the removed point's eps-neighbors decrement
/// (demoting cores that fall off the minPts threshold), and border points
/// that were covered only by the removed/demoted cores are re-checked and
/// may fall to outlier. Cells hold only live points, so scans never see a
/// removed point; the alive mask records removals for snapshot readers.
///
/// Threading contract: all mutating calls (Add/AddBatch/AddBatchParallel/
/// Remove/SnapshotNow) must come from one writer at a time; SnapshotNow()
/// hands out immutable views that other threads may read concurrently
/// with subsequent writes (the storage is copy-on-write at chunk/cell
/// granularity, see common/cow.h). AddBatchParallel additionally fans the
/// batch out over a caller-provided ThreadPool: points are grouped by
/// home cell, groups by dim-0 slab block of width 2*ceil(sqrt(d)) cells,
/// and blocks run in three waves colored so that concurrently running
/// tasks' read/write footprints never overlap (see grid/regions.h). The
/// final state is identical to sequential insertion — point labels are an
/// order-independent function of the point set — and no snapshot is taken
/// mid-batch, so readers only ever observe exact epochs.
class IncrementalDetector {
 public:
  /// Fails on invalid params or dims outside [1, kMaxDims].
  static Result<IncrementalDetector> Create(size_t dims, const Params& params);

  IncrementalDetector(IncrementalDetector&&) noexcept = default;
  IncrementalDetector& operator=(IncrementalDetector&&) noexcept = default;

  /// Inserts one point; returns its index. The label of the new point and
  /// every affected older point is updated before returning.
  Result<uint32_t> Add(std::span<const double> point);

  /// Inserts every point of `batch` (same dims). The whole batch is
  /// validated first, so on error the detector is unchanged.
  Status AddBatch(const PointSet& batch);

  /// Inserts every point of `batch` using the sharded apply pipeline on
  /// `pool` (nullptr runs the same grouped scan inline, single-threaded).
  /// Validates the whole batch first (atomic failure). `stats`, when
  /// non-null, receives shard count and per-shard-task seconds.
  Status AddBatchParallel(const PointSet& batch, ThreadPool* pool,
                          ApplyStats* stats = nullptr);

  /// Checks one candidate row against this detector's dims and coordinate
  /// domain without mutating anything. The service pre-validates client
  /// batches with this so one malformed batch cannot poison a coalesced
  /// apply pass.
  Status ValidatePoint(std::span<const double> point) const;

  /// Removes point `id` from the live set and re-derives every affected
  /// label (core -> non-core demotions of points whose neighbor count
  /// falls off the minPts threshold, border -> outlier demotions of
  /// points that lose their last covering core). InvalidArgument when id
  /// was never inserted; NotFound when already removed.
  Status Remove(uint32_t id);

  size_t size() const { return kinds_.size(); }
  size_t dims() const { return points_.width(); }

  /// Epoch = number of points inserted so far (the prefix length a
  /// snapshot taken now would cover). Removals do not rewind the epoch:
  /// indices are stable for the detector's lifetime.
  uint64_t epoch() const { return kinds_.size(); }

  /// Points inserted and not yet removed.
  size_t live_points() const { return live_points_; }
  /// False when point i was removed.
  bool IsAlive(uint32_t i) const { return alive_[i] != 0; }

  /// Current classification of point i.
  PointKind KindOf(uint32_t i) const { return kinds_[i]; }
  /// Materialized copy of all labels (insertion order; removed points
  /// keep their last label).
  std::vector<PointKind> kinds() const;

  /// Current live outlier indices, ascending.
  std::vector<uint32_t> Outliers() const;

  size_t num_core() const { return num_core_; }
  size_t num_outliers() const { return num_outliers_; }
  size_t num_cells() const { return cells_.size(); }

  /// Total point-to-point distance evaluations performed by mutations
  /// (monotone; the service's STATS verb reports deltas per apply pass).
  uint64_t distance_computations() const { return distance_comps_; }

  /// Freezes the current state into an immutable snapshot. O(cells +
  /// size/chunk-size); subsequent writes copy-on-write only the chunks and
  /// cells they touch. Must be called from the writer thread, never
  /// concurrently with AddBatchParallel shard tasks.
  std::shared_ptr<const IncrementalSnapshot> SnapshotNow();

 private:
  struct Cell {
    /// Point indices and their packed row-major coordinates (parallel
    /// arrays: coords rows line up with points entries), so neighborhood
    /// scans run the SIMD block kernels over one contiguous block per
    /// cell. Only `points` is COW (snapshots share it via SnapCell and it
    /// clones on first mutation after a SnapshotNow()); `coords` is a
    /// detector-private scan mirror no snapshot ever reads — readers
    /// resolve coordinates through the frozen row store — so it mutates in
    /// place across snapshots.
    std::shared_ptr<std::vector<uint32_t>> points;
    std::vector<double> coords;
    /// Stencil-neighbor cells (self included, last), resolved once at
    /// creation and kept symmetric as later cells appear — the mutation
    /// paths never pay per-point stencil hash lookups. Cells are never
    /// erased (an emptied cell stays as a stub) so these pointers stay
    /// valid; unordered_map nodes are stable under rehash.
    std::vector<Cell*> neighbors;
    /// Lower corner of the cell's box (coord * side per axis), so scans can
    /// skip this cell outright when the whole box lies beyond eps of the
    /// query (phases::CellBoxBeyondEps). Fixed at creation.
    std::array<double, kMaxDims> box_origin{};
    uint32_t core_points = 0;     // core cell iff > 0
    uint32_t outlier_points = 0;  // rescue scans skip cells with none
    uint64_t serial = 0;          // freeze serial at last clone/create
  };

  /// Mutable per-task state of one apply task: counter deltas (merged
  /// serially under the merge mutex — shard tasks never touch the
  /// detector-level counters) and reusable scratch buffers.
  struct ApplyCtx {
    int64_t core_delta = 0;
    int64_t outlier_delta = 0;
    uint64_t distance_comps = 0;
    std::vector<uint32_t> promoted;
    std::vector<uint8_t> flags;
    /// Batched group-apply scratch (ApplyGroupBatched): per-block-position
    /// hit totals, the block's core mask, and per-member count/coverage
    /// accumulators.
    std::vector<uint32_t> acc;
    std::vector<uint8_t> core_mask;
    std::vector<uint32_t> member_counts;
    std::vector<uint8_t> member_covered;
  };

  IncrementalDetector(size_t dims, const Params& params,
                      const grid::NeighborStencil* stencil);

  grid::CellCoord CoordOf(std::span<const double> p) const;

  /// Clones the cell's point/coord vectors if a snapshot still shares
  /// them (or creates them when empty).
  void EnsureOwnedCell(Cell* cell);

  /// Registers point x (row pv) in `cell` as a provisional outlier.
  void AppendToCell(Cell* cell, uint32_t x, std::span<const double> pv);

  /// Finds or creates the cell at `coord`, wiring the (symmetric)
  /// neighbor caches on creation. Structural: serial contexts only.
  Cell* GetOrCreateCell(const grid::CellCoord& coord);

  /// The cell at `coord`; must exist.
  Cell* CellAt(const grid::CellCoord& coord);

  /// Full insertion of one appended point x: neighborhood scan (count +
  /// cover + neighbor count bumps), registration, promotions. Requires
  /// ctx->neighbors collected for x's home cell.
  void ApplyPoint(uint32_t x, std::span<const double> pv, Cell* home_cell,
                  ApplyCtx* ctx);

  /// Insertion of one whole home-cell group (`members` ascending, all rows
  /// already appended): the home block is scanned one member at a time (so
  /// intra-group pairs count exactly once), but each neighbor block is
  /// scanned with all members batched — per-position hit totals accumulate
  /// locally and every touched point pays one count update for the whole
  /// group. Promotions defer to the end of the group; their rescue scans
  /// settle the labels the batched coverage masks could not see (cores
  /// minted by this very group). Final labels match per-point insertion:
  /// they are an order-independent function of the point set.
  void ApplyGroupBatched(const std::vector<uint32_t>& members, Cell* home_cell,
                         ApplyCtx* ctx);

  /// Marks q core and rescues outliers within eps of it.
  void Promote(uint32_t q, ApplyCtx* ctx);

  /// Folds a task's counter deltas into the detector-level counters.
  void MergeCtx(const ApplyCtx& ctx);

  Params params_;
  const grid::NeighborStencil* stencil_;
  phases::BoundKernels kernels_{};
  double side_ = 0.0;
  double eps2_ = 0.0;
  /// Slab-block width of the sharded apply (2 * stencil reach along dim
  /// 0): wide enough that a block task writes at most one block to each
  /// side, so three wave colors make same-wave tasks conflict-free.
  int64_t block_width_ = 2;

  ChunkedRows points_;
  CowChunkedVector<PointKind> kinds_;
  CowChunkedVector<uint32_t> neighbor_counts_;  // |{q: dist <= eps}|, self incl.
  CowChunkedVector<uint8_t> alive_;
  std::unordered_map<grid::CellCoord, Cell, grid::CellCoordHash> cells_;
  size_t num_core_ = 0;
  size_t num_outliers_ = 0;
  size_t live_points_ = 0;
  uint64_t freeze_serial_ = 0;
  uint64_t distance_comps_ = 0;
};

}  // namespace dbscout::core

#endif  // DBSCOUT_CORE_INCREMENTAL_H_

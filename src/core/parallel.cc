#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "common/timer.h"
#include "core/dbscout.h"
#include "core/phases/phase_kernels.h"
#include "core/phases/phase_recorder.h"
#include "dataflow/dataset.h"
#include "dataflow/pair_ops.h"
#include "grid/cell_coord.h"
#include "grid/cell_map.h"
#include "grid/neighborhood.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simd/distance_kernel.h"

namespace dbscout::core {
namespace {

using dataflow::Broadcast;
using dataflow::Dataset;
using dataflow::ExecutionContext;
using grid::CellCoord;
using grid::CellCoordHash;
using grid::CellMap;
using grid::CellType;
using grid::NeighborStencil;

/// (cell coordinates, point id) — the records of the grid dataset G
/// produced by Algorithm 1.
using GridRecord = std::pair<CellCoord, uint32_t>;

// Largest |cell index| we accept before int64 overflow becomes possible
// when translating by stencil offsets.
constexpr double kMaxCellIndex = 4.0e18;

// Copies the coordinates of `ids` into one contiguous row-major block so
// the grouped-join tasks can run the batched distance kernels; the gather
// is paid once per cell group, not once per pair.
void GatherCoords(const PointSet& pts, const std::vector<uint32_t>& ids,
                  size_t d, std::vector<double>* block) {
  block->resize(ids.size() * d);
  double* dst = block->data();
  for (uint32_t q : ids) {
    const auto v = pts[q];
    for (size_t k = 0; k < d; ++k) {
      *dst++ = v[k];
    }
  }
}

}  // namespace

Result<Detection> DetectParallel(const PointSet& points, const Params& params,
                                 ExecutionContext* ctx) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  if (params.compute_scores) {
    return Status::InvalidArgument(
        "compute_scores is supported by the sequential and shared-memory "
        "engines only (the dataflow engine's AND-reduction discards "
        "distances)");
  }
  const size_t d = points.dims();
  if (d < 1 || d > kMaxDims) {
    return Status::InvalidArgument(
        StrFormat("dims=%zu out of supported range [1, %zu]", d, kMaxDims));
  }
  DBSCOUT_ASSIGN_OR_RETURN(const NeighborStencil* stencil,
                           grid::GetNeighborStencil(d));
  // Batched distance kernels for the grouped-join tasks (the plain and
  // broadcast joins are pairwise record streams by structure and keep the
  // scalar per-pair distance). Bit-identical to the scalar loops.
  const simd::CountWithinFn count_within =
      simd::DispatchedKernels().count_within[d];
  const simd::AnyWithinFn any_within = simd::DispatchedKernels().any_within[d];
  WallTimer total_timer;
  const uint64_t shuffle_base = ctx->Summary().shuffled_records;

  Detection out;
  phases::PhaseRecorder recorder;
  recorder.AttachObservability(phases::kEngineParallel,
                               &obs::Registry::Global(), params.trace);
  // While tracing, also surface the per-worker partition tasks: each
  // dataflow stage task emits its own span from its worker thread. The
  // guard restores the context's previous collector on every exit path.
  struct CtxTraceGuard {
    ExecutionContext* ctx;
    obs::TraceCollector* prior;
    std::string prior_category;
    ~CtxTraceGuard() { ctx->AttachTrace(prior, std::move(prior_category)); }
  } ctx_trace_guard{ctx, ctx->trace(), ctx->trace_category()};
  if (params.trace != nullptr) {
    ctx->AttachTrace(params.trace, std::string(phases::kEngineParallel));
  }
  const size_t n = points.size();
  const double eps2 = params.eps * params.eps;
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);
  const double side = params.eps / std::sqrt(static_cast<double>(d));
  const size_t parts = params.num_partitions == 0 ? ctx->default_partitions()
                                                  : params.num_partitions;

  // Input validation pass (the sequential Grid::Build performs the same
  // checks; here there is no Grid object, so validate up front).
  for (size_t i = 0; i < n; ++i) {
    const auto p = points[i];
    for (size_t k = 0; k < d; ++k) {
      if (!std::isfinite(p[k])) {
        return Status::InvalidArgument(
            StrFormat("point %zu has non-finite coordinate %zu", i, k));
      }
      if (std::abs(std::floor(p[k] / side)) > kMaxCellIndex) {
        return Status::OutOfRange(
            StrFormat("point %zu: cell index overflow", i));
      }
    }
  }

  const PointSet* pts = &points;  // outlives every task of this call
  auto cell_of = [pts, d, side](uint32_t i) {
    CellCoord coord = CellCoord::Zero(d);
    const auto p = (*pts)[i];
    for (size_t k = 0; k < d; ++k) {
      coord[k] = static_cast<int64_t>(std::floor(p[k] / side));
    }
    return coord;
  };
  auto sqdist = [pts](uint32_t a, uint32_t b) {
    return PointSet::SquaredDistance((*pts)[a], (*pts)[b]);
  };

  // ---- Phase 1: grid definition (Algorithm 1). -------------------------
  Dataset<GridRecord> g;
  {
    phases::ScopedPhase phase(&recorder, phases::kPhaseGrid);
    auto ids = Dataset<uint32_t>::Iota(ctx, static_cast<uint32_t>(n), parts);
    g = ids.Map([cell_of](uint32_t i) { return GridRecord(cell_of(i), i); },
                "CreateGrid");
    phase.records = n;
  }

  // ---- Phase 2: dense cell map construction (Algorithm 2). -------------
  Broadcast<CellMap> cell_map;
  {
    phases::ScopedPhase phase(&recorder, phases::kPhaseDenseCellMap);
    auto ones = g.Map(
        [](const GridRecord& rec) { return std::make_pair(rec.first, 1u); },
        "CellOnes");
    auto counts =
        ReduceByKey(ones, [](uint32_t a, uint32_t b) { return a + b; }, parts,
                    CellCoordHash(), "CountCells");
    CellMap map;
    counts.ForEach([&map, min_pts](const std::pair<CellCoord, uint32_t>& kv) {
      map.Insert(kv.first, kv.second, phases::IsDense(kv.second, min_pts));
    });
    out.num_cells = map.size();
    out.num_dense_cells = map.CountByType(CellType::kDense);
    phase.records = out.num_cells;
    cell_map = Broadcast<CellMap>(std::move(map));
  }

  // ---- Phase 3: core points identification (Algorithm 3). --------------
  std::vector<uint8_t> is_core(n, 0);
  {
    phases::ScopedPhase phase(&recorder, phases::kPhaseCorePoints);
    auto is_dense_cell = [cell_map](const GridRecord& rec) {
      return phases::IsDenseCell(*cell_map, rec.first);
    };
    // C_d: points of dense cells are core outright (Lemma 1).
    auto dense_core =
        g.Filter(is_dense_cell, "FilterDense")
            .Map([](const GridRecord& rec) { return rec.second; },
                 "DenseCoreIds");
    auto non_dense = g.Filter(
        [is_dense_cell](const GridRecord& rec) { return !is_dense_cell(rec); },
        "FilterNonDense");

    // Emit the points to check on every non-empty neighboring cell. The
    // paper's Algorithm 3 emits (N, (C, p)); since p determines its home
    // cell C, the records here carry only (N, p), halving shuffle volume.
    auto emit_to_neighbors =
        [cell_map, stencil](const GridRecord& rec,
                            std::vector<std::pair<CellCoord, uint32_t>>* sink) {
          for (const grid::CellOffset& offset : stencil->offsets) {
            const CellCoord neighbor =
                rec.first.Translated({offset.data(), rec.first.dims()});
            if (cell_map->Contains(neighbor)) {
              sink->push_back({neighbor, rec.second});
            }
          }
        };

    Dataset<std::pair<uint32_t, uint32_t>> contributions;  // (point, count)
    switch (params.join) {
      case JoinStrategy::kPlain: {
        auto to_check = non_dense.FlatMap<std::pair<CellCoord, uint32_t>>(
            emit_to_neighbors, "EmitToCheck");
        auto joined = Join(g, to_check, parts, CellCoordHash(), "JoinGrid");
        contributions = joined.Map(
            [&phase, sqdist, eps2](
                const std::pair<CellCoord,
                                std::pair<uint32_t, uint32_t>>& rec) {
              phase.distances.fetch_add(1, std::memory_order_relaxed);
              const uint32_t q = rec.second.first;
              const uint32_t p = rec.second.second;
              return std::make_pair(p, sqdist(p, q) <= eps2 ? 1u : 0u);
            },
            "DistanceOnes");
        break;
      }
      case JoinStrategy::kGrouped: {
        auto to_check = non_dense.FlatMap<std::pair<CellCoord, uint32_t>>(
            emit_to_neighbors, "EmitToCheck");
        auto checks_grouped =
            GroupByKey(to_check, parts, CellCoordHash(), "GroupChecks");
        auto grid_grouped = GroupByKey(g, parts, CellCoordHash(), "GroupGrid");
        auto joined = Join(grid_grouped, checks_grouped, parts,
                           CellCoordHash(), "JoinGrouped");
        contributions =
            joined.FlatMap<std::pair<uint32_t, uint32_t>>(
                [&phase, pts, d, count_within, eps2, min_pts](
                    const std::pair<
                        CellCoord,
                        std::pair<std::vector<uint32_t>,
                                  std::vector<uint32_t>>>& rec,
                    std::vector<std::pair<uint32_t, uint32_t>>* sink) {
                  const auto& cell_points = rec.second.first;
                  // Gather the cell's coordinates once, then run the
                  // batched kernel per point to check; early termination
                  // (SS III-G2) happens at kernel-batch granularity.
                  static thread_local std::vector<double> block;
                  GatherCoords(*pts, cell_points, d, &block);
                  uint64_t comparisons = 0;
                  for (uint32_t p : rec.second.second) {
                    comparisons += cell_points.size();
                    const uint32_t count =
                        count_within((*pts)[p].data(), block.data(),
                                     cell_points.size(), eps2, min_pts);
                    if (count > 0) {
                      sink->push_back({p, count});
                    }
                  }
                  phase.distances.fetch_add(comparisons,
                                            std::memory_order_relaxed);
                },
                "GroupedDistances");
        break;
      }
      case JoinStrategy::kBroadcast: {
        auto to_check = non_dense.FlatMap<std::pair<CellCoord, uint32_t>>(
            emit_to_neighbors, "EmitToCheck");
        auto local = CollectGrouped(to_check, CellCoordHash());
        Broadcast<decltype(local)> checks_by_cell(std::move(local));
        contributions =
            g.FlatMap<std::pair<uint32_t, uint32_t>>(
                [&phase, checks_by_cell, sqdist, eps2](
                    const GridRecord& rec,
                    std::vector<std::pair<uint32_t, uint32_t>>* sink) {
                  auto it = checks_by_cell->find(rec.first);
                  if (it == checks_by_cell->end()) {
                    return;
                  }
                  const uint32_t q = rec.second;
                  uint64_t comparisons = 0;
                  for (uint32_t p : it->second) {
                    ++comparisons;
                    if (sqdist(p, q) <= eps2) {
                      sink->push_back({p, 1u});
                    }
                  }
                  phase.distances.fetch_add(comparisons,
                                            std::memory_order_relaxed);
                },
                "BroadcastDistances");
        break;
      }
    }
    auto counts = ReduceByKey(
        contributions, [](uint32_t a, uint32_t b) { return a + b; }, parts,
        std::hash<uint32_t>(), "SumNeighbors");
    auto core_nd =
        counts
            .Filter([min_pts](const std::pair<uint32_t, uint32_t>& kv) {
              return phases::IsDense(kv.second, min_pts);
            })
            .Map([](const std::pair<uint32_t, uint32_t>& kv) {
              return kv.first;
            });
    // C = C_d UNION C_nd; collect the core flags to the driver.
    auto all_core = dense_core.Union(core_nd, "UnionCore");
    all_core.ForEach([&is_core](uint32_t p) { is_core[p] = 1; });
    phase.records = all_core.Count();
  }

  // ---- Phase 4: core cell map construction (Algorithm 4). --------------
  Broadcast<CellMap> core_map;
  {
    phases::ScopedPhase phase(&recorder, phases::kPhaseCoreCellMap);
    CellMap updated = *cell_map;  // dense cells already rank as core
    for (size_t i = 0; i < n; ++i) {
      if (is_core[i]) {
        updated.MarkCore(cell_of(static_cast<uint32_t>(i)));
      }
    }
    out.num_core_cells = updated.CountByType(CellType::kCore) +
                         updated.CountByType(CellType::kDense);
    phase.records = out.num_core_cells;
    core_map = Broadcast<CellMap>(std::move(updated));
  }

  // ---- Phase 5: outliers identification (Algorithm 5). -----------------
  std::vector<uint32_t> outliers;
  {
    phases::ScopedPhase phase(&recorder, phases::kPhaseOutliers);
    Broadcast<std::vector<uint8_t>> core_flags(is_core);
    auto non_core = g.Filter(
        [core_map](const GridRecord& rec) {
          return !phases::IsCoreCell(*core_map, rec.first);
        },
        "FilterNonCore");
    // O_ncn: no neighboring core cell at all -> outright outliers.
    auto o_ncn =
        non_core
            .Filter(
                [core_map, stencil](const GridRecord& rec) {
                  return !core_map->HasCoreNeighbor(rec.first, *stencil);
                },
                "FilterNoCoreNeighbor")
            .Map([](const GridRecord& rec) { return rec.second; });

    // Points of non-core cells, emitted on their neighboring *core* cells.
    auto emit_to_core_neighbors =
        [core_map, stencil](const GridRecord& rec,
                            std::vector<std::pair<CellCoord, uint32_t>>* sink) {
          for (const grid::CellOffset& offset : stencil->offsets) {
            const CellCoord neighbor =
                rec.first.Translated({offset.data(), rec.first.dims()});
            if (phases::IsCoreCell(*core_map, neighbor)) {
              sink->push_back({neighbor, rec.second});
            }
          }
        };
    auto core_points = g.Filter(
        [core_flags](const GridRecord& rec) {
          return (*core_flags)[rec.second] != 0;
        },
        "FilterCorePoints");

    Dataset<std::pair<uint32_t, uint8_t>> flags;  // (point, outlier flag)
    switch (params.join) {
      case JoinStrategy::kPlain: {
        auto to_check = non_core.FlatMap<std::pair<CellCoord, uint32_t>>(
            emit_to_core_neighbors, "EmitToCheck2");
        auto joined =
            Join(core_points, to_check, parts, CellCoordHash(), "JoinCore");
        flags = joined.Map(
            [&phase, sqdist, eps2](
                const std::pair<CellCoord, std::pair<uint32_t, uint32_t>>&
                    rec) {
              phase.distances.fetch_add(1, std::memory_order_relaxed);
              const uint32_t q = rec.second.first;   // core point
              const uint32_t p = rec.second.second;  // point to check
              return std::make_pair(
                  p, static_cast<uint8_t>(sqdist(p, q) > eps2 ? 1 : 0));
            },
            "OutlierFlags");
        break;
      }
      case JoinStrategy::kGrouped: {
        auto to_check = non_core.FlatMap<std::pair<CellCoord, uint32_t>>(
            emit_to_core_neighbors, "EmitToCheck2");
        auto checks_grouped =
            GroupByKey(to_check, parts, CellCoordHash(), "GroupChecks2");
        auto core_grouped =
            GroupByKey(core_points, parts, CellCoordHash(), "GroupCore");
        auto joined = Join(core_grouped, checks_grouped, parts,
                           CellCoordHash(), "JoinGrouped2");
        flags = joined.FlatMap<std::pair<uint32_t, uint8_t>>(
            [&phase, pts, d, any_within, eps2](
                const std::pair<CellCoord,
                                std::pair<std::vector<uint32_t>,
                                          std::vector<uint32_t>>>& rec,
                std::vector<std::pair<uint32_t, uint8_t>>* sink) {
              const auto& core_in_cell = rec.second.first;
              // Gather once, then one batched any-within query per point;
              // early termination (SS III-G2) at kernel-batch granularity.
              static thread_local std::vector<double> block;
              GatherCoords(*pts, core_in_cell, d, &block);
              uint64_t comparisons = 0;
              for (uint32_t p : rec.second.second) {
                comparisons += core_in_cell.size();
                const bool within =
                    any_within((*pts)[p].data(), block.data(),
                               core_in_cell.size(), eps2);
                sink->push_back({p, static_cast<uint8_t>(within ? 0 : 1)});
              }
              phase.distances.fetch_add(comparisons,
                                        std::memory_order_relaxed);
            },
            "GroupedFlags");
        break;
      }
      case JoinStrategy::kBroadcast: {
        auto to_check = non_core.FlatMap<std::pair<CellCoord, uint32_t>>(
            emit_to_core_neighbors, "EmitToCheck2");
        auto local = CollectGrouped(to_check, CellCoordHash());
        Broadcast<decltype(local)> checks_by_cell(std::move(local));
        flags = core_points.FlatMap<std::pair<uint32_t, uint8_t>>(
            [&phase, checks_by_cell, sqdist, eps2](
                const GridRecord& rec,
                std::vector<std::pair<uint32_t, uint8_t>>* sink) {
              auto it = checks_by_cell->find(rec.first);
              if (it == checks_by_cell->end()) {
                return;
              }
              const uint32_t q = rec.second;
              for (uint32_t p : it->second) {
                phase.distances.fetch_add(1, std::memory_order_relaxed);
                sink->push_back(
                    {p, static_cast<uint8_t>(sqdist(p, q) > eps2 ? 1 : 0)});
              }
            },
            "BroadcastFlags");
        break;
      }
    }
    auto reduced = ReduceByKey(
        flags, [](uint8_t a, uint8_t b) { return static_cast<uint8_t>(a & b); },
        parts, std::hash<uint32_t>(), "AndFlags");
    auto o_cn = reduced
                    .Filter([](const std::pair<uint32_t, uint8_t>& kv) {
                      return kv.second != 0;
                    })
                    .Map([](const std::pair<uint32_t, uint8_t>& kv) {
                      return kv.first;
                    });
    auto all = o_ncn.Union(o_cn, "UnionOutliers");
    outliers = all.Collect();
    phase.records = outliers.size();
  }

  // Finalize labels.
  std::sort(outliers.begin(), outliers.end());
  out.outliers = std::move(outliers);
  out.kinds.assign(n, PointKind::kBorder);
  for (size_t i = 0; i < n; ++i) {
    if (is_core[i]) {
      out.kinds[i] = PointKind::kCore;
      ++out.num_core;
    }
  }
  for (uint32_t p : out.outliers) {
    out.kinds[p] = PointKind::kOutlier;
  }
  out.num_border = n - out.num_core - out.outliers.size();
  out.phases = recorder.Take();
  out.shuffled_records = ctx->Summary().shuffled_records - shuffle_base;
  out.total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace dbscout::core

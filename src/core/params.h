#ifndef DBSCOUT_CORE_PARAMS_H_
#define DBSCOUT_CORE_PARAMS_H_

#include <cstddef>

#include "common/status.h"

namespace dbscout::obs {
class TraceCollector;
}  // namespace dbscout::obs

namespace dbscout::core {

/// Which implementation runs the five DBSCOUT phases.
enum class Engine {
  /// Single-threaded direct implementation over the CSR grid; the fastest
  /// single-machine path and the reference oracle for tests.
  kSequential,
  /// Dataflow implementation following Algorithms 1-5 of the paper
  /// (MAP / FLATMAP / FILTER / REDUCEBYKEY / JOIN / BROADCAST / UNION),
  /// executed on the in-process engine in src/dataflow.
  kParallel,
  /// Shared-memory multi-threaded implementation over the CSR grid: the
  /// single-machine CPU-parallel design point the paper contrasts with in
  /// SS V (Wang et al. [33]) — no shuffles, one shared grid, phases 3 and
  /// 5 parallelized over cells.
  kSharedMemory,
};

/// Join realization for the two distance-checking phases of the parallel
/// engine (SS III-G of the paper).
enum class JoinStrategy {
  /// The textbook Algorithms 3 and 5: FLATMAP emit + hash JOIN + REDUCEBYKEY.
  kPlain,
  /// SS III-G1: collect the points-to-check into a driver-side map, broadcast
  /// it, and realize the join as a FLATMAP over the main dataset. Fastest at
  /// high eps; can exhaust memory when too many points need checking.
  kBroadcast,
  /// SS III-G2 (the paper's default for all experiments): GROUPBYKEY both
  /// operands before the join, compute distances group-locally, and
  /// early-terminate a point once it reaches minPts neighbors (phase 3) or
  /// finds one core point within eps (phase 5).
  kGrouped,
};

/// User-facing knobs of the detector. eps and min_pts follow Definitions
/// 1-3; the remaining fields select and tune the execution engine.
struct Params {
  /// Radius of the dense-region hypersphere (Definition 1). Must be > 0.
  double eps = 1.0;
  /// Minimum number of points (the point itself included) within eps for a
  /// point to be core (Definition 2). Must be >= 1.
  int min_pts = 5;

  Engine engine = Engine::kSequential;
  JoinStrategy join = JoinStrategy::kGrouped;

  /// Partition count for the parallel engine (0 = the execution context's
  /// default). Ignored by the sequential engine.
  size_t num_partitions = 0;

  /// When true, the sequential and shared-memory engines additionally fill
  /// Detection::core_distance: for every non-core point, the distance to
  /// its nearest core point within the neighbor-cell horizon (how far
  /// outside a dense region it sits — an outlierness degree for ranking
  /// and interpretation). Disables the phase-5 early exit, so detection
  /// does more distance computations.
  bool compute_scores = false;

  /// When non-null, every engine emits one trace span per recorded phase
  /// into this collector (serializable to Chrome trace-event JSON — see
  /// obs/trace.h). Not owned; must outlive the detection call.
  obs::TraceCollector* trace = nullptr;

  /// Validates eps/min_pts ranges.
  Status Validate() const;
};

const char* EngineName(Engine engine);
const char* JoinStrategyName(JoinStrategy strategy);

}  // namespace dbscout::core

#endif  // DBSCOUT_CORE_PARAMS_H_

#ifndef DBSCOUT_CORE_PHASES_DRIVER_H_
#define DBSCOUT_CORE_PHASES_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/thread_pool.h"
#include "core/dbscout.h"
#include "core/phases/phase_kernels.h"
#include "core/phases/phase_recorder.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"

/// The execution-policy seam between the phase kernels and the in-memory
/// engines. A policy answers one question — how the per-cell primitive
/// calls of phases 3/4/5 are scheduled — and nothing else; the phase logic
/// itself lives in phase_kernels.cc. Both policies produce bit-identical
/// detections because every primitive call writes only the slots of its
/// own cell and the work done per cell is schedule-independent.
namespace dbscout::core::phases {

/// Single-threaded policy: plain loops, one scratch vector.
class SequentialExec {
 public:
  /// Engine label for metrics and trace spans.
  static constexpr std::string_view kEngineName = kEngineSequential;

  /// Runs body(cell, scratch) for every cell and returns the sum of the
  /// bodies' uint64 results (the distance counters).
  template <typename Body>
  uint64_t ForEachCell(uint32_t num_cells, Body&& body) {
    std::vector<uint32_t> scratch;
    uint64_t total = 0;
    for (uint32_t c = 0; c < num_cells; ++c) {
      total += body(c, &scratch);
    }
    return total;
  }

  /// Runs body(cell) for every cell (the counter-free phase-4 passes).
  template <typename Body>
  void ForEachCellNoReduce(uint32_t num_cells, Body&& body) {
    for (uint32_t c = 0; c < num_cells; ++c) {
      body(c);
    }
  }
};

/// Thread-pool policy: phases 3/5 run with dynamic chunk claiming (cell
/// populations are skewed — Geolife/OSM-like grids concentrate most points
/// in a few cells — so statically-sized chunks leave workers idle), the
/// phase-4 passes with static chunks (uniform per-cell cost). Each cell's
/// slots are written only by the worker that claimed that cell: no races.
class PooledExec {
 public:
  /// Engine label for metrics and trace spans.
  static constexpr std::string_view kEngineName = kEngineSharedMemory;

  /// `chunk` is the dynamic-chunk size in cells; small chunks rebalance
  /// while still amortizing the claim overhead.
  PooledExec(ThreadPool* pool, size_t chunk) : pool_(pool), chunk_(chunk) {}

  template <typename Body>
  uint64_t ForEachCell(uint32_t num_cells, Body&& body) {
    std::atomic<uint64_t> total{0};
    pool_->ParallelForDynamic(
        num_cells, chunk_, [&](size_t begin, size_t end) {
          std::vector<uint32_t> scratch;
          uint64_t local = 0;
          for (size_t c = begin; c < end; ++c) {
            local += body(static_cast<uint32_t>(c), &scratch);
          }
          total.fetch_add(local, std::memory_order_relaxed);
        });
    return total.load();
  }

  template <typename Body>
  void ForEachCellNoReduce(uint32_t num_cells, Body&& body) {
    pool_->ParallelForChunked(num_cells, [&](size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) {
        body(static_cast<uint32_t>(c));
      }
    });
  }

 private:
  ThreadPool* pool_;
  size_t chunk_;
};

/// The five-phase in-memory detection driver (Algorithms 1-5), shared by
/// DetectSequential and DetectSharedMemory — the engines differ only in
/// the execution policy they pass in.
template <typename Exec>
Result<Detection> DetectWithGrid(const PointSet& points, const Params& params,
                                 Exec&& exec) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  WallTimer total_timer;
  Detection out;
  const size_t n = points.size();
  const double eps2 = params.eps * params.eps;
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);
  PhaseRecorder recorder;
  recorder.AttachObservability(std::remove_reference_t<Exec>::kEngineName,
                               &obs::Registry::Global(), params.trace);

  // Phase 1: grid partitioning and point-cell assignment (Algorithm 1).
  // Single-threaded in both policies: hash-map insertion order must stay
  // deterministic so cell ids are reproducible.
  recorder.Start();
  DBSCOUT_ASSIGN_OR_RETURN(grid::Grid g, grid::Grid::Build(points, params.eps));
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(points.dims()));
  out.num_cells = g.num_cells();
  recorder.Record(kPhaseGrid, 0, n);
  const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
  // Batched distance kernels over grid-ordered blocks (bit-identical to
  // the scalar pairwise loops; dims were validated by Grid::Build).
  const BoundKernels kernels = BindKernels(g.dims());

  // Phase 2: dense cell map (Algorithm 2).
  recorder.Start();
  std::vector<uint8_t> cell_dense(num_cells, 0);
  out.num_dense_cells = ClassifyDenseCells(g, min_pts, cell_dense.data());
  recorder.Record(kPhaseDenseCellMap, 0, num_cells);

  // Phase 3: core point identification (Algorithm 3).
  recorder.Start();
  std::vector<uint8_t> is_core(n, 0);
  uint64_t distances = exec.ForEachCell(
      num_cells, [&](uint32_t c, std::vector<uint32_t>* scratch) {
        return CoreScanCell(g, *stencil, kernels, eps2, min_pts, c,
                            cell_dense.data(), is_core.data(), scratch);
      });
  recorder.Record(kPhaseCorePoints, distances, n);

  // Phase 4: core cell map (Algorithm 4) + flat CSR of sparse-cell core
  // points. Count and fill passes go cell-parallel under the pooled
  // policy; the prefix sum between them is sequential.
  recorder.Start();
  std::vector<uint8_t> cell_core(num_cells, 0);
  SparseCoreCsr csr;
  csr.begin.assign(num_cells + 1, 0);
  exec.ForEachCellNoReduce(num_cells, [&](uint32_t c) {
    CountCoreCell(g, c, cell_dense.data(), is_core.data(), cell_core.data(),
                  &csr);
  });
  FinishSparseCoreLayout(g.dims(), num_cells, &csr);
  exec.ForEachCellNoReduce(num_cells, [&](uint32_t c) {
    FillSparseCoreCell(g, c, cell_dense.data(), cell_core.data(),
                       is_core.data(), &csr);
  });
  for (uint32_t c = 0; c < num_cells; ++c) {
    out.num_core_cells += cell_core[c];
  }
  recorder.Record(kPhaseCoreCellMap, 0, num_cells);

  // Phase 5: outlier identification (Algorithm 5).
  recorder.Start();
  const bool scores = params.compute_scores;
  if (scores) {
    out.core_distance.assign(n, 0.0);
  }
  out.kinds.assign(n, PointKind::kBorder);
  distances = exec.ForEachCell(
      num_cells, [&](uint32_t c, std::vector<uint32_t>* scratch) {
        return OutlierScanCell(g, *stencil, kernels, eps2, scores, c,
                               cell_dense.data(), cell_core.data(),
                               is_core.data(), csr, out.kinds.data(),
                               scores ? out.core_distance.data() : nullptr,
                               scratch);
      });
  recorder.Record(kPhaseOutliers, distances, n);

  // Finalize labels and summary counts (sequential; outliers collected in
  // ascending index order).
  for (uint32_t p = 0; p < n; ++p) {
    if (is_core[p]) {
      out.kinds[p] = PointKind::kCore;
      ++out.num_core;
    } else if (out.kinds[p] == PointKind::kOutlier) {
      out.outliers.push_back(p);
    } else {
      ++out.num_border;
    }
  }
  out.phases = recorder.Take();
  out.total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace dbscout::core::phases

#endif  // DBSCOUT_CORE_PHASES_DRIVER_H_

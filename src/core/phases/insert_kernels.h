#ifndef DBSCOUT_CORE_PHASES_INSERT_KERNELS_H_
#define DBSCOUT_CORE_PHASES_INSERT_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/detection.h"
#include "core/phases/phase_kernels.h"
#include "data/point_set.h"

/// Mutation-side phase primitives: the cell-granular scans behind the
/// incremental engine's insert and remove paths (and the service's sharded
/// apply pipeline built on them). Like phase_kernels.h, these hold the
/// decision logic once — engines pass packed per-cell blocks (row-major
/// coordinates parallel to an index list) and get back per-point
/// within-eps verdicts; the density-threshold decisions stay in
/// phase_kernels.h (IsDense / CrossesDensityThreshold).
namespace dbscout::core::phases {

/// Streaming complement of CrossesDensityThreshold: true exactly when a
/// decrement moved a neighbor count off the minPts threshold (the
/// core -> non-core demotion of a removal; the count was >= minPts before
/// iff it was == minPts when this fires).
inline bool LeavesDensityThreshold(uint32_t old_count, uint32_t min_pts) {
  return old_count == min_pts;
}

/// Batched form of CrossesDensityThreshold: true exactly when adding
/// `added` neighbors at once moved the count onto (or past) the minPts
/// threshold — i.e. the point was not core before the batch and is after.
/// Equivalent to CrossesDensityThreshold firing for exactly one of the
/// `added` single increments.
inline bool CrossesDensityThresholdBy(uint32_t old_count, uint32_t added,
                                      uint32_t min_pts) {
  return old_count < min_pts && old_count + added >= min_pts;
}

/// Slack on the cell-box prefilter below: a skip needs the box lower bound
/// to clear eps^2 by a margin that dwarfs every rounding in play (the box
/// origin product, the clamp subtraction, the kernels' accumulation, and
/// the floor-division that binned the block's points — all O(1e-15)
/// relative), so the prefilter can never disagree with a verdict the SIMD
/// kernels would have produced.
inline constexpr double kCellBoxSlack = 1.0 + 1e-9;

/// Geometric prefilter for stencil scans: true when the axis-aligned cell
/// box [origin, origin + side]^d lies entirely beyond eps of `query`, so
/// the whole block can be skipped without submitting a single distance
/// evaluation. Distant stencil cells (any offset of magnitude 2) are
/// often unreachable from the query's position inside its home cell —
/// Definition 8 keeps them only because SOME position in the home cell
/// reaches them. Conservative under kCellBoxSlack: a skipped cell cannot
/// contain a within-eps point, so counts stay exact.
inline bool CellBoxBeyondEps(const double* query, const double* origin,
                             size_t dims, double side, double eps2) {
  double d2 = 0.0;
  for (size_t k = 0; k < dims; ++k) {
    const double lo = origin[k];
    double dx = lo - query[k];  // query below the box
    const double above = query[k] - (lo + side);
    if (above > dx) {
      dx = above;  // query beyond the box
    }
    if (dx > 0.0) {
      d2 += dx * dx;
    }
  }
  return d2 > eps2 * kCellBoxSlack;
}

/// Insert/remove neighborhood scan over one packed cell block: writes
/// flags[i] = 1 iff block point i lies within eps of `query`, returns the
/// number of hits, and counts the submitted distance evaluations. The
/// caller walks the flagged entries to apply count bumps / decrements and
/// promotion / demotion checks — this keeps the distance math in the
/// bit-exact SIMD kernels while the (engine-specific) state updates stay
/// with the caller. `flags` must have `count` writable bytes.
inline uint32_t NeighborFlagsScanCell(const BoundKernels& kernels,
                                      const double* query, const double* block,
                                      size_t count, double eps2,
                                      uint8_t* flags,
                                      uint64_t* distance_comps) {
  *distance_comps += count;
  return kernels.within_flags(query, block, count, eps2, flags);
}

/// Coverage re-derivation scan for removals: true when any point of the
/// cell block whose kind is kCore lies within eps of `query`. Walks the
/// block point-by-point (core points are sparse within a block after a
/// demotion) with the same accumulate-ascending distance as the kernels,
/// so verdicts match the batch oracle exactly. `kind_at` maps an index
/// from `idx` to its current PointKind.
template <typename KindAt>
inline bool AnyCoreWithinCell(std::span<const double> query,
                              const double* block, const uint32_t* idx,
                              size_t count, size_t dims, double eps2,
                              KindAt&& kind_at, uint64_t* distance_comps) {
  for (size_t i = 0; i < count; ++i) {
    if (kind_at(idx[i]) != PointKind::kCore) {
      continue;
    }
    ++*distance_comps;
    if (PointSet::SquaredDistance(query, {block + i * dims, dims}) <= eps2) {
      return true;
    }
  }
  return false;
}

}  // namespace dbscout::core::phases

#endif  // DBSCOUT_CORE_PHASES_INSERT_KERNELS_H_

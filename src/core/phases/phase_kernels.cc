#include "core/phases/phase_kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbscout::core::phases {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

BoundKernels BindKernels(size_t dims) {
  const simd::DistanceKernels& table = simd::DispatchedKernels();
  return BoundKernels{table.count_within[dims], table.any_within[dims],
                      table.min_sqdist[dims], table.within_flags[dims]};
}

uint32_t ClassifyDenseCells(const grid::Grid& g, uint32_t min_pts,
                            uint8_t* cell_dense) {
  const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
  uint32_t num_dense = 0;
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (IsDense(g.CellSize(c), min_pts)) {
      cell_dense[c] = 1;
      ++num_dense;
    } else {
      cell_dense[c] = 0;
    }
  }
  return num_dense;
}

uint64_t CoreScanCell(const grid::Grid& g,
                      const grid::NeighborStencil& stencil,
                      const BoundKernels& kernels, double eps2,
                      uint32_t min_pts, uint32_t c, const uint8_t* cell_dense,
                      uint8_t* is_core,
                      std::vector<uint32_t>* neighbor_scratch) {
  const auto cell_points = g.PointsInCell(c);
  if (cell_dense[c]) {
    for (uint32_t p : cell_points) {
      is_core[p] = 1;
    }
    return 0;
  }
  std::vector<uint32_t>& neighbor_cells = *neighbor_scratch;
  neighbor_cells.clear();
  g.ForEachNeighborCell(c, stencil, [&](uint32_t nc) {
    neighbor_cells.push_back(nc);  // lint:allow(hot-path-purity) caller-owned scratch, capacity amortized across cells
  });
  const size_t d = g.dims();
  const double* cell_block = g.CellBlock(c);
  uint64_t distances = 0;
  for (size_t j = 0; j < cell_points.size(); ++j) {
    const double* pv = cell_block + j * d;
    uint32_t count = 0;
    for (uint32_t nc : neighbor_cells) {
      const size_t block_size = g.CellSize(nc);
      distances += block_size;
      count += kernels.count_within(pv, g.CellBlock(nc), block_size, eps2,
                                    min_pts - count);
      if (IsDense(count, min_pts)) {
        is_core[cell_points[j]] = 1;
        break;
      }
    }
  }
  return distances;
}

void CountCoreCell(const grid::Grid& g, uint32_t c, const uint8_t* cell_dense,
                   const uint8_t* is_core, uint8_t* cell_core,
                   SparseCoreCsr* csr) {
  if (cell_dense[c]) {
    cell_core[c] = 1;
    return;
  }
  uint32_t core_in_cell = 0;
  for (uint32_t p : g.PointsInCell(c)) {
    core_in_cell += is_core[p];
  }
  if (core_in_cell > 0) {
    cell_core[c] = 1;
    csr->begin[c + 1] = core_in_cell;
  }
}

void FinishSparseCoreLayout(size_t dims, size_t num_cells,
                            SparseCoreCsr* csr) {
  for (size_t c = 0; c < num_cells; ++c) {
    csr->begin[c + 1] += csr->begin[c];
  }
  csr->idx.resize(csr->begin[num_cells]);  // lint:allow(hot-path-purity) one-shot CSR builder, sized exactly once per pass
  csr->coords.resize(static_cast<size_t>(csr->begin[num_cells]) * dims);  // lint:allow(hot-path-purity) one-shot CSR builder, sized exactly once per pass
}

void FillSparseCoreCell(const grid::Grid& g, uint32_t c,
                        const uint8_t* cell_dense, const uint8_t* cell_core,
                        const uint8_t* is_core, SparseCoreCsr* csr) {
  if (cell_dense[c] || !cell_core[c]) {
    return;
  }
  const size_t d = g.dims();
  uint32_t w = csr->begin[c];
  const uint32_t row_begin = g.CellBeginRow(c);
  const uint32_t row_end = row_begin + static_cast<uint32_t>(g.CellSize(c));
  for (uint32_t row = row_begin; row < row_end; ++row) {
    const uint32_t p = g.OriginalIndex(row);
    if (!is_core[p]) {
      continue;
    }
    csr->idx[w] = p;
    const auto coords = g.OrderedPoint(row);
    std::copy(coords.begin(), coords.end(),
              csr->coords.begin() + static_cast<size_t>(w) * d);
    ++w;
  }
}

uint32_t BuildSparseCoreCsr(const grid::Grid& g, const uint8_t* cell_dense,
                            const uint8_t* is_core, uint8_t* cell_core,
                            SparseCoreCsr* csr) {
  const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
  csr->begin.assign(num_cells + 1, 0);
  for (uint32_t c = 0; c < num_cells; ++c) {
    CountCoreCell(g, c, cell_dense, is_core, cell_core, csr);
  }
  FinishSparseCoreLayout(g.dims(), num_cells, csr);
  for (uint32_t c = 0; c < num_cells; ++c) {
    FillSparseCoreCell(g, c, cell_dense, cell_core, is_core, csr);
  }
  uint32_t num_core_cells = 0;
  for (uint32_t c = 0; c < num_cells; ++c) {
    num_core_cells += cell_core[c];
  }
  return num_core_cells;
}

uint64_t OutlierScanCell(const grid::Grid& g,
                         const grid::NeighborStencil& stencil,
                         const BoundKernels& kernels, double eps2, bool scores,
                         uint32_t c, const uint8_t* cell_dense,
                         const uint8_t* cell_core, const uint8_t* is_core,
                         const SparseCoreCsr& csr, PointKind* kinds,
                         double* core_distance,
                         std::vector<uint32_t>* neighbor_scratch) {
  if (cell_core[c] && !scores) {
    return 0;  // Lemma 2: no point of a core cell is an outlier
  }
  std::vector<uint32_t>& core_neighbor_cells = *neighbor_scratch;
  core_neighbor_cells.clear();
  g.ForEachNeighborCell(c, stencil, [&](uint32_t nc) {
    if (cell_core[nc]) {
      core_neighbor_cells.push_back(nc);  // lint:allow(hot-path-purity) caller-owned scratch, capacity amortized across cells
    }
  });
  if (core_neighbor_cells.empty()) {
    // O_ncn: non-core cell with no core neighbor — all points outliers.
    for (uint32_t p : g.PointsInCell(c)) {
      kinds[p] = PointKind::kOutlier;
      if (scores) {
        core_distance[p] = kInf;
      }
    }
    return 0;
  }
  const size_t d = g.dims();
  const auto cell_points = g.PointsInCell(c);
  const double* cell_block = g.CellBlock(c);
  uint64_t distances = 0;
  for (size_t j = 0; j < cell_points.size(); ++j) {
    const uint32_t p = cell_points[j];
    if (is_core[p]) {
      continue;  // core points keep distance 0
    }
    const double* pv = cell_block + j * d;
    // One contiguous block per neighboring core cell: every point of a
    // dense cell is core (grid block), while sparse core cells use the
    // packed phase-4 CSR coordinates.
    bool outlier = true;
    double best = kInf;
    for (uint32_t nc : core_neighbor_cells) {
      const double* block;
      size_t block_size;
      if (cell_dense[nc]) {
        block = g.CellBlock(nc);
        block_size = g.CellSize(nc);
      } else {
        block = csr.CellBlock(nc, d);
        block_size = csr.CellCount(nc);
      }
      distances += block_size;
      if (scores) {
        best = std::min(best, kernels.min_sqdist(pv, block, block_size));
      } else if (kernels.any_within(pv, block, block_size, eps2)) {
        outlier = false;
        break;
      }
    }
    if (scores) {
      outlier = !(best <= eps2);
    }
    if (outlier && !cell_core[c]) {
      kinds[p] = PointKind::kOutlier;
    }
    if (scores) {
      core_distance[p] = std::sqrt(best);
    }
  }
  return distances;
}

}  // namespace dbscout::core::phases

#ifndef DBSCOUT_CORE_PHASES_PHASE_KERNELS_H_
#define DBSCOUT_CORE_PHASES_PHASE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/detection.h"
#include "grid/cell_map.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"
#include "simd/distance_kernel.h"

/// The single home of the Lemma 1/2 phase logic. Every execution strategy
/// (sequential, shared-memory pool, dataflow partitions, out-of-core
/// stripes, incremental inserts) drives the cell-granular primitives in
/// this library instead of carrying its own copy of the density tests,
/// neighbor-stencil walks, and core-sublist layouts. A correctness or perf
/// change to the hot path lands here, once; the `phase-logic-locality`
/// rule of tools/lint_invariants.py enforces that the decision tokens do
/// not reappear in the engines.
namespace dbscout::core::phases {

// Canonical phase names. Every engine reports its PhaseStats under these
// names (in this order, when the phase applies) so runs are comparable
// across engines.
inline constexpr std::string_view kPhaseGrid = "grid";
inline constexpr std::string_view kPhaseDenseCellMap = "dense_cell_map";
inline constexpr std::string_view kPhaseCorePoints = "core_points";
inline constexpr std::string_view kPhaseCoreCellMap = "core_cell_map";
inline constexpr std::string_view kPhaseOutliers = "outliers";

// Canonical engine names for the observability layer: metric `engine`
// labels and trace-span categories use these, so dashboards and traces
// line up across engines.
inline constexpr std::string_view kEngineSequential = "sequential";
inline constexpr std::string_view kEngineSharedMemory = "shared_memory";
inline constexpr std::string_view kEngineParallel = "parallel";
inline constexpr std::string_view kEngineExternal = "external";
inline constexpr std::string_view kEngineIncremental = "incremental";

/// The Lemma 1 density test — the one place `count >= minPts` is decided.
/// `count` includes the point itself (Definition 2).
inline bool IsDense(uint64_t count, uint32_t min_pts) {
  return count >= min_pts;
}

/// Streaming variant of the density test: true exactly when an increment
/// moved a neighbor count onto the minPts threshold (the non-core -> core
/// transition of the incremental detector; counts only ever grow, so the
/// threshold is crossed at most once per point).
inline bool CrossesDensityThreshold(uint32_t new_count, uint32_t min_pts) {
  return new_count == min_pts;
}

/// Dense-cell membership of a broadcast CellMap (Algorithm 2's output as
/// the dataflow engine sees it).
inline bool IsDenseCell(const grid::CellMap& map, const grid::CellCoord& c) {
  return map.TypeOf(c) == grid::CellType::kDense;
}

/// Core-cell membership of a broadcast CellMap (Lemma 2's precondition in
/// the dataflow engine).
inline bool IsCoreCell(const grid::CellMap& map, const grid::CellCoord& c) {
  return map.TypeOf(c) >= grid::CellType::kCore;
}

/// The batched one-point-vs-block distance primitives bound to one
/// dimensionality (function pointers resolved once per detection, not once
/// per call). Bit-identical across scalar/SSE2/AVX2 variants, so every
/// engine built on them produces the same outlier set.
struct BoundKernels {
  simd::CountWithinFn count_within;
  simd::AnyWithinFn any_within;
  simd::MinSqDistFn min_sqdist;
  simd::WithinFlagsFn within_flags;
};

/// Binds the dispatched kernel table at `dims` (must be in
/// [0, simd::kKernelMaxDims]; Grid::Build has validated this).
BoundKernels BindKernels(size_t dims);

/// Phase 2 (Algorithm 2): classifies every grid cell by local point count.
/// `cell_dense` must have g.num_cells() entries; returns the number of
/// dense cells. Every point of a dense cell is core (Lemma 1).
uint32_t ClassifyDenseCells(const grid::Grid& g, uint32_t min_pts,
                            uint8_t* cell_dense);

/// Phase 3 (Algorithm 3): core-point scan of one cell. Dense cells mark
/// every point core outright; points of sparse cells count neighbors
/// within eps across the k_d neighboring cells via the capped batched
/// kernel, one contiguous grid-ordered block per neighbor cell. Early
/// termination at minPts (the sequential analogue of the grouped-join
/// optimization, SS III-G2) happens at block granularity: between neighbor
/// cells exactly, and inside a block every simd::kKernelBatch points.
/// Writes only is_core[p] for p in cell `c` (race-free under per-cell
/// parallelism). `neighbor_scratch` is caller-provided reusable storage.
/// Returns the number of distance computations submitted.
uint64_t CoreScanCell(const grid::Grid& g,
                      const grid::NeighborStencil& stencil,
                      const BoundKernels& kernels, double eps2,
                      uint32_t min_pts, uint32_t c, const uint8_t* cell_dense,
                      uint8_t* is_core,
                      std::vector<uint32_t>* neighbor_scratch);

/// Phase 4 output: flat CSR of the core points of *sparse* core cells
/// (offsets + original indices + packed row-major coordinates), so the
/// phase-5 scans over sparse core sublists are contiguous kernel blocks,
/// exactly like dense-cell grid blocks. Dense cells need no entry: their
/// grid block already is their core sublist (Lemma 1).
struct SparseCoreCsr {
  std::vector<uint32_t> begin;  // size num_cells + 1
  std::vector<uint32_t> idx;    // original point indices, grid row order
  std::vector<double> coords;   // idx.size() x dims, row-major

  size_t CellCount(uint32_t c) const { return begin[c + 1] - begin[c]; }
  const double* CellBlock(uint32_t c, size_t dims) const {
    return coords.data() + static_cast<size_t>(begin[c]) * dims;
  }
};

/// Phase 4, step 1 of 3 (parallel-safe per cell): classifies cell `c` as
/// core and records its sparse-core count in csr->begin[c + 1]. A cell is
/// core when it contains a core point; dense cells are core by Lemma 1.
/// csr->begin must be pre-sized to num_cells + 1 (zeroed).
void CountCoreCell(const grid::Grid& g, uint32_t c, const uint8_t* cell_dense,
                   const uint8_t* is_core, uint8_t* cell_core,
                   SparseCoreCsr* csr);

/// Phase 4, step 2 of 3 (sequential): prefix-sums the per-cell counts and
/// allocates idx/coords.
void FinishSparseCoreLayout(size_t dims, size_t num_cells, SparseCoreCsr* csr);

/// Phase 4, step 3 of 3 (parallel-safe per cell): fills cell `c`'s CSR
/// slice — core-point indices in ascending grid-row order plus their
/// packed coordinates. No-op for dense or non-core cells.
void FillSparseCoreCell(const grid::Grid& g, uint32_t c,
                        const uint8_t* cell_dense, const uint8_t* cell_core,
                        const uint8_t* is_core, SparseCoreCsr* csr);

/// Convenience composition of the three phase-4 steps over all cells
/// (sequential). Returns the number of core cells.
uint32_t BuildSparseCoreCsr(const grid::Grid& g, const uint8_t* cell_dense,
                            const uint8_t* is_core, uint8_t* cell_core,
                            SparseCoreCsr* csr);

/// Phase 5 (Algorithm 5): outlier scan of one cell. No point of a core
/// cell is an outlier (Lemma 2), so core cells are skipped outright unless
/// `scores` is set. Points of non-core cells are outliers iff no core
/// point in a neighboring core cell lies within eps, with early
/// termination on the first core point found — including the O_ncn
/// shortcut (no neighboring core cell at all: every point is an outlier
/// with no distance work). With `scores`, the early exit is disabled and
/// the minimum core squared-distance is tracked for every non-core point
/// (core_distance must then be non-null, n entries; kinds entries of core
/// cells' border points stay untouched by the decision but get their
/// distances). Writes only kinds/core_distance entries of cell `c`'s
/// points; kinds must be pre-initialized to PointKind::kBorder. Returns
/// the number of distance computations submitted.
uint64_t OutlierScanCell(const grid::Grid& g,
                         const grid::NeighborStencil& stencil,
                         const BoundKernels& kernels, double eps2, bool scores,
                         uint32_t c, const uint8_t* cell_dense,
                         const uint8_t* cell_core, const uint8_t* is_core,
                         const SparseCoreCsr& csr, PointKind* kinds,
                         double* core_distance,
                         std::vector<uint32_t>* neighbor_scratch);

}  // namespace dbscout::core::phases

#endif  // DBSCOUT_CORE_PHASES_PHASE_KERNELS_H_

#ifndef DBSCOUT_CORE_PHASES_PHASE_RECORDER_H_
#define DBSCOUT_CORE_PHASES_PHASE_RECORDER_H_

#include <atomic>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/detection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbscout::core::phases {

/// The one place per-phase stats are assembled. Every engine reports its
/// PhaseStats through a PhaseRecorder so phase names, counter semantics,
/// and ordering are identical across engines (and therefore comparable in
/// tests and benches).
///
/// Two usage patterns:
///  - scoped phases (in-memory engines): Start() then Record(name, ...) —
///    the row gets the wall time elapsed since Start();
///  - accumulation (the out-of-core engine, which revisits the same
///    logical phase once per stripe): Accumulate(name, seconds, ...)
///    merges into the existing row, creating it in first-call order.
///
/// A recorder may additionally be attached to the observability layer
/// (AttachObservability): every Record/Accumulate then publishes one
/// histogram observation + two counter increments per phase into the
/// metrics registry and, when a TraceCollector is attached, one span.
/// Publication happens at phase/stripe granularity — a handful of times
/// per detection, never per point — so its cost is invisible next to the
/// phases themselves.
class PhaseRecorder {
 public:
  PhaseRecorder() = default;

  /// Attaches the observability layer. `engine` labels the metrics and
  /// categorizes the trace spans ("sequential", "external", ...);
  /// `registry` may be null to skip metrics, `trace` may be null to skip
  /// spans. Rows recorded before this call are not retro-published.
  void AttachObservability(std::string_view engine, obs::Registry* registry,
                           obs::TraceCollector* trace) {
    engine_ = std::string(engine);
    registry_ = registry;
    trace_ = trace;
  }

  /// (Re)starts the phase timer.
  void Start() { timer_.Reset(); }

  /// Appends one row with the time elapsed since the last Start().
  void Record(std::string_view name, uint64_t distances, uint64_t records) {
    const double seconds = timer_.ElapsedSeconds();
    phases_.push_back({std::string(name), seconds, distances, records});
    Publish(name, seconds, distances, records);
  }

  /// Merges into the row named `name` (appending a zero row first if it
  /// does not exist yet).
  void Accumulate(std::string_view name, double seconds, uint64_t distances,
                  uint64_t records) {
    PhaseStats& row = RowFor(name);
    row.seconds += seconds;
    row.distance_computations += distances;
    row.records += records;
    Publish(name, seconds, distances, records);
  }

  const std::vector<PhaseStats>& phases() const { return phases_; }

  /// Moves the rows out (engines assign this to Detection::phases).
  std::vector<PhaseStats> Take() { return std::move(phases_); }

 private:
  PhaseStats& RowFor(std::string_view name) {
    for (PhaseStats& row : phases_) {
      if (row.name == name) {
        return row;
      }
    }
    phases_.push_back({std::string(name), 0.0, 0, 0});
    return phases_.back();
  }

  void Publish(std::string_view name, double seconds, uint64_t distances,
               uint64_t records) {
    if (trace_ != nullptr) {
      trace_->AddSpanEndingNow(name, engine_, seconds, distances, records);
    }
    if (registry_ != nullptr) {
      obs::Labels labels{{"engine", engine_}, {"phase", std::string(name)}};
      registry_
          ->GetHistogram("dbscout_phase_seconds",
                         "Wall seconds per detection phase",
                         obs::HistogramLayout::Latency(), labels)
          ->Observe(seconds);
      registry_
          ->GetCounter("dbscout_phase_distance_computations_total",
                       "Point-pair distance computations per phase", labels)
          ->Increment(distances);
      registry_
          ->GetCounter("dbscout_phase_records_total",
                       "Records processed per phase", labels)
          ->Increment(records);
    }
  }

  WallTimer timer_;
  std::vector<PhaseStats> phases_;
  std::string engine_;
  obs::Registry* registry_ = nullptr;
  obs::TraceCollector* trace_ = nullptr;
};

/// RAII phase scope with thread-safe counters, for engines whose phase
/// work runs as concurrent tasks (the dataflow engine): constructed at
/// phase entry, records on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseRecorder* recorder, std::string_view name)
      : recorder_(recorder), name_(name) {
    recorder_->Start();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { recorder_->Record(name_, distances.load(), records.load()); }

  std::atomic<uint64_t> distances{0};
  std::atomic<uint64_t> records{0};

 private:
  PhaseRecorder* recorder_;
  std::string name_;
};

}  // namespace dbscout::core::phases

#endif  // DBSCOUT_CORE_PHASES_PHASE_RECORDER_H_

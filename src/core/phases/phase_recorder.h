#ifndef DBSCOUT_CORE_PHASES_PHASE_RECORDER_H_
#define DBSCOUT_CORE_PHASES_PHASE_RECORDER_H_

#include <atomic>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/detection.h"

namespace dbscout::core::phases {

/// The one place per-phase stats are assembled. Every engine reports its
/// PhaseStats through a PhaseRecorder so phase names, counter semantics,
/// and ordering are identical across engines (and therefore comparable in
/// tests and benches).
///
/// Two usage patterns:
///  - scoped phases (in-memory engines): Start() then Record(name, ...) —
///    the row gets the wall time elapsed since Start();
///  - accumulation (the out-of-core engine, which revisits the same
///    logical phase once per stripe): Accumulate(name, seconds, ...)
///    merges into the existing row, creating it in first-call order.
class PhaseRecorder {
 public:
  PhaseRecorder() = default;

  /// (Re)starts the phase timer.
  void Start() { timer_.Reset(); }

  /// Appends one row with the time elapsed since the last Start().
  void Record(std::string_view name, uint64_t distances, uint64_t records) {
    phases_.push_back({std::string(name), timer_.ElapsedSeconds(), distances,
                       records});
  }

  /// Merges into the row named `name` (appending a zero row first if it
  /// does not exist yet).
  void Accumulate(std::string_view name, double seconds, uint64_t distances,
                  uint64_t records) {
    PhaseStats& row = RowFor(name);
    row.seconds += seconds;
    row.distance_computations += distances;
    row.records += records;
  }

  const std::vector<PhaseStats>& phases() const { return phases_; }

  /// Moves the rows out (engines assign this to Detection::phases).
  std::vector<PhaseStats> Take() { return std::move(phases_); }

 private:
  PhaseStats& RowFor(std::string_view name) {
    for (PhaseStats& row : phases_) {
      if (row.name == name) {
        return row;
      }
    }
    phases_.push_back({std::string(name), 0.0, 0, 0});
    return phases_.back();
  }

  WallTimer timer_;
  std::vector<PhaseStats> phases_;
};

/// RAII phase scope with thread-safe counters, for engines whose phase
/// work runs as concurrent tasks (the dataflow engine): constructed at
/// phase entry, records on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseRecorder* recorder, std::string_view name)
      : recorder_(recorder), name_(name) {
    recorder_->Start();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { recorder_->Record(name_, distances.load(), records.load()); }

  std::atomic<uint64_t> distances{0};
  std::atomic<uint64_t> records{0};

 private:
  PhaseRecorder* recorder_;
  std::string name_;
};

}  // namespace dbscout::core::phases

#endif  // DBSCOUT_CORE_PHASES_PHASE_RECORDER_H_

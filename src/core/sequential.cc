#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/timer.h"
#include "core/dbscout.h"
#include "grid/cell_map.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"

namespace dbscout::core {
namespace {

using grid::Grid;
using grid::NeighborStencil;

}  // namespace

Result<Detection> DetectSequential(const PointSet& points,
                                   const Params& params) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  WallTimer total_timer;
  Detection out;
  const size_t n = points.size();
  const double eps2 = params.eps * params.eps;
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);

  // Phase 1: grid partitioning and point-cell assignment (Algorithm 1).
  WallTimer phase_timer;
  DBSCOUT_ASSIGN_OR_RETURN(Grid g, Grid::Build(points, params.eps));
  DBSCOUT_ASSIGN_OR_RETURN(const NeighborStencil* stencil,
                           grid::GetNeighborStencil(points.dims()));
  out.num_cells = g.num_cells();
  out.phases.push_back({"grid", phase_timer.ElapsedSeconds(), 0, n});

  // Phase 2: dense cell map (Algorithm 2). Dense <=> count >= minPts; every
  // point of a dense cell is core (Lemma 1).
  phase_timer.Reset();
  const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
  std::vector<uint8_t> cell_dense(num_cells, 0);
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (g.CellSize(c) >= min_pts) {
      cell_dense[c] = 1;
      ++out.num_dense_cells;
    }
  }
  out.phases.push_back(
      {"dense_cell_map", phase_timer.ElapsedSeconds(), 0, num_cells});

  // Phase 3: core point identification. Points in dense cells are core
  // outright; points in non-dense cells count neighbors within eps across
  // the k_d neighboring cells, with early termination at minPts (the
  // sequential analogue of the grouped-join optimization, SS III-G2).
  phase_timer.Reset();
  std::vector<uint8_t> is_core(n, 0);
  uint64_t phase3_distances = 0;
  std::vector<uint32_t> neighbor_cells;  // reused across cells
  for (uint32_t c = 0; c < num_cells; ++c) {
    const auto cell_points = g.PointsInCell(c);
    if (cell_dense[c]) {
      for (uint32_t p : cell_points) {
        is_core[p] = 1;
      }
      continue;
    }
    neighbor_cells.clear();
    g.ForEachNeighborCell(c, *stencil,
                          [&](uint32_t nc) { neighbor_cells.push_back(nc); });
    for (uint32_t p : cell_points) {
      const auto pv = points[p];
      uint32_t count = 0;
      for (uint32_t nc : neighbor_cells) {
        for (uint32_t q : g.PointsInCell(nc)) {
          ++phase3_distances;
          if (PointSet::SquaredDistance(pv, points[q]) <= eps2) {
            if (++count >= min_pts) {
              is_core[p] = 1;
              break;
            }
          }
        }
        if (is_core[p]) {
          break;
        }
      }
    }
  }
  out.phases.push_back(
      {"core_points", phase_timer.ElapsedSeconds(), phase3_distances, n});

  // Phase 4: core cell map (Algorithm 4). A cell is core when it contains a
  // core point; dense cells are core by Lemma 1. For non-dense core cells we
  // additionally record the core-point sublist used by phase 5.
  phase_timer.Reset();
  std::vector<uint8_t> cell_core(num_cells, 0);
  std::unordered_map<uint32_t, std::vector<uint32_t>> sparse_core_points;
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (cell_dense[c]) {
      cell_core[c] = 1;
      continue;
    }
    for (uint32_t p : g.PointsInCell(c)) {
      if (is_core[p]) {
        cell_core[c] = 1;
        sparse_core_points[c].push_back(p);
      }
    }
  }
  for (uint32_t c = 0; c < num_cells; ++c) {
    out.num_core_cells += cell_core[c];
  }
  out.phases.push_back(
      {"core_cell_map", phase_timer.ElapsedSeconds(), 0, num_cells});

  // Phase 5: outlier identification (Algorithm 5). No point of a core cell
  // is an outlier (Lemma 2); points of non-core cells are outliers iff no
  // core point in a neighboring core cell lies within eps, with early
  // termination on the first core point found. With compute_scores set,
  // the early exit is disabled and the minimum core distance is tracked
  // for every non-core point (including border points of core cells, which
  // Lemma 2 would otherwise let us skip entirely).
  phase_timer.Reset();
  const bool scores = params.compute_scores;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (scores) {
    out.core_distance.assign(n, 0.0);
  }
  out.kinds.assign(n, PointKind::kBorder);
  uint64_t phase5_distances = 0;
  std::vector<uint32_t> core_neighbor_cells;
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (cell_core[c] && !scores) {
      continue;
    }
    core_neighbor_cells.clear();
    g.ForEachNeighborCell(c, *stencil, [&](uint32_t nc) {
      if (cell_core[nc]) {
        core_neighbor_cells.push_back(nc);
      }
    });
    if (core_neighbor_cells.empty()) {
      // O_ncn: non-core cell with no core neighbor — all points outliers.
      for (uint32_t p : g.PointsInCell(c)) {
        out.kinds[p] = PointKind::kOutlier;
        if (scores) {
          out.core_distance[p] = kInf;
        }
      }
      continue;
    }
    for (uint32_t p : g.PointsInCell(c)) {
      if (is_core[p]) {
        continue;  // core points keep distance 0
      }
      const auto pv = points[p];
      bool outlier = true;
      double best = kInf;
      auto scan = [&](uint32_t q) {
        ++phase5_distances;
        const double d2 = PointSet::SquaredDistance(pv, points[q]);
        if (d2 <= eps2) {
          outlier = false;
        }
        best = std::min(best, d2);
      };
      for (uint32_t nc : core_neighbor_cells) {
        if (cell_dense[nc]) {
          // Every point of a dense cell is core.
          for (uint32_t q : g.PointsInCell(nc)) {
            scan(q);
            if (!outlier && !scores) {
              break;
            }
          }
        } else {
          for (uint32_t q : sparse_core_points[nc]) {
            scan(q);
            if (!outlier && !scores) {
              break;
            }
          }
        }
        if (!outlier && !scores) {
          break;
        }
      }
      if (outlier && !cell_core[c]) {
        out.kinds[p] = PointKind::kOutlier;
      }
      if (scores) {
        out.core_distance[p] = std::sqrt(best);
      }
    }
  }
  out.phases.push_back(
      {"outliers", phase_timer.ElapsedSeconds(), phase5_distances, n});

  // Finalize labels and summary counts.
  for (uint32_t p = 0; p < n; ++p) {
    if (is_core[p]) {
      out.kinds[p] = PointKind::kCore;
      ++out.num_core;
    } else if (out.kinds[p] == PointKind::kOutlier) {
      out.outliers.push_back(p);
    } else {
      ++out.num_border;
    }
  }
  out.total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace dbscout::core

#include "core/dbscout.h"
#include "core/phases/driver.h"

namespace dbscout::core {

Result<Detection> DetectSequential(const PointSet& points,
                                   const Params& params) {
  return phases::DetectWithGrid(points, params, phases::SequentialExec{});
}

}  // namespace dbscout::core

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/timer.h"
#include "core/dbscout.h"
#include "grid/cell_map.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"
#include "simd/distance_kernel.h"

namespace dbscout::core {
namespace {

using grid::Grid;
using grid::NeighborStencil;

}  // namespace

Result<Detection> DetectSequential(const PointSet& points,
                                   const Params& params) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  WallTimer total_timer;
  Detection out;
  const size_t n = points.size();
  const size_t d = points.dims();
  const double eps2 = params.eps * params.eps;
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);

  // Phase 1: grid partitioning and point-cell assignment (Algorithm 1).
  WallTimer phase_timer;
  DBSCOUT_ASSIGN_OR_RETURN(Grid g, Grid::Build(points, params.eps));
  DBSCOUT_ASSIGN_OR_RETURN(const NeighborStencil* stencil,
                           grid::GetNeighborStencil(points.dims()));
  out.num_cells = g.num_cells();
  out.phases.push_back({"grid", phase_timer.ElapsedSeconds(), 0, n});

  // Batched one-point-vs-block distance kernels over the grid-ordered
  // coordinate blocks (bit-identical to the scalar pairwise loops; dims
  // were validated by Grid::Build).
  const simd::DistanceKernels& kernels = simd::DispatchedKernels();
  const simd::CountWithinFn count_within = kernels.count_within[d];
  const simd::AnyWithinFn any_within = kernels.any_within[d];
  const simd::MinSqDistFn min_sqdist = kernels.min_sqdist[d];

  // Phase 2: dense cell map (Algorithm 2). Dense <=> count >= minPts; every
  // point of a dense cell is core (Lemma 1).
  phase_timer.Reset();
  const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
  std::vector<uint8_t> cell_dense(num_cells, 0);
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (g.CellSize(c) >= min_pts) {
      cell_dense[c] = 1;
      ++out.num_dense_cells;
    }
  }
  out.phases.push_back(
      {"dense_cell_map", phase_timer.ElapsedSeconds(), 0, num_cells});

  // Phase 3: core point identification. Points in dense cells are core
  // outright; points in non-dense cells count neighbors within eps across
  // the k_d neighboring cells via the batched kernel, one contiguous
  // grid-ordered block per neighbor cell. Early termination at minPts (the
  // sequential analogue of the grouped-join optimization, SS III-G2)
  // happens at block granularity: between neighbor cells exactly, and
  // inside a block every simd::kKernelBatch points.
  phase_timer.Reset();
  std::vector<uint8_t> is_core(n, 0);
  uint64_t phase3_distances = 0;
  std::vector<uint32_t> neighbor_cells;  // reused across cells
  for (uint32_t c = 0; c < num_cells; ++c) {
    const auto cell_points = g.PointsInCell(c);
    if (cell_dense[c]) {
      for (uint32_t p : cell_points) {
        is_core[p] = 1;
      }
      continue;
    }
    neighbor_cells.clear();
    g.ForEachNeighborCell(c, *stencil,
                          [&](uint32_t nc) { neighbor_cells.push_back(nc); });
    const double* cell_block = g.CellBlock(c);
    for (size_t j = 0; j < cell_points.size(); ++j) {
      const double* pv = cell_block + j * d;
      uint32_t count = 0;
      for (uint32_t nc : neighbor_cells) {
        const size_t block_size = g.CellSize(nc);
        phase3_distances += block_size;
        count += count_within(pv, g.CellBlock(nc), block_size, eps2,
                              min_pts - count);
        if (count >= min_pts) {
          is_core[cell_points[j]] = 1;
          break;
        }
      }
    }
  }
  out.phases.push_back(
      {"core_points", phase_timer.ElapsedSeconds(), phase3_distances, n});

  // Phase 4: core cell map (Algorithm 4). A cell is core when it contains a
  // core point; dense cells are core by Lemma 1. For non-dense core cells we
  // additionally build a flat CSR structure (offsets + indices + packed
  // coordinates) of their core points, so the phase-5 scans over sparse
  // core sublists are contiguous kernel blocks too.
  phase_timer.Reset();
  std::vector<uint8_t> cell_core(num_cells, 0);
  std::vector<uint32_t> sparse_core_begin(num_cells + 1, 0);
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (cell_dense[c]) {
      cell_core[c] = 1;
      continue;
    }
    for (uint32_t p : g.PointsInCell(c)) {
      if (is_core[p]) {
        cell_core[c] = 1;
        ++sparse_core_begin[c + 1];
      }
    }
  }
  for (uint32_t c = 0; c < num_cells; ++c) {
    sparse_core_begin[c + 1] += sparse_core_begin[c];
  }
  std::vector<uint32_t> sparse_core_idx(sparse_core_begin[num_cells]);
  std::vector<double> sparse_core_coords(
      static_cast<size_t>(sparse_core_begin[num_cells]) * d);
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (cell_dense[c] || !cell_core[c]) {
      continue;
    }
    uint32_t w = sparse_core_begin[c];
    const uint32_t row_begin = g.CellBeginRow(c);
    const uint32_t row_end = row_begin + static_cast<uint32_t>(g.CellSize(c));
    for (uint32_t row = row_begin; row < row_end; ++row) {
      const uint32_t p = g.OriginalIndex(row);
      if (!is_core[p]) {
        continue;
      }
      sparse_core_idx[w] = p;
      const auto coords = g.OrderedPoint(row);
      std::copy(coords.begin(), coords.end(),
                sparse_core_coords.begin() + static_cast<size_t>(w) * d);
      ++w;
    }
  }
  for (uint32_t c = 0; c < num_cells; ++c) {
    out.num_core_cells += cell_core[c];
  }
  out.phases.push_back(
      {"core_cell_map", phase_timer.ElapsedSeconds(), 0, num_cells});

  // Phase 5: outlier identification (Algorithm 5). No point of a core cell
  // is an outlier (Lemma 2); points of non-core cells are outliers iff no
  // core point in a neighboring core cell lies within eps, with early
  // termination on the first core point found. With compute_scores set,
  // the early exit is disabled and the minimum core distance is tracked
  // for every non-core point (including border points of core cells, which
  // Lemma 2 would otherwise let us skip entirely).
  phase_timer.Reset();
  const bool scores = params.compute_scores;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (scores) {
    out.core_distance.assign(n, 0.0);
  }
  out.kinds.assign(n, PointKind::kBorder);
  uint64_t phase5_distances = 0;
  std::vector<uint32_t> core_neighbor_cells;
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (cell_core[c] && !scores) {
      continue;
    }
    core_neighbor_cells.clear();
    g.ForEachNeighborCell(c, *stencil, [&](uint32_t nc) {
      if (cell_core[nc]) {
        core_neighbor_cells.push_back(nc);
      }
    });
    if (core_neighbor_cells.empty()) {
      // O_ncn: non-core cell with no core neighbor — all points outliers.
      for (uint32_t p : g.PointsInCell(c)) {
        out.kinds[p] = PointKind::kOutlier;
        if (scores) {
          out.core_distance[p] = kInf;
        }
      }
      continue;
    }
    const auto cell_points = g.PointsInCell(c);
    const double* cell_block = g.CellBlock(c);
    for (size_t j = 0; j < cell_points.size(); ++j) {
      const uint32_t p = cell_points[j];
      if (is_core[p]) {
        continue;  // core points keep distance 0
      }
      const double* pv = cell_block + j * d;
      // One contiguous block per neighboring core cell: every point of a
      // dense cell is core (grid block), while sparse core cells use the
      // packed phase-4 CSR coordinates.
      bool outlier = true;
      double best = kInf;
      for (uint32_t nc : core_neighbor_cells) {
        const double* block;
        size_t block_size;
        if (cell_dense[nc]) {
          block = g.CellBlock(nc);
          block_size = g.CellSize(nc);
        } else {
          block = sparse_core_coords.data() +
                  static_cast<size_t>(sparse_core_begin[nc]) * d;
          block_size = sparse_core_begin[nc + 1] - sparse_core_begin[nc];
        }
        phase5_distances += block_size;
        if (scores) {
          best = std::min(best, min_sqdist(pv, block, block_size));
        } else if (any_within(pv, block, block_size, eps2)) {
          outlier = false;
          break;
        }
      }
      if (scores) {
        outlier = !(best <= eps2);
      }
      if (outlier && !cell_core[c]) {
        out.kinds[p] = PointKind::kOutlier;
      }
      if (scores) {
        out.core_distance[p] = std::sqrt(best);
      }
    }
  }
  out.phases.push_back(
      {"outliers", phase_timer.ElapsedSeconds(), phase5_distances, n});

  // Finalize labels and summary counts.
  for (uint32_t p = 0; p < n; ++p) {
    if (is_core[p]) {
      out.kinds[p] = PointKind::kCore;
      ++out.num_core;
    } else if (out.kinds[p] == PointKind::kOutlier) {
      out.outliers.push_back(p);
    } else {
      ++out.num_border;
    }
  }
  out.total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace dbscout::core

#include "common/thread_pool.h"
#include "core/dbscout.h"
#include "core/phases/driver.h"

namespace dbscout::core {
namespace {

// Dynamic-chunk size (in cells) for the phase-3/5 loops; see
// phases::PooledExec for the rationale.
constexpr size_t kDynamicCellChunk = 32;

}  // namespace

Result<Detection> DetectSharedMemory(const PointSet& points,
                                     const Params& params, ThreadPool* pool) {
  return phases::DetectWithGrid(points, params,
                                phases::PooledExec(pool, kDynamicCellChunk));
}

}  // namespace dbscout::core

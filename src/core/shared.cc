#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dbscout.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"
#include "simd/distance_kernel.h"

namespace dbscout::core {
namespace {

using grid::Grid;
using grid::NeighborStencil;

// Dynamic-chunk size (in cells) for the phase-3/5 loops. Skewed grids
// (Geolife/OSM-like) concentrate most points in a few cells, so static
// chunking leaves workers idle; small dynamic chunks rebalance while still
// amortizing the claim overhead.
constexpr size_t kDynamicCellChunk = 32;

}  // namespace

Result<Detection> DetectSharedMemory(const PointSet& points,
                                     const Params& params, ThreadPool* pool) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  WallTimer total_timer;
  Detection out;
  const size_t n = points.size();
  const size_t d = points.dims();
  const double eps2 = params.eps * params.eps;
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);

  // Phase 1: grid (single-threaded; hash-map insertion order must stay
  // deterministic so cell ids are reproducible).
  WallTimer phase_timer;
  DBSCOUT_ASSIGN_OR_RETURN(Grid g, Grid::Build(points, params.eps));
  DBSCOUT_ASSIGN_OR_RETURN(const NeighborStencil* stencil,
                           grid::GetNeighborStencil(points.dims()));
  out.num_cells = g.num_cells();
  out.phases.push_back({"grid", phase_timer.ElapsedSeconds(), 0, n});

  // Batched distance kernels over grid-ordered blocks (bit-identical to the
  // scalar pairwise loops; dims were validated by Grid::Build).
  const simd::DistanceKernels& kernels = simd::DispatchedKernels();
  const simd::CountWithinFn count_within = kernels.count_within[d];
  const simd::AnyWithinFn any_within = kernels.any_within[d];
  const simd::MinSqDistFn min_sqdist = kernels.min_sqdist[d];

  // Phase 2: dense flags.
  phase_timer.Reset();
  const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
  std::vector<uint8_t> cell_dense(num_cells, 0);
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (g.CellSize(c) >= min_pts) {
      cell_dense[c] = 1;
      ++out.num_dense_cells;
    }
  }
  out.phases.push_back(
      {"dense_cell_map", phase_timer.ElapsedSeconds(), 0, num_cells});

  // Phase 3: core points, parallel over cells with dynamic chunking (cell
  // populations are skewed, so statically-sized chunks leave workers idle).
  // Each cell's points are written only by the worker that claimed that
  // cell: no races. Distance checks run through the batched kernel over the
  // contiguous grid-ordered block of each neighbor cell.
  phase_timer.Reset();
  std::vector<uint8_t> is_core(n, 0);
  std::atomic<uint64_t> phase3_distances{0};
  pool->ParallelForDynamic(
      num_cells, kDynamicCellChunk, [&](size_t begin, size_t end) {
        uint64_t local_distances = 0;
        std::vector<uint32_t> neighbor_cells;
        for (size_t c = begin; c < end; ++c) {
          const auto cell_points = g.PointsInCell(static_cast<uint32_t>(c));
          if (cell_dense[c]) {
            for (uint32_t p : cell_points) {
              is_core[p] = 1;
            }
            continue;
          }
          neighbor_cells.clear();
          g.ForEachNeighborCell(static_cast<uint32_t>(c), *stencil,
                                [&](uint32_t nc) {
                                  neighbor_cells.push_back(nc);
                                });
          const double* cell_block = g.CellBlock(static_cast<uint32_t>(c));
          for (size_t j = 0; j < cell_points.size(); ++j) {
            const double* pv = cell_block + j * d;
            uint32_t count = 0;
            for (uint32_t nc : neighbor_cells) {
              const size_t block_size = g.CellSize(nc);
              local_distances += block_size;
              count += count_within(pv, g.CellBlock(nc), block_size, eps2,
                                    min_pts - count);
              if (count >= min_pts) {
                is_core[cell_points[j]] = 1;
                break;
              }
            }
          }
        }
        phase3_distances.fetch_add(local_distances,
                                   std::memory_order_relaxed);
      });
  out.phases.push_back(
      {"core_points", phase_timer.ElapsedSeconds(), phase3_distances.load(),
       n});

  // Phase 4: core cells and the flat CSR of sparse-cell core points
  // (offsets + indices + packed coordinates). Count pass and fill pass are
  // parallel over cells (each slot written by one worker); the prefix sum
  // between them is sequential.
  phase_timer.Reset();
  std::vector<uint8_t> cell_core(num_cells, 0);
  std::vector<uint32_t> sparse_core_begin(num_cells + 1, 0);
  pool->ParallelForChunked(num_cells, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      if (cell_dense[c]) {
        cell_core[c] = 1;
        continue;
      }
      uint32_t core_in_cell = 0;
      for (uint32_t p : g.PointsInCell(static_cast<uint32_t>(c))) {
        core_in_cell += is_core[p];
      }
      if (core_in_cell > 0) {
        cell_core[c] = 1;
        sparse_core_begin[c + 1] = core_in_cell;
      }
    }
  });
  for (uint32_t c = 0; c < num_cells; ++c) {
    sparse_core_begin[c + 1] += sparse_core_begin[c];
  }
  std::vector<uint32_t> sparse_core_idx(sparse_core_begin[num_cells]);
  std::vector<double> sparse_core_coords(
      static_cast<size_t>(sparse_core_begin[num_cells]) * d);
  pool->ParallelForChunked(num_cells, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      if (cell_dense[c] || !cell_core[c]) {
        continue;
      }
      uint32_t w = sparse_core_begin[c];
      const uint32_t row_begin = g.CellBeginRow(static_cast<uint32_t>(c));
      const uint32_t row_end =
          row_begin + static_cast<uint32_t>(g.CellSize(static_cast<uint32_t>(c)));
      for (uint32_t row = row_begin; row < row_end; ++row) {
        const uint32_t p = g.OriginalIndex(row);
        if (!is_core[p]) {
          continue;
        }
        sparse_core_idx[w] = p;
        const auto coords = g.OrderedPoint(row);
        std::copy(coords.begin(), coords.end(),
                  sparse_core_coords.begin() + static_cast<size_t>(w) * d);
        ++w;
      }
    }
  });
  for (uint32_t c = 0; c < num_cells; ++c) {
    out.num_core_cells += cell_core[c];
  }
  out.phases.push_back(
      {"core_cell_map", phase_timer.ElapsedSeconds(), 0, num_cells});

  // Phase 5: outliers, parallel over non-core cells (over all cells when
  // compute_scores is set, mirroring the sequential engine).
  phase_timer.Reset();
  const bool scores = params.compute_scores;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (scores) {
    out.core_distance.assign(n, 0.0);
  }
  out.kinds.assign(n, PointKind::kBorder);
  std::atomic<uint64_t> phase5_distances{0};
  pool->ParallelForDynamic(
      num_cells, kDynamicCellChunk, [&](size_t begin, size_t end) {
        uint64_t local_distances = 0;
        std::vector<uint32_t> core_neighbor_cells;
        for (size_t c = begin; c < end; ++c) {
          if (cell_core[c] && !scores) {
            continue;
          }
          core_neighbor_cells.clear();
          g.ForEachNeighborCell(static_cast<uint32_t>(c), *stencil,
                                [&](uint32_t nc) {
                                  if (cell_core[nc]) {
                                    core_neighbor_cells.push_back(nc);
                                  }
                                });
          const auto cell_points = g.PointsInCell(static_cast<uint32_t>(c));
          const double* cell_block = g.CellBlock(static_cast<uint32_t>(c));
          for (size_t j = 0; j < cell_points.size(); ++j) {
            const uint32_t p = cell_points[j];
            if (is_core[p]) {
              continue;  // core points keep distance 0
            }
            const double* pv = cell_block + j * d;
            bool outlier = true;
            double best = kInf;
            for (uint32_t nc : core_neighbor_cells) {
              const double* block;
              size_t block_size;
              if (cell_dense[nc]) {
                block = g.CellBlock(nc);
                block_size = g.CellSize(nc);
              } else {
                block = sparse_core_coords.data() +
                        static_cast<size_t>(sparse_core_begin[nc]) * d;
                block_size = sparse_core_begin[nc + 1] - sparse_core_begin[nc];
              }
              local_distances += block_size;
              if (scores) {
                best = std::min(best, min_sqdist(pv, block, block_size));
              } else if (any_within(pv, block, block_size, eps2)) {
                outlier = false;
                break;
              }
            }
            if (scores) {
              outlier = !(best <= eps2);
            }
            if (outlier && !cell_core[c]) {
              out.kinds[p] = PointKind::kOutlier;
            }
            if (scores) {
              out.core_distance[p] = std::sqrt(best);
            }
          }
        }
        phase5_distances.fetch_add(local_distances,
                                   std::memory_order_relaxed);
      });
  out.phases.push_back(
      {"outliers", phase_timer.ElapsedSeconds(), phase5_distances.load(), n});

  // Finalize labels (sequential; outliers collected in index order).
  for (size_t p = 0; p < n; ++p) {
    if (is_core[p]) {
      out.kinds[p] = PointKind::kCore;
      ++out.num_core;
    } else if (out.kinds[p] == PointKind::kOutlier) {
      out.outliers.push_back(static_cast<uint32_t>(p));
    } else {
      ++out.num_border;
    }
  }
  out.total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace dbscout::core

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dbscout.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"

namespace dbscout::core {
namespace {

using grid::Grid;
using grid::NeighborStencil;

}  // namespace

Result<Detection> DetectSharedMemory(const PointSet& points,
                                     const Params& params, ThreadPool* pool) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  WallTimer total_timer;
  Detection out;
  const size_t n = points.size();
  const double eps2 = params.eps * params.eps;
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);

  // Phase 1: grid (single-threaded; hash-map insertion order must stay
  // deterministic so cell ids are reproducible).
  WallTimer phase_timer;
  DBSCOUT_ASSIGN_OR_RETURN(Grid g, Grid::Build(points, params.eps));
  DBSCOUT_ASSIGN_OR_RETURN(const NeighborStencil* stencil,
                           grid::GetNeighborStencil(points.dims()));
  out.num_cells = g.num_cells();
  out.phases.push_back({"grid", phase_timer.ElapsedSeconds(), 0, n});

  // Phase 2: dense flags.
  phase_timer.Reset();
  const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
  std::vector<uint8_t> cell_dense(num_cells, 0);
  for (uint32_t c = 0; c < num_cells; ++c) {
    if (g.CellSize(c) >= min_pts) {
      cell_dense[c] = 1;
      ++out.num_dense_cells;
    }
  }
  out.phases.push_back(
      {"dense_cell_map", phase_timer.ElapsedSeconds(), 0, num_cells});

  // Phase 3: core points, parallel over cells. Each cell's points are
  // written only by the worker owning that cell chunk: no races.
  phase_timer.Reset();
  std::vector<uint8_t> is_core(n, 0);
  std::atomic<uint64_t> phase3_distances{0};
  pool->ParallelForChunked(num_cells, [&](size_t begin, size_t end) {
    uint64_t local_distances = 0;
    std::vector<uint32_t> neighbor_cells;
    for (size_t c = begin; c < end; ++c) {
      const auto cell_points = g.PointsInCell(static_cast<uint32_t>(c));
      if (cell_dense[c]) {
        for (uint32_t p : cell_points) {
          is_core[p] = 1;
        }
        continue;
      }
      neighbor_cells.clear();
      g.ForEachNeighborCell(static_cast<uint32_t>(c), *stencil,
                            [&](uint32_t nc) {
                              neighbor_cells.push_back(nc);
                            });
      for (uint32_t p : cell_points) {
        const auto pv = points[p];
        uint32_t count = 0;
        for (uint32_t nc : neighbor_cells) {
          for (uint32_t q : g.PointsInCell(nc)) {
            ++local_distances;
            if (PointSet::SquaredDistance(pv, points[q]) <= eps2 &&
                ++count >= min_pts) {
              is_core[p] = 1;
              break;
            }
          }
          if (is_core[p]) {
            break;
          }
        }
      }
    }
    phase3_distances.fetch_add(local_distances, std::memory_order_relaxed);
  });
  out.phases.push_back(
      {"core_points", phase_timer.ElapsedSeconds(), phase3_distances.load(),
       n});

  // Phase 4: core cells and per-cell core sublists (parallel over cells;
  // each slot written by one worker).
  phase_timer.Reset();
  std::vector<uint8_t> cell_core(num_cells, 0);
  std::vector<std::vector<uint32_t>> sparse_core_points(num_cells);
  pool->ParallelForChunked(num_cells, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      if (cell_dense[c]) {
        cell_core[c] = 1;
        continue;
      }
      for (uint32_t p : g.PointsInCell(static_cast<uint32_t>(c))) {
        if (is_core[p]) {
          cell_core[c] = 1;
          sparse_core_points[c].push_back(p);
        }
      }
    }
  });
  for (uint32_t c = 0; c < num_cells; ++c) {
    out.num_core_cells += cell_core[c];
  }
  out.phases.push_back(
      {"core_cell_map", phase_timer.ElapsedSeconds(), 0, num_cells});

  // Phase 5: outliers, parallel over non-core cells (over all cells when
  // compute_scores is set, mirroring the sequential engine).
  phase_timer.Reset();
  const bool scores = params.compute_scores;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (scores) {
    out.core_distance.assign(n, 0.0);
  }
  out.kinds.assign(n, PointKind::kBorder);
  std::atomic<uint64_t> phase5_distances{0};
  pool->ParallelForChunked(num_cells, [&](size_t begin, size_t end) {
    uint64_t local_distances = 0;
    std::vector<uint32_t> core_neighbor_cells;
    for (size_t c = begin; c < end; ++c) {
      if (cell_core[c] && !scores) {
        continue;
      }
      core_neighbor_cells.clear();
      g.ForEachNeighborCell(static_cast<uint32_t>(c), *stencil,
                            [&](uint32_t nc) {
                              if (cell_core[nc]) {
                                core_neighbor_cells.push_back(nc);
                              }
                            });
      for (uint32_t p : g.PointsInCell(static_cast<uint32_t>(c))) {
        if (is_core[p]) {
          continue;  // core points keep distance 0
        }
        bool outlier = true;
        double best = kInf;
        const auto pv = points[p];
        auto scan = [&](uint32_t q) {
          ++local_distances;
          const double d2 = PointSet::SquaredDistance(pv, points[q]);
          if (d2 <= eps2) {
            outlier = false;
          }
          best = std::min(best, d2);
        };
        for (uint32_t nc : core_neighbor_cells) {
          if (cell_dense[nc]) {
            for (uint32_t q : g.PointsInCell(nc)) {
              scan(q);
              if (!outlier && !scores) {
                break;
              }
            }
          } else {
            for (uint32_t q : sparse_core_points[nc]) {
              scan(q);
              if (!outlier && !scores) {
                break;
              }
            }
          }
          if (!outlier && !scores) {
            break;
          }
        }
        if (outlier && !cell_core[c]) {
          out.kinds[p] = PointKind::kOutlier;
        }
        if (scores) {
          out.core_distance[p] = std::sqrt(best);
        }
      }
    }
    phase5_distances.fetch_add(local_distances, std::memory_order_relaxed);
  });
  out.phases.push_back(
      {"outliers", phase_timer.ElapsedSeconds(), phase5_distances.load(), n});

  // Finalize labels (sequential; outliers collected in index order).
  for (size_t p = 0; p < n; ++p) {
    if (is_core[p]) {
      out.kinds[p] = PointKind::kCore;
      ++out.num_core;
    } else if (out.kinds[p] == PointKind::kOutlier) {
      out.outliers.push_back(static_cast<uint32_t>(p));
    } else {
      ++out.num_border;
    }
  }
  out.total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace dbscout::core

#include "data/io.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/str_util.h"

namespace dbscout {
namespace {

constexpr char kMagic[4] = {'D', 'B', 'S', 'C'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Result<PointSet> LoadPointsCsv(const std::string& path,
                               const CsvOptions& options) {
  DBSCOUT_ASSIGN_OR_RETURN(NumericCsv csv, ReadNumericCsv(path, options));
  if (csv.rows == 0) {
    return Status::InvalidArgument(path + ": no data rows");
  }
  return PointSet::FromRowMajor(csv.cols, std::move(csv.values));
}

Status SavePointsCsv(const std::string& path, const PointSet& points) {
  return WriteNumericCsv(path, points.values().data(), points.size(),
                         points.dims());
}

Status SavePointsBinary(const std::string& path, const PointSet& points) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot create file: " + path);
  }
  const uint32_t dims = static_cast<uint32_t>(points.dims());
  const uint64_t count = points.size();
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1 ||
      std::fwrite(&dims, sizeof(dims), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
    return Status::IoError("header write failure: " + path);
  }
  const auto& values = points.values();
  if (!values.empty() &&
      std::fwrite(values.data(), sizeof(double), values.size(), f.get()) !=
          values.size()) {
    return Status::IoError("data write failure: " + path);
  }
  return Status::OK();
}

Result<PointSet> LoadPointsBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open file: " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint32_t dims = 0;
  uint64_t count = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument(path + ": not a DBSC binary point file");
  }
  if (std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
      version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported version %u", path.c_str(), version));
  }
  if (std::fread(&dims, sizeof(dims), 1, f.get()) != 1 ||
      std::fread(&count, sizeof(count), 1, f.get()) != 1) {
    return Status::IoError(path + ": truncated header");
  }
  if (dims == 0) {
    return Status::InvalidArgument(path + ": dims must be >= 1");
  }
  std::vector<double> values(count * dims);
  if (!values.empty() &&
      std::fread(values.data(), sizeof(double), values.size(), f.get()) !=
          values.size()) {
    return Status::IoError(path + ": truncated data section");
  }
  return PointSet::FromRowMajor(dims, std::move(values));
}

}  // namespace dbscout

#ifndef DBSCOUT_DATA_IO_H_
#define DBSCOUT_DATA_IO_H_

#include <string>

#include "common/csv.h"
#include "common/result.h"
#include "data/point_set.h"

namespace dbscout {

/// Loads a PointSet from a numeric CSV file; every row is one point, every
/// column one dimension.
Result<PointSet> LoadPointsCsv(const std::string& path,
                               const CsvOptions& options = {});

/// Writes a PointSet as CSV (lossless round-trip).
Status SavePointsCsv(const std::string& path, const PointSet& points);

/// Loads a PointSet from the compact binary format written by
/// SavePointsBinary. The format is:
///   magic "DBSC" | uint32 version | uint32 dims | uint64 count |
///   count*dims little-endian float64.
Result<PointSet> LoadPointsBinary(const std::string& path);

/// Writes a PointSet in the binary format above. Roughly 3x smaller and 10x
/// faster than CSV for large experiment datasets.
Status SavePointsBinary(const std::string& path, const PointSet& points);

}  // namespace dbscout

#endif  // DBSCOUT_DATA_IO_H_

#include "data/point_set.h"

#include <algorithm>
#include <cassert>

#include "common/str_util.h"

namespace dbscout {

Result<PointSet> PointSet::FromRowMajor(size_t dims,
                                        std::vector<double> data) {
  if (dims == 0) {
    return Status::InvalidArgument("dims must be >= 1");
  }
  if (data.size() % dims != 0) {
    return Status::InvalidArgument(
        StrFormat("row-major buffer of %zu doubles is not a multiple of "
                  "dims=%zu",
                  data.size(), dims));
  }
  PointSet out(dims);
  out.data_ = std::move(data);
  return out;
}

void PointSet::Add(std::span<const double> coords) {
  assert(coords.size() == dims_);
  data_.insert(data_.end(), coords.begin(), coords.end());
}

void PointSet::Append(const PointSet& other) {
  assert(other.dims_ == dims_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

PointSet PointSet::Select(std::span<const uint32_t> indices) const {
  PointSet out(dims_);
  out.Reserve(indices.size());
  for (uint32_t i : indices) {
    out.Add((*this)[i]);
  }
  return out;
}

PointSet::BoundingBox PointSet::Bounds() const {
  BoundingBox box;
  box.min.assign(dims_, 0.0);
  box.max.assign(dims_, 0.0);
  if (empty()) {
    return box;
  }
  for (size_t j = 0; j < dims_; ++j) {
    box.min[j] = box.max[j] = data_[j];
  }
  const size_t n = size();
  for (size_t i = 1; i < n; ++i) {
    for (size_t j = 0; j < dims_; ++j) {
      const double v = data_[i * dims_ + j];
      box.min[j] = std::min(box.min[j], v);
      box.max[j] = std::max(box.max[j], v);
    }
  }
  return box;
}

}  // namespace dbscout

#ifndef DBSCOUT_DATA_POINT_SET_H_
#define DBSCOUT_DATA_POINT_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/result.h"

namespace dbscout {

/// Maximum dimensionality supported by the grid machinery. The paper targets
/// low-dimensional data (2D/3D GPS); the neighbor-cell constant k_d and the
/// fixed-capacity cell coordinates cap out at 9 dimensions (Table I).
inline constexpr size_t kMaxDims = 9;

/// Flat, row-major storage for n points in d dimensions: point i occupies
/// values()[i*d .. i*d+d). This layout keeps per-point distance computations
/// cache-friendly and is the canonical dataset representation across the
/// library (generators produce it, algorithms consume it).
class PointSet {
 public:
  /// Creates an empty set of `dims`-dimensional points (1 <= dims <= 9 for
  /// grid-based algorithms; the container itself allows any dims >= 1).
  explicit PointSet(size_t dims = 2) : dims_(dims) {}

  PointSet(const PointSet&) = default;
  PointSet& operator=(const PointSet&) = default;
  PointSet(PointSet&&) noexcept = default;
  PointSet& operator=(PointSet&&) noexcept = default;

  /// Builds a point set from row-major data; size must be a multiple of dims.
  static Result<PointSet> FromRowMajor(size_t dims, std::vector<double> data);

  size_t dims() const { return dims_; }
  size_t size() const { return dims_ == 0 ? 0 : data_.size() / dims_; }
  bool empty() const { return data_.empty(); }

  /// Read-only view of point i's coordinates.
  std::span<const double> operator[](size_t i) const {
    return {data_.data() + i * dims_, dims_};
  }

  /// Coordinate j of point i.
  double at(size_t i, size_t j) const { return data_[i * dims_ + j]; }
  double& at(size_t i, size_t j) { return data_[i * dims_ + j]; }

  const std::vector<double>& values() const { return data_; }

  void Reserve(size_t n) { data_.reserve(n * dims_); }

  /// Appends one point; `coords` must have exactly dims() elements.
  void Add(std::span<const double> coords);
  void Add(std::initializer_list<double> coords) {
    Add(std::span<const double>(coords.begin(), coords.size()));
  }

  /// Appends all points of `other` (same dims() required).
  void Append(const PointSet& other);

  /// Returns the subset of points with the given indices, in order.
  PointSet Select(std::span<const uint32_t> indices) const;

  /// Squared Euclidean distance between points i and j of this set.
  double SquaredDistance(size_t i, size_t j) const {
    return SquaredDistance((*this)[i], (*this)[j]);
  }

  /// Squared Euclidean distance between two coordinate spans of equal length.
  static double SquaredDistance(std::span<const double> a,
                                std::span<const double> b) {
    double sum = 0.0;
    for (size_t k = 0; k < a.size(); ++k) {
      const double diff = a[k] - b[k];
      sum += diff * diff;
    }
    return sum;
  }

  /// Per-dimension [min, max] bounding box; undefined when empty().
  struct BoundingBox {
    std::vector<double> min;
    std::vector<double> max;
  };
  BoundingBox Bounds() const;

 private:
  size_t dims_;
  std::vector<double> data_;
};

}  // namespace dbscout

#endif  // DBSCOUT_DATA_POINT_SET_H_

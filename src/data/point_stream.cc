#include "data/point_stream.h"

#include <cstring>
#include <vector>

#include "common/str_util.h"

namespace dbscout {
namespace {

constexpr char kMagic[4] = {'D', 'B', 'S', 'C'};
constexpr uint32_t kVersion = 1;

}  // namespace

Result<PointFileReader> PointFileReader::Open(const std::string& path) {
  PointFileReader reader;
  reader.path_ = path;
  reader.file_.reset(std::fopen(path.c_str(), "rb"));
  if (reader.file_ == nullptr) {
    return Status::IoError("cannot open file: " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint32_t dims = 0;
  uint64_t count = 0;
  std::FILE* f = reader.file_.get();
  if (std::fread(magic, 1, 4, f) != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument(path + ": not a DBSC binary point file");
  }
  if (std::fread(&version, sizeof(version), 1, f) != 1 ||
      version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported version %u", path.c_str(), version));
  }
  if (std::fread(&dims, sizeof(dims), 1, f) != 1 ||
      std::fread(&count, sizeof(count), 1, f) != 1) {
    return Status::IoError(path + ": truncated header");
  }
  if (dims == 0) {
    return Status::InvalidArgument(path + ": dims must be >= 1");
  }
  reader.dims_ = dims;
  reader.num_points_ = count;
  reader.data_offset_ = std::ftell(f);
  if (reader.data_offset_ < 0) {
    return Status::IoError(path + ": ftell failed");
  }
  return reader;
}

Result<size_t> PointFileReader::ReadBatch(size_t max_points, PointSet* batch) {
  *batch = PointSet(dims_);
  if (max_points == 0 || position_ >= num_points_) {
    return size_t{0};
  }
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(max_points, num_points_ - position_));
  std::vector<double> buffer(want * dims_);
  const size_t got = std::fread(buffer.data(), sizeof(double) * dims_, want,
                                file_.get());
  if (got != want) {
    return Status::IoError(path_ + ": truncated data section");
  }
  DBSCOUT_ASSIGN_OR_RETURN(*batch,
                           PointSet::FromRowMajor(dims_, std::move(buffer)));
  position_ += want;
  return want;
}

Status PointFileReader::Rewind() {
  if (std::fseek(file_.get(), data_offset_, SEEK_SET) != 0) {
    return Status::IoError(path_ + ": seek failed");
  }
  position_ = 0;
  return Status::OK();
}

}  // namespace dbscout

#ifndef DBSCOUT_DATA_POINT_STREAM_H_
#define DBSCOUT_DATA_POINT_STREAM_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout {

/// Streaming reader for the DBSC binary point format (data/io.h): reads the
/// header eagerly, then delivers points in bounded batches so callers can
/// process files far larger than memory. The substrate of the out-of-core
/// detector (src/external).
class PointFileReader {
 public:
  /// Opens `path` and validates the header.
  static Result<PointFileReader> Open(const std::string& path);

  PointFileReader(PointFileReader&&) noexcept = default;
  PointFileReader& operator=(PointFileReader&&) noexcept = default;

  size_t dims() const { return dims_; }
  uint64_t num_points() const { return num_points_; }
  /// Index of the next point ReadBatch will deliver.
  uint64_t position() const { return position_; }

  /// Reads up to `max_points` points into `*batch` (replacing its previous
  /// contents; the batch keeps this file's dims). Returns the number of
  /// points read — 0 at end of file. Fails on a truncated data section.
  Result<size_t> ReadBatch(size_t max_points, PointSet* batch);

  /// Rewinds to the first point (for multi-pass algorithms).
  Status Rewind();

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) {
        std::fclose(f);
      }
    }
  };

  PointFileReader() = default;

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  size_t dims_ = 0;
  uint64_t num_points_ = 0;
  uint64_t position_ = 0;
  long data_offset_ = 0;  // NOLINT(runtime/int) — ftell/fseek interface
};

}  // namespace dbscout

#endif  // DBSCOUT_DATA_POINT_STREAM_H_

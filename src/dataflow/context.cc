#include "dataflow/context.h"

#include <algorithm>

namespace dbscout::dataflow {

ExecutionContext::ExecutionContext(size_t num_threads,
                                   size_t default_partitions) {
  size_t threads = num_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  default_partitions_ =
      default_partitions == 0 ? 2 * threads : default_partitions;
}

void ExecutionContext::RecordStage(StageMetrics metrics) {
  MutexLock lock(mu_);
  stages_.push_back(std::move(metrics));
}

std::vector<StageMetrics> ExecutionContext::stages() const {
  MutexLock lock(mu_);
  return stages_;
}

MetricsSummary ExecutionContext::Summary() const {
  MutexLock lock(mu_);
  MetricsSummary summary;
  summary.stages = stages_.size();
  for (const auto& stage : stages_) {
    summary.seconds += stage.seconds;
    summary.shuffled_records += stage.shuffled_records;
  }
  return summary;
}

void ExecutionContext::ResetMetrics() {
  MutexLock lock(mu_);
  stages_.clear();
}

}  // namespace dbscout::dataflow

#ifndef DBSCOUT_DATAFLOW_CONTEXT_H_
#define DBSCOUT_DATAFLOW_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace dbscout::dataflow {

/// Per-transformation accounting, the analogue of one Spark stage row in the
/// web UI. Aggregated by ExecutionContext.
struct StageMetrics {
  std::string name;
  double seconds = 0.0;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  /// Records moved across partitions by a shuffle (ReduceByKey, GroupByKey,
  /// Join, Repartition); 0 for narrow transformations.
  uint64_t shuffled_records = 0;
};

/// Totals over a sequence of stages.
struct MetricsSummary {
  double seconds = 0.0;
  uint64_t shuffled_records = 0;
  size_t stages = 0;
};

/// Execution environment for datasets: a worker pool (the "executors") and a
/// metrics sink. One context typically lives for a whole experiment; the
/// default partition count plays the role of Spark's RDD partitioning knob
/// and is the variable swept by the Fig. 13 reproduction.
class ExecutionContext {
 public:
  /// `num_threads` = 0 selects the hardware concurrency.
  /// `default_partitions` = 0 selects 2x the thread count.
  explicit ExecutionContext(size_t num_threads = 0,
                            size_t default_partitions = 0);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  ThreadPool& pool() { return *pool_; }
  size_t default_partitions() const { return default_partitions_; }
  void set_default_partitions(size_t n) {
    default_partitions_ = n == 0 ? 1 : n;
  }

  /// Attaches a trace collector: every partition task of every
  /// transformation then emits one span (name = the stage name, cat =
  /// `category`) from the worker thread that ran it — the per-worker view
  /// of the dataflow engine's phases. Pass nullptr to detach. Must not be
  /// called while transformations are in flight (attach before building
  /// the pipeline, detach after collecting).
  void AttachTrace(obs::TraceCollector* trace,
                   std::string category = "dataflow") {
    trace_ = trace;
    trace_category_ = std::move(category);
  }
  obs::TraceCollector* trace() const { return trace_; }
  const std::string& trace_category() const { return trace_category_; }

  /// Appends one stage record (thread-safe).
  void RecordStage(StageMetrics metrics);

  /// Snapshot of all recorded stages.
  std::vector<StageMetrics> stages() const;

  /// Aggregate of all recorded stages.
  MetricsSummary Summary() const;

  /// Clears recorded stages (e.g. between benchmark repetitions).
  void ResetMetrics();

 private:
  std::unique_ptr<ThreadPool> pool_;
  size_t default_partitions_;
  obs::TraceCollector* trace_ = nullptr;
  std::string trace_category_ = "dataflow";
  mutable Mutex mu_;
  std::vector<StageMetrics> stages_ DBSCOUT_GUARDED_BY(mu_);
};

}  // namespace dbscout::dataflow

#endif  // DBSCOUT_DATAFLOW_CONTEXT_H_

#ifndef DBSCOUT_DATAFLOW_DATASET_H_
#define DBSCOUT_DATAFLOW_DATASET_H_

#include <atomic>
#include <cassert>
#include <memory>
#include <numeric>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "dataflow/context.h"

namespace dbscout::dataflow {

/// A read-only value shared by every task, the analogue of a Spark broadcast
/// variable: construct once on the driver, capture by value in closures.
template <typename T>
class Broadcast {
 public:
  Broadcast() = default;
  explicit Broadcast(T value)
      : value_(std::make_shared<const T>(std::move(value))) {}

  const T& operator*() const { return *value_; }
  const T* operator->() const { return value_.get(); }
  const T* get() const { return value_.get(); }

 private:
  std::shared_ptr<const T> value_;
};

/// An immutable, partitioned, in-memory dataset — the engine's analogue of a
/// Spark RDD. Transformations evaluate eagerly, run one task per partition
/// on the context's thread pool, and record StageMetrics on the context.
/// Datasets share partition storage via shared_ptr, so copying a Dataset is
/// cheap and transformations never mutate their input.
template <typename T>
class Dataset {
 public:
  using Partitions = std::vector<std::vector<T>>;

  Dataset() : ctx_(nullptr), parts_(std::make_shared<const Partitions>()) {}

  /// Distributes `values` into `num_partitions` contiguous slices
  /// (0 = context default).
  static Dataset FromVector(ExecutionContext* ctx, std::vector<T> values,
                            size_t num_partitions = 0) {
    const size_t parts =
        num_partitions == 0 ? ctx->default_partitions() : num_partitions;
    Partitions partitions(parts);
    const size_t n = values.size();
    const size_t chunk = (n + parts - 1) / std::max<size_t>(parts, 1);
    for (size_t p = 0; p < parts; ++p) {
      const size_t begin = std::min(n, p * chunk);
      const size_t end = std::min(n, begin + chunk);
      partitions[p].assign(std::make_move_iterator(values.begin() + begin),
                           std::make_move_iterator(values.begin() + end));
    }
    return Dataset(ctx, std::move(partitions));
  }

  /// Wraps existing partitions verbatim.
  static Dataset FromPartitions(ExecutionContext* ctx, Partitions partitions) {
    return Dataset(ctx, std::move(partitions));
  }

  /// Generates values 0..n-1 as a dataset of indices (convenient for
  /// point-id datasets).
  template <typename U = T>
  static Dataset Iota(ExecutionContext* ctx, U n, size_t num_partitions = 0) {
    static_assert(std::is_integral_v<U>);
    std::vector<T> values(static_cast<size_t>(n));
    std::iota(values.begin(), values.end(), T{0});
    return FromVector(ctx, std::move(values), num_partitions);
  }

  ExecutionContext* context() const { return ctx_; }
  size_t num_partitions() const { return parts_->size(); }
  const std::vector<T>& partition(size_t i) const { return (*parts_)[i]; }

  /// Total number of records across partitions.
  size_t Count() const {
    size_t n = 0;
    for (const auto& p : *parts_) n += p.size();
    return n;
  }

  /// Concatenates all partitions on the driver.
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(Count());
    for (const auto& p : *parts_) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  /// MAP: one output record per input record.
  template <typename F>
  auto Map(F fn, const char* name = "Map") const {
    using U = std::decay_t<decltype(fn(std::declval<const T&>()))>;
    return TransformPartitions<U>(
        name, [&fn](const std::vector<T>& in, std::vector<U>* out) {
          out->reserve(in.size());
          for (const T& record : in) {
            out->push_back(fn(record));
          }
        });
  }

  /// FLATMAP: fn(record, out) appends zero or more output records.
  template <typename U, typename F>
  Dataset<U> FlatMap(F fn, const char* name = "FlatMap") const {
    return TransformPartitions<U>(
        name, [&fn](const std::vector<T>& in, std::vector<U>* out) {
          for (const T& record : in) {
            fn(record, out);
          }
        });
  }

  /// FILTER: keeps records where pred(record) is true.
  template <typename F>
  Dataset<T> Filter(F pred, const char* name = "Filter") const {
    return TransformPartitions<T>(
        name, [&pred](const std::vector<T>& in, std::vector<T>* out) {
          for (const T& record : in) {
            if (pred(record)) {
              out->push_back(record);
            }
          }
        });
  }

  /// UNION: concatenation of partition lists (no shuffle, like Spark).
  Dataset<T> Union(const Dataset<T>& other, const char* name = "Union") const {
    WallTimer timer;
    Partitions out = *parts_;
    out.insert(out.end(), other.parts_->begin(), other.parts_->end());
    Dataset result(ctx_, std::move(out));
    StageMetrics m;
    m.name = name;
    m.seconds = timer.ElapsedSeconds();
    m.records_in = Count() + other.Count();
    m.records_out = m.records_in;
    ctx_->RecordStage(std::move(m));
    return result;
  }

  /// Redistributes records round-robin into `num_partitions` partitions
  /// (counts as a full shuffle).
  Dataset<T> Repartition(size_t num_partitions,
                         const char* name = "Repartition") const {
    WallTimer timer;
    const size_t parts = std::max<size_t>(1, num_partitions);
    Partitions out(parts);
    size_t cursor = 0;
    for (const auto& p : *parts_) {
      for (const T& record : p) {
        out[cursor % parts].push_back(record);
        ++cursor;
      }
    }
    Dataset result(ctx_, std::move(out));
    StageMetrics m;
    m.name = name;
    m.seconds = timer.ElapsedSeconds();
    m.records_in = cursor;
    m.records_out = cursor;
    m.shuffled_records = cursor;
    ctx_->RecordStage(std::move(m));
    return result;
  }

  /// MAPPARTITIONS: fn(input_partition, output_partition) runs once per
  /// partition — the escape hatch for per-partition state (local indices,
  /// batched emission).
  template <typename U, typename F>
  Dataset<U> MapPartitions(F fn, const char* name = "MapPartitions") const {
    return TransformPartitions<U>(name, fn);
  }

  /// SAMPLE: keeps each record independently with probability `fraction`,
  /// deterministically in `seed` and the partition index.
  Dataset<T> Sample(double fraction, uint64_t seed,
                    const char* name = "Sample") const;

  /// DISTINCT: unique records (requires std::hash<T> and operator==);
  /// performs a full shuffle so duplicates across partitions collapse too.
  template <typename Hash = std::hash<T>>
  Dataset<T> Distinct(size_t num_partitions = 0, const Hash& hash = Hash(),
                      const char* name = "Distinct") const;

  /// Driver-side sequential iteration (the FOREACH of Algorithm 4).
  template <typename F>
  void ForEach(F fn) const {
    for (const auto& p : *parts_) {
      for (const T& record : p) {
        fn(record);
      }
    }
  }

  /// Runs `body(partition, out_partition)` for every partition in parallel,
  /// records a stage, and wraps the outputs. Exposed for composite
  /// operations (shuffles in pair_ops.h).
  template <typename U, typename Body>
  Dataset<U> TransformPartitions(const char* name, Body body) const {
    assert(ctx_ != nullptr);
    WallTimer timer;
    typename Dataset<U>::Partitions out(parts_->size());
    std::atomic<uint64_t> in_records{0};
    std::atomic<uint64_t> out_records{0};
    obs::TraceCollector* const trace = ctx_->trace();
    ctx_->pool().ParallelFor(parts_->size(), [&](size_t p) {
      const std::vector<T>& in = (*parts_)[p];
      if (trace != nullptr) {
        // Per-worker task span: one per partition, attributed to the
        // worker thread that claimed it.
        WallTimer task_timer;
        body(in, &out[p]);
        trace->AddSpanEndingNow(name, ctx_->trace_category(),
                                task_timer.ElapsedSeconds(), 0, in.size());
      } else {
        body(in, &out[p]);
      }
      in_records.fetch_add(in.size(), std::memory_order_relaxed);
      out_records.fetch_add(out[p].size(), std::memory_order_relaxed);
    });
    Dataset<U> result = Dataset<U>::FromPartitions(ctx_, std::move(out));
    StageMetrics m;
    m.name = name;
    m.seconds = timer.ElapsedSeconds();
    m.records_in = in_records.load();
    m.records_out = out_records.load();
    ctx_->RecordStage(std::move(m));
    return result;
  }

 private:
  Dataset(ExecutionContext* ctx, Partitions partitions)
      : ctx_(ctx),
        parts_(std::make_shared<const Partitions>(std::move(partitions))) {}

  template <typename U>
  friend class Dataset;

  ExecutionContext* ctx_;
  std::shared_ptr<const Partitions> parts_;
};

// ---- Implementation details only below here. ------------------------------

template <typename T>
Dataset<T> Dataset<T>::Sample(double fraction, uint64_t seed,
                              const char* name) const {
  WallTimer timer;
  Partitions out(parts_->size());
  std::atomic<uint64_t> in_records{0};
  std::atomic<uint64_t> out_records{0};
  ctx_->pool().ParallelFor(parts_->size(), [&](size_t p) {
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
    const std::vector<T>& in = (*parts_)[p];
    for (const T& record : in) {
      if (rng.NextBool(fraction)) {
        out[p].push_back(record);
      }
    }
    in_records.fetch_add(in.size(), std::memory_order_relaxed);
    out_records.fetch_add(out[p].size(), std::memory_order_relaxed);
  });
  Dataset result(ctx_, std::move(out));
  StageMetrics m;
  m.name = name;
  m.seconds = timer.ElapsedSeconds();
  m.records_in = in_records.load();
  m.records_out = out_records.load();
  ctx_->RecordStage(std::move(m));
  return result;
}

template <typename T>
template <typename Hash>
Dataset<T> Dataset<T>::Distinct(size_t num_partitions, const Hash& hash,
                                const char* name) const {
  WallTimer timer;
  const size_t buckets =
      num_partitions == 0 ? std::max<size_t>(1, parts_->size())
                          : num_partitions;
  // Shuffle into hash buckets so equal records meet in one bucket.
  std::vector<std::vector<std::vector<T>>> shuffle(parts_->size());
  std::atomic<uint64_t> moved{0};
  ctx_->pool().ParallelFor(parts_->size(), [&](size_t p) {
    auto& local = shuffle[p];
    local.resize(buckets);
    for (const T& record : (*parts_)[p]) {
      local[hash(record) % buckets].push_back(record);
    }
    moved.fetch_add((*parts_)[p].size(), std::memory_order_relaxed);
  });
  Partitions out(buckets);
  std::atomic<uint64_t> out_records{0};
  ctx_->pool().ParallelFor(buckets, [&](size_t b) {
    std::unordered_set<T, Hash> seen(16, hash);
    for (const auto& per_part : shuffle) {
      for (const T& record : per_part[b]) {
        if (seen.insert(record).second) {
          out[b].push_back(record);
        }
      }
    }
    out_records.fetch_add(out[b].size(), std::memory_order_relaxed);
  });
  Dataset result(ctx_, std::move(out));
  StageMetrics m;
  m.name = name;
  m.seconds = timer.ElapsedSeconds();
  m.records_in = moved.load();
  m.records_out = out_records.load();
  m.shuffled_records = moved.load();
  ctx_->RecordStage(std::move(m));
  return result;
}

}  // namespace dbscout::dataflow

#endif  // DBSCOUT_DATAFLOW_DATASET_H_

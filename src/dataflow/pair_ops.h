#ifndef DBSCOUT_DATAFLOW_PAIR_OPS_H_
#define DBSCOUT_DATAFLOW_PAIR_OPS_H_

#include <atomic>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "dataflow/dataset.h"

namespace dbscout::dataflow {

/// Key-value ("wide") transformations over Dataset<std::pair<K, V>>. Each op
/// performs a hash shuffle: every input partition is split into B buckets by
/// hash(key) % B, bucket b of every partition is concatenated into output
/// partition b, and the per-key work happens bucket-locally. This mirrors
/// the hash-partitioned shuffle of Spark and is what makes the partition
/// count a genuine performance knob (Fig. 13).

namespace internal {

/// Hash-partitions every record of `in` into `buckets` output groups.
/// Returns shuffle[input_partition][bucket].
template <typename K, typename V, typename Hash>
std::vector<std::vector<std::vector<std::pair<K, V>>>> ShuffleByKey(
    ExecutionContext* ctx, const Dataset<std::pair<K, V>>& in, size_t buckets,
    const Hash& hash, uint64_t* shuffled) {
  std::vector<std::vector<std::vector<std::pair<K, V>>>> shuffle(
      in.num_partitions());
  std::atomic<uint64_t> moved{0};
  ctx->pool().ParallelFor(in.num_partitions(), [&](size_t p) {
    auto& local = shuffle[p];
    local.resize(buckets);
    for (const auto& kv : in.partition(p)) {
      local[hash(kv.first) % buckets].push_back(kv);
    }
    moved.fetch_add(in.partition(p).size(), std::memory_order_relaxed);
  });
  *shuffled = moved.load();
  return shuffle;
}

}  // namespace internal

/// REDUCEBYKEY: combines all values sharing a key with `reduce(v1, v2)`.
/// Output has `num_partitions` partitions (0 = keep input partition count).
template <typename K, typename V, typename Reduce,
          typename Hash = std::hash<K>>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& in,
                                     Reduce reduce, size_t num_partitions = 0,
                                     const Hash& hash = Hash(),
                                     const char* name = "ReduceByKey") {
  ExecutionContext* ctx = in.context();
  WallTimer timer;
  const size_t buckets =
      num_partitions == 0 ? std::max<size_t>(1, in.num_partitions())
                          : num_partitions;
  uint64_t shuffled = 0;
  auto shuffle = internal::ShuffleByKey(ctx, in, buckets, hash, &shuffled);

  typename Dataset<std::pair<K, V>>::Partitions out(buckets);
  std::atomic<uint64_t> out_records{0};
  ctx->pool().ParallelFor(buckets, [&](size_t b) {
    std::unordered_map<K, V, Hash> acc(16, hash);
    for (const auto& per_part : shuffle) {
      for (const auto& kv : per_part[b]) {
        auto [it, inserted] = acc.try_emplace(kv.first, kv.second);
        if (!inserted) {
          it->second = reduce(it->second, kv.second);
        }
      }
    }
    out[b].reserve(acc.size());
    for (auto& kv : acc) {
      out[b].emplace_back(kv.first, std::move(kv.second));
    }
    out_records.fetch_add(out[b].size(), std::memory_order_relaxed);
  });

  auto result =
      Dataset<std::pair<K, V>>::FromPartitions(ctx, std::move(out));
  StageMetrics m;
  m.name = name;
  m.seconds = timer.ElapsedSeconds();
  m.records_in = shuffled;
  m.records_out = out_records.load();
  m.shuffled_records = shuffled;
  ctx->RecordStage(std::move(m));
  return result;
}

/// GROUPBYKEY: gathers all values per key into one vector.
template <typename K, typename V, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& in, size_t num_partitions = 0,
    const Hash& hash = Hash(), const char* name = "GroupByKey") {
  ExecutionContext* ctx = in.context();
  WallTimer timer;
  const size_t buckets =
      num_partitions == 0 ? std::max<size_t>(1, in.num_partitions())
                          : num_partitions;
  uint64_t shuffled = 0;
  auto shuffle = internal::ShuffleByKey(ctx, in, buckets, hash, &shuffled);

  typename Dataset<std::pair<K, std::vector<V>>>::Partitions out(buckets);
  std::atomic<uint64_t> out_records{0};
  ctx->pool().ParallelFor(buckets, [&](size_t b) {
    std::unordered_map<K, std::vector<V>, Hash> acc(16, hash);
    for (const auto& per_part : shuffle) {
      for (const auto& kv : per_part[b]) {
        acc[kv.first].push_back(kv.second);
      }
    }
    out[b].reserve(acc.size());
    for (auto& kv : acc) {
      out[b].emplace_back(kv.first, std::move(kv.second));
    }
    out_records.fetch_add(out[b].size(), std::memory_order_relaxed);
  });

  auto result = Dataset<std::pair<K, std::vector<V>>>::FromPartitions(
      ctx, std::move(out));
  StageMetrics m;
  m.name = name;
  m.seconds = timer.ElapsedSeconds();
  m.records_in = shuffled;
  m.records_out = out_records.load();
  m.shuffled_records = shuffled;
  ctx->RecordStage(std::move(m));
  return result;
}

/// JOIN: inner hash join; emits (k, (v, w)) for every matching pair, i.e.
/// the full per-key cross product, exactly like Spark's join.
template <typename K, typename V, typename W, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::pair<V, W>>> Join(
    const Dataset<std::pair<K, V>>& left,
    const Dataset<std::pair<K, W>>& right, size_t num_partitions = 0,
    const Hash& hash = Hash(), const char* name = "Join") {
  ExecutionContext* ctx = left.context();
  WallTimer timer;
  const size_t buckets =
      num_partitions == 0
          ? std::max<size_t>({size_t{1}, left.num_partitions(),
                              right.num_partitions()})
          : num_partitions;
  uint64_t shuffled_left = 0;
  uint64_t shuffled_right = 0;
  auto left_shuffle =
      internal::ShuffleByKey(ctx, left, buckets, hash, &shuffled_left);
  auto right_shuffle =
      internal::ShuffleByKey(ctx, right, buckets, hash, &shuffled_right);

  typename Dataset<std::pair<K, std::pair<V, W>>>::Partitions out(buckets);
  std::atomic<uint64_t> out_records{0};
  ctx->pool().ParallelFor(buckets, [&](size_t b) {
    std::unordered_multimap<K, V, Hash> build(16, hash);
    for (const auto& per_part : left_shuffle) {
      for (const auto& kv : per_part[b]) {
        build.emplace(kv.first, kv.second);
      }
    }
    for (const auto& per_part : right_shuffle) {
      for (const auto& kw : per_part[b]) {
        auto [begin, end] = build.equal_range(kw.first);
        for (auto it = begin; it != end; ++it) {
          out[b].emplace_back(kw.first,
                              std::make_pair(it->second, kw.second));
        }
      }
    }
    out_records.fetch_add(out[b].size(), std::memory_order_relaxed);
  });

  auto result = Dataset<std::pair<K, std::pair<V, W>>>::FromPartitions(
      ctx, std::move(out));
  StageMetrics m;
  m.name = name;
  m.seconds = timer.ElapsedSeconds();
  m.records_in = shuffled_left + shuffled_right;
  m.records_out = out_records.load();
  m.shuffled_records = shuffled_left + shuffled_right;
  ctx->RecordStage(std::move(m));
  return result;
}

/// COUNTBYKEY: number of records per key (the word-count pattern of
/// Algorithm 2).
template <typename K, typename V, typename Hash = std::hash<K>>
Dataset<std::pair<K, uint64_t>> CountByKey(
    const Dataset<std::pair<K, V>>& in, size_t num_partitions = 0,
    const Hash& hash = Hash(), const char* name = "CountByKey") {
  auto ones = in.Map(
      [](const std::pair<K, V>& kv) {
        return std::make_pair(kv.first, uint64_t{1});
      },
      "CountByKeyOnes");
  return ReduceByKey(
      ones, [](uint64_t a, uint64_t b) { return a + b; }, num_partitions,
      hash, name);
}

/// KEYS / VALUES projections.
template <typename K, typename V>
Dataset<K> Keys(const Dataset<std::pair<K, V>>& in,
                const char* name = "Keys") {
  return in.Map([](const std::pair<K, V>& kv) { return kv.first; }, name);
}

template <typename K, typename V>
Dataset<V> Values(const Dataset<std::pair<K, V>>& in,
                  const char* name = "Values") {
  return in.Map([](const std::pair<K, V>& kv) { return kv.second; }, name);
}

/// COGROUP: for every key present on either side, the pair of value lists
/// (possibly empty on one side) — the general two-input grouping that JOIN
/// and outer joins derive from.
template <typename K, typename V, typename W, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> CoGroup(
    const Dataset<std::pair<K, V>>& left,
    const Dataset<std::pair<K, W>>& right, size_t num_partitions = 0,
    const Hash& hash = Hash(), const char* name = "CoGroup") {
  ExecutionContext* ctx = left.context();
  WallTimer timer;
  const size_t buckets =
      num_partitions == 0
          ? std::max<size_t>({size_t{1}, left.num_partitions(),
                              right.num_partitions()})
          : num_partitions;
  uint64_t shuffled_left = 0;
  uint64_t shuffled_right = 0;
  auto left_shuffle =
      internal::ShuffleByKey(ctx, left, buckets, hash, &shuffled_left);
  auto right_shuffle =
      internal::ShuffleByKey(ctx, right, buckets, hash, &shuffled_right);

  using Group = std::pair<std::vector<V>, std::vector<W>>;
  typename Dataset<std::pair<K, Group>>::Partitions out(buckets);
  std::atomic<uint64_t> out_records{0};
  ctx->pool().ParallelFor(buckets, [&](size_t b) {
    std::unordered_map<K, Group, Hash> acc(16, hash);
    for (const auto& per_part : left_shuffle) {
      for (const auto& kv : per_part[b]) {
        acc[kv.first].first.push_back(kv.second);
      }
    }
    for (const auto& per_part : right_shuffle) {
      for (const auto& kw : per_part[b]) {
        acc[kw.first].second.push_back(kw.second);
      }
    }
    out[b].reserve(acc.size());
    for (auto& kv : acc) {
      out[b].emplace_back(kv.first, std::move(kv.second));
    }
    out_records.fetch_add(out[b].size(), std::memory_order_relaxed);
  });
  auto result =
      Dataset<std::pair<K, Group>>::FromPartitions(ctx, std::move(out));
  StageMetrics m;
  m.name = name;
  m.seconds = timer.ElapsedSeconds();
  m.records_in = shuffled_left + shuffled_right;
  m.records_out = out_records.load();
  m.shuffled_records = shuffled_left + shuffled_right;
  ctx->RecordStage(std::move(m));
  return result;
}

/// Collects a pair dataset into a driver-side hash map (last write wins for
/// duplicate keys). The building block of the broadcast-join optimization.
template <typename K, typename V, typename Hash = std::hash<K>>
std::unordered_map<K, V, Hash> CollectAsMap(
    const Dataset<std::pair<K, V>>& in, const Hash& hash = Hash()) {
  std::unordered_map<K, V, Hash> out(16, hash);
  in.ForEach([&out](const std::pair<K, V>& kv) { out[kv.first] = kv.second; });
  return out;
}

/// Collects a pair dataset into a driver-side multimap-as-map-of-vectors.
template <typename K, typename V, typename Hash = std::hash<K>>
std::unordered_map<K, std::vector<V>, Hash> CollectGrouped(
    const Dataset<std::pair<K, V>>& in, const Hash& hash = Hash()) {
  std::unordered_map<K, std::vector<V>, Hash> out(16, hash);
  in.ForEach(
      [&out](const std::pair<K, V>& kv) { out[kv.first].push_back(kv.second); });
  return out;
}

}  // namespace dbscout::dataflow

#endif  // DBSCOUT_DATAFLOW_PAIR_OPS_H_

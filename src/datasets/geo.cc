#include "datasets/geo.h"

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace dbscout::datasets {

PointSet GeolifeLike(size_t n, uint64_t seed) {
  PointSet out(3);
  out.Reserve(n);
  Rng rng(seed);

  // One dominant city (Beijing analogue) and a handful of minor ones.
  struct City {
    double x, y, sigma, weight;
  };
  const std::vector<City> cities = {
      // The dominant, heavily tracked city. Its center is deliberately away
      // from round coordinates so its mass does not straddle a grid-cell
      // corner at typical eps values (the real Geolife packs ~40% of the
      // points into the single most populous cell).
      {3137.0, 2941.0, 2000.0, 0.70},
      {60000.0, 40000.0, 1500.0, 0.10},
      {-80000.0, 20000.0, 1200.0, 0.07},
      {30000.0, -70000.0, 1800.0, 0.05},
      {-50000.0, -60000.0, 900.0, 0.03},
  };
  const double noise_fraction = 0.015;  // sparse global GPS glitches
  const double walk_fraction = 0.35;    // share of city points on trajectories

  // Trajectory state: a random walk that occasionally teleports to a city.
  double walk_x = 0.0;
  double walk_y = 0.0;
  int walk_remaining = 0;

  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(noise_fraction)) {
      out.Add({rng.Uniform(-100000.0, 100000.0),
               rng.Uniform(-100000.0, 100000.0), rng.Uniform(0.0, 3000.0)});
      continue;
    }
    // Pick a city by weight.
    double pick = rng.NextDouble() * 0.95;
    const City* city = &cities.back();
    for (const auto& c : cities) {
      if (pick < c.weight) {
        city = &c;
        break;
      }
      pick -= c.weight;
    }
    double x;
    double y;
    if (rng.NextBool(walk_fraction)) {
      // Trajectory point: continue (or start) a random walk in the city.
      if (walk_remaining == 0) {
        walk_x = rng.Gaussian(city->x, city->sigma);
        walk_y = rng.Gaussian(city->y, city->sigma);
        walk_remaining = 50 + static_cast<int>(rng.NextBounded(200));
      }
      walk_x += rng.Gaussian(0.0, 30.0);
      walk_y += rng.Gaussian(0.0, 30.0);
      --walk_remaining;
      x = walk_x;
      y = walk_y;
    } else {
      x = rng.Gaussian(city->x, city->sigma);
      y = rng.Gaussian(city->y, city->sigma);
    }
    const double altitude = rng.Gaussian(120.0, 40.0);
    out.Add({x, y, altitude});
  }
  return out;
}

PointSet OsmLike(size_t n, uint64_t seed) {
  PointSet out(2);
  out.Reserve(n);
  Rng rng(seed);

  // Power-law-weighted city centers over a web-mercator-like extent.
  const size_t num_cities = 600;
  struct City {
    double x, y, sigma;
  };
  std::vector<City> cities;
  cities.reserve(num_cities);
  std::vector<double> cdf(num_cities);
  double total = 0.0;
  for (size_t c = 0; c < num_cities; ++c) {
    City city;
    city.x = rng.Uniform(-2e7, 2e7);
    city.y = rng.Uniform(-1e7, 1e7);
    // Sizes from ~2e4 (town) to ~3e5 (metropolis).
    city.sigma = 2e4 * std::pow(15.0, rng.NextDouble());
    cities.push_back(city);
    // Zipf-ish weights: w_c ~ 1 / (c+1)^0.8.
    total += 1.0 / std::pow(static_cast<double>(c + 1), 0.8);
    cdf[c] = total;
  }

  const double noise_fraction = 0.008;  // isolated GPS fixes: the outliers
  const double road_fraction = 0.25;    // inter-city road traces

  double road_x = 0.0;
  double road_y = 0.0;
  double road_dx = 0.0;
  double road_dy = 0.0;
  int road_remaining = 0;

  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(noise_fraction)) {
      out.Add({rng.Uniform(-2e7, 2e7), rng.Uniform(-1e7, 1e7)});
      continue;
    }
    if (rng.NextBool(road_fraction)) {
      if (road_remaining == 0) {
        // New road segment: from one city toward another.
        const auto& a = cities[rng.NextBounded(num_cities)];
        const auto& b = cities[rng.NextBounded(num_cities)];
        road_x = a.x;
        road_y = a.y;
        const double len =
            std::max(1.0, std::hypot(b.x - a.x, b.y - a.y));
        const int steps = 200 + static_cast<int>(rng.NextBounded(600));
        road_dx = (b.x - a.x) / len * (len / steps);
        road_dy = (b.y - a.y) / len * (len / steps);
        road_remaining = steps;
      }
      road_x += road_dx + rng.Gaussian(0.0, 2e3);
      road_y += road_dy + rng.Gaussian(0.0, 2e3);
      --road_remaining;
      out.Add({road_x, road_y});
      continue;
    }
    // City point: inverse-CDF sample of the Zipf weights.
    const double pick = rng.NextDouble() * total;
    size_t lo = 0;
    size_t hi = num_cities - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf[mid] < pick) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const auto& city = cities[lo];
    out.Add({rng.Gaussian(city.x, city.sigma),
             rng.Gaussian(city.y, city.sigma)});
  }
  return out;
}

PointSet SampleFraction(const PointSet& points, double fraction,
                        uint64_t seed) {
  PointSet out(points.dims());
  Rng rng(seed);
  const size_t n = points.size();
  out.Reserve(static_cast<size_t>(fraction * static_cast<double>(n)) + 1);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(fraction)) {
      out.Add(points[i]);
    }
  }
  return out;
}

PointSet ScaleWithNoise(const PointSet& points, size_t factor, double jitter,
                        uint64_t seed) {
  PointSet out(points.dims());
  Rng rng(seed);
  const size_t n = points.size();
  const size_t d = points.dims();
  out.Reserve(n * factor);
  std::vector<double> p(d);
  for (size_t rep = 0; rep < factor; ++rep) {
    for (size_t i = 0; i < n; ++i) {
      const auto src = points[i];
      for (size_t k = 0; k < d; ++k) {
        p[k] = rep == 0 ? src[k] : src[k] + rng.Uniform(-jitter, jitter);
      }
      out.Add(p);
    }
  }
  return out;
}

}  // namespace dbscout::datasets

#ifndef DBSCOUT_DATASETS_GEO_H_
#define DBSCOUT_DATASETS_GEO_H_

#include <cstdint>

#include "data/point_set.h"

namespace dbscout::datasets {

/// Generators standing in for the two real GPS datasets of the scalability
/// study (DESIGN.md documents the substitution):
///
///  - Geolife: 24.9M 3D points (lat, lon, altitude) heavily skewed on
///    Beijing — at large eps, ~40%% of the points fall into the single most
///    populous cell (SS IV-B2 of the paper).
///  - OpenStreetMap: 2.77B 2D GPS points spread over the planet.
///
/// Both are reproduced parametrically at configurable size with the same
/// structural traits: a few dominant dense regions, trajectory-shaped
/// filaments, and a thin veil of global noise whose members are the
/// outliers the eps sweeps of Figs. 11-12 count.

/// Geolife-like: 3D, one dominant "city" holding ~70%% of the points at
/// sigma ~2000 units, several secondary cities, trajectory random walks,
/// and ~1.5%% global uniform noise. Meaningful eps range: 25 - 200.
PointSet GeolifeLike(size_t n, uint64_t seed);

/// OpenStreetMap-like: 2D, ~thousands of power-law-weighted city clusters
/// over a +-2e7 coordinate range, road filaments between cities, and
/// ~0.8%% uniform noise. Meaningful eps range: 2.5e5 - 2e6.
PointSet OsmLike(size_t n, uint64_t seed);

/// Uniform random sample of `fraction` of the points (the paper's 1%%-75%%
/// OpenStreetMap samples).
PointSet SampleFraction(const PointSet& points, double fraction,
                        uint64_t seed);

/// Enlarges a dataset by an integer `factor` through duplication, applying
/// small random jitter (+-jitter per coordinate) to each replica "to avoid
/// creating too many overlaps" — exactly how the paper built its 200%%-1000%%
/// OpenStreetMap versions (SS IV-A2).
PointSet ScaleWithNoise(const PointSet& points, size_t factor, double jitter,
                        uint64_t seed);

}  // namespace dbscout::datasets

#endif  // DBSCOUT_DATASETS_GEO_H_

#ifndef DBSCOUT_DATASETS_LABELED_H_
#define DBSCOUT_DATASETS_LABELED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/point_set.h"

namespace dbscout::datasets {

/// A generated dataset with ground-truth outlier labels, the unit of the
/// quality experiments (Table III).
struct LabeledDataset {
  std::string name;
  PointSet points;
  /// 1 = ground-truth outlier, 0 = inlier; index-aligned with points.
  std::vector<uint8_t> labels;

  size_t NumOutliers() const {
    size_t count = 0;
    for (uint8_t label : labels) {
      count += label;
    }
    return count;
  }

  /// Fraction of ground-truth outliers (the contamination handed to the
  /// score-based detectors).
  double Contamination() const {
    return points.empty()
               ? 0.0
               : static_cast<double>(NumOutliers()) /
                     static_cast<double>(points.size());
  }
};

}  // namespace dbscout::datasets

#endif  // DBSCOUT_DATASETS_LABELED_H_

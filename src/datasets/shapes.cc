#include "datasets/shapes.h"

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace dbscout::datasets {
namespace {

/// One weighted cluster shape: Sample draws a point of the shape.
struct Shape {
  double weight;
  std::function<void(Rng*, double*, double*)> sample;
};

/// Builds a scene: inliers drawn from the weighted shapes, noise uniform
/// over [0,100]^2 (the CLUTO datasets live in a ~[0,700]x[0,500] box; the
/// absolute scale is irrelevant, the density contrast is what matters).
LabeledDataset BuildScene(const char* name, size_t n, double noise_fraction,
                          uint64_t seed, const std::vector<Shape>& shapes) {
  LabeledDataset ds;
  ds.name = name;
  ds.points = PointSet(2);
  Rng rng(seed);
  double total_weight = 0.0;
  for (const auto& shape : shapes) {
    total_weight += shape.weight;
  }
  const size_t noise = static_cast<size_t>(std::llround(
      noise_fraction * static_cast<double>(n)));
  const size_t inliers = n - noise;
  for (size_t i = 0; i < inliers; ++i) {
    double pick = rng.Uniform(0.0, total_weight);
    const Shape* chosen = &shapes.back();
    for (const auto& shape : shapes) {
      if (pick < shape.weight) {
        chosen = &shape;
        break;
      }
      pick -= shape.weight;
    }
    double x = 0.0;
    double y = 0.0;
    chosen->sample(&rng, &x, &y);
    ds.points.Add({x, y});
    ds.labels.push_back(0);
  }
  for (size_t i = 0; i < noise; ++i) {
    ds.points.Add({rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)});
    ds.labels.push_back(1);
  }
  return ds;
}

Shape SineBand(double x0, double x1, double y0, double amplitude,
               double period, double thickness, double weight) {
  return {weight, [=](Rng* rng, double* x, double* y) {
            *x = rng->Uniform(x0, x1);
            *y = y0 + amplitude * std::sin(2.0 * M_PI * (*x - x0) / period) +
                 rng->Gaussian(0.0, thickness);
          }};
}

Shape Bar(double x0, double y0, double x1, double y1, double thickness,
          double weight) {
  return {weight, [=](Rng* rng, double* x, double* y) {
            const double t = rng->NextDouble();
            *x = x0 + t * (x1 - x0) + rng->Gaussian(0.0, thickness);
            *y = y0 + t * (y1 - y0) + rng->Gaussian(0.0, thickness);
          }};
}

Shape Ellipse(double cx, double cy, double rx, double ry, double angle,
              double weight) {
  return {weight, [=](Rng* rng, double* x, double* y) {
            // Uniform over the ellipse interior.
            const double r = std::sqrt(rng->NextDouble());
            const double theta = rng->Uniform(0.0, 2.0 * M_PI);
            const double ex = r * rx * std::cos(theta);
            const double ey = r * ry * std::sin(theta);
            *x = cx + ex * std::cos(angle) - ey * std::sin(angle);
            *y = cy + ex * std::sin(angle) + ey * std::cos(angle);
          }};
}

Shape Blob(double cx, double cy, double sigma, double weight) {
  return {weight, [=](Rng* rng, double* x, double* y) {
            *x = rng->Gaussian(cx, sigma);
            *y = rng->Gaussian(cy, sigma);
          }};
}

Shape Spiral(double cx, double cy, double r0, double r1, double turns,
             double thickness, double weight) {
  return {weight, [=](Rng* rng, double* x, double* y) {
            const double t = rng->NextDouble();
            const double theta = 2.0 * M_PI * turns * t;
            const double radius = r0 + (r1 - r0) * t;
            *x = cx + radius * std::cos(theta) + rng->Gaussian(0.0, thickness);
            *y = cy + radius * std::sin(theta) + rng->Gaussian(0.0, thickness);
          }};
}

}  // namespace

LabeledDataset ClutoT4Like(size_t n, uint64_t seed) {
  return BuildScene(
      "Cluto-t4-8k", n, 0.10, seed,
      {
          SineBand(10, 90, 70, 8.0, 55.0, 1.2, 3.0),
          SineBand(10, 90, 45, 8.0, 55.0, 1.2, 3.0),
          Ellipse(30, 20, 12, 6, 0.4, 2.0),
          Bar(60, 12, 90, 28, 1.5, 2.0),
      });
}

LabeledDataset ClutoT5Like(size_t n, uint64_t seed) {
  std::vector<Shape> shapes;
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      shapes.push_back(Blob(20.0 + 30.0 * gx, 20.0 + 30.0 * gy, 2.5, 1.0));
    }
  }
  shapes.push_back(Bar(5, 5, 95, 95, 1.0, 2.5));
  shapes.push_back(Bar(5, 95, 95, 5, 1.0, 2.5));
  return BuildScene("Cluto-t5-8k", n, 0.15, seed, shapes);
}

LabeledDataset ClutoT7Like(size_t n, uint64_t seed) {
  return BuildScene(
      "Cluto-t7-10k", n, 0.08, seed,
      {
          Spiral(35, 50, 5, 30, 1.5, 1.5, 3.0),
          Spiral(65, 50, 5, 30, 1.5, 1.5, 3.0),
          SineBand(5, 95, 12, 5.0, 60.0, 1.5, 2.0),
          Ellipse(50, 85, 18, 6, 0.0, 2.0),
      });
}

LabeledDataset ClutoT8Like(size_t n, uint64_t seed) {
  return BuildScene(
      "Cluto-t8-8k", n, 0.04, seed,
      {
          Ellipse(25, 70, 18, 4, 0.5, 2.5),
          Ellipse(70, 65, 16, 5, -0.7, 2.5),
          Ellipse(30, 25, 20, 5, -0.3, 2.5),
          Ellipse(72, 22, 14, 4, 0.9, 2.5),
      });
}

LabeledDataset CureT2Like(size_t n, uint64_t seed) {
  return BuildScene(
      "Cure-t2-4k", n, 0.05, seed,
      {
          Ellipse(35, 55, 25, 14, 0.0, 5.0),
          Ellipse(78, 70, 10, 6, 0.3, 2.0),
          Blob(75, 30, 2.0, 1.0),
          Blob(88, 42, 2.0, 1.0),
      });
}

}  // namespace dbscout::datasets

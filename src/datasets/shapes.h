#ifndef DBSCOUT_DATASETS_SHAPES_H_
#define DBSCOUT_DATASETS_SHAPES_H_

#include <cstdint>

#include "datasets/labeled.h"

namespace dbscout::datasets {

/// Parametric stand-ins for the CLUTO/Chameleon and CURE benchmark files
/// used in Table III (the original point files are not redistributable;
/// DESIGN.md documents the substitution). Each generator reproduces the
/// flavor of its namesake: irregularly shaped, arbitrarily oriented dense
/// clusters drowned in a known fraction of uniform background noise, with
/// exact labels (noise = outlier).

/// cluto-t4.8k-like: sinusoidal bands, an ellipse, and a bar, ~10%% noise.
LabeledDataset ClutoT4Like(size_t n, uint64_t seed);

/// cluto-t5.8k-like: a grid of compact blobs crossed by two lines, ~15%%
/// noise.
LabeledDataset ClutoT5Like(size_t n, uint64_t seed);

/// cluto-t7.10k-like: spiral arms and curved regions, ~8%% noise.
LabeledDataset ClutoT7Like(size_t n, uint64_t seed);

/// cluto-t8.8k-like: a few elongated rotated clusters, ~4%% noise.
LabeledDataset ClutoT8Like(size_t n, uint64_t seed);

/// cure-t2-4k-like: ellipses of very different sizes plus two small dense
/// satellites, ~5%% noise.
LabeledDataset CureT2Like(size_t n, uint64_t seed);

}  // namespace dbscout::datasets

#endif  // DBSCOUT_DATASETS_SHAPES_H_

#include "datasets/synthetic.h"

#include <cmath>

#include "common/rng.h"

namespace dbscout::datasets {
namespace {

/// Appends `count` uniform outliers over the bounding box of the inliers,
/// expanded by `margin_factor` of its extent, labeling them 1. Outliers may
/// occasionally land inside a cluster; that is true of the benchmark
/// datasets the paper uses too and is part of why no detector reaches
/// F1 = 1.0.
void InjectUniformOutliers(size_t count, double margin_factor, Rng* rng,
                           LabeledDataset* ds) {
  if (ds->points.empty() || count == 0) {
    return;
  }
  const auto box = ds->points.Bounds();
  const size_t d = ds->points.dims();
  std::vector<double> lo(d);
  std::vector<double> hi(d);
  for (size_t k = 0; k < d; ++k) {
    const double extent = box.max[k] - box.min[k];
    lo[k] = box.min[k] - margin_factor * extent;
    hi[k] = box.max[k] + margin_factor * extent;
  }
  std::vector<double> p(d);
  for (size_t i = 0; i < count; ++i) {
    for (size_t k = 0; k < d; ++k) {
      p[k] = rng->Uniform(lo[k], hi[k]);
    }
    ds->points.Add(p);
    ds->labels.push_back(1);
  }
}

size_t OutlierCount(size_t n, double contamination) {
  return static_cast<size_t>(std::llround(contamination *
                                          static_cast<double>(n)));
}

/// Radially truncated 2D Gaussian around (cx, cy): resamples beyond 2.8
/// sigma. Unbounded tails would make the ground truth ambiguous — a tail
/// point IS a density outlier even though it is labelled inlier — which no
/// detector can resolve; the paper's near-perfect blob scores imply
/// bounded-support clusters.
void AddTruncatedGaussian(Rng* rng, double cx, double cy, double sigma,
                          LabeledDataset* ds) {
  const double limit_sq = 2.8 * 2.8 * sigma * sigma;
  for (;;) {
    const double dx = sigma * rng->NextGaussian();
    const double dy = sigma * rng->NextGaussian();
    if (dx * dx + dy * dy <= limit_sq) {
      ds->points.Add({cx + dx, cy + dy});
      ds->labels.push_back(0);
      return;
    }
  }
}

}  // namespace

LabeledDataset Blobs(size_t n, double contamination, uint64_t seed) {
  LabeledDataset ds;
  ds.name = "Blobs";
  ds.points = PointSet(2);
  Rng rng(seed);
  const size_t outliers = OutlierCount(n, contamination);
  const size_t inliers = n - outliers;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 10.0}, {-10.0, 9.0}};
  for (size_t i = 0; i < inliers; ++i) {
    const auto& c = centers[rng.NextBounded(3)];
    AddTruncatedGaussian(&rng, c[0], c[1], 1.0, &ds);
  }
  InjectUniformOutliers(outliers, 0.4, &rng, &ds);
  return ds;
}

LabeledDataset BlobsVariedDensity(size_t n, double contamination,
                                  uint64_t seed) {
  LabeledDataset ds;
  ds.name = "Blobs-vd";
  ds.points = PointSet(2);
  Rng rng(seed);
  const size_t outliers = OutlierCount(n, contamination);
  const size_t inliers = n - outliers;
  const double centers[3][2] = {{0.0, 0.0}, {12.0, 12.0}, {-12.0, 11.0}};
  const double sigmas[3] = {0.5, 1.0, 1.5};  // visibly different densities
  for (size_t i = 0; i < inliers; ++i) {
    const size_t c = rng.NextBounded(3);
    AddTruncatedGaussian(&rng, centers[c][0], centers[c][1], sigmas[c], &ds);
  }
  InjectUniformOutliers(outliers, 0.4, &rng, &ds);
  return ds;
}

LabeledDataset Circles(size_t n, double contamination, uint64_t seed) {
  LabeledDataset ds;
  ds.name = "Circles";
  ds.points = PointSet(2);
  Rng rng(seed);
  const size_t outliers = OutlierCount(n, contamination);
  const size_t inliers = n - outliers;
  for (size_t i = 0; i < inliers; ++i) {
    const double radius = rng.NextBool(0.5) ? 1.0 : 0.5;
    const double theta = rng.Uniform(0.0, 2.0 * M_PI);
    const double jitter = 0.02;
    ds.points.Add({radius * std::cos(theta) + rng.Gaussian(0.0, jitter),
                   radius * std::sin(theta) + rng.Gaussian(0.0, jitter)});
    ds.labels.push_back(0);
  }
  InjectUniformOutliers(outliers, 0.15, &rng, &ds);
  return ds;
}

LabeledDataset Moons(size_t n, double contamination, uint64_t seed) {
  LabeledDataset ds;
  ds.name = "Moons";
  ds.points = PointSet(2);
  Rng rng(seed);
  const size_t outliers = OutlierCount(n, contamination);
  const size_t inliers = n - outliers;
  for (size_t i = 0; i < inliers; ++i) {
    const double t = rng.Uniform(0.0, M_PI);
    const double jitter = 0.02;
    if (rng.NextBool(0.5)) {
      ds.points.Add({std::cos(t) + rng.Gaussian(0.0, jitter),
                     std::sin(t) + rng.Gaussian(0.0, jitter)});
    } else {
      ds.points.Add({1.0 - std::cos(t) + rng.Gaussian(0.0, jitter),
                     0.5 - std::sin(t) + rng.Gaussian(0.0, jitter)});
    }
    ds.labels.push_back(0);
  }
  InjectUniformOutliers(outliers, 0.15, &rng, &ds);
  return ds;
}

}  // namespace dbscout::datasets

#ifndef DBSCOUT_DATASETS_SYNTHETIC_H_
#define DBSCOUT_DATASETS_SYNTHETIC_H_

#include <cstdint>

#include "datasets/labeled.h"

namespace dbscout::datasets {

/// Generators for the small labelled 2D datasets of the quality study
/// (Table III): scikit-learn-style blobs/circles/moons with a known
/// fraction of uniform outliers sprinkled over an expanded bounding box.
/// All generators are deterministic in `seed`.

/// Isotropic Gaussian blobs of equal density ("Blobs", n ~ 4000,
/// contamination 0.01 in the paper).
LabeledDataset Blobs(size_t n, double contamination, uint64_t seed);

/// Gaussian blobs of visibly different densities ("Blobs-vd").
LabeledDataset BlobsVariedDensity(size_t n, double contamination,
                                  uint64_t seed);

/// Two concentric circles with small radial jitter ("Circles").
LabeledDataset Circles(size_t n, double contamination, uint64_t seed);

/// Two interleaving half-moons ("Moons").
LabeledDataset Moons(size_t n, double contamination, uint64_t seed);

}  // namespace dbscout::datasets

#endif  // DBSCOUT_DATASETS_SYNTHETIC_H_

#include "external/external_detector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/str_util.h"
#include "common/timer.h"
#include "data/point_stream.h"
#include "grid/cell_coord.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"

namespace dbscout::external {
namespace {

using grid::CellCoord;
using grid::CellCoordHash;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// One spilled record: the point's file position followed by d coordinates.
struct SpillWriter {
  FilePtr file;
  std::string path;
  std::vector<char> buffer;

  Status Append(uint32_t index, std::span<const double> coords) {
    const size_t record = sizeof(uint32_t) + coords.size() * sizeof(double);
    if (buffer.size() + record > (1u << 20)) {
      DBSCOUT_RETURN_IF_ERROR(Flush());
    }
    const size_t offset = buffer.size();
    buffer.resize(offset + record);
    std::memcpy(buffer.data() + offset, &index, sizeof(uint32_t));
    std::memcpy(buffer.data() + offset + sizeof(uint32_t), coords.data(),
                coords.size() * sizeof(double));
    return Status::OK();
  }

  Status Flush() {
    if (!buffer.empty() &&
        std::fwrite(buffer.data(), 1, buffer.size(), file.get()) !=
            buffer.size()) {
      return Status::IoError("spill write failure: " + path);
    }
    buffer.clear();
    return Status::OK();
  }
};

/// Contiguous range of dim-0 cell-slabs owned by one stripe.
struct Stripe {
  int64_t slab_lo = 0;
  int64_t slab_hi = 0;  // inclusive
};

}  // namespace

Status ExternalParams::Validate() const {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be > 0");
  }
  if (min_pts < 1) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }
  if (batch_points == 0) {
    return Status::InvalidArgument("batch_points must be >= 1");
  }
  if (target_stripe_points == 0) {
    return Status::InvalidArgument("target_stripe_points must be >= 1");
  }
  return Status::OK();
}

Result<ExternalDetection> DetectExternal(const std::string& binary_path,
                                         const ExternalParams& params) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  WallTimer timer;
  DBSCOUT_ASSIGN_OR_RETURN(PointFileReader reader,
                           PointFileReader::Open(binary_path));
  const size_t d = reader.dims();
  if (d > kMaxDims) {
    return Status::InvalidArgument(
        StrFormat("dims=%zu out of supported range [1, %zu]", d, kMaxDims));
  }
  if (reader.num_points() > UINT32_MAX) {
    return Status::OutOfRange("more than 2^32-1 points");
  }
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(std::max<size_t>(d, 1)));
  const double side = params.eps / std::sqrt(static_cast<double>(d));
  const int64_t radius =
      static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(d))));
  const int64_t halo = 2 * radius;
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);

  ExternalDetection out;

  // ---- Pass 0: global cell counts + dim-0 slab histogram. ---------------
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> cell_counts;
  std::map<int64_t, uint64_t> slab_histogram;  // ordered for stripe planning
  {
    PointSet batch(d);
    for (;;) {
      DBSCOUT_ASSIGN_OR_RETURN(size_t got,
                               reader.ReadBatch(params.batch_points, &batch));
      if (got == 0) {
        break;
      }
      for (size_t i = 0; i < got; ++i) {
        const auto p = batch[i];
        CellCoord coord = CellCoord::Zero(d);
        for (size_t k = 0; k < d; ++k) {
          if (!std::isfinite(p[k])) {
            return Status::InvalidArgument("non-finite coordinate in input");
          }
          coord[k] = static_cast<int64_t>(std::floor(p[k] / side));
        }
        ++cell_counts[coord];
        ++slab_histogram[coord[0]];
      }
    }
  }
  out.num_cells = cell_counts.size();
  for (const auto& [coord, count] : cell_counts) {
    out.num_dense_cells += count >= min_pts;
  }
  auto cell_is_dense = [&](const CellCoord& coord) {
    auto it = cell_counts.find(coord);
    return it != cell_counts.end() && it->second >= min_pts;
  };

  // ---- Stripe planning: contiguous slab ranges of bounded cardinality. --
  std::vector<Stripe> stripes;
  if (!slab_histogram.empty()) {
    uint64_t total = 0;
    for (const auto& [slab, count] : slab_histogram) {
      total += count;
    }
    uint64_t target = params.target_stripe_points;
    if (params.num_stripes > 0) {
      target = std::max<uint64_t>(1, total / params.num_stripes);
    }
    Stripe current;
    current.slab_lo = slab_histogram.begin()->first;
    uint64_t filled = 0;
    int64_t last_slab = current.slab_lo;
    for (const auto& [slab, count] : slab_histogram) {
      if (filled > 0 && filled + count > target) {
        current.slab_hi = last_slab;
        stripes.push_back(current);
        current.slab_lo = slab;
        filled = 0;
      }
      filled += count;
      last_slab = slab;
    }
    current.slab_hi = last_slab;
    stripes.push_back(current);
  }
  out.stripes = stripes.size();

  // ---- Pass 1: spill points to stripe files (owned range + halo). -------
  std::string tmp_dir = params.tmp_dir;
  if (tmp_dir.empty()) {
    const size_t slash = binary_path.find_last_of('/');
    tmp_dir = slash == std::string::npos ? "." : binary_path.substr(0, slash);
  }
  std::vector<SpillWriter> writers(stripes.size());
  for (size_t s = 0; s < stripes.size(); ++s) {
    writers[s].path =
        StrFormat("%s/dbscout_spill_%zu.tmp", tmp_dir.c_str(), s);
    writers[s].file.reset(std::fopen(writers[s].path.c_str(), "wb"));
    if (writers[s].file == nullptr) {
      return Status::IoError("cannot create spill file: " + writers[s].path);
    }
  }
  // Stripe lookup by slab: stripes are sorted and contiguous.
  auto first_stripe_at_or_after = [&](int64_t slab) {
    size_t lo = 0;
    size_t hi = stripes.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (stripes[mid].slab_hi < slab) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  DBSCOUT_RETURN_IF_ERROR(reader.Rewind());
  {
    PointSet batch(d);
    uint32_t index = 0;
    for (;;) {
      DBSCOUT_ASSIGN_OR_RETURN(size_t got,
                               reader.ReadBatch(params.batch_points, &batch));
      if (got == 0) {
        break;
      }
      for (size_t i = 0; i < got; ++i, ++index) {
        const auto p = batch[i];
        const int64_t slab =
            static_cast<int64_t>(std::floor(p[0] / side));
        // The point belongs to every stripe whose halo-extended range
        // [slab_lo - halo, slab_hi + halo] contains its slab.
        const size_t begin = first_stripe_at_or_after(slab - halo);
        for (size_t s = begin; s < stripes.size(); ++s) {
          if (stripes[s].slab_lo - halo > slab) {
            break;
          }
          DBSCOUT_RETURN_IF_ERROR(writers[s].Append(index, p));
          ++out.spilled_records;
        }
      }
    }
  }
  for (auto& writer : writers) {
    DBSCOUT_RETURN_IF_ERROR(writer.Flush());
    writer.file.reset();
  }

  // ---- Pass 2: per-stripe in-memory DBSCOUT against the global maps. ----
  const double eps2 = params.eps * params.eps;
  for (size_t s = 0; s < stripes.size(); ++s) {
    // Load the stripe's spill file.
    FilePtr in(std::fopen(writers[s].path.c_str(), "rb"));
    if (in == nullptr) {
      return Status::IoError("cannot reopen spill file: " + writers[s].path);
    }
    PointSet local(d);
    std::vector<uint32_t> gids;
    const size_t record = sizeof(uint32_t) + d * sizeof(double);
    std::vector<char> chunk(record * 4096);
    std::vector<double> coords(d);
    for (;;) {
      const size_t got = std::fread(chunk.data(), record, 4096, in.get());
      for (size_t r = 0; r < got; ++r) {
        uint32_t index;
        std::memcpy(&index, chunk.data() + r * record, sizeof(uint32_t));
        std::memcpy(coords.data(), chunk.data() + r * record + sizeof(uint32_t),
                    d * sizeof(double));
        gids.push_back(index);
        local.Add(coords);
      }
      if (got < 4096) {
        break;
      }
    }
    in.reset();
    std::remove(writers[s].path.c_str());
    if (local.empty()) {
      continue;
    }
    out.max_stripe_points = std::max(out.max_stripe_points, local.size());

    DBSCOUT_ASSIGN_OR_RETURN(grid::Grid g, grid::Grid::Build(local, params.eps));
    const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());

    // Core flags for every local point whose dim-0 slab lies within the
    // first halo ring [slab_lo - radius, slab_hi + radius]: their complete
    // neighborhood is guaranteed local (the spill carried 2*radius).
    const int64_t core_lo = stripes[s].slab_lo - radius;
    const int64_t core_hi = stripes[s].slab_hi + radius;
    std::vector<uint8_t> is_core(local.size(), 0);
    std::vector<uint8_t> cell_core(num_cells, 0);
    std::vector<uint8_t> cell_dense(num_cells, 0);
    std::vector<std::vector<uint32_t>> sparse_core_points(num_cells);
    std::vector<uint32_t> neighbor_cells;
    for (uint32_t c = 0; c < num_cells; ++c) {
      const CellCoord& coord = g.CoordOf(c);
      if (coord[0] < core_lo || coord[0] > core_hi) {
        continue;  // pure halo cell: core status resolved by its own stripe
      }
      cell_dense[c] = cell_is_dense(coord);
      const auto cell_points = g.PointsInCell(c);
      if (cell_dense[c]) {
        cell_core[c] = 1;
        for (uint32_t p : cell_points) {
          is_core[p] = 1;
        }
        continue;
      }
      neighbor_cells.clear();
      g.ForEachNeighborCell(c, *stencil, [&](uint32_t nc) {
        neighbor_cells.push_back(nc);
      });
      for (uint32_t p : cell_points) {
        const auto pv = local[p];
        uint32_t count = 0;
        for (uint32_t nc : neighbor_cells) {
          for (uint32_t q : g.PointsInCell(nc)) {
            if (PointSet::SquaredDistance(pv, local[q]) <= eps2 &&
                ++count >= min_pts) {
              is_core[p] = 1;
              break;
            }
          }
          if (is_core[p]) {
            break;
          }
        }
        if (is_core[p]) {
          cell_core[c] = 1;
          sparse_core_points[c].push_back(p);
        }
      }
    }

    // Outlier decision for owned points only.
    std::vector<uint32_t> core_neighbor_cells;
    for (uint32_t c = 0; c < num_cells; ++c) {
      const CellCoord& coord = g.CoordOf(c);
      if (coord[0] < stripes[s].slab_lo || coord[0] > stripes[s].slab_hi) {
        continue;  // halo cell: owned by another stripe
      }
      if (cell_core[c]) {
        for (uint32_t p : g.PointsInCell(c)) {
          out.num_core += is_core[p];
          out.num_border += !is_core[p];
        }
        continue;
      }
      core_neighbor_cells.clear();
      g.ForEachNeighborCell(c, *stencil, [&](uint32_t nc) {
        if (cell_core[nc]) {
          core_neighbor_cells.push_back(nc);
        }
      });
      for (uint32_t p : g.PointsInCell(c)) {
        bool outlier = true;
        if (!core_neighbor_cells.empty()) {
          const auto pv = local[p];
          for (uint32_t nc : core_neighbor_cells) {
            if (cell_dense[nc]) {
              for (uint32_t q : g.PointsInCell(nc)) {
                if (PointSet::SquaredDistance(pv, local[q]) <= eps2) {
                  outlier = false;
                  break;
                }
              }
            } else {
              for (uint32_t q : sparse_core_points[nc]) {
                if (PointSet::SquaredDistance(pv, local[q]) <= eps2) {
                  outlier = false;
                  break;
                }
              }
            }
            if (!outlier) {
              break;
            }
          }
        }
        if (outlier) {
          out.outliers.push_back(gids[p]);
        } else {
          ++out.num_border;
        }
      }
    }
  }
  std::sort(out.outliers.begin(), out.outliers.end());
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace dbscout::external

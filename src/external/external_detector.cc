#include "external/external_detector.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/str_util.h"
#include "common/timer.h"
#include "core/phases/phase_kernels.h"
#include "core/phases/phase_recorder.h"
#include "data/point_stream.h"
#include "grid/cell_coord.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"
#include "grid/regions.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbscout::external {
namespace {

using grid::CellCoord;
using grid::CellCoordHash;

namespace phases = core::phases;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Process-unique token for spill-file names. Concurrent DetectExternal
/// calls sharing a tmp_dir (threads of one process, or several processes)
/// must not collide on spill paths: the pid disambiguates processes, this
/// counter disambiguates threads.
uint64_t NextSpillToken() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// One spilled record: the point's file position followed by d coordinates.
struct SpillWriter {
  FilePtr file;
  std::string path;
  std::vector<char> buffer;

  Status Append(uint32_t index, std::span<const double> coords) {
    const size_t record = sizeof(uint32_t) + coords.size() * sizeof(double);
    if (buffer.size() + record > (1u << 20)) {
      DBSCOUT_RETURN_IF_ERROR(Flush());
    }
    const size_t offset = buffer.size();
    buffer.resize(offset + record);
    std::memcpy(buffer.data() + offset, &index, sizeof(uint32_t));
    std::memcpy(buffer.data() + offset + sizeof(uint32_t), coords.data(),
                coords.size() * sizeof(double));
    return Status::OK();
  }

  Status Flush() {
    if (!buffer.empty() &&
        std::fwrite(buffer.data(), 1, buffer.size(), file.get()) !=
            buffer.size()) {
      return Status::IoError("spill write failure: " + path);
    }
    buffer.clear();
    return Status::OK();
  }
};

using grid::Stripe;

}  // namespace

Status ExternalParams::Validate() const {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be > 0");
  }
  if (min_pts < 1) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }
  if (batch_points == 0) {
    return Status::InvalidArgument("batch_points must be >= 1");
  }
  if (target_stripe_points == 0) {
    return Status::InvalidArgument("target_stripe_points must be >= 1");
  }
  return Status::OK();
}

Result<ExternalDetection> DetectExternal(const std::string& binary_path,
                                         const ExternalParams& params) {
  DBSCOUT_RETURN_IF_ERROR(params.Validate());
  WallTimer timer;
  DBSCOUT_ASSIGN_OR_RETURN(PointFileReader reader,
                           PointFileReader::Open(binary_path));
  const size_t d = reader.dims();
  if (d > kMaxDims) {
    return Status::InvalidArgument(
        StrFormat("dims=%zu out of supported range [1, %zu]", d, kMaxDims));
  }
  if (reader.num_points() > UINT32_MAX) {
    return Status::OutOfRange("more than 2^32-1 points");
  }
  DBSCOUT_ASSIGN_OR_RETURN(const grid::NeighborStencil* stencil,
                           grid::GetNeighborStencil(std::max<size_t>(d, 1)));
  const double side = params.eps / std::sqrt(static_cast<double>(d));
  const int64_t radius = grid::SlabReach(d);
  const int64_t halo = grid::HaloSlabs(d);
  const uint32_t min_pts = static_cast<uint32_t>(params.min_pts);

  ExternalDetection out;
  phases::PhaseRecorder recorder;
  // One Accumulate per stripe per phase -> one span per stripe per phase.
  recorder.AttachObservability(phases::kEngineExternal,
                               &obs::Registry::Global(), params.trace);
  WallTimer phase_timer;

  // ---- Pass 0: global cell counts + dim-0 slab histogram. ---------------
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> cell_counts;
  std::map<int64_t, uint64_t> slab_histogram;  // ordered for stripe planning
  uint64_t num_points = 0;
  {
    PointSet batch(d);
    for (;;) {
      DBSCOUT_ASSIGN_OR_RETURN(size_t got,
                               reader.ReadBatch(params.batch_points, &batch));
      if (got == 0) {
        break;
      }
      num_points += got;
      for (size_t i = 0; i < got; ++i) {
        const auto p = batch[i];
        CellCoord coord = CellCoord::Zero(d);
        for (size_t k = 0; k < d; ++k) {
          if (!std::isfinite(p[k])) {
            return Status::InvalidArgument("non-finite coordinate in input");
          }
          coord[k] = static_cast<int64_t>(std::floor(p[k] / side));
        }
        ++cell_counts[coord];
        ++slab_histogram[coord[0]];
      }
    }
  }
  recorder.Accumulate(phases::kPhaseGrid, phase_timer.ElapsedSeconds(), 0,
                      num_points);
  phase_timer.Reset();
  out.num_cells = cell_counts.size();
  for (const auto& [coord, count] : cell_counts) {
    out.num_dense_cells += phases::IsDense(count, min_pts);
  }
  recorder.Accumulate(phases::kPhaseDenseCellMap, phase_timer.ElapsedSeconds(),
                      0, out.num_cells);

  // ---- Stripe planning: contiguous slab ranges of bounded cardinality. --
  phase_timer.Reset();
  const std::vector<Stripe> stripes = grid::PlanStripes(
      slab_histogram, params.target_stripe_points, params.num_stripes);
  out.stripes = stripes.size();

  // ---- Pass 1: spill points to stripe files (owned range + halo). -------
  std::string tmp_dir = params.tmp_dir;
  if (tmp_dir.empty()) {
    const size_t slash = binary_path.find_last_of('/');
    tmp_dir = slash == std::string::npos ? "." : binary_path.substr(0, slash);
  }
  const uint64_t spill_token = NextSpillToken();
  std::vector<SpillWriter> writers(stripes.size());
  for (size_t s = 0; s < stripes.size(); ++s) {
    writers[s].path = StrFormat(
        "%s/dbscout_spill_%ld_%llu_%zu.tmp", tmp_dir.c_str(),
        static_cast<long>(::getpid()),
        static_cast<unsigned long long>(spill_token), s);
    writers[s].file.reset(std::fopen(writers[s].path.c_str(), "wb"));
    if (writers[s].file == nullptr) {
      return Status::IoError("cannot create spill file: " + writers[s].path);
    }
  }
  DBSCOUT_RETURN_IF_ERROR(reader.Rewind());
  {
    PointSet batch(d);
    uint32_t index = 0;
    for (;;) {
      DBSCOUT_ASSIGN_OR_RETURN(size_t got,
                               reader.ReadBatch(params.batch_points, &batch));
      if (got == 0) {
        break;
      }
      for (size_t i = 0; i < got; ++i, ++index) {
        const auto p = batch[i];
        const int64_t slab =
            static_cast<int64_t>(std::floor(p[0] / side));
        // The point belongs to every stripe whose halo-extended range
        // [slab_lo - halo, slab_hi + halo] contains its slab.
        const size_t begin = grid::FirstStripeAtOrAfter(stripes, slab - halo);
        for (size_t s = begin; s < stripes.size(); ++s) {
          if (stripes[s].slab_lo - halo > slab) {
            break;
          }
          DBSCOUT_RETURN_IF_ERROR(writers[s].Append(index, p));
          ++out.spilled_records;
        }
      }
    }
  }
  for (auto& writer : writers) {
    DBSCOUT_RETURN_IF_ERROR(writer.Flush());
    writer.file.reset();
  }
  recorder.Accumulate(phases::kPhaseGrid, phase_timer.ElapsedSeconds(), 0,
                      out.spilled_records);

  // ---- Pass 2: per-stripe phases 2-5 via the shared cell kernels. -------
  const double eps2 = params.eps * params.eps;
  const phases::BoundKernels kernels = phases::BindKernels(d);
  std::vector<uint32_t> scratch;
  for (size_t s = 0; s < stripes.size(); ++s) {
    // Load the stripe's spill file.
    phase_timer.Reset();
    FilePtr in(std::fopen(writers[s].path.c_str(), "rb"));
    if (in == nullptr) {
      return Status::IoError("cannot reopen spill file: " + writers[s].path);
    }
    PointSet local(d);
    std::vector<uint32_t> gids;
    const size_t record = sizeof(uint32_t) + d * sizeof(double);
    std::vector<char> chunk(record * 4096);
    std::vector<double> coords(d);
    for (;;) {
      const size_t got = std::fread(chunk.data(), record, 4096, in.get());
      for (size_t r = 0; r < got; ++r) {
        uint32_t index;
        std::memcpy(&index, chunk.data() + r * record, sizeof(uint32_t));
        std::memcpy(coords.data(), chunk.data() + r * record + sizeof(uint32_t),
                    d * sizeof(double));
        gids.push_back(index);
        local.Add(coords);
      }
      if (got < 4096) {
        break;
      }
    }
    in.reset();
    std::remove(writers[s].path.c_str());
    if (local.empty()) {
      continue;
    }
    out.max_stripe_points = std::max(out.max_stripe_points, local.size());

    DBSCOUT_ASSIGN_OR_RETURN(grid::Grid g, grid::Grid::Build(local, params.eps));
    const uint32_t num_cells = static_cast<uint32_t>(g.num_cells());
    recorder.Accumulate(phases::kPhaseGrid, phase_timer.ElapsedSeconds(), 0,
                        local.size());

    // Stripe-local dense map. A cell is *eligible* when its dim-0 slab lies
    // within the first halo ring [slab_lo - radius, slab_hi + radius]: the
    // spill carried 2*radius slabs, so every point of an eligible cell is
    // local and its local count equals its global count. Pure halo cells
    // keep cell_dense = cell_core = 0 — owned cells' stencil walks reach at
    // most `radius` slabs, never past the eligible ring, so no decision
    // ever reads a halo cell's (unresolved) status.
    phase_timer.Reset();
    const int64_t core_lo = stripes[s].slab_lo - radius;
    const int64_t core_hi = stripes[s].slab_hi + radius;
    std::vector<uint8_t> eligible(num_cells, 0);
    std::vector<uint8_t> owned(num_cells, 0);
    std::vector<uint8_t> cell_dense(num_cells, 0);
    for (uint32_t c = 0; c < num_cells; ++c) {
      const int64_t slab = g.CoordOf(c)[0];
      eligible[c] = slab >= core_lo && slab <= core_hi;
      owned[c] = slab >= stripes[s].slab_lo && slab <= stripes[s].slab_hi;
      cell_dense[c] = eligible[c] &&
                      phases::IsDense(g.CellSize(c), min_pts);
    }
    recorder.Accumulate(phases::kPhaseDenseCellMap,
                        phase_timer.ElapsedSeconds(), 0, num_cells);

    // Phase 3 for eligible cells (owned + first halo ring), through the
    // same cell kernel as the in-memory engines: SIMD batched counting
    // with capped early exit, one contiguous grid block per neighbor cell.
    phase_timer.Reset();
    std::vector<uint8_t> is_core(local.size(), 0);
    uint64_t distances = 0;
    for (uint32_t c = 0; c < num_cells; ++c) {
      if (!eligible[c]) {
        continue;  // pure halo cell: core status resolved by its own stripe
      }
      distances += phases::CoreScanCell(g, *stencil, kernels, eps2, min_pts,
                                        c, cell_dense.data(), is_core.data(),
                                        &scratch);
    }
    recorder.Accumulate(phases::kPhaseCorePoints, phase_timer.ElapsedSeconds(),
                        distances, local.size());

    // Phase 4: core-cell flags + flat CSR of sparse-cell core points (the
    // same packed layout the in-memory engines feed to the kernels).
    // Ineligible cells have no core flags, so they produce no entries.
    phase_timer.Reset();
    std::vector<uint8_t> cell_core(num_cells, 0);
    phases::SparseCoreCsr csr;
    phases::BuildSparseCoreCsr(g, cell_dense.data(), is_core.data(),
                               cell_core.data(), &csr);
    recorder.Accumulate(phases::kPhaseCoreCellMap, phase_timer.ElapsedSeconds(),
                        0, num_cells);

    // Phase 5: outlier decisions for owned cells only. Every neighbor of an
    // owned cell is eligible, so the O_ncn shortcut and the core-neighbor
    // scans see exact core flags.
    phase_timer.Reset();
    std::vector<core::PointKind> kinds(local.size(),
                                       core::PointKind::kBorder);
    distances = 0;
    for (uint32_t c = 0; c < num_cells; ++c) {
      if (!owned[c]) {
        continue;  // halo cell: owned by another stripe
      }
      distances += phases::OutlierScanCell(
          g, *stencil, kernels, eps2, /*scores=*/false, c, cell_dense.data(),
          cell_core.data(), is_core.data(), csr, kinds.data(),
          /*core_distance=*/nullptr, &scratch);
    }
    // Finalize the stripe's owned points (global ids; sorted at the end).
    for (uint32_t c = 0; c < num_cells; ++c) {
      if (!owned[c]) {
        continue;
      }
      for (uint32_t p : g.PointsInCell(c)) {
        if (is_core[p]) {
          ++out.num_core;
        } else if (kinds[p] == core::PointKind::kOutlier) {
          out.outliers.push_back(gids[p]);
        } else {
          ++out.num_border;
        }
      }
    }
    recorder.Accumulate(phases::kPhaseOutliers, phase_timer.ElapsedSeconds(),
                        distances, local.size());
  }
  std::sort(out.outliers.begin(), out.outliers.end());
  out.phases = recorder.Take();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace dbscout::external

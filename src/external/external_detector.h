#ifndef DBSCOUT_EXTERNAL_EXTERNAL_DETECTOR_H_
#define DBSCOUT_EXTERNAL_EXTERNAL_DETECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/detection.h"

namespace dbscout::obs {
class TraceCollector;
}  // namespace dbscout::obs

namespace dbscout::external {

/// Configuration of the out-of-core detector.
struct ExternalParams {
  double eps = 1.0;
  int min_pts = 5;
  /// Points per streaming read.
  size_t batch_points = 1 << 16;
  /// Soft cap on the points owned by one stripe — the memory knob. The
  /// working set of a stripe is its owned points plus the ghost halo.
  size_t target_stripe_points = 1 << 20;
  /// Overrides the stripe count computed from target_stripe_points (0 =
  /// automatic).
  size_t num_stripes = 0;
  /// Directory for spill files ("" = alongside the input file).
  std::string tmp_dir;

  /// When non-null, receives one span per phase visit — i.e. one span per
  /// stripe per phase, since the out-of-core engine revisits phases 2-5
  /// once per stripe. Not owned; must outlive the detection call.
  obs::TraceCollector* trace = nullptr;

  Status Validate() const;
};

/// Output of an out-of-core run. Point indices refer to positions in the
/// input file.
struct ExternalDetection {
  std::vector<uint32_t> outliers;  // ascending
  uint64_t num_core = 0;
  uint64_t num_border = 0;

  // Run statistics.
  size_t num_cells = 0;
  size_t num_dense_cells = 0;
  size_t stripes = 0;
  /// Records written to spill files (>= n; the excess is halo replication).
  uint64_t spilled_records = 0;
  /// Largest single-stripe working set (owned + halo points).
  size_t max_stripe_points = 0;
  /// Per-phase stats under the canonical core::phases names, accumulated
  /// across passes and stripes (a stripe revisits phases 2-5, so a row
  /// aggregates every visit).
  std::vector<core::PhaseStats> phases;
  double seconds = 0.0;

  size_t num_outliers() const { return outliers.size(); }
};

/// Exact DBSCOUT over a DBSC binary point file that may be far larger than
/// memory (the "billions of tuples" setting of the paper's introduction,
/// on one machine):
///
///  - pass 0 streams the file once and builds the global cell-count map
///    (memory: one entry per non-empty cell — the same broadcast structure
///    the distributed algorithm uses);
///  - the grid is split into contiguous stripes of cell-slabs along the
///    first dimension, sized so each stripe's points fit the memory budget
///    (slab histogram balancing, so skew cannot starve stripes);
///  - pass 1 streams the file again, spilling every point to its stripe
///    plus a ghost halo of 2*ceil(sqrt(d)) slabs on each side — wide
///    enough that both the core status of first-ring halo points and the
///    outlier status of owned points resolve locally;
///  - pass 2 loads one stripe at a time, runs phases 3-5 in memory against
///    the exact global dense-cell map, and emits the stripe's outliers.
///
/// The output is bit-identical to DetectSequential on the same data
/// (enforced by tests). Requires at most
/// O(#cells + max_stripe_points * (1 + halo)) memory.
Result<ExternalDetection> DetectExternal(const std::string& binary_path,
                                         const ExternalParams& params);

}  // namespace dbscout::external

#endif  // DBSCOUT_EXTERNAL_EXTERNAL_DETECTOR_H_

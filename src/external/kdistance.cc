#include "external/kdistance.h"

#include <cmath>

#include "common/rng.h"
#include "data/point_stream.h"

namespace dbscout::external {

double SampledKDistance::SamplingInflation(size_t dims) const {
  if (sample_size == 0 || total_points <= sample_size || dims == 0) {
    return 1.0;
  }
  return std::pow(static_cast<double>(total_points) /
                      static_cast<double>(sample_size),
                  1.0 / static_cast<double>(dims));
}

Result<SampledKDistance> SampleKDistance(const std::string& binary_path,
                                         int k, size_t sample_size,
                                         uint64_t seed, size_t batch_points) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (sample_size < static_cast<size_t>(k) + 1) {
    return Status::InvalidArgument("sample_size must exceed k");
  }
  if (batch_points == 0) {
    return Status::InvalidArgument("batch_points must be >= 1");
  }
  DBSCOUT_ASSIGN_OR_RETURN(PointFileReader reader,
                           PointFileReader::Open(binary_path));

  // Algorithm R reservoir over the stream.
  PointSet reservoir(reader.dims());
  reservoir.Reserve(std::min<uint64_t>(sample_size, reader.num_points()));
  Rng rng(seed);
  PointSet batch(reader.dims());
  uint64_t seen = 0;
  for (;;) {
    DBSCOUT_ASSIGN_OR_RETURN(size_t got,
                             reader.ReadBatch(batch_points, &batch));
    if (got == 0) {
      break;
    }
    for (size_t i = 0; i < got; ++i, ++seen) {
      if (reservoir.size() < sample_size) {
        reservoir.Add(batch[i]);
      } else {
        const uint64_t j = rng.NextBounded(seen + 1);
        if (j < sample_size) {
          for (size_t d = 0; d < reservoir.dims(); ++d) {
            reservoir.at(static_cast<size_t>(j), d) = batch[i][d];
          }
        }
      }
    }
  }
  if (reservoir.size() < static_cast<size_t>(k) + 1) {
    return Status::FailedPrecondition("file has fewer points than k+1");
  }
  SampledKDistance out;
  out.total_points = seen;
  out.sample_size = reservoir.size();
  DBSCOUT_ASSIGN_OR_RETURN(out.curve,
                           analysis::ComputeKDistance(reservoir, k));
  return out;
}

}  // namespace dbscout::external

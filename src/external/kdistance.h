#ifndef DBSCOUT_EXTERNAL_KDISTANCE_H_
#define DBSCOUT_EXTERNAL_KDISTANCE_H_

#include <cstdint>
#include <string>

#include "analysis/kdistance.h"
#include "common/result.h"

namespace dbscout::external {

/// Parameter selection at out-of-core scale: streams a DBSC binary point
/// file once, draws a uniform reservoir sample of `sample_size` points,
/// and computes the k-distance curve *within the sample*.
///
/// Bias note: k-th-neighbor distances inside an m-point sample of an
/// n-point dataset approximate the (k*n/m)-th-neighbor distances of the
/// full data, i.e. the curve (and the suggested eps) is shifted up by
/// roughly (n/m)^(1/d) for locally uniform data. The *shape* — and hence
/// the elbow — is preserved, which is what the selection recipe needs;
/// treat the suggested eps as an upper estimate and sweep downward from
/// it. The returned curve reports the sampling ratio applied.
struct SampledKDistance {
  analysis::KDistanceCurve curve;
  uint64_t total_points = 0;
  size_t sample_size = 0;

  /// (n/m)^(1/d): multiply distances down by this to correct the sampling
  /// shift under a locally-uniform assumption.
  double SamplingInflation(size_t dims) const;
};

Result<SampledKDistance> SampleKDistance(const std::string& binary_path,
                                         int k, size_t sample_size,
                                         uint64_t seed = 1,
                                         size_t batch_points = 1 << 16);

}  // namespace dbscout::external

#endif  // DBSCOUT_EXTERNAL_KDISTANCE_H_

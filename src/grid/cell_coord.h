#ifndef DBSCOUT_GRID_CELL_COORD_H_
#define DBSCOUT_GRID_CELL_COORD_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <span>

#include "data/point_set.h"

namespace dbscout::grid {

/// Integer coordinates of one epsilon-cell (Definition 4): the vertex with
/// minimum values, scaled by the cell side length l = eps / sqrt(d).
/// Fixed inline capacity (kMaxDims) keeps coordinates allocation-free; they
/// are hash-map keys on the hottest paths of the algorithm.
class CellCoord {
 public:
  CellCoord() : dims_(0) { values_.fill(0); }

  explicit CellCoord(std::span<const int64_t> values)
      : dims_(static_cast<uint8_t>(values.size())) {
    values_.fill(0);
    for (size_t i = 0; i < values.size(); ++i) {
      values_[i] = values[i];
    }
  }

  /// Creates a zeroed coordinate of the given dimensionality.
  static CellCoord Zero(size_t dims) {
    CellCoord c;
    c.dims_ = static_cast<uint8_t>(dims);
    return c;
  }

  size_t dims() const { return dims_; }
  int64_t operator[](size_t i) const { return values_[i]; }
  int64_t& operator[](size_t i) { return values_[i]; }

  /// This coordinate translated by `offset` (same dims).
  CellCoord Translated(std::span<const int16_t> offset) const {
    CellCoord out = *this;
    for (size_t i = 0; i < dims_; ++i) {
      out.values_[i] += offset[i];
    }
    return out;
  }

  friend bool operator==(const CellCoord& a, const CellCoord& b) {
    if (a.dims_ != b.dims_) return false;
    for (size_t i = 0; i < a.dims_; ++i) {
      if (a.values_[i] != b.values_[i]) return false;
    }
    return true;
  }

  friend bool operator<(const CellCoord& a, const CellCoord& b) {
    if (a.dims_ != b.dims_) return a.dims_ < b.dims_;
    for (size_t i = 0; i < a.dims_; ++i) {
      if (a.values_[i] != b.values_[i]) return a.values_[i] < b.values_[i];
    }
    return false;
  }

  /// 64-bit mix of all coordinates; used by CellCoordHash.
  uint64_t Hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ dims_;
    for (size_t i = 0; i < dims_; ++i) {
      uint64_t x = static_cast<uint64_t>(values_[i]);
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      h = (h ^ x) * 0xc4ceb9fe1a85ec53ULL;
    }
    return h ^ (h >> 29);
  }

 private:
  std::array<int64_t, kMaxDims> values_;
  uint8_t dims_;
};

struct CellCoordHash {
  size_t operator()(const CellCoord& c) const {
    return static_cast<size_t>(c.Hash());
  }
};

inline std::ostream& operator<<(std::ostream& os, const CellCoord& c) {
  os << '(';
  for (size_t i = 0; i < c.dims(); ++i) {
    if (i != 0) os << ',';
    os << c[i];
  }
  return os << ')';
}

}  // namespace dbscout::grid

#endif  // DBSCOUT_GRID_CELL_COORD_H_

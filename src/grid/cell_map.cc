#include "grid/cell_map.h"

namespace dbscout::grid {

void CellMap::MarkCore(const CellCoord& coord) {
  CellInfo& info = cells_[coord];
  if (info.type < CellType::kCore) {
    info.type = CellType::kCore;
  }
}

bool CellMap::HasCoreNeighbor(const CellCoord& coord,
                              const NeighborStencil& stencil) const {
  for (const CellOffset& offset : stencil.offsets) {
    const CellCoord neighbor = coord.Translated({offset.data(), coord.dims()});
    if (auto it = cells_.find(neighbor);
        it != cells_.end() && it->second.type >= CellType::kCore) {
      return true;
    }
  }
  return false;
}

size_t CellMap::CountByType(CellType type) const {
  size_t count = 0;
  for (const auto& [coord, info] : cells_) {
    if (info.type == type) {
      ++count;
    }
  }
  return count;
}

}  // namespace dbscout::grid

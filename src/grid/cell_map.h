#ifndef DBSCOUT_GRID_CELL_MAP_H_
#define DBSCOUT_GRID_CELL_MAP_H_

#include <cstdint>
#include <unordered_map>

#include "grid/cell_coord.h"
#include "grid/grid.h"
#include "grid/neighborhood.h"

namespace dbscout::grid {

/// Classification of a non-empty cell (Definitions 6 and 7). A dense cell is
/// always also core, so the three states form a ladder:
/// kOther < kCore < kDense.
enum class CellType : uint8_t {
  kOther = 0,  // non-empty, not known to contain a core point
  kCore = 1,   // contains at least one core point
  kDense = 2,  // contains >= minPts points (every point is core, Lemma 1)
};

/// The broadcastable "cell map" of Algorithms 2 and 4: per-cell point counts
/// and dense/core classification, keyed by cell coordinates. In the parallel
/// implementation this structure is what gets broadcast to every executor;
/// it is deliberately independent of the Grid's CSR arrays so its memory
/// footprint is a small fraction of the dataset's.
class CellMap {
 public:
  CellMap() = default;

  /// Inserts (or overwrites) one cell with the given point count and dense
  /// classification. The density decision itself (Lemma 1) is not made
  /// here — it lives in core::phases::IsDense and callers pass its verdict
  /// in, so this structure stays free of threshold logic.
  void Insert(const CellCoord& coord, uint32_t count, bool dense) {
    CellInfo info;
    info.count = count;
    info.type = dense ? CellType::kDense : CellType::kOther;
    cells_[coord] = info;
  }

  size_t size() const { return cells_.size(); }

  /// kOther for empty (absent) cells.
  CellType TypeOf(const CellCoord& coord) const {
    auto it = cells_.find(coord);
    return it == cells_.end() ? CellType::kOther : it->second.type;
  }

  /// 0 for empty cells.
  uint32_t CountOf(const CellCoord& coord) const {
    auto it = cells_.find(coord);
    return it == cells_.end() ? 0 : it->second.count;
  }

  bool Contains(const CellCoord& coord) const {
    return cells_.find(coord) != cells_.end();
  }

  /// Upgrades a cell to kCore (Algorithm 4); dense cells stay kDense. Absent
  /// cells are inserted with count 0 (does not happen in the algorithm but
  /// keeps the structure total).
  void MarkCore(const CellCoord& coord);

  /// True when the cell at `coord` is core or dense.
  bool IsCoreCell(const CellCoord& coord) const {
    return TypeOf(coord) >= CellType::kCore;
  }

  /// True when any neighbor of `coord` (itself included) is a core cell.
  bool HasCoreNeighbor(const CellCoord& coord,
                       const NeighborStencil& stencil) const;

  /// Invokes fn(coord, type, count) for every non-empty neighbor of `coord`
  /// (itself included).
  template <typename Fn>
  void ForEachNonEmptyNeighbor(const CellCoord& coord,
                               const NeighborStencil& stencil, Fn&& fn) const {
    for (const CellOffset& offset : stencil.offsets) {
      const CellCoord neighbor = coord.Translated({offset.data(), coord.dims()});
      if (auto it = cells_.find(neighbor); it != cells_.end()) {
        fn(neighbor, it->second.type, it->second.count);
      }
    }
  }

  /// Number of cells with the given type.
  size_t CountByType(CellType type) const;

 private:
  struct CellInfo {
    uint32_t count = 0;
    CellType type = CellType::kOther;
  };
  std::unordered_map<CellCoord, CellInfo, CellCoordHash> cells_;
};

}  // namespace dbscout::grid

#endif  // DBSCOUT_GRID_CELL_MAP_H_

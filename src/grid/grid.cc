#include "grid/grid.h"

#include <cmath>

#include "common/str_util.h"

namespace dbscout::grid {
namespace {

// Largest |cell index| we accept; beyond this, translating by a stencil
// offset could overflow int64.
constexpr double kMaxCellIndex = 4.0e18;

}  // namespace

CellCoord Grid::CellOf(std::span<const double> point) const {
  CellCoord coord = CellCoord::Zero(dims_);
  for (size_t i = 0; i < dims_; ++i) {
    coord[i] = static_cast<int64_t>(std::floor(point[i] / side_));
  }
  return coord;
}

std::optional<uint32_t> Grid::FindCell(const CellCoord& coord) const {
  if (auto it = cell_ids_.find(coord); it != cell_ids_.end()) {
    return it->second;
  }
  return std::nullopt;
}

Result<Grid> Grid::Build(const PointSet& points, double eps) {
  if (!(eps > 0.0) || !std::isfinite(eps)) {
    return Status::InvalidArgument(StrFormat("eps must be positive, got %g",
                                             eps));
  }
  if (points.dims() < 1 || points.dims() > kMaxDims) {
    return Status::InvalidArgument(
        StrFormat("dims=%zu out of supported range [1, %zu]", points.dims(),
                  kMaxDims));
  }
  Grid grid(points.dims(), eps);
  const size_t n = points.size();
  const size_t d = points.dims();
  grid.point_cell_.resize(n);
  grid.cell_ids_.reserve(n / 4 + 16);

  // Pass 1: assign cell ids and count cell sizes.
  std::vector<uint32_t> cell_sizes;
  for (size_t i = 0; i < n; ++i) {
    const auto p = points[i];
    CellCoord coord = CellCoord::Zero(d);
    for (size_t k = 0; k < d; ++k) {
      const double v = p[k];
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StrFormat("point %zu has non-finite coordinate %zu", i, k));
      }
      const double scaled = std::floor(v / grid.side_);
      if (std::abs(scaled) > kMaxCellIndex) {
        return Status::OutOfRange(
            StrFormat("point %zu: cell index overflow (|%g / %g| too large)",
                      i, v, grid.side_));
      }
      coord[k] = static_cast<int64_t>(scaled);
    }
    auto [it, inserted] = grid.cell_ids_.try_emplace(
        coord, static_cast<uint32_t>(grid.cell_coords_.size()));
    if (inserted) {
      grid.cell_coords_.push_back(coord);
      cell_sizes.push_back(0);
    }
    grid.point_cell_[i] = it->second;
    ++cell_sizes[it->second];
  }

  // Pass 2: counting sort of point indices by cell id, materializing the
  // grid-ordered coordinate copy (cell c's points contiguous, row-major)
  // and the old<->new index maps alongside.
  const size_t num_cells = grid.cell_coords_.size();
  grid.cell_begin_.assign(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    grid.cell_begin_[c + 1] = grid.cell_begin_[c] + cell_sizes[c];
  }
  grid.point_indices_.resize(n);
  grid.point_row_.resize(n);
  grid.ordered_points_.resize(n * d);
  std::vector<uint32_t> cursor(grid.cell_begin_.begin(),
                               grid.cell_begin_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = cursor[grid.point_cell_[i]]++;
    grid.point_indices_[row] = static_cast<uint32_t>(i);
    grid.point_row_[i] = row;
    const auto p = points[i];
    double* dst = grid.ordered_points_.data() + static_cast<size_t>(row) * d;
    for (size_t k = 0; k < d; ++k) {
      dst[k] = p[k];
    }
  }
  return grid;
}

}  // namespace dbscout::grid

#ifndef DBSCOUT_GRID_GRID_H_
#define DBSCOUT_GRID_GRID_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"
#include "grid/cell_coord.h"
#include "grid/neighborhood.h"

namespace dbscout::grid {

/// The non-empty cells of the epsilon-grid over a point set (Definition 5),
/// stored in CSR layout: point indices grouped by cell id, with one offset
/// array. Construction is linear in the number of points (Lemma 4): a single
/// pass assigns ids to distinct cells, a counting pass groups the points.
///
/// Build also materializes a grid-ordered copy of the point coordinates:
/// cell c's points occupy one contiguous row-major block (rows
/// [CellBeginRow(c), CellBeginRow(c+1)) of OrderedData()), with old<->new
/// index maps. Neighbor-cell scans over CellBlock() are linear streams the
/// batched distance kernels (simd/distance_kernel.h) can consume, instead
/// of gathers scattered across the original PointSet.
class Grid {
 public:
  /// Builds the grid for `points` with cell diagonal `eps` (side
  /// eps/sqrt(d)). Fails on eps <= 0, non-finite coordinates, dims >
  /// kMaxDims, or coordinates so large that cell indices would overflow.
  static Result<Grid> Build(const PointSet& points, double eps);

  size_t dims() const { return dims_; }
  double eps() const { return eps_; }
  /// Cell side length l = eps / sqrt(d).
  double side() const { return side_; }
  size_t num_cells() const { return cell_coords_.size(); }
  size_t num_points() const { return point_cell_.size(); }

  /// Integer coordinates of the cell containing `point` (Algorithm 1:
  /// floor(x_i * sqrt(d) / eps) per dimension).
  CellCoord CellOf(std::span<const double> point) const;

  /// Coordinates of cell `id`.
  const CellCoord& CoordOf(uint32_t id) const { return cell_coords_[id]; }

  /// Id of the non-empty cell at `coord`, if any.
  std::optional<uint32_t> FindCell(const CellCoord& coord) const;

  /// Indices (into the original PointSet) of the points in cell `id`.
  std::span<const uint32_t> PointsInCell(uint32_t id) const {
    return {point_indices_.data() + cell_begin_[id],
            cell_begin_[id + 1] - cell_begin_[id]};
  }

  size_t CellSize(uint32_t id) const {
    return cell_begin_[id + 1] - cell_begin_[id];
  }

  /// Cell id of point `point_index`.
  uint32_t CellIdOfPoint(uint32_t point_index) const {
    return point_cell_[point_index];
  }

  /// First grid-ordered row of cell `id`; the cell's block spans rows
  /// [CellBeginRow(id), CellBeginRow(id+1)).
  uint32_t CellBeginRow(uint32_t id) const { return cell_begin_[id]; }

  /// Contiguous row-major coordinates of cell `id`'s points (CellSize(id)
  /// rows of dims() doubles), aligned with PointsInCell(id).
  const double* CellBlock(uint32_t id) const {
    return ordered_points_.data() +
           static_cast<size_t>(cell_begin_[id]) * dims_;
  }

  /// All point coordinates permuted into CSR cell order.
  std::span<const double> OrderedData() const { return ordered_points_; }

  /// Coordinates of grid-ordered row `row`.
  std::span<const double> OrderedPoint(uint32_t row) const {
    return {ordered_points_.data() + static_cast<size_t>(row) * dims_, dims_};
  }

  /// Original PointSet index of grid-ordered row `row` (the inverse of
  /// OrderedRow; rows within a cell keep ascending original order).
  uint32_t OriginalIndex(uint32_t row) const { return point_indices_[row]; }

  /// Grid-ordered row of original point `point_index`.
  uint32_t OrderedRow(uint32_t point_index) const {
    return point_row_[point_index];
  }

  /// Invokes fn(neighbor_cell_id) for every non-empty neighboring cell of
  /// `id`, including `id` itself. The stencil has k_d entries, so this is
  /// O(k_d) hash probes.
  template <typename Fn>
  void ForEachNeighborCell(uint32_t id, const NeighborStencil& stencil,
                           Fn&& fn) const {
    const CellCoord& base = cell_coords_[id];
    for (const CellOffset& offset : stencil.offsets) {
      const CellCoord neighbor =
          base.Translated({offset.data(), dims_});
      if (auto it = cell_ids_.find(neighbor); it != cell_ids_.end()) {
        fn(it->second);
      }
    }
  }

 private:
  Grid(size_t dims, double eps)
      : dims_(dims),
        eps_(eps),
        side_(eps / std::sqrt(static_cast<double>(dims))) {}

  size_t dims_;
  double eps_;
  double side_;
  std::vector<CellCoord> cell_coords_;
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> cell_ids_;
  std::vector<uint32_t> cell_begin_;     // size num_cells()+1
  std::vector<uint32_t> point_indices_;  // grouped by cell (row -> original)
  std::vector<uint32_t> point_cell_;     // point index -> cell id
  std::vector<uint32_t> point_row_;      // original -> grid-ordered row
  std::vector<double> ordered_points_;   // coordinates in CSR cell order
};

}  // namespace dbscout::grid

#endif  // DBSCOUT_GRID_GRID_H_

#include "grid/neighborhood.h"

#include <cmath>
#include <memory>

#include "common/str_util.h"
#include "common/thread_annotations.h"
#include "grid/regions.h"

namespace dbscout::grid {
namespace {

/// Recursively enumerates offsets dimension by dimension, pruning once the
/// accumulated gap already reaches d. `gap` carries sum max(0,|j_i|-1)^2 for
/// the dimensions fixed so far.
void Enumerate(size_t dims, size_t dim, int64_t radius, int64_t gap,
               CellOffset* current, std::vector<CellOffset>* out,
               uint64_t* count) {
  if (dim == dims) {
    if (out != nullptr) {
      out->push_back(*current);
    }
    ++*count;
    return;
  }
  for (int64_t j = -radius; j <= radius; ++j) {
    const int64_t extra =
        j == 0 ? 0 : (std::abs(j) - 1) * (std::abs(j) - 1);
    if (gap + extra >= static_cast<int64_t>(dims)) {
      continue;  // Minimum inter-cell distance already >= eps.
    }
    if (current != nullptr) {
      (*current)[dim] = static_cast<int16_t>(j);
    }
    Enumerate(dims, dim + 1, radius, gap + extra, current, out, count);
  }
}

Status ValidateDims(size_t dims) {
  if (dims < 1 || dims > kMaxDims) {
    return Status::InvalidArgument(
        StrFormat("dims=%zu out of supported range [1, %zu]", dims, kMaxDims));
  }
  return Status::OK();
}

}  // namespace

Result<const NeighborStencil*> GetNeighborStencil(size_t dims) {
  DBSCOUT_RETURN_IF_ERROR(ValidateDims(dims));
  static Mutex mu;
  static std::array<std::unique_ptr<NeighborStencil>, kMaxDims + 1>* cache =
      new std::array<std::unique_ptr<NeighborStencil>, kMaxDims + 1>();
  MutexLock lock(mu);
  auto& slot = (*cache)[dims];
  if (slot == nullptr) {
    auto stencil = std::make_unique<NeighborStencil>();
    stencil->dims = dims;
    CellOffset current{};
    uint64_t count = 0;
    Enumerate(dims, 0, SlabReach(dims), 0, &current, &stencil->offsets,
              &count);
    slot = std::move(stencil);
  }
  return slot.get();
}

Result<uint64_t> CountNeighborOffsets(size_t dims) {
  DBSCOUT_RETURN_IF_ERROR(ValidateDims(dims));
  uint64_t count = 0;
  Enumerate(dims, 0, SlabReach(dims), 0, nullptr, nullptr, &count);
  return count;
}

uint64_t NeighborUpperBound(size_t dims) {
  const uint64_t base = static_cast<uint64_t>(2 * SlabReach(dims) + 1);
  uint64_t result = 1;
  for (size_t i = 0; i < dims; ++i) {
    result *= base;
  }
  return result;
}

}  // namespace dbscout::grid

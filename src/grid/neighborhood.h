#ifndef DBSCOUT_GRID_NEIGHBORHOOD_H_
#define DBSCOUT_GRID_NEIGHBORHOOD_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::grid {

/// One relative cell offset in up to kMaxDims dimensions. int16 is ample:
/// offsets range over [-ceil(sqrt(d)), +ceil(sqrt(d))], at most ±3 for d<=9.
using CellOffset = std::array<int16_t, kMaxDims>;

/// The precomputed neighborhood stencil for one dimensionality d: the k_d
/// relative offsets j such that two cells displaced by j can contain a pair
/// of points at distance < eps (Definition 8). A cell is always its own
/// neighbor (offset 0 is included).
///
/// Geometry: cells have side l = eps/sqrt(d); the minimum distance between a
/// cell and the cell displaced by j is l * sqrt(sum_i max(0,|j_i|-1)^2), so
/// the neighbor condition is   sum_i max(0,|j_i|-1)^2 < d.
struct NeighborStencil {
  size_t dims = 0;
  std::vector<CellOffset> offsets;

  /// k_d, the neighbor-cell constant (Table I).
  size_t size() const { return offsets.size(); }
};

/// Returns the stencil for d in [1, kMaxDims]; computed once per d and
/// cached for the lifetime of the process.
Result<const NeighborStencil*> GetNeighborStencil(size_t dims);

/// Counts k_d without materializing the offsets (used for Table I at high d,
/// where k_9 is ~8.1M offsets).
Result<uint64_t> CountNeighborOffsets(size_t dims);

/// The loose upper bound of Lemma 3: (2*ceil(sqrt(d)) + 1)^d.
uint64_t NeighborUpperBound(size_t dims);

}  // namespace dbscout::grid

#endif  // DBSCOUT_GRID_NEIGHBORHOOD_H_

#include "grid/partition.h"

#include <limits>

namespace dbscout::grid {

RegionPlan RegionPlan::Build(
    const std::map<int64_t, uint64_t>& slab_histogram, size_t num_regions,
    size_t dims) {
  RegionPlan plan;
  plan.halo_ = HaloSlabs(dims);
  if (num_regions == 0) {
    num_regions = 1;
  }
  if (slab_histogram.empty()) {
    return plan;
  }
  // Adaptive greedy with a hard region cap. PlanStripes' fixed-target
  // greedy may emit MORE stripes than requested (each early stripe stops
  // short of the target, pushing the excess into extra stripes), which
  // would be fatal here: RegionOf indexes shard arrays sized num_regions.
  // Instead each stripe targets remaining/remaining_regions — re-balanced
  // as stripes close — and the last permitted stripe absorbs the rest, so
  // the plan never exceeds num_regions.
  uint64_t remaining = 0;
  for (const auto& [slab, count] : slab_histogram) {
    remaining += count;
  }
  size_t remaining_regions = num_regions;
  Stripe current;
  current.slab_lo = slab_histogram.begin()->first;
  uint64_t filled = 0;
  int64_t last_slab = current.slab_lo;
  for (const auto& [slab, count] : slab_histogram) {
    const uint64_t target =
        (remaining + remaining_regions - 1) / remaining_regions;
    if (filled > 0 && remaining_regions > 1 && filled + count > target) {
      current.slab_hi = last_slab;
      plan.stripes_.push_back(current);
      current.slab_lo = slab;
      remaining -= filled;
      filled = 0;
      --remaining_regions;
    }
    filled += count;
    last_slab = slab;
  }
  current.slab_hi = last_slab;
  plan.stripes_.push_back(current);
  return plan;
}

RegionPlan RegionPlan::FromStripes(std::vector<Stripe> stripes,
                                   int64_t halo) {
  RegionPlan plan;
  plan.stripes_ = std::move(stripes);
  plan.halo_ = halo;
  return plan;
}

size_t RegionPlan::RegionOf(int64_t slab) const {
  const size_t r = FirstStripeAtOrAfter(stripes_, slab);
  return r < stripes_.size() ? r : stripes_.size() - 1;
}

int64_t RegionPlan::OwnedLo(size_t r) const {
  return r == 0 ? std::numeric_limits<int64_t>::min()
                : stripes_[r - 1].slab_hi + 1;
}

int64_t RegionPlan::OwnedHi(size_t r) const {
  return r + 1 == stripes_.size() ? std::numeric_limits<int64_t>::max()
                                  : stripes_[r].slab_hi;
}

void RegionPlan::CoveringRegions(int64_t slab,
                                 std::vector<size_t>* out) const {
  const size_t home = RegionOf(slab);
  out->push_back(home);
  // Slab magnitudes come from finite coordinates over a positive cell
  // side, far from the int64 edges, so the +/- halo arithmetic is safe;
  // the end regions' infinite bounds are handled explicitly.
  for (size_t r = 0; r < stripes_.size(); ++r) {
    if (r == home) {
      continue;
    }
    const int64_t lo = OwnedLo(r);
    const int64_t hi = OwnedHi(r);
    const bool above_lo =
        lo == std::numeric_limits<int64_t>::min() || slab >= lo - halo_;
    const bool below_hi =
        hi == std::numeric_limits<int64_t>::max() || slab <= hi + halo_;
    if (above_lo && below_hi) {
      out->push_back(r);
    }
  }
}

}  // namespace dbscout::grid

#ifndef DBSCOUT_GRID_PARTITION_H_
#define DBSCOUT_GRID_PARTITION_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "grid/regions.h"

namespace dbscout::grid {

/// A fixed partition of cell space into contiguous dim-0 slab regions —
/// the shared region math behind the external engine's spill stripes and
/// the service's detector shards. Regions are planned once from a slab
/// histogram (capped greedy load balancing) and never change; region 0
/// conceptually extends to -inf and the last region to +inf, so every
/// slab — including ones never seen at plan time — has exactly one home
/// region.
///
/// Exactness contract (the same ghost-zone argument as the external
/// engine, DESIGN.md): a partition participant that holds every point
/// within HaloSlabs(d) = 2*ceil(sqrt(d)) slabs of its owned range can
/// label its owned points exactly. Owned labels need ring-1 presence and
/// ring-1 core status; ring-1 core status needs ring-2 presence; ring-2
/// core status is never consulted. CoveringRegions() enumerates, for one
/// slab, every region whose halo-extended range contains it — i.e. every
/// region that must hold a replica of a point homed in that slab.
///
/// This header is routing hot path (called per ingested point by the
/// service's scatter loop): keep it silent and wait-free.
class RegionPlan {
 public:
  RegionPlan() = default;

  /// Plans at most `num_regions` regions balanced over `slab_histogram`
  /// (adaptive greedy accumulation with a hard cap — never more regions
  /// than requested, fewer when the histogram has fewer populated slabs).
  /// An empty histogram yields an empty, invalid plan (num_regions() == 0).
  static RegionPlan Build(const std::map<int64_t, uint64_t>& slab_histogram,
                          size_t num_regions, size_t dims);

  /// Rehydrates a previously planned partition from its recorded stripes
  /// and halo (the storage layer's WAL/snapshot plan records). Replaying a
  /// sharded collection must route points to the same regions the live run
  /// did, and the live plan was built from the first *coalesced* batch —
  /// a histogram replay cannot reconstruct — so the plan itself is what
  /// gets persisted.
  static RegionPlan FromStripes(std::vector<Stripe> stripes, int64_t halo);

  size_t num_regions() const { return stripes_.size(); }
  bool empty() const { return stripes_.empty(); }
  int64_t halo() const { return halo_; }
  const std::vector<Stripe>& stripes() const { return stripes_; }

  /// The region owning `slab`. Slabs below the planned range belong to
  /// region 0, above it to the last region; slabs in inter-stripe gaps
  /// (unpopulated at plan time) belong to the next region up.
  size_t RegionOf(int64_t slab) const;

  /// Appends to *out every region that must hold a point homed in `slab`:
  /// the home region plus every region whose halo-extended owned range
  /// covers the slab. Home is always first; out is not cleared.
  void CoveringRegions(int64_t slab, std::vector<size_t>* out) const;

 private:
  /// Effective owned bounds of region r: gaps between stripes are owned
  /// by the stripe above them (matching RegionOf), and the end regions
  /// extend to +/-inf.
  int64_t OwnedLo(size_t r) const;
  int64_t OwnedHi(size_t r) const;

  std::vector<Stripe> stripes_;
  int64_t halo_ = 0;
};

/// Dim-0 slab of a point coordinate: the same floor(p[0] / side) every
/// grid engine uses, with side = eps / sqrt(d).
inline int64_t SlabOfCoord(double x0, double side) {
  return static_cast<int64_t>(std::floor(x0 / side));
}

}  // namespace dbscout::grid

#endif  // DBSCOUT_GRID_PARTITION_H_

#include "grid/regions.h"

#include <algorithm>

namespace dbscout::grid {

std::vector<Stripe> PlanStripes(
    const std::map<int64_t, uint64_t>& slab_histogram, uint64_t target,
    uint64_t num_stripes) {
  std::vector<Stripe> stripes;
  if (slab_histogram.empty()) {
    return stripes;
  }
  if (num_stripes > 0) {
    uint64_t total = 0;
    for (const auto& [slab, count] : slab_histogram) {
      total += count;
    }
    target = std::max<uint64_t>(1, total / num_stripes);
  }
  Stripe current;
  current.slab_lo = slab_histogram.begin()->first;
  uint64_t filled = 0;
  int64_t last_slab = current.slab_lo;
  for (const auto& [slab, count] : slab_histogram) {
    if (filled > 0 && filled + count > target) {
      current.slab_hi = last_slab;
      stripes.push_back(current);
      current.slab_lo = slab;
      filled = 0;
    }
    filled += count;
    last_slab = slab;
  }
  current.slab_hi = last_slab;
  stripes.push_back(current);
  return stripes;
}

size_t FirstStripeAtOrAfter(std::span<const Stripe> stripes, int64_t slab) {
  size_t lo = 0;
  size_t hi = stripes.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (stripes[mid].slab_hi < slab) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace dbscout::grid

#ifndef DBSCOUT_GRID_REGIONS_H_
#define DBSCOUT_GRID_REGIONS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace dbscout::grid {

/// Region math shared by the engines that partition cell space along
/// dimension 0: the external (out-of-core) engine stripes its spill files
/// by dim-0 cell slab, and the incremental engine's sharded apply pipeline
/// colors slab blocks into non-conflicting waves. Both rely on the same
/// geometric fact: with cell side eps/sqrt(d), a point's eps-neighborhood
/// spans at most SlabReach(d) slabs in each direction along dim 0
/// (the stencil offsets range over [-ceil(sqrt(d)), +ceil(sqrt(d))]).

/// Contiguous range of dim-0 cell-slabs owned by one stripe.
struct Stripe {
  int64_t slab_lo = 0;
  int64_t slab_hi = 0;  // inclusive
};

/// Maximum dim-0 stencil offset, in slabs: ceil(sqrt(d)).
inline int64_t SlabReach(size_t dims) {
  return static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(dims))));
}

/// Slabs of context a partition needs on each side so that every point
/// whose label depends on the partition's owned cells — including
/// second-order effects (a core decision in the first halo ring) — is
/// present locally: two stencil reaches. This is THE halo width of the
/// codebase; the external engine's spill ghost zones, the incremental
/// engine's slab-block width, and the service's detector-shard replicas
/// all use it.
inline int64_t HaloSlabs(size_t dims) { return 2 * SlabReach(dims); }

/// Greedy stripe planning over an ordered dim-0 slab histogram: accumulate
/// consecutive slabs until adding the next would exceed `target` points,
/// then start a new stripe. When `num_stripes` > 0 it overrides `target`
/// with total/num_stripes. Returns stripes sorted by slab, contiguous over
/// the histogram's populated range; empty when the histogram is empty.
std::vector<Stripe> PlanStripes(
    const std::map<int64_t, uint64_t>& slab_histogram, uint64_t target,
    uint64_t num_stripes);

/// Index of the first stripe whose slab_hi >= slab (stripes sorted by
/// slab); stripes.size() when none. Binary search.
size_t FirstStripeAtOrAfter(std::span<const Stripe> stripes, int64_t slab);

/// Fixed-width slab blocks for the incremental engine's sharded apply.
/// Block b owns slabs [b*width, (b+1)*width); floor division so negative
/// slabs block correctly.
inline int64_t SlabBlock(int64_t slab, int64_t width) {
  const int64_t q = slab / width;
  return (slab % width != 0 && (slab < 0) != (width < 0)) ? q - 1 : q;
}

/// Wave color for a slab block. With block width >= HaloSlabs(d), a task
/// processing points homed in block b writes state only in blocks
/// [b-1, b+1] (insert scans reach SlabReach slabs; promotion rescues reach
/// another SlabReach), so two tasks conflict only when their blocks are
/// within 2 of each other. Three colors make same-color blocks >= 3 apart:
/// conflict-free, so each wave's tasks can run concurrently.
inline constexpr int kNumWaves = 3;
inline int WaveOf(int64_t block) {
  return static_cast<int>(((block % kNumWaves) + kNumWaves) % kNumWaves);
}

}  // namespace dbscout::grid

#endif  // DBSCOUT_GRID_REGIONS_H_

#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "simd/distance_kernel.h"

namespace dbscout::index {
namespace {

double SquaredDistanceTo(const PointSet& points, uint32_t index,
                         std::span<const double> query) {
  return PointSet::SquaredDistance(points[index], query);
}

}  // namespace

KdTree KdTree::Build(const PointSet& points) {
  KdTree tree(&points);
  tree.order_.resize(points.size());
  std::iota(tree.order_.begin(), tree.order_.end(), 0u);
  if (!points.empty()) {
    tree.nodes_.reserve(2 * points.size() / kLeafSize + 2);
    tree.BuildNode(0, static_cast<uint32_t>(points.size()));
    // Materialize the leaf-ordered coordinate copy once order_ is final,
    // so every leaf's points form one contiguous row-major block.
    const size_t d = points.dims();
    tree.leaf_coords_.resize(points.size() * d);
    for (size_t r = 0; r < tree.order_.size(); ++r) {
      const auto p = points[tree.order_[r]];
      std::copy(p.begin(), p.end(), tree.leaf_coords_.begin() + r * d);
    }
  }
  return tree;
}

int32_t KdTree::BuildNode(uint32_t begin, uint32_t end) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].begin = begin;
  nodes_[id].end = end;
  if (end - begin <= kLeafSize) {
    return id;  // leaf (left stays -1)
  }
  // Pick the dimension with the widest extent over this range.
  const size_t d = points_->dims();
  uint16_t best_dim = 0;
  double best_extent = -1.0;
  for (size_t dim = 0; dim < d; ++dim) {
    double lo = points_->at(order_[begin], dim);
    double hi = lo;
    for (uint32_t i = begin + 1; i < end; ++i) {
      const double v = points_->at(order_[i], dim);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      best_dim = static_cast<uint16_t>(dim);
    }
  }
  if (best_extent <= 0.0) {
    return id;  // all points identical over this range: keep as a leaf
  }
  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](uint32_t a, uint32_t b) {
                     return points_->at(a, best_dim) <
                            points_->at(b, best_dim);
                   });
  nodes_[id].split_dim = best_dim;
  nodes_[id].split_value = points_->at(order_[mid], best_dim);
  const int32_t left = BuildNode(begin, mid);
  const int32_t right = BuildNode(mid, end);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

std::vector<Neighbor> KdTree::Knn(std::span<const double> query, size_t k,
                                  int64_t exclude_index) const {
  std::vector<Neighbor> result;
  if (k == 0 || order_.empty()) {
    return result;
  }
  // Max-heap of the best k candidates by squared distance.
  using HeapEntry = std::pair<double, uint32_t>;
  std::priority_queue<HeapEntry> heap;

  // Iterative depth-first descent with pruning by split-plane distance.
  struct Pending {
    int32_t node;
    double plane_dist_sq;  // lower bound to this subtree
  };
  std::vector<Pending> stack;
  stack.push_back({0, 0.0});
  while (!stack.empty()) {
    const Pending pending = stack.back();
    stack.pop_back();
    if (heap.size() == k && pending.plane_dist_sq > heap.top().first) {
      continue;
    }
    const Node& node = nodes_[pending.node];
    if (node.left < 0) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t p = order_[i];
        if (static_cast<int64_t>(p) == exclude_index) {
          continue;
        }
        const double dist_sq = SquaredDistanceTo(*points_, p, query);
        if (heap.size() < k) {
          heap.push({dist_sq, p});
        } else if (dist_sq < heap.top().first) {
          heap.pop();
          heap.push({dist_sq, p});
        }
      }
      continue;
    }
    const double diff = query[node.split_dim] - node.split_value;
    const int32_t near = diff < 0 ? node.left : node.right;
    const int32_t far = diff < 0 ? node.right : node.left;
    // Visit the near side first (stack: push far, then near).
    stack.push_back({far, diff * diff});
    stack.push_back({near, pending.plane_dist_sq});
  }

  result.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    result[i] = {heap.top().second, std::sqrt(heap.top().first)};
    heap.pop();
  }
  return result;
}

size_t KdTree::CountWithin(std::span<const double> query, double radius,
                           size_t cap) const {
  size_t count = 0;
  const double radius_sq = radius * radius;
  const size_t d = points_->dims();
  // Leaf scans run through the batched kernel over the contiguous
  // leaf-ordered block (dims beyond the kernel table fall back to the
  // scalar per-point loop).
  const simd::CountWithinFn count_within =
      d <= simd::kKernelMaxDims ? simd::DispatchedKernels().count_within[d]
                                : nullptr;
  std::vector<int32_t> stack;
  if (!order_.empty()) {
    stack.push_back(0);
  }
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.left < 0) {
      if (count_within != nullptr) {
        const uint32_t remaining =
            cap > 0 ? static_cast<uint32_t>(cap - count) : 0;
        count += count_within(query.data(), leaf_coords_.data() +
                                                static_cast<size_t>(node.begin) * d,
                              node.end - node.begin, radius_sq, remaining);
        if (cap > 0 && count >= cap) {
          return cap;  // the scalar path stops exactly at cap
        }
      } else {
        for (uint32_t i = node.begin; i < node.end; ++i) {
          if (SquaredDistanceTo(*points_, order_[i], query) <= radius_sq) {
            ++count;
            if (cap > 0 && count >= cap) {
              return count;
            }
          }
        }
      }
      continue;
    }
    const double diff = query[node.split_dim] - node.split_value;
    const int32_t near = diff < 0 ? node.left : node.right;
    const int32_t far = diff < 0 ? node.right : node.left;
    stack.push_back(near);
    if (diff * diff <= radius_sq) {
      stack.push_back(far);
    }
  }
  return count;
}

void KdTree::ForEachWithin(
    std::span<const double> query, double radius,
    const std::function<void(uint32_t, double)>& fn) const {
  const double radius_sq = radius * radius;
  std::vector<int32_t> stack;
  if (!order_.empty()) {
    stack.push_back(0);
  }
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.left < 0) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const double dist_sq =
            SquaredDistanceTo(*points_, order_[i], query);
        if (dist_sq <= radius_sq) {
          fn(order_[i], std::sqrt(dist_sq));
        }
      }
      continue;
    }
    const double diff = query[node.split_dim] - node.split_value;
    const int32_t near = diff < 0 ? node.left : node.right;
    const int32_t far = diff < 0 ? node.right : node.left;
    stack.push_back(near);
    if (diff * diff <= radius_sq) {
      stack.push_back(far);
    }
  }
}

}  // namespace dbscout::index

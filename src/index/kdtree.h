#ifndef DBSCOUT_INDEX_KDTREE_H_
#define DBSCOUT_INDEX_KDTREE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/result.h"
#include "data/point_set.h"

namespace dbscout::index {

/// One k-nearest-neighbor result.
struct Neighbor {
  uint32_t index = 0;
  double distance = 0.0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.index == b.index && a.distance == b.distance;
  }
};

/// Static kd-tree over a PointSet (median split on the widest dimension,
/// leaves of up to kLeafSize points). The tree stores point indices plus a
/// leaf-ordered copy of the coordinates (row r holds point order_[r]), so
/// leaf scans are contiguous blocks the batched distance kernels can
/// consume; the PointSet must outlive the tree. Substrate for the
/// LOF/DDLOF baselines and the k-distance diagnostics.
class KdTree {
 public:
  /// Builds the tree; O(n log n).
  static KdTree Build(const PointSet& points);

  size_t size() const { return order_.size(); }

  /// The k nearest neighbors of `query`, nearest first. When
  /// `exclude_index` is >= 0, that point index is skipped (the usual LOF
  /// convention of excluding the query point itself). Returns fewer than k
  /// when the set is smaller.
  std::vector<Neighbor> Knn(std::span<const double> query, size_t k,
                            int64_t exclude_index = -1) const;

  /// Number of points within `radius` (inclusive) of `query`. Stops early
  /// once `cap` is reached when cap > 0.
  size_t CountWithin(std::span<const double> query, double radius,
                     size_t cap = 0) const;

  /// Invokes fn(point_index, distance) for every point within `radius`
  /// (inclusive) of `query`.
  void ForEachWithin(std::span<const double> query, double radius,
                     const std::function<void(uint32_t, double)>& fn) const;

 private:
  static constexpr size_t kLeafSize = 16;

  struct Node {
    // Internal nodes: split dimension/value and children. Leaves: range in
    // order_ (left == -1 marks a leaf).
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;
    uint32_t end = 0;
    uint16_t split_dim = 0;
    double split_value = 0.0;
  };

  explicit KdTree(const PointSet* points) : points_(points) {}

  int32_t BuildNode(uint32_t begin, uint32_t end);

  const PointSet* points_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> order_;
  std::vector<double> leaf_coords_;  // row-major, in order_ sequence
};

}  // namespace dbscout::index

#endif  // DBSCOUT_INDEX_KDTREE_H_

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace dbscout::obs {
namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

namespace {

bool ValidMetricName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) {
      return false;
    }
  }
  return true;
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
void AppendEscaped(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

/// {k1="v1",k2="v2"} or empty when there are no labels. `extra` appends one
/// more pair (the histogram `le`).
std::string LabelBlock(const Labels& labels, const char* extra_key = nullptr,
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append(key).append("=\"");
    AppendEscaped(&out, value);
    out.push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) {
      out.push_back(',');
    }
    out.append(extra_key).append("=\"");
    AppendEscaped(&out, extra_value);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(HistogramLayout layout) : layout_(layout) {
  DBSCOUT_CHECK(layout_.base > 0.0);
}

double Histogram::BucketBound(size_t i) const {
  return layout_.base * static_cast<double>(uint64_t{1} << i);
}

size_t Histogram::BucketIndex(double value) const {
  // Linear scan over 27 doubles: ~short and branch-predictable; the whole
  // Observe() is off the per-point hot path (phase/batch granularity).
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (value <= BucketBound(i)) {
      return i;
    }
  }
  return kNumBuckets;  // +Inf
}

void Histogram::Observe(double value) {
  if (!(value >= 0.0)) {  // also catches NaN
    value = 0.0;
  }
  Shard& shard = shards_[internal::ThreadShard()];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.scaled_sum.fetch_add(static_cast<uint64_t>(value * kSumScale + 0.5),
                             std::memory_order_relaxed);
}

void Histogram::ObserveWithExemplar(double value, uint64_t exemplar_id) {
  if (!(value >= 0.0)) {
    value = 0.0;
  }
  Observe(value);
  if (exemplar_id == 0) {
    return;
  }
  const size_t bucket = BucketIndex(value);
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  // Two independent relaxed stores: a reader may pair an id with the
  // value of a racing exemplar. Exemplars are debugging breadcrumbs, not
  // invariants — the id always names a real request that landed in this
  // bucket, which is what matters.
  exemplar_value_bits_[bucket].store(bits, std::memory_order_relaxed);
  exemplar_ids_[bucket].store(exemplar_id, std::memory_order_relaxed);
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  if (!(q >= 0.0)) {  // also catches NaN
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // The rank of the q-th sample, 1-based, clamped into [1, count].
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) {
    rank = 1;
  }
  size_t bucket = kNumBuckets;
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    if (cumulative[i] >= rank) {
      bucket = i;
      break;
    }
  }
  const auto bound = [this](size_t i) {
    return bound_base * static_cast<double>(uint64_t{1} << i);
  };
  if (bucket == kNumBuckets) {
    // +Inf bucket: no finite upper bound to interpolate toward; the
    // highest finite bound is the best non-lying answer.
    return bound(kNumBuckets - 1);
  }
  const uint64_t below = bucket == 0 ? 0 : cumulative[bucket - 1];
  const uint64_t in_bucket = cumulative[bucket] - below;
  const double fraction =
      in_bucket == 0 ? 1.0
                     : static_cast<double>(rank - below) /
                           static_cast<double>(in_bucket);
  const double upper = bound(bucket);
  if (bucket == 0) {
    return upper * fraction;  // lower bound 0: linear
  }
  const double lower = bound(bucket - 1);
  return lower * std::pow(upper / lower, fraction);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  uint64_t scaled_sum = 0;
  std::array<uint64_t, kNumBuckets + 1> per_bucket{};
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= kNumBuckets; ++i) {
      per_bucket[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    scaled_sum += shard.scaled_sum.load(std::memory_order_relaxed);
  }
  uint64_t running = 0;
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    running += per_bucket[i];
    snap.cumulative[i] = running;
  }
  snap.sum = static_cast<double>(scaled_sum) / kSumScale;
  snap.bound_base = layout_.base;
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    snap.exemplar_ids[i] = exemplar_ids_[i].load(std::memory_order_relaxed);
    const uint64_t bits =
        exemplar_value_bits_[i].load(std::memory_order_relaxed);
    std::memcpy(&snap.exemplar_values[i], &bits, sizeof(bits));
  }
  return snap;
}

Registry& Registry::Global() {
  static Registry* const registry = new Registry;  // never destroyed
  return *registry;
}

Registry::SeriesSlot* Registry::GetSeries(std::string_view name,
                                          std::string_view help, Type type,
                                          Labels labels) {
  DBSCOUT_CHECK(ValidMetricName(name)) << "bad metric name: " << name;
  std::sort(labels.begin(), labels.end());
  MutexLock lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    FamilySlot family;
    family.help = std::string(help);
    family.type = type;
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  FamilySlot& family = it->second;
  DBSCOUT_CHECK(family.type == type)
      << "metric " << name << " re-registered with a different type";
  for (const auto& series : family.series) {
    if (series->labels == labels) {
      return series.get();
    }
  }
  auto slot = std::make_unique<SeriesSlot>();
  slot->labels = std::move(labels);
  family.series.push_back(std::move(slot));
  return family.series.back().get();
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              Labels labels) {
  SeriesSlot* slot = GetSeries(name, help, Type::kCounter, std::move(labels));
  MutexLock lock(mu_);
  if (slot->counter == nullptr) {
    slot->counter = std::make_unique<Counter>();
  }
  return slot->counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          Labels labels) {
  SeriesSlot* slot = GetSeries(name, help, Type::kGauge, std::move(labels));
  MutexLock lock(mu_);
  if (slot->gauge == nullptr) {
    slot->gauge = std::make_unique<Gauge>();
  }
  return slot->gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name, std::string_view help,
                                  HistogramLayout layout, Labels labels) {
  SeriesSlot* slot = GetSeries(name, help, Type::kHistogram, std::move(labels));
  MutexLock lock(mu_);
  if (slot->histogram == nullptr) {
    slot->histogram = std::make_unique<Histogram>(layout);
  }
  DBSCOUT_CHECK(slot->histogram->layout() == layout)
      << "histogram " << name << " re-registered with a different layout";
  return slot->histogram.get();
}

std::vector<Registry::Family> Registry::Snapshot() const {
  std::vector<Family> out;
  MutexLock lock(mu_);
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    Family f;
    f.name = name;
    f.help = family.help;
    f.type = family.type;
    for (const auto& slot : family.series) {
      Series s;
      s.labels = slot->labels;
      switch (family.type) {
        case Type::kCounter:
          s.counter = slot->counter != nullptr ? slot->counter->Value() : 0;
          break;
        case Type::kGauge:
          s.gauge = slot->gauge != nullptr ? slot->gauge->Value() : 0;
          break;
        case Type::kHistogram:
          if (slot->histogram != nullptr) {
            s.histogram = slot->histogram->Snap();
          }
          break;
      }
      f.series.push_back(std::move(s));
    }
    out.push_back(std::move(f));
  }
  return out;
}

std::string Registry::Expose() const {
  std::string out;
  for (const Family& family : Snapshot()) {
    const char* type_name = family.type == Type::kCounter  ? "counter"
                            : family.type == Type::kGauge  ? "gauge"
                                                           : "histogram";
    out.append("# HELP ").append(family.name).append(" ");
    AppendEscaped(&out, family.help);
    out.push_back('\n');
    out.append("# TYPE ").append(family.name).append(" ").append(type_name);
    out.push_back('\n');
    for (const Series& series : family.series) {
      switch (family.type) {
        case Type::kCounter:
          out.append(family.name)
              .append(LabelBlock(series.labels))
              .append(" ")
              .append(std::to_string(series.counter))
              .push_back('\n');
          break;
        case Type::kGauge:
          out.append(family.name)
              .append(LabelBlock(series.labels))
              .append(" ")
              .append(std::to_string(series.gauge))
              .push_back('\n');
          break;
        case Type::kHistogram: {
          for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
            const double bound =
                i < Histogram::kNumBuckets
                    ? series.histogram.bound_base *
                          static_cast<double>(uint64_t{1} << i)
                    : std::numeric_limits<double>::infinity();
            out.append(family.name)
                .append("_bucket")
                .append(LabelBlock(series.labels, "le", FormatDouble(bound)))
                .append(" ")
                .append(std::to_string(series.histogram.cumulative[i]));
            // OpenMetrics-style exemplar: the most recent trace id seen in
            // this bucket. Plain-Prometheus parsers that split on the
            // first space still read the sample value unchanged.
            if (series.histogram.exemplar_ids[i] != 0) {
              char exemplar[96];
              std::snprintf(exemplar, sizeof(exemplar),
                            " # {trace_id=\"%016llx\"} %.9g",
                            static_cast<unsigned long long>(
                                series.histogram.exemplar_ids[i]),
                            series.histogram.exemplar_values[i]);
              out.append(exemplar);
            }
            out.push_back('\n');
          }
          out.append(family.name)
              .append("_sum")
              .append(LabelBlock(series.labels))
              .append(" ")
              .append(FormatDouble(series.histogram.sum))
              .push_back('\n');
          out.append(family.name)
              .append("_count")
              .append(LabelBlock(series.labels))
              .append(" ")
              .append(std::to_string(series.histogram.count))
              .push_back('\n');
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace dbscout::obs

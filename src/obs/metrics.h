#ifndef DBSCOUT_OBS_METRICS_H_
#define DBSCOUT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace dbscout::obs {

/// Label set of one metric instance, e.g. {{"engine","sequential"},
/// {"phase","core_points"}}. Order is normalized (sorted by key) when the
/// metric is registered so {{a,1},{b,2}} and {{b,2},{a,1}} are the same
/// series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Number of independent atomic cells per hot counter/histogram. Each cell
/// sits on its own cache line; threads pick a fixed cell by thread id, so
/// concurrent increments from different threads (almost) never contend on
/// one line. Must be a power of two.
inline constexpr size_t kMetricShards = 16;

namespace internal {
/// One cache-line-isolated atomic counter cell.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

/// Small dense id of the calling thread (0, 1, 2, ... in first-use order),
/// stable for the thread's lifetime. Used to pick a metric shard.
size_t ThreadShard();
}  // namespace internal

/// Monotonically increasing counter. Increments are wait-free relaxed
/// atomic adds on a per-thread shard; reads sum the shards (reads may
/// observe a sum that no single instant had, which is fine for monotone
/// counters).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    cells_[internal::ThreadShard()].value.fetch_add(n,
                                                    std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const internal::ShardCell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::ShardCell, kMetricShards> cells_;
};

/// A value that can go up and down (active sessions, live collections).
/// Gauges are read/written from slow paths only, so one atomic is enough.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log-spaced bucket layout: upper bounds base, 2*base, 4*base, ...
/// (kNumBuckets bounds) plus the implicit +Inf bucket. Two canonical
/// layouts cover everything the service measures; a fixed layout keeps
/// Observe() allocation-free and scrape output stable.
struct HistogramLayout {
  double base = 1e-6;

  /// Latencies: 1us * 2^i, topping out at ~67s before +Inf.
  static HistogramLayout Latency() { return {1e-6}; }
  /// Sizes/counts: 1 * 2^i, topping out at ~134M before +Inf.
  static HistogramLayout Count() { return {1.0}; }
  /// Byte sizes (WAL frames, fsync batches): 64B * 2^i, topping out at
  /// ~8GB before +Inf — frames below a cache line all land in bucket 0.
  static HistogramLayout Bytes() { return {64.0}; }

  friend bool operator==(const HistogramLayout&,
                         const HistogramLayout&) = default;
};

/// Cumulative histogram over fixed log buckets. Observe() is wait-free:
/// it does three relaxed atomic adds on the calling thread's shard (bucket
/// count, total count, fixed-point sum). Snapshot() merges the shards.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 27;  // finite bounds; +Inf is extra
  /// Observed values are accumulated as value * kSumScale in a uint64 so
  /// the sum needs no atomic<double>; 1us precision for latency layouts.
  static constexpr double kSumScale = 1e6;

  explicit Histogram(HistogramLayout layout = HistogramLayout::Latency());
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Observe() plus an exemplar: remembers `exemplar_id` (a request trace
  /// id) as the most recent example landing in the value's bucket.
  /// Last-writer-wins relaxed stores — still wait-free, still
  /// allocation-free. An id of 0 records no exemplar.
  void ObserveWithExemplar(double value, uint64_t exemplar_id);

  /// Upper bound of bucket `i` (i < kNumBuckets); bucket kNumBuckets is
  /// +Inf.
  double BucketBound(size_t i) const;

  struct Snapshot {
    /// Cumulative counts per finite bucket bound, then +Inf (so
    /// buckets.back() == count).
    std::array<uint64_t, kNumBuckets + 1> cumulative{};
    uint64_t count = 0;
    double sum = 0.0;
    /// layout().base, carried so exporters can reconstruct bucket bounds.
    double bound_base = 1e-6;
    /// Most recent exemplar per bucket: trace id (0 = none) and the
    /// observed value it carried.
    std::array<uint64_t, kNumBuckets + 1> exemplar_ids{};
    std::array<double, kNumBuckets + 1> exemplar_values{};

    /// Estimated q-quantile (q in [0,1]) by log-linear interpolation
    /// inside the bucket holding the q-th sample: log-spaced bounds make
    /// geometric interpolation the unbiased choice (bucket 0, whose lower
    /// bound is 0, interpolates linearly). Samples in the +Inf bucket
    /// clamp to the highest finite bound. Returns 0 when empty.
    double Quantile(double q) const;
  };
  Snapshot Snap() const;

  /// Convenience: Snap().Quantile(q). Prefer one Snap() + several
  /// Quantile() calls when reporting p50/p99/p999 together.
  double Quantile(double q) const { return Snap().Quantile(q); }

  const HistogramLayout& layout() const { return layout_; }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets + 1> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> scaled_sum{0};
  };

  /// Index of the first bucket whose upper bound is >= value.
  size_t BucketIndex(double value) const;

  HistogramLayout layout_;
  std::array<Shard, kMetricShards> shards_;
  /// Exemplar slots, not sharded: last-writer-wins is the semantic, so
  /// one relaxed store per Observe is enough and readers see *some*
  /// recent example. value is stored as bit-cast uint64 to stay lock-free
  /// without atomic<double>.
  std::array<std::atomic<uint64_t>, kNumBuckets + 1> exemplar_ids_{};
  std::array<std::atomic<uint64_t>, kNumBuckets + 1> exemplar_value_bits_{};
};

/// Process-wide metric registry. Get*() lazily registers (name, labels)
/// series under a family (name + help + type) and returns a stable pointer
/// the caller may cache and hammer without further registry involvement.
/// Registration takes a mutex; increments never do.
///
/// A Registry can also be constructed locally for test isolation; the
/// production default is Global().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-global registry (what the service and engines default to).
  static Registry& Global();

  /// Returns the series, creating family and series as needed. `help` is
  /// recorded on first registration of the family; later calls may pass
  /// anything (ignored). Metric names must match
  /// [a-zA-Z_:][a-zA-Z0-9_:]* (checked, fatal on violation — a bad name is
  /// a programming error, not an input error).
  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          HistogramLayout layout = HistogramLayout::Latency(),
                          Labels labels = {});

  /// One series in a Snapshot(): the labels plus the value in the slot
  /// matching the family type.
  struct Series {
    Labels labels;
    uint64_t counter = 0;
    int64_t gauge = 0;
    Histogram::Snapshot histogram;
  };
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    std::vector<Series> series;
  };

  /// Consistent-enough iteration for tests and custom exporters: families
  /// sorted by name, series in registration order.
  std::vector<Family> Snapshot() const;

  /// Serializes every family in the Prometheus text exposition format
  /// (# HELP / # TYPE headers, one line per series, histograms expanded to
  /// _bucket{le=...} / _sum / _count).
  std::string Expose() const;

 private:
  struct SeriesSlot {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct FamilySlot {
    std::string help;
    Type type = Type::kCounter;
    std::vector<std::unique_ptr<SeriesSlot>> series;
  };

  SeriesSlot* GetSeries(std::string_view name, std::string_view help,
                        Type type, Labels labels);

  mutable Mutex mu_;
  std::map<std::string, FamilySlot, std::less<>> families_
      DBSCOUT_GUARDED_BY(mu_);
};

}  // namespace dbscout::obs

#endif  // DBSCOUT_OBS_METRICS_H_

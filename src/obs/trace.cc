#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace dbscout::obs {
namespace {

/// JSON string escaping for names/categories (control chars, quote,
/// backslash).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Microsecond timestamps as integers: trace viewers expect `ts`/`dur` in
/// microseconds; fractional values are legal but integers render best.
void AppendMicros(std::string* out, double seconds) {
  double micros = seconds * 1e6;
  if (!(micros >= 0.0)) {  // also catches NaN
    micros = 0.0;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", micros);
  out->append(buf);
}

/// Trace ids render as fixed-width hex strings: 64-bit values do not
/// survive a JSON number round trip (doubles lose bits past 2^53).
void AppendTraceId(std::string* out, uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%016llx\"",
                static_cast<unsigned long long>(id));
  out->append(buf);
}

bool Matches(const TraceSpan& span, const TraceFilter& filter) {
  if (!filter.scope.empty() && span.scope != filter.scope) {
    return false;
  }
  if (!filter.name.empty() && span.name != filter.name &&
      span.cat != filter.name) {
    return false;
  }
  if (filter.trace_id != 0 && span.trace_id != filter.trace_id) {
    return false;
  }
  return true;
}

void AppendSpanJson(std::string* out, const TraceSpan& span) {
  out->append("{\"name\":");
  AppendJsonString(out, span.name);
  out->append(",\"cat\":");
  AppendJsonString(out, span.cat);
  out->append(",\"ph\":\"X\",\"ts\":");
  AppendMicros(out, span.start_seconds);
  out->append(",\"dur\":");
  AppendMicros(out, span.duration_seconds);
  out->append(",\"pid\":1,\"tid\":");
  out->append(std::to_string(span.thread_id));
  out->append(",\"args\":{\"distance_computations\":");
  out->append(std::to_string(span.distance_computations));
  out->append(",\"records\":");
  out->append(std::to_string(span.records));
  if (span.trace_id != 0) {
    out->append(",\"trace_id\":");
    AppendTraceId(out, span.trace_id);
  }
  if (!span.scope.empty()) {
    out->append(",\"scope\":");
    AppendJsonString(out, span.scope);
  }
  out->append("}}");
}

}  // namespace

void TraceCollector::AddSpan(TraceSpan span) {
  MutexLock lock(mu_);
  if (capacity_ == 0 || spans_.size() < capacity_) {
    spans_.push_back(std::move(span));
    return;
  }
  spans_[next_slot_] = std::move(span);
  next_slot_ = (next_slot_ + 1) % capacity_;
  ++dropped_;
}

void TraceCollector::AddSpanEndingNow(std::string_view name,
                                      std::string_view cat,
                                      double duration_seconds,
                                      uint64_t distances, uint64_t records) {
  TraceSpan span;
  span.name = std::string(name);
  span.cat = std::string(cat);
  span.duration_seconds = duration_seconds > 0.0 ? duration_seconds : 0.0;
  span.start_seconds = NowSeconds() - span.duration_seconds;
  if (span.start_seconds < 0.0) {
    span.start_seconds = 0.0;
  }
  span.thread_id = CurrentThreadId();
  span.distance_computations = distances;
  span.records = records;
  AddSpan(std::move(span));
}

void TraceCollector::AddTracedSpan(std::string_view name,
                                   std::string_view cat, uint64_t trace_id,
                                   std::string_view scope,
                                   double duration_seconds,
                                   uint64_t records) {
  TraceSpan span;
  span.name = std::string(name);
  span.cat = std::string(cat);
  span.duration_seconds = duration_seconds > 0.0 ? duration_seconds : 0.0;
  span.start_seconds = NowSeconds() - span.duration_seconds;
  if (span.start_seconds < 0.0) {
    span.start_seconds = 0.0;
  }
  span.thread_id = CurrentThreadId();
  span.records = records;
  span.trace_id = trace_id;
  span.scope = std::string(scope);
  AddSpan(std::move(span));
}

std::vector<TraceSpan> TraceCollector::Spans() const {
  MutexLock lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(spans_.size());
  // Unwind the ring: the oldest retained span sits at the write cursor
  // once the buffer has wrapped.
  for (size_t i = 0; i < spans_.size(); ++i) {
    out.push_back(spans_[(next_slot_ + i) % spans_.size()]);
  }
  return out;
}

size_t TraceCollector::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

uint64_t TraceCollector::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::string TraceCollector::ToChromeJson() const {
  return ToChromeJson(TraceFilter{});
}

std::string TraceCollector::ToChromeJson(const TraceFilter& filter) const {
  std::vector<TraceSpan> spans = Spans();
  std::vector<const TraceSpan*> selected;
  selected.reserve(spans.size());
  for (const TraceSpan& span : spans) {
    if (Matches(span, filter)) {
      selected.push_back(&span);
    }
  }
  size_t begin = 0;
  if (filter.limit != 0 && selected.size() > filter.limit) {
    begin = selected.size() - filter.limit;  // keep the most recent tail
  }
  std::string out = "{\"traceEvents\":[";
  for (size_t i = begin; i < selected.size(); ++i) {
    if (i != begin) {
      out.push_back(',');
    }
    AppendSpanJson(&out, *selected[i]);
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output: " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace dbscout::obs

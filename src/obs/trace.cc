#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace dbscout::obs {
namespace {

/// JSON string escaping for names/categories (control chars, quote,
/// backslash).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Microsecond timestamps as integers: trace viewers expect `ts`/`dur` in
/// microseconds; fractional values are legal but integers render best.
void AppendMicros(std::string* out, double seconds) {
  double micros = seconds * 1e6;
  if (!(micros >= 0.0)) {  // also catches NaN
    micros = 0.0;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", micros);
  out->append(buf);
}

}  // namespace

void TraceCollector::AddSpan(TraceSpan span) {
  MutexLock lock(mu_);
  spans_.push_back(std::move(span));
}

void TraceCollector::AddSpanEndingNow(std::string_view name,
                                      std::string_view cat,
                                      double duration_seconds,
                                      uint64_t distances, uint64_t records) {
  TraceSpan span;
  span.name = std::string(name);
  span.cat = std::string(cat);
  span.duration_seconds = duration_seconds > 0.0 ? duration_seconds : 0.0;
  span.start_seconds = NowSeconds() - span.duration_seconds;
  if (span.start_seconds < 0.0) {
    span.start_seconds = 0.0;
  }
  span.thread_id = CurrentThreadId();
  span.distance_computations = distances;
  span.records = records;
  AddSpan(std::move(span));
}

std::vector<TraceSpan> TraceCollector::Spans() const {
  MutexLock lock(mu_);
  return spans_;
}

size_t TraceCollector::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

std::string TraceCollector::ToChromeJson() const {
  const std::vector<TraceSpan> spans = Spans();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, span.name);
    out.append(",\"cat\":");
    AppendJsonString(&out, span.cat);
    out.append(",\"ph\":\"X\",\"ts\":");
    AppendMicros(&out, span.start_seconds);
    out.append(",\"dur\":");
    AppendMicros(&out, span.duration_seconds);
    out.append(",\"pid\":1,\"tid\":");
    out.append(std::to_string(span.thread_id));
    out.append(",\"args\":{\"distance_computations\":");
    out.append(std::to_string(span.distance_computations));
    out.append(",\"records\":");
    out.append(std::to_string(span.records));
    out.append("}}");
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output: " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace dbscout::obs

#ifndef DBSCOUT_OBS_TRACE_H_
#define DBSCOUT_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"  // CurrentThreadId
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/timer.h"

namespace dbscout::obs {

/// One completed span: a named slice of work on one thread. Times are
/// seconds relative to the owning TraceCollector's origin (its
/// construction), which keeps spans from different engines on one shared
/// timeline.
struct TraceSpan {
  std::string name;  // phase or operation, e.g. "core_points"
  std::string cat;   // category: engine name, e.g. "external"
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  uint32_t thread_id = 0;  // dense dbscout thread id
  uint64_t distance_computations = 0;
  uint64_t records = 0;
};

/// Collects timestamped spans from the detection engines and the service
/// apply loop, and serializes them to Chrome trace-event JSON (loadable in
/// chrome://tracing and Perfetto).
///
/// Span emission happens at phase / stripe / apply-pass granularity — a
/// handful of events per detection, never per point — so a mutex-guarded
/// vector is the right tool (contrast with the wait-free metric shards,
/// which ARE incremented on hot paths).
class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Seconds since this collector was constructed (the trace origin).
  double NowSeconds() const { return origin_.ElapsedSeconds(); }

  /// Records a fully-specified span.
  void AddSpan(TraceSpan span);

  /// Convenience: a span of `duration_seconds` that ends now, attributed
  /// to the calling thread.
  void AddSpanEndingNow(std::string_view name, std::string_view cat,
                        double duration_seconds, uint64_t distances,
                        uint64_t records);

  std::vector<TraceSpan> Spans() const;
  size_t size() const;

  /// Chrome trace-event JSON: {"traceEvents":[{"name":...,"cat":...,
  /// "ph":"X","ts":microseconds,"dur":microseconds,"pid":...,"tid":...,
  /// "args":{...}}, ...]}.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

 private:
  WallTimer origin_;
  mutable Mutex mu_;
  std::vector<TraceSpan> spans_ DBSCOUT_GUARDED_BY(mu_);
};

}  // namespace dbscout::obs

#endif  // DBSCOUT_OBS_TRACE_H_

#ifndef DBSCOUT_OBS_TRACE_H_
#define DBSCOUT_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"  // CurrentThreadId
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/timer.h"

namespace dbscout::obs {

/// One completed span: a named slice of work on one thread. Times are
/// seconds relative to the owning TraceCollector's origin (its
/// construction), which keeps spans from different engines on one shared
/// timeline.
struct TraceSpan {
  std::string name;  // phase or operation, e.g. "core_points"
  std::string cat;   // category: engine name, e.g. "external"
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  uint32_t thread_id = 0;  // dense dbscout thread id
  uint64_t distance_computations = 0;
  uint64_t records = 0;
  /// Request trace id that this span belongs to; 0 = not request-scoped
  /// (engine phase spans, whole apply passes). Links the decode /
  /// queue-wait / shard-apply / wal-commit / publish spans of one request
  /// into one trace.
  uint64_t trace_id = 0;
  /// Scope label for dump-time filtering: the collection name for
  /// service-side spans, empty for engine spans.
  std::string scope;
};

/// Selects a subset of spans on dump. Default-constructed = everything.
struct TraceFilter {
  std::string scope;    // exact match on TraceSpan::scope; empty = all
  std::string name;     // exact match on TraceSpan::name or cat; empty = all
  uint64_t trace_id = 0;  // exact match; 0 = all
  size_t limit = 0;     // keep only the most recent N spans; 0 = all
};

/// Collects timestamped spans from the detection engines and the service
/// apply loop, and serializes them to Chrome trace-event JSON (loadable in
/// chrome://tracing and Perfetto).
///
/// Span emission happens at phase / stripe / apply-pass / request
/// granularity — a handful of events per detection or request, never per
/// point — so a mutex-guarded buffer is the right tool (contrast with the
/// wait-free metric shards, which ARE incremented on hot paths).
///
/// With a nonzero `capacity` the collector is a ring: once full, each new
/// span overwrites the oldest and `dropped()` counts the overwritten ones.
/// This is what a long-lived server wants — the TRACE verb dumps the live
/// tail without the buffer growing without bound. Capacity 0 (the default,
/// used by the batch CLI) keeps every span for the exit-time --trace-out.
class TraceCollector {
 public:
  TraceCollector() = default;
  explicit TraceCollector(size_t capacity) : capacity_(capacity) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Seconds since this collector was constructed (the trace origin).
  double NowSeconds() const { return origin_.ElapsedSeconds(); }

  /// Records a fully-specified span.
  void AddSpan(TraceSpan span);

  /// Convenience: a span of `duration_seconds` that ends now, attributed
  /// to the calling thread.
  void AddSpanEndingNow(std::string_view name, std::string_view cat,
                        double duration_seconds, uint64_t distances,
                        uint64_t records);

  /// Convenience for request-scoped service spans: a span of
  /// `duration_seconds` ending now, tagged with the request's trace id and
  /// a scope (collection name; empty for service-wide spans).
  void AddTracedSpan(std::string_view name, std::string_view cat,
                     uint64_t trace_id, std::string_view scope,
                     double duration_seconds, uint64_t records = 0);

  /// All retained spans, oldest first (ring order is unwound).
  std::vector<TraceSpan> Spans() const;
  size_t size() const;

  /// Spans overwritten by ring wraparound since construction.
  uint64_t dropped() const;

  size_t capacity() const { return capacity_; }

  /// Chrome trace-event JSON: {"traceEvents":[{"name":...,"cat":...,
  /// "ph":"X","ts":microseconds,"dur":microseconds,"pid":...,"tid":...,
  /// "args":{...}}, ...]}.
  std::string ToChromeJson() const;

  /// Chrome trace-event JSON restricted to the spans selected by
  /// `filter`. The TRACE verb uses this so a busy multi-collection server
  /// returns one collection's (or one request's) spans, not megabytes.
  std::string ToChromeJson(const TraceFilter& filter) const;

  /// Writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

 private:
  const size_t capacity_ = 0;  // 0 = unbounded
  WallTimer origin_;
  mutable Mutex mu_;
  std::vector<TraceSpan> spans_ DBSCOUT_GUARDED_BY(mu_);
  size_t next_slot_ DBSCOUT_GUARDED_BY(mu_) = 0;  // ring write cursor
  uint64_t dropped_ DBSCOUT_GUARDED_BY(mu_) = 0;
};

}  // namespace dbscout::obs

#endif  // DBSCOUT_OBS_TRACE_H_

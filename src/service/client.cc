#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/str_util.h"
#include "service/frame_io.h"

namespace dbscout::service {

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(
        StrFormat("socket: %s", ErrnoToString(errno).c_str()));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("bad server address '%s'", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Status::IoError(StrFormat(
        "connect %s:%u: %s", host.c_str(), port, ErrnoToString(errno).c_str()));
    ::close(fd);
    return status;
  }
  // Request/response over small frames: Nagle would hold each frame for
  // the peer's delayed ACK, adding tens of ms per round trip.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      tracing_(other.tracing_),
      last_trace_id_(other.last_trace_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    tracing_ = other.tracing_;
    last_trace_id_ = other.last_trace_id_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Response> Client::Call(const Request& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is disconnected");
  }
  std::vector<uint8_t> bytes;
  if (tracing_ && request.context.trace_id == 0) {
    // Stamping copies the request (coords and all); acceptable because
    // tracing is an explicit opt-in, never the hot default.
    Request stamped = request;
    stamped.context.trace_id = NextTraceId();
    stamped.context.origin_seconds =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    last_trace_id_ = stamped.context.trace_id;
    bytes = EncodeRequest(stamped);
  } else {
    if (request.context.trace_id != 0) {
      last_trace_id_ = request.context.trace_id;
    }
    bytes = EncodeRequest(request);
  }
  DBSCOUT_RETURN_IF_ERROR(WriteFrame(fd_, bytes));
  DBSCOUT_ASSIGN_OR_RETURN(auto frame, ReadFrame(fd_, nullptr));
  if (!frame.has_value()) {
    return Status::IoError(
        "server closed the connection (possibly shed: session cap)");
  }
  auto response = DecodeResponse(*frame);
  if (response.ok() && response->trace_id != 0) {
    last_trace_id_ = response->trace_id;
  }
  return response;
}

Result<uint64_t> Client::Ingest(const std::string& collection, uint16_t dims,
                                std::vector<double> coords) {
  Request request;
  request.verb = Verb::kIngest;
  request.collection = collection;
  request.dims = dims;
  request.coords = std::move(coords);
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.epoch;
}

Result<QueryAnswer> Client::QueryPoint(const std::string& collection,
                                       std::vector<double> point,
                                       bool want_score) {
  Request request;
  request.verb = Verb::kQuery;
  request.collection = collection;
  request.query_by_id = false;
  request.query_point = std::move(point);
  request.want_score = want_score;
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.query;
}

Result<QueryAnswer> Client::QueryId(const std::string& collection,
                                    uint32_t id, bool want_score) {
  Request request;
  request.verb = Verb::kQuery;
  request.collection = collection;
  request.query_by_id = true;
  request.query_id = id;
  request.want_score = want_score;
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.query;
}

Result<StatsAnswer> Client::Stats(const std::string& collection) {
  Request request;
  request.verb = Verb::kStats;
  request.collection = collection;
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.stats;
}

Result<SnapshotAnswer> Client::Snapshot(const std::string& collection) {
  Request request;
  request.verb = Verb::kSnapshot;
  request.collection = collection;
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.snapshot;
}

Result<double> Client::Configure(const std::string& collection,
                                 double ttl_seconds) {
  Request request;
  request.verb = Verb::kConfigure;
  request.collection = collection;
  request.ttl_seconds = ttl_seconds;
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.configure.ttl_seconds;
}

Result<std::string> Client::Metrics() {
  Request request;
  request.verb = Verb::kMetrics;
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.metrics.text;
}

Result<TraceAnswer> Client::TraceDump(const std::string& scope,
                                      const std::string& name,
                                      uint64_t trace_id, uint32_t limit) {
  Request request;
  request.verb = Verb::kTrace;
  request.collection = scope;
  request.trace_name_filter = name;
  request.trace_id_filter = trace_id;
  request.trace_limit = limit;
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.trace;
}

Result<HealthAnswer> Client::Health() {
  Request request;
  request.verb = Verb::kHealth;
  DBSCOUT_ASSIGN_OR_RETURN(const Response response, Call(request));
  DBSCOUT_RETURN_IF_ERROR(Status(response.status));
  return response.health;
}

}  // namespace dbscout::service

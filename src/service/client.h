#ifndef DBSCOUT_SERVICE_CLIENT_H_
#define DBSCOUT_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/protocol.h"

namespace dbscout::service {

/// Blocking TCP client for the detection service. One connection, one
/// outstanding request at a time. Move-only; the destructor closes the
/// connection.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request and waits for its response. The returned Response
  /// carries the service-level outcome in .status (e.g. kUnavailable for
  /// shed load); a non-OK Result means the transport itself failed.
  Result<Response> Call(const Request& request);

  /// Convenience wrappers; they fold the service-level status into the
  /// Result, so callers get value-or-error directly.
  Result<uint64_t> Ingest(const std::string& collection, uint16_t dims,
                          std::vector<double> coords);
  Result<QueryAnswer> QueryPoint(const std::string& collection,
                                 std::vector<double> point, bool want_score);
  Result<QueryAnswer> QueryId(const std::string& collection, uint32_t id,
                              bool want_score);
  Result<StatsAnswer> Stats(const std::string& collection);
  Result<SnapshotAnswer> Snapshot(const std::string& collection);
  /// Sets the collection's sliding-window TTL (seconds; 0 turns the window
  /// off). Returns the TTL now in effect.
  Result<double> Configure(const std::string& collection, double ttl_seconds);
  /// Prometheus text-format scrape of the whole service (no collection).
  Result<std::string> Metrics();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_CLIENT_H_

#ifndef DBSCOUT_SERVICE_CLIENT_H_
#define DBSCOUT_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/protocol.h"

namespace dbscout::service {

/// Blocking TCP client for the detection service. One connection, one
/// outstanding request at a time. Move-only; the destructor closes the
/// connection.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request and waits for its response. The returned Response
  /// carries the service-level outcome in .status (e.g. kUnavailable for
  /// shed load); a non-OK Result means the transport itself failed.
  Result<Response> Call(const Request& request);

  /// Opt-in: stamp every outgoing request with a fresh trace id + origin
  /// timestamp, so the server's spans for it are linked and the id comes
  /// back in the response. Off by default — stamped frames set the verb
  /// high bit, which pre-trace servers reject as an unknown verb.
  void EnableTracing(bool on = true) { tracing_ = on; }

  /// The trace id most recently stamped by this client or echoed by the
  /// server (0 = none). Feed it to TraceDump to fetch one request's spans.
  uint64_t last_trace_id() const { return last_trace_id_; }

  /// Dumps the server's span ring buffer as Chrome trace-event JSON.
  /// `scope` filters by collection, `name` by span name/category,
  /// `trace_id` to one request, `limit` to the most recent N (0 = all).
  Result<TraceAnswer> TraceDump(const std::string& scope = "",
                                const std::string& name = "",
                                uint64_t trace_id = 0, uint32_t limit = 0);

  /// Readiness / degradation state plus process self-gauges.
  Result<HealthAnswer> Health();

  /// Convenience wrappers; they fold the service-level status into the
  /// Result, so callers get value-or-error directly.
  Result<uint64_t> Ingest(const std::string& collection, uint16_t dims,
                          std::vector<double> coords);
  Result<QueryAnswer> QueryPoint(const std::string& collection,
                                 std::vector<double> point, bool want_score);
  Result<QueryAnswer> QueryId(const std::string& collection, uint32_t id,
                              bool want_score);
  Result<StatsAnswer> Stats(const std::string& collection);
  Result<SnapshotAnswer> Snapshot(const std::string& collection);
  /// Sets the collection's sliding-window TTL (seconds; 0 turns the window
  /// off). Returns the TTL now in effect.
  Result<double> Configure(const std::string& collection, double ttl_seconds);
  /// Prometheus text-format scrape of the whole service (no collection).
  Result<std::string> Metrics();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  bool tracing_ = false;
  uint64_t last_trace_id_ = 0;
};

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_CLIENT_H_

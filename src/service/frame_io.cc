#include "service/frame_io.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/str_util.h"
#include "service/protocol.h"

namespace dbscout::service {
namespace {

constexpr int kPollTimeoutMs = 100;

/// Reads exactly `len` bytes into `out`. `eof_ok` permits a clean EOF
/// before the first byte (frame boundary); EOF after that is an error.
/// Returns true when `len` bytes were read, false on clean EOF.
Result<bool> ReadExact(int fd, uint8_t* out, size_t len, bool eof_ok,
                       const std::atomic<bool>* stop) {
  size_t got = 0;
  while (got < len) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(
          StrFormat("poll: %s", ErrnoToString(errno).c_str()));
    }
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      return Status::Unavailable("shutting down");
    }
    if (ready == 0) {
      continue;  // timeout; re-check stop and poll again
    }
    const ssize_t n = ::read(fd, out + got, len - got);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IoError(
          StrFormat("read: %s", ErrnoToString(errno).c_str()));
    }
    if (n == 0) {
      if (got == 0 && eof_ok) {
        return false;
      }
      return Status::IoError(
          StrFormat("connection closed mid-frame (%zu/%zu bytes)", got, len));
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status WriteFrame(int fd, std::span<const uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("frame payload %zu exceeds cap %u", payload.size(),
                  kMaxFramePayload));
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  uint8_t header[4];
  std::memcpy(header, &len, sizeof(len));

  // The header and payload must leave in one writev: two separate send()s
  // put the 4-byte prefix on the wire as its own segment, and with Nagle
  // active the payload then stalls behind the peer's delayed ACK — ~40ms
  // per frame on loopback, which dominated request latency before
  // bench_load caught it.
  iovec iov[2] = {
      {header, sizeof(header)},
      {const_cast<uint8_t*>(payload.data()), payload.size()},
  };
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = payload.empty() ? 1 : 2;
  size_t sent = 0;
  const size_t total = sizeof(header) + payload.size();
  while (sent < total) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE instead of
    // a process-killing SIGPIPE.
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(
          StrFormat("write: %s", ErrnoToString(errno).c_str()));
    }
    sent += static_cast<size_t>(n);
    // Advance the iovecs past what the kernel took (partial writes are
    // rare on stream sockets but legal).
    size_t consumed = static_cast<size_t>(n);
    while (consumed > 0 && msg.msg_iovlen > 0) {
      if (consumed >= msg.msg_iov[0].iov_len) {
        consumed -= msg.msg_iov[0].iov_len;
        ++msg.msg_iov;
        --msg.msg_iovlen;
      } else {
        msg.msg_iov[0].iov_base =
            static_cast<uint8_t*>(msg.msg_iov[0].iov_base) + consumed;
        msg.msg_iov[0].iov_len -= consumed;
        consumed = 0;
      }
    }
  }
  return Status::OK();
}

Result<std::optional<std::vector<uint8_t>>> ReadFrame(
    int fd, const std::atomic<bool>* stop) {
  uint8_t header[4];
  DBSCOUT_ASSIGN_OR_RETURN(
      const bool have_header,
      ReadExact(fd, header, sizeof(header), /*eof_ok=*/true, stop));
  if (!have_header) {
    return std::optional<std::vector<uint8_t>>(std::nullopt);
  }
  uint32_t len = 0;
  std::memcpy(&len, header, sizeof(len));
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("frame length %u exceeds cap %u", len, kMaxFramePayload));
  }
  std::vector<uint8_t> payload(len);
  if (len > 0) {
    DBSCOUT_ASSIGN_OR_RETURN(
        const bool full,
        ReadExact(fd, payload.data(), len, /*eof_ok=*/false, stop));
    (void)full;  // eof_ok=false: ReadExact only returns true or an error
  }
  return std::optional<std::vector<uint8_t>>(std::move(payload));
}

}  // namespace dbscout::service

#ifndef DBSCOUT_SERVICE_FRAME_IO_H_
#define DBSCOUT_SERVICE_FRAME_IO_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/result.h"

namespace dbscout::service {

/// Writes one frame (u32 little-endian payload length + payload) to `fd`,
/// retrying partial writes and EINTR. Fails with IoError on a broken
/// connection and InvalidArgument on an over-cap payload.
Status WriteFrame(int fd, std::span<const uint8_t> payload);

/// Reads one frame from `fd`. Returns:
///   - the payload on success,
///   - std::nullopt on a clean EOF at a frame boundary (peer closed),
///   - IoError on mid-frame EOF / connection errors,
///   - InvalidArgument on an over-cap length prefix,
///   - Unavailable("shutting down") when `*stop` becomes true while
///     waiting for bytes (checked via 100ms poll timeouts, so a blocked
///     reader notices shutdown promptly without signals).
/// `stop` may be null for blocking callers (the CLI client).
Result<std::optional<std::vector<uint8_t>>> ReadFrame(
    int fd, const std::atomic<bool>* stop);

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_FRAME_IO_H_

#include "service/handle.h"

#include <vector>

namespace dbscout::service {

Result<Response> ServiceHandle::Call(const Request& request) {
  const std::vector<uint8_t> request_bytes = EncodeRequest(request);
  if (request_bytes.size() > kMaxFramePayload) {
    return Status::InvalidArgument("request exceeds frame cap");
  }
  DBSCOUT_ASSIGN_OR_RETURN(const Request decoded,
                           DecodeRequest(request_bytes));
  const Response response = service_->Dispatch(decoded);
  const std::vector<uint8_t> response_bytes = EncodeResponse(response);
  if (response_bytes.size() > kMaxFramePayload) {
    return Status::InvalidArgument("response exceeds frame cap");
  }
  return DecodeResponse(response_bytes);
}

}  // namespace dbscout::service

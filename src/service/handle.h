#ifndef DBSCOUT_SERVICE_HANDLE_H_
#define DBSCOUT_SERVICE_HANDLE_H_

#include "common/result.h"
#include "service/protocol.h"
#include "service/service.h"

namespace dbscout::service {

/// In-process client: same surface as the TCP Client, but every Call still
/// round-trips the wire format (encode request -> decode -> Dispatch ->
/// encode response -> decode), so tests using the handle exercise exactly
/// the bytes a remote client would produce and parse — minus the socket.
class ServiceHandle {
 public:
  /// The service must outlive the handle.
  explicit ServiceHandle(DetectionService* service) : service_(service) {}

  Result<Response> Call(const Request& request);

 private:
  DetectionService* const service_;
};

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_HANDLE_H_

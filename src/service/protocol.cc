#include "service/protocol.h"

#include <atomic>

#include "common/codec.h"
#include "common/str_util.h"

namespace dbscout::service {
namespace {

// Put/PutBytes/PutString and ByteReader live in common/codec.h: the
// storage WAL shares the exact byte discipline (and the truncation
// semantics the fuzz sweeps pin down), so there is one implementation.

Result<Verb> CheckVerb(uint8_t raw) {
  switch (static_cast<Verb>(raw)) {
    case Verb::kIngest:
    case Verb::kQuery:
    case Verb::kStats:
    case Verb::kSnapshot:
    case Verb::kMetrics:
    case Verb::kConfigure:
    case Verb::kTrace:
    case Verb::kHealth:
      return static_cast<Verb>(raw);
  }
  return Status::InvalidArgument(StrFormat("unknown verb %u", raw));
}

/// Emits the verb byte, setting kTraceHeaderFlag and appending the trace
/// header when a context is present. Shared by request and response
/// encoders so both sides speak the identical header layout.
void PutVerbAndTraceHeader(std::vector<uint8_t>* out, Verb verb,
                           uint64_t trace_id, double seconds) {
  uint8_t raw = static_cast<uint8_t>(verb);
  if (trace_id != 0) {
    raw |= kTraceHeaderFlag;
  }
  Put<uint8_t>(out, raw);
  if (trace_id != 0) {
    Put<uint64_t>(out, trace_id);
    Put<double>(out, seconds);
  }
}

/// Reads the verb byte and, when flagged, the trace header. The verb is
/// validated after the flag is stripped, so a flagged frame with a bad
/// verb and an unflagged one fail identically.
struct VerbAndTraceHeader {
  Verb verb = Verb::kStats;
  uint64_t trace_id = 0;
  double seconds = 0.0;
};
Result<VerbAndTraceHeader> ReadVerbAndTraceHeader(ByteReader* reader) {
  VerbAndTraceHeader out;
  DBSCOUT_ASSIGN_OR_RETURN(const uint8_t raw, reader->Read<uint8_t>());
  DBSCOUT_ASSIGN_OR_RETURN(
      out.verb, CheckVerb(raw & static_cast<uint8_t>(~kTraceHeaderFlag)));
  if ((raw & kTraceHeaderFlag) != 0) {
    DBSCOUT_ASSIGN_OR_RETURN(out.trace_id, reader->Read<uint64_t>());
    DBSCOUT_ASSIGN_OR_RETURN(out.seconds, reader->Read<double>());
    if (out.trace_id == 0) {
      // id 0 means "no context"; a flagged header carrying it is a frame
      // the reference encoder can never produce.
      return Status::InvalidArgument("trace header with zero trace id");
    }
  }
  return out;
}

Result<core::PointKind> CheckKind(uint8_t raw) {
  if (raw > static_cast<uint8_t>(core::PointKind::kOutlier)) {
    return Status::InvalidArgument(StrFormat("unknown point kind %u", raw));
  }
  return static_cast<core::PointKind>(raw);
}

}  // namespace

uint64_t NextTraceId() {
  constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ull;
  static std::atomic<uint64_t> counter{
      kGamma ^ reinterpret_cast<uintptr_t>(&counter)};
  for (;;) {
    uint64_t z = counter.fetch_add(kGamma, std::memory_order_relaxed) + kGamma;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    if (z != 0) {  // 0 means "untraced" on the wire; skip it
      return z;
    }
  }
}

std::vector<uint8_t> EncodeRequest(const Request& request) {
  std::vector<uint8_t> out;
  PutVerbAndTraceHeader(&out, request.verb, request.context.trace_id,
                        request.context.origin_seconds);
  Put<uint8_t>(&out, request.want_score ? 1 : 0);
  PutString(&out, request.collection);
  switch (request.verb) {
    case Verb::kIngest: {
      Put<uint16_t>(&out, request.dims);
      const uint32_t count =
          request.dims == 0
              ? 0
              : static_cast<uint32_t>(request.coords.size() / request.dims);
      Put<uint32_t>(&out, count);
      for (double v : request.coords) {
        Put<double>(&out, v);
      }
      break;
    }
    case Verb::kQuery:
      Put<uint8_t>(&out, request.query_by_id ? 0 : 1);
      if (request.query_by_id) {
        Put<uint32_t>(&out, request.query_id);
      } else {
        Put<uint16_t>(&out, static_cast<uint16_t>(request.query_point.size()));
        for (double v : request.query_point) {
          Put<double>(&out, v);
        }
      }
      break;
    case Verb::kConfigure:
      Put<double>(&out, request.ttl_seconds);
      break;
    case Verb::kTrace:
      PutString(&out, request.trace_name_filter);
      Put<uint64_t>(&out, request.trace_id_filter);
      Put<uint32_t>(&out, request.trace_limit);
      break;
    case Verb::kStats:
    case Verb::kSnapshot:
    case Verb::kMetrics:
    case Verb::kHealth:
      break;
  }
  return out;
}

Result<Request> DecodeRequest(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  Request request;
  DBSCOUT_ASSIGN_OR_RETURN(const VerbAndTraceHeader head,
                           ReadVerbAndTraceHeader(&reader));
  request.verb = head.verb;
  request.context.trace_id = head.trace_id;
  request.context.origin_seconds = head.seconds;
  DBSCOUT_ASSIGN_OR_RETURN(const uint8_t flags, reader.Read<uint8_t>());
  request.want_score = (flags & 1) != 0;
  DBSCOUT_ASSIGN_OR_RETURN(request.collection,
                           reader.ReadString(kMaxCollectionName));
  switch (request.verb) {
    case Verb::kIngest: {
      DBSCOUT_ASSIGN_OR_RETURN(request.dims, reader.Read<uint16_t>());
      DBSCOUT_ASSIGN_OR_RETURN(const uint32_t count, reader.Read<uint32_t>());
      DBSCOUT_ASSIGN_OR_RETURN(
          request.coords,
          reader.ReadDoubles(static_cast<uint64_t>(count) * request.dims));
      break;
    }
    case Verb::kQuery: {
      DBSCOUT_ASSIGN_OR_RETURN(const uint8_t mode, reader.Read<uint8_t>());
      if (mode > 1) {
        return Status::InvalidArgument(
            StrFormat("unknown query mode %u", mode));
      }
      request.query_by_id = mode == 0;
      if (request.query_by_id) {
        DBSCOUT_ASSIGN_OR_RETURN(request.query_id, reader.Read<uint32_t>());
      } else {
        DBSCOUT_ASSIGN_OR_RETURN(const uint16_t dims, reader.Read<uint16_t>());
        DBSCOUT_ASSIGN_OR_RETURN(request.query_point,
                                 reader.ReadDoubles(dims));
      }
      break;
    }
    case Verb::kConfigure: {
      DBSCOUT_ASSIGN_OR_RETURN(request.ttl_seconds, reader.Read<double>());
      break;
    }
    case Verb::kTrace: {
      DBSCOUT_ASSIGN_OR_RETURN(request.trace_name_filter,
                               reader.ReadString(kMaxCollectionName));
      DBSCOUT_ASSIGN_OR_RETURN(request.trace_id_filter,
                               reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(request.trace_limit, reader.Read<uint32_t>());
      break;
    }
    case Verb::kStats:
    case Verb::kSnapshot:
    case Verb::kMetrics:
    case Verb::kHealth:
      break;
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("malformed frame: trailing bytes");
  }
  return request;
}

std::vector<uint8_t> EncodeResponse(const Response& response) {
  std::vector<uint8_t> out;
  PutVerbAndTraceHeader(&out, response.verb, response.trace_id,
                        response.server_seconds);
  Put<uint8_t>(&out, static_cast<uint8_t>(response.status.code()));
  if (!response.status.ok()) {
    const std::string& msg = response.status.message();
    Put<uint32_t>(&out, static_cast<uint32_t>(msg.size()));
    PutBytes(&out, msg);
    return out;
  }
  switch (response.verb) {
    case Verb::kIngest:
      Put<uint64_t>(&out, response.epoch);
      break;
    case Verb::kQuery:
      Put<uint64_t>(&out, response.query.epoch);
      Put<uint8_t>(&out, static_cast<uint8_t>(response.query.kind));
      Put<uint8_t>(&out, response.query.has_score ? 1 : 0);
      if (response.query.has_score) {
        Put<double>(&out, response.query.score);
      }
      break;
    case Verb::kStats: {
      const StatsAnswer& s = response.stats;
      Put<uint64_t>(&out, s.epoch);
      Put<uint64_t>(&out, s.num_points);
      Put<uint64_t>(&out, s.num_core);
      Put<uint64_t>(&out, s.num_cells);
      Put<uint64_t>(&out, s.num_outliers);
      Put<uint64_t>(&out, s.admission_rejections);
      Put<double>(&out, s.uptime_seconds);
      Put<uint64_t>(&out, s.live_points);
      Put<uint64_t>(&out, s.window_begin);
      Put<uint64_t>(&out, s.queue_depth);
      Put<double>(&out, s.ttl_seconds);
      Put<uint64_t>(&out, s.shards);
      Put<uint32_t>(&out, static_cast<uint32_t>(s.shard_rows.size()));
      for (const ShardStatsRow& row : s.shard_rows) {
        Put<uint64_t>(&out, row.shard);
        Put<uint64_t>(&out, row.points);
        Put<uint64_t>(&out, row.epoch);
        Put<uint64_t>(&out, row.queue_depth);
      }
      Put<uint32_t>(&out, static_cast<uint32_t>(s.phases.size()));
      for (const StatsRow& row : s.phases) {
        PutString(&out, row.name);
        Put<double>(&out, row.seconds);
        Put<uint64_t>(&out, row.distance_comps);
        Put<uint64_t>(&out, row.records);
      }
      Put<uint32_t>(&out, static_cast<uint32_t>(s.latencies.size()));
      for (const LatencyRow& row : s.latencies) {
        PutString(&out, row.verb);
        Put<uint64_t>(&out, row.count);
        Put<double>(&out, row.p50_seconds);
        Put<double>(&out, row.p99_seconds);
        Put<double>(&out, row.p999_seconds);
      }
      break;
    }
    case Verb::kSnapshot: {
      const SnapshotAnswer& s = response.snapshot;
      Put<uint64_t>(&out, s.epoch);
      Put<uint64_t>(&out, s.num_core);
      Put<uint64_t>(&out, s.num_cells);
      Put<uint64_t>(&out, static_cast<uint64_t>(s.kinds.size()));
      for (core::PointKind kind : s.kinds) {
        Put<uint8_t>(&out, static_cast<uint8_t>(kind));
      }
      // Alive mask, parallel to kinds (same length, no second count).
      for (size_t i = 0; i < s.kinds.size(); ++i) {
        Put<uint8_t>(&out, i < s.alive.size() ? (s.alive[i] ? 1 : 0) : 1);
      }
      break;
    }
    case Verb::kMetrics: {
      const std::string& text = response.metrics.text;
      Put<uint32_t>(&out, static_cast<uint32_t>(text.size()));
      PutBytes(&out, text);
      break;
    }
    case Verb::kConfigure:
      Put<double>(&out, response.configure.ttl_seconds);
      break;
    case Verb::kTrace: {
      const std::string& json = response.trace.json;
      Put<uint32_t>(&out, static_cast<uint32_t>(json.size()));
      PutBytes(&out, json);
      Put<uint64_t>(&out, response.trace.spans_retained);
      Put<uint64_t>(&out, response.trace.spans_dropped);
      break;
    }
    case Verb::kHealth: {
      const HealthAnswer& h = response.health;
      Put<uint8_t>(&out, static_cast<uint8_t>(h.state));
      Put<uint8_t>(&out, static_cast<uint8_t>(h.recovery));
      PutString(&out, h.reason);
      Put<uint64_t>(&out, h.collections);
      Put<uint64_t>(&out, h.rss_bytes);
      Put<uint64_t>(&out, h.open_fds);
      Put<uint64_t>(&out, h.threads);
      Put<double>(&out, h.uptime_seconds);
      break;
    }
  }
  return out;
}

Result<Response> DecodeResponse(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  Response response;
  DBSCOUT_ASSIGN_OR_RETURN(const VerbAndTraceHeader head,
                           ReadVerbAndTraceHeader(&reader));
  response.verb = head.verb;
  response.trace_id = head.trace_id;
  response.server_seconds = head.seconds;
  DBSCOUT_ASSIGN_OR_RETURN(const uint8_t code, reader.Read<uint8_t>());
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument(StrFormat("unknown status code %u", code));
  }
  if (code != 0) {
    DBSCOUT_ASSIGN_OR_RETURN(const uint32_t msg_len, reader.Read<uint32_t>());
    if (msg_len > kMaxFramePayload) {
      return Status::InvalidArgument("oversized status message");
    }
    std::string msg;
    msg.reserve(msg_len);
    for (uint32_t i = 0; i < msg_len; ++i) {
      DBSCOUT_ASSIGN_OR_RETURN(const uint8_t c, reader.Read<uint8_t>());
      msg.push_back(static_cast<char>(c));
    }
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("malformed frame: trailing bytes");
    }
    response.status = Status(static_cast<StatusCode>(code), std::move(msg));
    return response;
  }
  switch (response.verb) {
    case Verb::kIngest: {
      DBSCOUT_ASSIGN_OR_RETURN(response.epoch, reader.Read<uint64_t>());
      break;
    }
    case Verb::kQuery: {
      DBSCOUT_ASSIGN_OR_RETURN(response.query.epoch, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(const uint8_t kind, reader.Read<uint8_t>());
      DBSCOUT_ASSIGN_OR_RETURN(response.query.kind, CheckKind(kind));
      DBSCOUT_ASSIGN_OR_RETURN(const uint8_t has_score,
                               reader.Read<uint8_t>());
      response.query.has_score = has_score != 0;
      if (response.query.has_score) {
        DBSCOUT_ASSIGN_OR_RETURN(response.query.score, reader.Read<double>());
      }
      break;
    }
    case Verb::kStats: {
      StatsAnswer& s = response.stats;
      DBSCOUT_ASSIGN_OR_RETURN(s.epoch, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.num_points, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.num_core, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.num_cells, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.num_outliers, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.admission_rejections,
                               reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.uptime_seconds, reader.Read<double>());
      DBSCOUT_ASSIGN_OR_RETURN(s.live_points, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.window_begin, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.queue_depth, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.ttl_seconds, reader.Read<double>());
      DBSCOUT_ASSIGN_OR_RETURN(s.shards, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(const uint32_t shard_rows,
                               reader.Read<uint32_t>());
      for (uint32_t i = 0; i < shard_rows; ++i) {
        ShardStatsRow row;
        DBSCOUT_ASSIGN_OR_RETURN(row.shard, reader.Read<uint64_t>());
        DBSCOUT_ASSIGN_OR_RETURN(row.points, reader.Read<uint64_t>());
        DBSCOUT_ASSIGN_OR_RETURN(row.epoch, reader.Read<uint64_t>());
        DBSCOUT_ASSIGN_OR_RETURN(row.queue_depth, reader.Read<uint64_t>());
        s.shard_rows.push_back(row);
      }
      DBSCOUT_ASSIGN_OR_RETURN(const uint32_t rows, reader.Read<uint32_t>());
      for (uint32_t i = 0; i < rows; ++i) {
        StatsRow row;
        DBSCOUT_ASSIGN_OR_RETURN(row.name,
                                 reader.ReadString(kMaxCollectionName));
        DBSCOUT_ASSIGN_OR_RETURN(row.seconds, reader.Read<double>());
        DBSCOUT_ASSIGN_OR_RETURN(row.distance_comps, reader.Read<uint64_t>());
        DBSCOUT_ASSIGN_OR_RETURN(row.records, reader.Read<uint64_t>());
        s.phases.push_back(std::move(row));
      }
      DBSCOUT_ASSIGN_OR_RETURN(const uint32_t lat_rows,
                               reader.Read<uint32_t>());
      for (uint32_t i = 0; i < lat_rows; ++i) {
        LatencyRow row;
        DBSCOUT_ASSIGN_OR_RETURN(row.verb,
                                 reader.ReadString(kMaxCollectionName));
        DBSCOUT_ASSIGN_OR_RETURN(row.count, reader.Read<uint64_t>());
        DBSCOUT_ASSIGN_OR_RETURN(row.p50_seconds, reader.Read<double>());
        DBSCOUT_ASSIGN_OR_RETURN(row.p99_seconds, reader.Read<double>());
        DBSCOUT_ASSIGN_OR_RETURN(row.p999_seconds, reader.Read<double>());
        s.latencies.push_back(std::move(row));
      }
      break;
    }
    case Verb::kSnapshot: {
      SnapshotAnswer& s = response.snapshot;
      DBSCOUT_ASSIGN_OR_RETURN(s.epoch, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.num_core, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(s.num_cells, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(const uint64_t count, reader.Read<uint64_t>());
      if (count > kMaxFramePayload) {
        return Status::InvalidArgument("oversized snapshot");
      }
      s.kinds.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        DBSCOUT_ASSIGN_OR_RETURN(const uint8_t kind, reader.Read<uint8_t>());
        DBSCOUT_ASSIGN_OR_RETURN(const core::PointKind checked,
                                 CheckKind(kind));
        s.kinds.push_back(checked);
      }
      s.alive.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        DBSCOUT_ASSIGN_OR_RETURN(const uint8_t live, reader.Read<uint8_t>());
        if (live > 1) {
          return Status::InvalidArgument("malformed alive mask");
        }
        s.alive.push_back(live);
      }
      break;
    }
    case Verb::kMetrics: {
      DBSCOUT_ASSIGN_OR_RETURN(const uint32_t len, reader.Read<uint32_t>());
      if (len > kMaxFramePayload) {
        return Status::InvalidArgument("oversized metrics text");
      }
      DBSCOUT_ASSIGN_OR_RETURN(response.metrics.text, reader.ReadBytes(len));
      break;
    }
    case Verb::kConfigure: {
      DBSCOUT_ASSIGN_OR_RETURN(response.configure.ttl_seconds,
                               reader.Read<double>());
      break;
    }
    case Verb::kTrace: {
      DBSCOUT_ASSIGN_OR_RETURN(const uint32_t len, reader.Read<uint32_t>());
      if (len > kMaxFramePayload) {
        return Status::InvalidArgument("oversized trace dump");
      }
      DBSCOUT_ASSIGN_OR_RETURN(response.trace.json, reader.ReadBytes(len));
      DBSCOUT_ASSIGN_OR_RETURN(response.trace.spans_retained,
                               reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(response.trace.spans_dropped,
                               reader.Read<uint64_t>());
      break;
    }
    case Verb::kHealth: {
      HealthAnswer& h = response.health;
      DBSCOUT_ASSIGN_OR_RETURN(const uint8_t state, reader.Read<uint8_t>());
      if (state > static_cast<uint8_t>(HealthState::kDegraded)) {
        return Status::InvalidArgument(
            StrFormat("unknown health state %u", state));
      }
      h.state = static_cast<HealthState>(state);
      DBSCOUT_ASSIGN_OR_RETURN(const uint8_t recovery, reader.Read<uint8_t>());
      if (recovery > static_cast<uint8_t>(RecoveryState::kFailed)) {
        return Status::InvalidArgument(
            StrFormat("unknown recovery state %u", recovery));
      }
      h.recovery = static_cast<RecoveryState>(recovery);
      DBSCOUT_ASSIGN_OR_RETURN(h.reason, reader.ReadString(1024));
      DBSCOUT_ASSIGN_OR_RETURN(h.collections, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(h.rss_bytes, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(h.open_fds, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(h.threads, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(h.uptime_seconds, reader.Read<double>());
      break;
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("malformed frame: trailing bytes");
  }
  return response;
}

}  // namespace dbscout::service

#ifndef DBSCOUT_SERVICE_PROTOCOL_H_
#define DBSCOUT_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/detection.h"

namespace dbscout::service {

/// The verbs of the detection service. One frame carries one request
/// or one response; a connection is a sequence of request/response pairs.
enum class Verb : uint8_t {
  kIngest = 1,     // append a batch of points to a collection
  kQuery = 2,      // label of point-id / fresh probe point, optional score
  kStats = 3,      // phase counters and collection counts
  kSnapshot = 4,   // consistent full labeling at one epoch
  kMetrics = 5,    // Prometheus text-format scrape of the whole service
  kConfigure = 6,  // per-collection sliding-window TTL
};

/// Frames are a u32 little-endian payload length followed by the payload.
/// The length cap bounds per-session buffering; a SNAPSHOT of ~60M points
/// or an INGEST batch of ~1M 8-d points fits. Larger workloads page
/// through multiple requests.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Collection names are short identifiers, not blobs.
inline constexpr size_t kMaxCollectionName = 256;

/// One decoded request. `verb` selects which of the per-verb fields are
/// meaningful; the unused ones stay empty.
struct Request {
  Verb verb = Verb::kStats;
  std::string collection;

  // INGEST: `count` points of `dims` coordinates, row-major.
  uint16_t dims = 0;
  std::vector<double> coords;

  // QUERY.
  bool query_by_id = false;
  uint32_t query_id = 0;
  std::vector<double> query_point;  // when !query_by_id
  bool want_score = false;

  // CONFIGURE: sliding-window TTL for the collection; 0 turns the window
  // off (append-only).
  double ttl_seconds = 0.0;
};

/// One row of phase/work counters in a STATS response (PhaseStats shape).
struct StatsRow {
  std::string name;
  double seconds = 0.0;
  uint64_t distance_comps = 0;
  uint64_t records = 0;

  friend bool operator==(const StatsRow&, const StatsRow&) = default;
};

/// One per-shard row in a STATS response: how the collection's points
/// are spread over its detector shards. `points` counts what the shard
/// holds (owned points plus ghost replicas); `epoch` is the shard-local
/// insertion count; `queue_depth` is the shard apply loop's live depth.
struct ShardStatsRow {
  uint64_t shard = 0;
  uint64_t points = 0;
  uint64_t epoch = 0;
  uint64_t queue_depth = 0;

  friend bool operator==(const ShardStatsRow&, const ShardStatsRow&) =
      default;
};

/// QUERY result payload.
struct QueryAnswer {
  core::PointKind kind = core::PointKind::kOutlier;
  uint64_t epoch = 0;
  bool has_score = false;
  double score = 0.0;
};

/// STATS result payload. `epoch` is per-collection (the snapshot the
/// answer was built from); `uptime_seconds` is service-wide, so a STATS
/// answer is self-describing about both the collection's position and the
/// service's age.
struct StatsAnswer {
  uint64_t epoch = 0;
  uint64_t num_points = 0;
  uint64_t num_core = 0;
  uint64_t num_cells = 0;
  uint64_t num_outliers = 0;
  /// INGEST requests shed by admission control since service start.
  uint64_t admission_rejections = 0;
  /// Seconds since the service was constructed (monotonic clock).
  double uptime_seconds = 0.0;
  /// Points inserted and not yet expired/removed (== num_points while the
  /// collection is append-only).
  uint64_t live_points = 0;
  /// First epoch still inside the sliding window; ids below it are expired.
  uint64_t window_begin = 0;
  /// Ingest batches of this collection waiting in the apply queue.
  uint64_t queue_depth = 0;
  /// The collection's sliding-window TTL (0 = append-only).
  double ttl_seconds = 0.0;
  /// Detector shards backing the collection (1 = unsharded layout).
  uint64_t shards = 1;
  /// One row per shard (present for single-shard collections too; clients
  /// typically render them only when shards > 1).
  std::vector<ShardStatsRow> shard_rows;
  std::vector<StatsRow> phases;
};

/// SNAPSHOT result payload: the exact labeling of the first `epoch` points.
/// `alive` parallels `kinds`: 0 marks points removed or expired out of the
/// sliding window (their kinds entry is the last label they carried).
struct SnapshotAnswer {
  uint64_t epoch = 0;
  uint64_t num_core = 0;
  uint64_t num_cells = 0;
  std::vector<core::PointKind> kinds;
  std::vector<uint8_t> alive;
};

/// METRICS result payload: the Prometheus text-format exposition of the
/// service's metric registry (opaque to the protocol layer).
struct MetricsAnswer {
  std::string text;
};

/// CONFIGURE result payload: echoes the TTL now in effect.
struct ConfigureAnswer {
  double ttl_seconds = 0.0;
};

/// One decoded response. `status` is the service-level outcome (kUnavailable
/// for shed load, kNotFound for unknown collections, ...); the per-verb
/// payload is meaningful only when status.ok().
struct Response {
  Verb verb = Verb::kStats;
  Status status;
  uint64_t epoch = 0;  // INGEST: epoch right after the batch was applied
  QueryAnswer query;
  StatsAnswer stats;
  SnapshotAnswer snapshot;
  MetricsAnswer metrics;
  ConfigureAnswer configure;
};

/// Serializes a request/response payload (no frame length prefix; the
/// transport adds it). Encoding is little-endian and platform-independent.
std::vector<uint8_t> EncodeRequest(const Request& request);
std::vector<uint8_t> EncodeResponse(const Response& response);

/// Parses a payload; fails with InvalidArgument on truncated or malformed
/// bytes (never reads out of bounds, never trusts embedded lengths).
Result<Request> DecodeRequest(std::span<const uint8_t> payload);
Result<Response> DecodeResponse(std::span<const uint8_t> payload);

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_PROTOCOL_H_

#ifndef DBSCOUT_SERVICE_PROTOCOL_H_
#define DBSCOUT_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/detection.h"

namespace dbscout::service {

/// The verbs of the detection service. One frame carries one request
/// or one response; a connection is a sequence of request/response pairs.
enum class Verb : uint8_t {
  kIngest = 1,     // append a batch of points to a collection
  kQuery = 2,      // label of point-id / fresh probe point, optional score
  kStats = 3,      // phase counters and collection counts
  kSnapshot = 4,   // consistent full labeling at one epoch
  kMetrics = 5,    // Prometheus text-format scrape of the whole service
  kConfigure = 6,  // per-collection sliding-window TTL
  kTrace = 7,      // dump the live span ring buffer (Chrome-trace JSON)
  kHealth = 8,     // readiness/degradation state + process self-gauges
};

/// Number of Verb values plus the unused 0 slot — array-indexing bound for
/// per-verb tables (e.g. the request-latency histograms).
inline constexpr size_t kNumVerbSlots = 9;

/// High bit of the wire verb byte: when set, a trace header (u64 trace id
/// + f64 origin timestamp) immediately follows the verb byte. Verbs only
/// ever occupy the low 7 bits, so old frames — which never set the bit —
/// decode byte-identically, and a pre-trace decoder that receives a
/// flagged frame fails cleanly with "unknown verb" instead of
/// misinterpreting the header as payload. Responses carry the header only
/// when the request did, so old clients never see it.
inline constexpr uint8_t kTraceHeaderFlag = 0x80;

/// Request-scoped trace context: a 64-bit id linking every span a request
/// produces (decode, admission, queue-wait, shard applies, WAL commit,
/// snapshot publish, reply encode) plus the originator's send timestamp
/// (seconds on the originator's clock; carried for client-side skew
/// accounting, never compared against server clocks). trace_id 0 means
/// "no context": the header is omitted on the wire and the server stamps
/// a fresh id on arrival.
struct RequestContext {
  uint64_t trace_id = 0;
  double origin_seconds = 0.0;

  friend bool operator==(const RequestContext&,
                         const RequestContext&) = default;
};

/// Returns a fresh nonzero trace id: a splitmix64 hash of a process-wide
/// atomic counter (seeded with address-space entropy), so ids from
/// different processes collide with only generic birthday probability.
/// Wait-free; used by the server to self-stamp untraced requests when a
/// trace collector is attached, and by clients that opt into stamping.
uint64_t NextTraceId();

/// Frames are a u32 little-endian payload length followed by the payload.
/// The length cap bounds per-session buffering; a SNAPSHOT of ~60M points
/// or an INGEST batch of ~1M 8-d points fits. Larger workloads page
/// through multiple requests.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Collection names are short identifiers, not blobs.
inline constexpr size_t kMaxCollectionName = 256;

/// One decoded request. `verb` selects which of the per-verb fields are
/// meaningful; the unused ones stay empty.
struct Request {
  Verb verb = Verb::kStats;
  std::string collection;

  /// Optional trace context (see RequestContext); encoded on the wire
  /// only when context.trace_id != 0.
  RequestContext context;

  // INGEST: `count` points of `dims` coordinates, row-major.
  uint16_t dims = 0;
  std::vector<double> coords;

  // QUERY.
  bool query_by_id = false;
  uint32_t query_id = 0;
  std::vector<double> query_point;  // when !query_by_id
  bool want_score = false;

  // CONFIGURE: sliding-window TTL for the collection; 0 turns the window
  // off (append-only).
  double ttl_seconds = 0.0;

  // TRACE: span selection. `collection` doubles as the scope filter
  // (empty = all collections); `trace_name_filter` matches span name or
  // category; `trace_id_filter` selects one request's spans;
  // `trace_limit` keeps only the most recent N (0 = all retained).
  std::string trace_name_filter;
  uint64_t trace_id_filter = 0;
  uint32_t trace_limit = 0;
};

/// One row of phase/work counters in a STATS response (PhaseStats shape).
struct StatsRow {
  std::string name;
  double seconds = 0.0;
  uint64_t distance_comps = 0;
  uint64_t records = 0;

  friend bool operator==(const StatsRow&, const StatsRow&) = default;
};

/// One per-shard row in a STATS response: how the collection's points
/// are spread over its detector shards. `points` counts what the shard
/// holds (owned points plus ghost replicas); `epoch` is the shard-local
/// insertion count; `queue_depth` is the shard apply loop's live depth.
struct ShardStatsRow {
  uint64_t shard = 0;
  uint64_t points = 0;
  uint64_t epoch = 0;
  uint64_t queue_depth = 0;

  friend bool operator==(const ShardStatsRow&, const ShardStatsRow&) =
      default;
};

/// One per-verb latency summary row in a STATS response.
struct LatencyRow {
  std::string verb;  // verb label, e.g. "ingest"
  uint64_t count = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;

  friend bool operator==(const LatencyRow&, const LatencyRow&) = default;
};

/// QUERY result payload.
struct QueryAnswer {
  core::PointKind kind = core::PointKind::kOutlier;
  uint64_t epoch = 0;
  bool has_score = false;
  double score = 0.0;
};

/// STATS result payload. `epoch` is per-collection (the snapshot the
/// answer was built from); `uptime_seconds` is service-wide, so a STATS
/// answer is self-describing about both the collection's position and the
/// service's age.
struct StatsAnswer {
  uint64_t epoch = 0;
  uint64_t num_points = 0;
  uint64_t num_core = 0;
  uint64_t num_cells = 0;
  uint64_t num_outliers = 0;
  /// INGEST requests shed by admission control since service start.
  uint64_t admission_rejections = 0;
  /// Seconds since the service was constructed (monotonic clock).
  double uptime_seconds = 0.0;
  /// Points inserted and not yet expired/removed (== num_points while the
  /// collection is append-only).
  uint64_t live_points = 0;
  /// First epoch still inside the sliding window; ids below it are expired.
  uint64_t window_begin = 0;
  /// Ingest batches of this collection waiting in the apply queue.
  uint64_t queue_depth = 0;
  /// The collection's sliding-window TTL (0 = append-only).
  double ttl_seconds = 0.0;
  /// Detector shards backing the collection (1 = unsharded layout).
  uint64_t shards = 1;
  /// One row per shard (present for single-shard collections too; clients
  /// typically render them only when shards > 1).
  std::vector<ShardStatsRow> shard_rows;
  std::vector<StatsRow> phases;
  /// Service-wide request latency quantiles per verb, from the
  /// dbscout_request_seconds histograms (log-bucket interpolation, so
  /// p999 is an estimate, not an exact order statistic).
  std::vector<LatencyRow> latencies;
};

/// SNAPSHOT result payload: the exact labeling of the first `epoch` points.
/// `alive` parallels `kinds`: 0 marks points removed or expired out of the
/// sliding window (their kinds entry is the last label they carried).
struct SnapshotAnswer {
  uint64_t epoch = 0;
  uint64_t num_core = 0;
  uint64_t num_cells = 0;
  std::vector<core::PointKind> kinds;
  std::vector<uint8_t> alive;
};

/// METRICS result payload: the Prometheus text-format exposition of the
/// service's metric registry (opaque to the protocol layer).
struct MetricsAnswer {
  std::string text;
};

/// CONFIGURE result payload: echoes the TTL now in effect.
struct ConfigureAnswer {
  double ttl_seconds = 0.0;
};

/// TRACE result payload: the filtered span dump as Chrome trace-event
/// JSON (opaque to the protocol layer), plus ring-buffer accounting so
/// clients can tell a quiet server from a wrapped buffer.
struct TraceAnswer {
  std::string json;
  uint64_t spans_retained = 0;  // ring occupancy at dump time
  uint64_t spans_dropped = 0;   // overwritten by wraparound since start
};

/// Service liveness summary (HEALTH verb).
enum class HealthState : uint8_t {
  kReady = 0,
  kNotReady = 1,  // startup recovery still replaying the WAL
  kDegraded = 2,  // serving, but WAL failures / shedding / queue lag
};

/// Where startup crash recovery stands. kNone = no --data-dir.
enum class RecoveryState : uint8_t {
  kNone = 0,
  kRecovering = 1,
  kDone = 2,
  kFailed = 3,
};

/// HEALTH result payload: readiness plus process self-gauges (Linux
/// /proc-derived; zero where the platform cannot say).
struct HealthAnswer {
  HealthState state = HealthState::kReady;
  RecoveryState recovery = RecoveryState::kNone;
  std::string reason;  // human-readable cause when not kReady
  uint64_t collections = 0;
  uint64_t rss_bytes = 0;
  uint64_t open_fds = 0;
  uint64_t threads = 0;
  double uptime_seconds = 0.0;
};

/// One decoded response. `status` is the service-level outcome (kUnavailable
/// for shed load, kNotFound for unknown collections, ...); the per-verb
/// payload is meaningful only when status.ok().
struct Response {
  Verb verb = Verb::kStats;
  Status status;
  /// Echo of the request's trace context: trace_id is the id the server
  /// used for this request's spans (0 = request carried none, header
  /// omitted on the wire); server_seconds is the server-side dispatch
  /// time, so clients can split wire time from service time.
  uint64_t trace_id = 0;
  double server_seconds = 0.0;
  uint64_t epoch = 0;  // INGEST: epoch right after the batch was applied
  QueryAnswer query;
  StatsAnswer stats;
  SnapshotAnswer snapshot;
  MetricsAnswer metrics;
  ConfigureAnswer configure;
  TraceAnswer trace;
  HealthAnswer health;
};

/// Serializes a request/response payload (no frame length prefix; the
/// transport adds it). Encoding is little-endian and platform-independent.
std::vector<uint8_t> EncodeRequest(const Request& request);
std::vector<uint8_t> EncodeResponse(const Response& response);

/// Parses a payload; fails with InvalidArgument on truncated or malformed
/// bytes (never reads out of bounds, never trusts embedded lengths).
Result<Request> DecodeRequest(std::span<const uint8_t> payload);
Result<Response> DecodeResponse(std::span<const uint8_t> payload);

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_PROTOCOL_H_

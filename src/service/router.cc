#include "service/router.h"

#include <cmath>
#include <map>
#include <utility>

#include "common/str_util.h"
#include "common/timer.h"

namespace dbscout::service {

// ---------------------------------------------------------------------------
// MergedSnapshot

const core::IncrementalSnapshot& MergedSnapshot::Home(uint32_t i,
                                                      uint32_t* local) const {
  if (single_) {
    *local = i;
    return *shards_[0];
  }
  const PointLoc loc = locs_[i];
  *local = loc.local;
  return *shards_[loc.shard];
}

size_t MergedSnapshot::live_points() const {
  return single_ ? shards_[0]->live_points() : live_;
}

size_t MergedSnapshot::num_cells() const {
  size_t cells = 0;
  for (const auto& shard : shards_) {
    cells += shard->num_cells();
  }
  return cells;
}

size_t MergedSnapshot::num_core() const {
  std::call_once(counts_once_, [this] {
    if (single_) {
      num_core_ = shards_[0]->num_core();
      num_outliers_ = shards_[0]->num_outliers();
      return;
    }
    for (uint64_t i = 0; i < epoch_; ++i) {
      const PointLoc loc = locs_[i];
      const core::IncrementalSnapshot& home = *shards_[loc.shard];
      if (!home.IsAlive(loc.local)) {
        continue;
      }
      const core::PointKind kind = home.KindOf(loc.local);
      if (kind == core::PointKind::kCore) {
        ++num_core_;
      } else if (kind == core::PointKind::kOutlier) {
        ++num_outliers_;
      }
    }
  });
  return num_core_;
}

size_t MergedSnapshot::num_outliers() const {
  num_core();  // shares the lazy count
  return num_outliers_;
}

core::PointKind MergedSnapshot::KindOf(uint32_t i) const {
  uint32_t local = 0;
  const core::IncrementalSnapshot& home = Home(i, &local);
  return home.KindOf(local);
}

bool MergedSnapshot::IsAlive(uint32_t i) const {
  uint32_t local = 0;
  const core::IncrementalSnapshot& home = Home(i, &local);
  return home.IsAlive(local);
}

std::vector<core::PointKind> MergedSnapshot::Kinds() const {
  if (single_) {
    return shards_[0]->Kinds();
  }
  std::vector<core::PointKind> kinds(epoch_);
  for (uint64_t i = 0; i < epoch_; ++i) {
    kinds[i] = KindOf(static_cast<uint32_t>(i));
  }
  return kinds;
}

double MergedSnapshot::NearestCoreDistance(uint32_t i,
                                           uint64_t* distance_comps) const {
  uint32_t local = 0;
  const core::IncrementalSnapshot& home = Home(i, &local);
  return home.NearestCoreDistance(local, distance_comps);
}

Result<core::ProbeResult> MergedSnapshot::Classify(
    std::span<const double> point, bool want_score) const {
  // Route by the probe's dim-0 slab; the home shard holds every live
  // point within the neighbor-cell horizon of its owned slabs. Malformed
  // probes (wrong dims) fall through to shard 0, whose Classify reports
  // the error; before the first batch plans regions there are no points
  // and every shard answers identically.
  size_t shard = 0;
  if (!single_ && plan_ != nullptr && point.size() == dims_) {
    shard = plan_->RegionOf(grid::SlabOfCoord(point[0], side_));
  }
  return shards_[shard]->Classify(point, want_score);
}

// ---------------------------------------------------------------------------
// ShardRouter

Result<ShardRouter> ShardRouter::Create(const std::string& collection,
                                        size_t dims,
                                        const core::Params& params,
                                        size_t num_shards,
                                        obs::Registry* registry) {
  if (num_shards == 0) {
    num_shards = 1;
  }
  ShardRouter router;
  router.dims_ = dims;
  router.side_ = params.eps / std::sqrt(static_cast<double>(dims));
  router.next_local_.assign(num_shards, 0);
  for (size_t s = 0; s < num_shards; ++s) {
    DBSCOUT_ASSIGN_OR_RETURN(core::IncrementalDetector detector,
                             core::IncrementalDetector::Create(dims, params));
    router.shards_.push_back(
        std::make_unique<DetectorShard>(s, std::move(detector)));
    router.shard_points_.push_back(registry->GetGauge(
        "dbscout_shard_points",
        "Points held by one detector shard (owned + ghost replicas)",
        {{"collection", collection}, {"shard", std::to_string(s)}}));
  }
  router.shard_apply_seconds_ = registry->GetHistogram(
      "dbscout_shard_apply_seconds",
      "Per-shard batch apply latency within one epoch-barriered pass");
  router.ghost_points_total_ = registry->GetCounter(
      "dbscout_ghost_points_total",
      "Ghost replicas created by the shard router's halo exchange");
  router.ghost_bytes_total_ = registry->GetCounter(
      "dbscout_ghost_bytes_total",
      "Coordinate bytes replicated into ghost halos");
  router.ghost_exchange_seconds_ = registry->GetHistogram(
      "dbscout_ghost_exchange_seconds",
      "Routing + ghost-exchange (scatter) latency per apply pass");
  return router;
}

uint64_t ShardRouter::distance_computations() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->detector().distance_computations();
  }
  return total;
}

Status ShardRouter::AdoptPlan(const grid::RegionPlan& plan) {
  if (plan_ != nullptr) {
    return Status::FailedPrecondition("router already has a region plan");
  }
  if (epoch_ != 0) {
    return Status::FailedPrecondition(
        "region plan can only be adopted before the first ingest");
  }
  if (plan.num_regions() > shards_.size()) {
    return Status::FailedPrecondition(StrFormat(
        "recorded region plan has %zu regions but the service runs %zu "
        "shards; restart with --shards >= %zu",
        plan.num_regions(), shards_.size(), plan.num_regions()));
  }
  plan_ = std::make_shared<const grid::RegionPlan>(plan);
  return Status::OK();
}

void ShardRouter::EnsurePlan(const PointSet& adds) {
  if (plan_ != nullptr || adds.size() == 0) {
    return;
  }
  std::map<int64_t, uint64_t> histogram;
  for (size_t i = 0; i < adds.size(); ++i) {
    ++histogram[grid::SlabOfCoord(adds[i][0], side_)];
  }
  plan_ = std::make_shared<const grid::RegionPlan>(
      grid::RegionPlan::Build(histogram, shards_.size(), dims_));
}

Status ShardRouter::ApplyPass(const PointSet& adds, uint64_t expire_begin,
                              uint64_t expire_end, ThreadPool* inner_pool,
                              PassStats* stats) {
  const bool single = shards_.size() == 1;
  if (!single) {
    EnsurePlan(adds);
  }
  std::vector<DetectorShard::Work> works(shards_.size());
  for (auto& work : works) {
    work.adds = PointSet(dims_);
    work.trace_id = pass_trace_id_;
  }

  // Removals: the home copy plus every ghost replica of each expired id.
  stats->expired = expire_end - expire_begin;
  for (uint64_t id = expire_begin; id < expire_end; ++id) {
    const auto id32 = static_cast<uint32_t>(id);
    if (single) {
      works[0].removals.push_back(id32);
      continue;
    }
    const PointLoc home = locs_[id32];
    works[home.shard].removals.push_back(home.local);
    const auto ghost = ghosts_.find(id32);
    if (ghost != ghosts_.end()) {
      for (const PointLoc& replica : ghost->second) {
        works[replica.shard].removals.push_back(replica.local);
      }
      ghosts_.erase(ghost);
    }
  }

  // Scatter: route every new point to its home region and replicate it
  // into each region whose halo covers its slab (the ghost exchange).
  WallTimer scatter_timer;
  for (size_t i = 0; i < adds.size(); ++i) {
    const std::span<const double> row = adds[i];
    if (single) {
      works[0].adds.Add(row);
      ++epoch_;
      continue;
    }
    const int64_t slab = grid::SlabOfCoord(row[0], side_);
    covering_scratch_.clear();
    plan_->CoveringRegions(slab, &covering_scratch_);
    const auto gid = static_cast<uint32_t>(epoch_);
    const size_t home = covering_scratch_[0];
    locs_.PushBack(PointLoc{next_local_[home]++, static_cast<uint32_t>(home)});
    works[home].adds.Add(row);
    for (size_t k = 1; k < covering_scratch_.size(); ++k) {
      const size_t region = covering_scratch_[k];
      ghosts_[gid].push_back(
          PointLoc{next_local_[region]++, static_cast<uint32_t>(region)});
      works[region].adds.Add(row);
      ++stats->ghost_points;
    }
    ++epoch_;
  }
  stats->ghost_bytes = stats->ghost_points * dims_ * sizeof(double);
  stats->scatter_seconds = scatter_timer.ElapsedSeconds();
  // Emitted here (not after the barrier) so the span sits at its true
  // position on the timeline, before the shard_apply spans it feeds.
  if (!single && trace_ != nullptr && adds.size() > 0) {
    trace_->AddTracedSpan("ghost_exchange", "router", pass_trace_id_,
                          trace_scope_, stats->scatter_seconds,
                          stats->ghost_points);
  }
  live_ += adds.size();
  live_ -= stats->expired;

  // Dispatch to the shard loops, then barrier on every touched shard.
  // Untouched shards keep their previous snapshot, which still describes
  // their (unchanged) state exactly.
  std::vector<size_t> touched;
  for (size_t s = 0; s < works.size(); ++s) {
    if (works[s].adds.size() == 0 && works[s].removals.empty()) {
      continue;
    }
    touched.push_back(s);
    shards_[s]->BeginApply(std::move(works[s]),
                           single ? inner_pool : nullptr);
  }
  Status status = Status::OK();
  stats->shards_touched = touched.size();
  stats->apply_stats.shards = 0;
  for (const size_t s : touched) {
    const DetectorShard::Outcome& outcome = shards_[s]->AwaitApply();
    if (status.ok() && !outcome.status.ok()) {
      status = outcome.status;
    }
    stats->expire_seconds += outcome.remove_seconds;
    stats->remove_failures += outcome.remove_failures;
    if (single) {
      stats->apply_stats = outcome.apply_stats;
    } else if (works.size() > 1 && outcome.apply_seconds > 0) {
      stats->apply_stats.shards += 1;
      stats->apply_stats.shard_seconds.push_back(outcome.apply_seconds);
    }
    if (shard_apply_seconds_ != nullptr && outcome.apply_seconds > 0) {
      shard_apply_seconds_->Observe(outcome.apply_seconds);
    }
    if (shard_points_[s] != nullptr) {
      shard_points_[s]->Set(
          static_cast<int64_t>(shards_[s]->detector().live_points()));
    }
  }
  if (stats->apply_stats.shards == 0) {
    stats->apply_stats.shards = 1;
  }
  if (!single) {
    ghost_points_total_->Increment(stats->ghost_points);
    ghost_bytes_total_->Increment(stats->ghost_bytes);
    if (adds.size() > 0) {
      ghost_exchange_seconds_->Observe(stats->scatter_seconds);
    }
  }
  return status;
}

std::shared_ptr<const MergedSnapshot> ShardRouter::PublishableSnapshot() {
  std::shared_ptr<MergedSnapshot> merged(new MergedSnapshot());
  merged->shards_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    merged->shards_.push_back(shard->snapshot());
  }
  merged->single_ = shards_.size() == 1;
  if (!merged->single_) {
    merged->locs_ = locs_.Freeze();
  }
  merged->plan_ = plan_;
  merged->epoch_ = epoch_;
  merged->dims_ = dims_;
  merged->live_ = static_cast<size_t>(live_);
  merged->side_ = side_;
  return merged;
}

}  // namespace dbscout::service

#ifndef DBSCOUT_SERVICE_ROUTER_H_
#define DBSCOUT_SERVICE_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cow.h"
#include "common/result.h"
#include "common/status.h"
#include "core/incremental.h"
#include "data/point_set.h"
#include "grid/partition.h"
#include "obs/metrics.h"
#include "service/shard.h"

namespace dbscout::service {

/// Where a global point lives: which shard holds it and under which
/// shard-local insertion id.
struct PointLoc {
  uint32_t local = 0;
  uint32_t shard = 0;
};

/// An epoch-consistent merged view over all shard snapshots of one
/// collection: the read-side companion of ShardRouter. Presents the same
/// surface as IncrementalSnapshot (epoch, labels, alive mask, probes) in
/// GLOBAL insertion-id space; lookups route through the global-id ->
/// PointLoc table to the owning shard, whose labels for owned points are
/// exact by the ghost-halo argument (DESIGN.md section 14).
///
/// With one shard this is a thin wrapper over the single shard snapshot
/// (local ids == global ids), byte-for-byte identical answers to the
/// pre-shard service.
class MergedSnapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  size_t dims() const { return dims_; }
  size_t live_points() const;
  /// Live core / outlier counts over OWNED points (ghost replicas are
  /// never counted). Computed lazily on first use and cached.
  size_t num_core() const;
  size_t num_outliers() const;
  /// Sum of per-shard cell counts. With several shards, cells straddling
  /// a ghost halo are counted once per holding shard, so this is an upper
  /// bound on the distinct-cell count (exact with one shard).
  size_t num_cells() const;

  core::PointKind KindOf(uint32_t i) const;
  bool IsAlive(uint32_t i) const;
  std::vector<core::PointKind> Kinds() const;
  double NearestCoreDistance(uint32_t i, uint64_t* distance_comps) const;

  /// Probe classification, routed to the shard owning the probe's dim-0
  /// slab — which holds every live point within the neighbor-cell horizon
  /// of any slab it owns, so the answer matches the unsharded detector.
  Result<core::ProbeResult> Classify(std::span<const double> point,
                                     bool want_score) const;

  size_t num_shards() const { return shards_.size(); }
  /// Shard s's snapshot at this epoch (per-shard STATS rows).
  const core::IncrementalSnapshot& shard_view(size_t s) const {
    return *shards_[s];
  }

 private:
  friend class ShardRouter;
  MergedSnapshot() = default;

  const core::IncrementalSnapshot& Home(uint32_t i, uint32_t* local) const;

  std::vector<std::shared_ptr<const core::IncrementalSnapshot>> shards_;
  CowChunkedVector<PointLoc>::Frozen locs_;  // unused in single-shard mode
  std::shared_ptr<const grid::RegionPlan> plan_;  // null until first batch
  bool single_ = true;
  uint64_t epoch_ = 0;
  size_t dims_ = 0;
  size_t live_ = 0;
  double side_ = 0.0;

  mutable std::once_flag counts_once_;
  mutable size_t num_core_ = 0;
  mutable size_t num_outliers_ = 0;
};

/// Routes one collection's mutations to N detector shards and gathers
/// their snapshots back into MergedSnapshots. Cell space is partitioned
/// into contiguous dim-0 slab regions (RegionPlan, balanced over the first
/// batch's slab histogram); INGEST points go to their home region's shard
/// plus a ghost replica in every region within grid::HaloSlabs(d) slabs
/// (RegionPlan::CoveringRegions), which keeps every shard's owned labels —
/// and therefore the merged outlier set — exactly equal to a single
/// detector over the same stream.
///
/// Threading: Create() and all mutators (ApplyPass, PublishableSnapshot)
/// are coordinator-thread-only (the service apply loop). ApplyPass
/// scatters work to the shard loops and barriers on every touched shard
/// (DetectorShard::AwaitApply) before returning — the epoch barrier — so
/// PublishableSnapshot() always observes a quiescent, mutually consistent
/// set of shard snapshots. ValidatePoint and shard_queue_depth are safe
/// from any thread.
class ShardRouter {
 public:
  /// What one ApplyPass did, for the service's metrics and phase rows.
  struct PassStats {
    uint64_t ghost_points = 0;  // replicas created by this pass
    uint64_t ghost_bytes = 0;   // ghost_points * dims * sizeof(double)
    uint64_t expired = 0;       // owned points removed (window expiry)
    uint64_t remove_failures = 0;
    double scatter_seconds = 0;  // routing + ghost exchange (coordinator)
    double expire_seconds = 0;   // sum of shard removal segments
    size_t shards_touched = 0;
    core::ApplyStats apply_stats;  // merged over touched shards
  };

  /// Builds `num_shards` detector shards (min 1) and resolves the
  /// per-shard observability series against `registry`.
  static Result<ShardRouter> Create(const std::string& collection,
                                    size_t dims, const core::Params& params,
                                    size_t num_shards,
                                    obs::Registry* registry);

  ShardRouter(ShardRouter&&) = default;
  ShardRouter& operator=(ShardRouter&&) = default;

  /// Attaches a span sink (null detaches) to the router and every shard.
  /// The router emits a ghost_exchange span per multi-shard pass; the
  /// shards emit shard_apply spans on their loop threads. Coordinator
  /// only, between passes.
  void AttachTrace(obs::TraceCollector* trace, const std::string& scope) {
    trace_ = trace;
    trace_scope_ = scope;
    for (auto& shard : shards_) {
      shard->AttachTrace(trace, scope);
    }
  }

  /// Sets the request trace id the NEXT ApplyPass's spans are attributed
  /// to (0 = untraced). A setter rather than an ApplyPass parameter so
  /// replay and test call sites stay untouched. Coordinator only.
  void SetPassTraceId(uint64_t trace_id) { pass_trace_id_ = trace_id; }

  size_t dims() const { return dims_; }
  size_t num_shards() const { return shards_.size(); }
  /// Global insertion epoch (= points ever ingested). Coordinator only.
  uint64_t epoch() const { return epoch_; }
  /// Sum of shard distance-computation counters. Coordinator only, and
  /// only while quiescent (after the last pass's barrier).
  uint64_t distance_computations() const;

  Status ValidatePoint(std::span<const double> point) const {
    return shards_[0]->ValidatePoint(point);
  }
  uint64_t shard_queue_depth(size_t s) const {
    return shards_[s]->queue_depth();
  }

  /// One epoch-barriered pass: removes global ids [expire_begin,
  /// expire_end) — home copy and every ghost replica — and ingests `adds`
  /// (global ids epoch()..epoch()+adds.size()), scattering each point to
  /// its covering regions. Blocks until every touched shard has applied
  /// and republished its snapshot. `inner_pool` is forwarded to the
  /// single-shard fast path only; with several shards each detector runs
  /// its waves serially (see DetectorShard::BeginApply).
  Status ApplyPass(const PointSet& adds, uint64_t expire_begin,
                   uint64_t expire_end, ThreadPool* inner_pool,
                   PassStats* stats);

  /// Merged view of the current shard snapshots. Call after ApplyPass's
  /// barrier (or before any pass) for an epoch-consistent view.
  std::shared_ptr<const MergedSnapshot> PublishableSnapshot();

  /// The region plan, null until the first non-empty multi-shard pass
  /// builds it (always null in single-shard mode). Coordinator only. The
  /// storage layer records it so replay can AdoptPlan() the identical
  /// partition.
  const grid::RegionPlan* plan() const { return plan_.get(); }

  /// Installs a recorded plan before any point is ingested, so WAL
  /// replay routes every point to the same region the live run chose.
  /// Requires: epoch() == 0, no plan yet, and the plan's regions fit the
  /// shard count.
  Status AdoptPlan(const grid::RegionPlan& plan);

 private:
  ShardRouter() = default;

  /// Plans the region partition from the first non-empty batch's dim-0
  /// slab histogram. The plan is immutable once built.
  void EnsurePlan(const PointSet& adds);

  size_t dims_ = 0;
  double side_ = 0.0;
  obs::TraceCollector* trace_ = nullptr;  // coordinator-thread only
  std::string trace_scope_;
  uint64_t pass_trace_id_ = 0;
  std::shared_ptr<const grid::RegionPlan> plan_;
  std::vector<std::unique_ptr<DetectorShard>> shards_;

  // Multi-shard routing state (coordinator-thread only; locs_ is frozen
  // into every published snapshot).
  CowChunkedVector<PointLoc> locs_;
  std::unordered_map<uint32_t, std::vector<PointLoc>> ghosts_;
  std::vector<uint32_t> next_local_;
  uint64_t epoch_ = 0;
  uint64_t live_ = 0;
  std::vector<size_t> covering_scratch_;

  std::vector<obs::Gauge*> shard_points_;
  obs::Histogram* shard_apply_seconds_ = nullptr;
  obs::Counter* ghost_points_total_ = nullptr;
  obs::Counter* ghost_bytes_total_ = nullptr;
  obs::Histogram* ghost_exchange_seconds_ = nullptr;
};

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_ROUTER_H_

#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "service/frame_io.h"
#include "service/protocol.h"

namespace dbscout::service {

Result<std::unique_ptr<Server>> Server::Start(DetectionService* service,
                                              const ServerOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(
        StrFormat("socket: %s", ErrnoToString(errno).c_str()));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("bad listen address '%s'", options.host.c_str()));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Status::IoError(StrFormat("bind %s:%u: %s", options.host.c_str(),
                                  options.port, ErrnoToString(errno).c_str()));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status =
        Status::IoError(StrFormat("listen: %s", ErrnoToString(errno).c_str()));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        Status::IoError(StrFormat("getsockname: %s",
                                  ErrnoToString(errno).c_str()));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<Server>(new Server(
      service, fd, ntohs(bound.sin_port), options.max_sessions));
}

Server::Server(DetectionService* service, int listen_fd, uint16_t port,
               size_t max_sessions)
    : service_(service),
      listen_fd_(listen_fd),
      port_(port),
      max_sessions_(max_sessions),
      pool_(1 + max_sessions) {
  obs::Registry& registry = service_->registry();
  frame_bytes_in_ = registry.GetCounter(
      "dbscout_frame_bytes_in_total",
      "Request frame bytes received (payload + length prefix)");
  frame_bytes_out_ = registry.GetCounter(
      "dbscout_frame_bytes_out_total",
      "Response frame bytes sent (payload + length prefix)");
  sessions_shed_counter_ = registry.GetCounter(
      "dbscout_sessions_shed_total",
      "Connections closed because all session slots were busy");
  active_sessions_gauge_ =
      registry.GetGauge("dbscout_active_sessions", "Open TCP sessions");
  pool_.Submit([this] { AcceptLoop(); });
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  // Sessions and the accept loop poll with 100ms timeouts and re-check the
  // flag, so this converges within one tick per in-flight request.
  pool_.WaitIdle();
  ::close(listen_fd_);
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) {
      continue;  // timeout or EINTR; re-check stop
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    // Responses are single small frames; without TCP_NODELAY each one can
    // stall behind the client's delayed ACK (see WriteFrame).
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    if (active_sessions_.load(std::memory_order_acquire) >= max_sessions_) {
      // Full house: shed at the connection level rather than queueing
      // unbounded sessions. The client sees EOF before any response.
      sessions_shed_.fetch_add(1, std::memory_order_relaxed);
      sessions_shed_counter_->Increment();
      ::close(fd);
      continue;
    }
    active_sessions_.fetch_add(1, std::memory_order_acq_rel);
    active_sessions_gauge_->Add(1);
    pool_.Submit([this, fd] { Session(fd); });
  }
}

void Server::Session(int fd) {
  // A frame on the wire is its payload plus the u32 length prefix.
  constexpr uint64_t kFrameOverhead = sizeof(uint32_t);
  for (;;) {
    auto frame = ReadFrame(fd, &stop_);
    if (!frame.ok() || !frame->has_value()) {
      break;  // peer EOF, connection error, or shutdown
    }
    frame_bytes_in_->Increment((*frame)->size() + kFrameOverhead);
    obs::TraceCollector* const trace = service_->trace();
    Response response;
    WallTimer decode_timer;
    auto request = DecodeRequest(**frame);
    const double decode_seconds = decode_timer.ElapsedSeconds();
    bool client_traced = false;
    if (request.ok()) {
      // Stamp untraced requests here (rather than letting Dispatch do it)
      // so the decode/encode spans share the request's id. The wire
      // response still omits the header unless the client sent one.
      client_traced = request->context.trace_id != 0;
      if (trace != nullptr && !client_traced) {
        request->context.trace_id = NextTraceId();
      }
      if (trace != nullptr && request->context.trace_id != 0) {
        trace->AddTracedSpan("frame_decode", "server",
                             request->context.trace_id, request->collection,
                             decode_seconds, (*frame)->size());
      }
      response = service_->Dispatch(*request);
      if (!client_traced) {
        response.trace_id = 0;
      }
    } else {
      // Can't trust anything in the frame, including the verb; answer with
      // the decode error and drop the connection (framing may be skewed).
      response.status = request.status();
    }
    WallTimer encode_timer;
    const std::vector<uint8_t> payload = EncodeResponse(response);
    if (trace != nullptr && request.ok() &&
        request->context.trace_id != 0) {
      trace->AddTracedSpan("reply_encode", "server",
                           request->context.trace_id, request->collection,
                           encode_timer.ElapsedSeconds(), payload.size());
    }
    if (!WriteFrame(fd, payload).ok()) {
      break;
    }
    frame_bytes_out_->Increment(payload.size() + kFrameOverhead);
    if (!request.ok()) {
      break;
    }
  }
  ::close(fd);
  active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
  active_sessions_gauge_->Sub(1);
}

}  // namespace dbscout::service

#ifndef DBSCOUT_SERVICE_SERVER_H_
#define DBSCOUT_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace dbscout::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Concurrent connections; further accepts are closed immediately
  /// (connection-level shedding, mirroring the ingest admission cap).
  size_t max_sessions = 8;
};

/// TCP front-end for a DetectionService: accepts framed connections and
/// serves request/response pairs. One pool task runs the accept loop and
/// one runs each session — all on a private ThreadPool sized
/// 1 + max_sessions, so a full house never starves the accept loop.
///
/// Stop() (and the destructor) first flips the stop flag — sessions notice
/// within one 100ms poll tick, finish the request they are serving, and
/// exit — then closes the listener. In-flight requests therefore always get
/// their response before the server goes away.
class Server {
 public:
  /// Binds, listens, and starts the accept loop. The service must outlive
  /// the server.
  static Result<std::unique_ptr<Server>> Start(DetectionService* service,
                                               const ServerOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// The bound port (resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Sessions shed because all max_sessions slots were busy.
  uint64_t sessions_shed() const {
    return sessions_shed_.load(std::memory_order_relaxed);
  }

  /// Graceful shutdown: drain sessions, then close the listener. Idempotent.
  void Stop();

 private:
  Server(DetectionService* service, int listen_fd, uint16_t port,
         size_t max_sessions);

  void AcceptLoop();
  void Session(int fd);

  DetectionService* const service_;
  const int listen_fd_;
  const uint16_t port_;
  const size_t max_sessions_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<size_t> active_sessions_{0};
  std::atomic<uint64_t> sessions_shed_{0};

  /// Transport metrics, resolved once from the service's registry.
  obs::Counter* frame_bytes_in_ = nullptr;
  obs::Counter* frame_bytes_out_ = nullptr;
  obs::Counter* sessions_shed_counter_ = nullptr;
  obs::Gauge* active_sessions_gauge_ = nullptr;

  ThreadPool pool_;
};

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_SERVER_H_

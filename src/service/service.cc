#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "grid/partition.h"
#include "storage/wal.h"

namespace dbscout::service {
namespace {

const char* VerbLabel(Verb verb) {
  switch (verb) {
    case Verb::kIngest:
      return "ingest";
    case Verb::kQuery:
      return "query";
    case Verb::kStats:
      return "stats";
    case Verb::kSnapshot:
      return "snapshot";
    case Verb::kMetrics:
      return "metrics";
    case Verb::kConfigure:
      return "configure";
    case Verb::kTrace:
      return "trace";
    case Verb::kHealth:
      return "health";
  }
  return "unknown";
}

size_t ResolveApplyShards(size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Process self-inspection via /proc/self. Each returns 0 when the
/// platform (or a hardened /proc) cannot say — HEALTH documents 0 as
/// "unknown", never as a measured zero.
uint64_t ReadProcRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long total_pages = 0;
  unsigned long long rss_pages = 0;
  const int parsed = std::fscanf(f, "%llu %llu", &total_pages, &rss_pages);
  std::fclose(f);
  if (parsed != 2) {
    return 0;
  }
  const long page = sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

uint64_t CountDirEntries(const char* dir) {
#if defined(__linux__)
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return 0;
  }
  uint64_t n = 0;
  for (const auto& entry : it) {
    (void)entry;
    ++n;
  }
  return n;
#else
  (void)dir;
  return 0;
#endif
}

uint64_t CountOpenFds() { return CountDirEntries("/proc/self/fd"); }
uint64_t CountThreads() { return CountDirEntries("/proc/self/task"); }

}  // namespace

DetectionService::DetectionService(const ServiceOptions& options)
    : options_(options),
      clock_(options.clock ? options.clock : [] { return MonotonicSeconds(); }),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::Registry::Global()),
      trace_(options.trace),
      apply_pool_(1) {
  const size_t shards = ResolveApplyShards(options.apply_shards);
  if (shards > 1) {
    shard_pool_ = std::make_unique<ThreadPool>(shards);
  }
  if (options.ttl_seconds > 0.0) {
    has_window_.store(true, std::memory_order_relaxed);
  }
  ingest_batches_total_ = registry_->GetCounter(
      "dbscout_ingest_batches_total", "INGEST batches applied");
  ingest_points_total_ = registry_->GetCounter(
      "dbscout_ingest_points_total", "Points applied by the ingest loop");
  ingest_errors_total_ = registry_->GetCounter(
      "dbscout_ingest_errors_total",
      "INGEST batches rejected mid-apply (bad dims / non-finite values)");
  shed_total_ = registry_->GetCounter(
      "dbscout_ingest_shed_total",
      "INGEST requests shed by admission control");
  collections_gauge_ =
      registry_->GetGauge("dbscout_collections", "Live collections");
  queue_wait_seconds_ = registry_->GetHistogram(
      "dbscout_ingest_queue_wait_seconds",
      "Enqueue-to-apply wait of ingest batches",
      obs::HistogramLayout::Latency());
  apply_batch_size_ = registry_->GetHistogram(
      "dbscout_apply_batch_size",
      "Ingest batches coalesced into one apply pass",
      obs::HistogramLayout::Count());
  apply_shards_gauge_ = registry_->GetGauge(
      "dbscout_apply_shards",
      "Slab-block shards of the most recent coalesced apply");
  apply_shard_seconds_ = registry_->GetHistogram(
      "dbscout_apply_shard_seconds", "Wall seconds per apply shard task",
      obs::HistogramLayout::Latency());
  for (const Verb verb :
       {Verb::kIngest, Verb::kQuery, Verb::kStats, Verb::kSnapshot,
        Verb::kMetrics, Verb::kConfigure, Verb::kTrace, Verb::kHealth}) {
    request_seconds_[static_cast<size_t>(verb)] = registry_->GetHistogram(
        "dbscout_request_seconds", "Dispatch latency by verb",
        obs::HistogramLayout::Latency(), {{"verb", VerbLabel(verb)}});
  }
  process_rss_bytes_ = registry_->GetGauge(
      "dbscout_process_rss_bytes",
      "Resident set size of the service process (0 = unknown)");
  process_open_fds_ = registry_->GetGauge(
      "dbscout_process_open_fds",
      "Open file descriptors of the service process (0 = unknown)");
  process_threads_ = registry_->GetGauge(
      "dbscout_process_threads",
      "Threads of the service process (0 = unknown)");
  replay_records_total_ = registry_->GetCounter(
      "dbscout_replay_records_total",
      "WAL records replayed during crash recovery");
  replay_points_total_ = registry_->GetCounter(
      "dbscout_replay_points_total",
      "Points re-ingested during crash recovery (snapshot + WAL)");
  replay_seconds_ = registry_->GetHistogram(
      "dbscout_replay_seconds", "Crash-recovery replay time per collection",
      obs::HistogramLayout::Latency());
  wal_commit_failures_total_ = registry_->GetCounter(
      "dbscout_wal_commit_failures_total",
      "Apply passes whose WAL append/commit failed (tickets carry the "
      "error)");
  // Crash recovery runs before the apply loop starts, so replay's router
  // passes keep the coordinator-thread contract trivially. With
  // defer_recovery both recovery AND the loop start wait for
  // RunDeferredRecovery() — the loop must not run expiry passes (which
  // share shard_pool_) concurrently with replay.
  if (!options_.data_dir.empty()) {
    recovery_state_.store(RecoveryState::kRecovering,
                          std::memory_order_relaxed);
  }
  if (!options_.defer_recovery) {
    RunDeferredRecovery();
  }
}

void DetectionService::RunDeferredRecovery() {
  if (!options_.data_dir.empty()) {
    recovery_status_ = RecoverCollections();
    if (!recovery_status_.ok()) {
      DBSCOUT_LOG(kError) << "crash recovery failed: "
                          << recovery_status_.message();
    }
    recovery_state_.store(recovery_status_.ok() ? RecoveryState::kDone
                                                : RecoveryState::kFailed,
                          std::memory_order_relaxed);
  }
  apply_pool_.Submit([this] { ApplyLoop(); });
}

DetectionService::~DetectionService() { Stop(); }

Response DetectionService::Dispatch(const Request& request) {
  WallTimer timer;
  // Resolve the trace context once: a client-stamped id wins; otherwise
  // the server stamps its own when a collector is attached, so TRACE
  // dumps link a request's spans without requiring client opt-in. With
  // tracing idle (no collector, unstamped request) trace_id stays 0 and
  // this path allocates nothing.
  uint64_t trace_id = request.context.trace_id;
  const bool client_stamped = trace_id != 0;
  if (trace_id == 0 && trace_ != nullptr) {
    trace_id = NextTraceId();
  }
  Response response = [&] {
    // Service-wide verbs first: no collection name involved, and — for
    // TRACE/HEALTH — they must answer while startup recovery still runs.
    switch (request.verb) {
      case Verb::kMetrics:
        return DoMetrics();
      case Verb::kTrace:
        return DoTrace(request);
      case Verb::kHealth:
        return DoHealth();
      default:
        break;
    }
    if (recovery_state_.load(std::memory_order_relaxed) ==
        RecoveryState::kRecovering) {
      Response busy;
      busy.verb = request.verb;
      busy.status = Status::Unavailable("startup recovery in progress");
      return busy;
    }
    if (request.collection.empty() ||
        request.collection.size() > kMaxCollectionName) {
      Response bad;
      bad.verb = request.verb;
      bad.status = Status::InvalidArgument("bad collection name");
      return bad;
    }
    switch (request.verb) {
      case Verb::kIngest:
        return DoIngest(request, trace_id);
      case Verb::kQuery:
        return DoQuery(request);
      case Verb::kStats:
        return DoStats(request);
      case Verb::kSnapshot:
        return DoSnapshot(request);
      case Verb::kConfigure:
        return DoConfigure(request);
      case Verb::kMetrics:
      case Verb::kTrace:
      case Verb::kHealth:
        break;  // handled above
    }
    Response bad;
    bad.status = Status::InvalidArgument("unknown verb");
    return bad;
  }();
  const double elapsed = timer.ElapsedSeconds();
  // The response header echoes the trace context only when the request
  // carried one (old clients must keep receiving byte-identical frames).
  response.trace_id = client_stamped ? trace_id : 0;
  response.server_seconds = elapsed;
  const size_t verb_slot = static_cast<size_t>(request.verb);
  if (verb_slot < request_seconds_.size() &&
      request_seconds_[verb_slot] != nullptr) {
    // trace_id doubles as the bucket exemplar (0 = none recorded).
    request_seconds_[verb_slot]->ObserveWithExemplar(elapsed, trace_id);
  }
  if (trace_ != nullptr && trace_id != 0) {
    // The root span of the request's trace; the decode/queue/shard/WAL
    // spans nest under it by sharing the trace id.
    trace_->AddTracedSpan(VerbLabel(request.verb), "request", trace_id,
                          request.collection, elapsed);
  }
  if (options_.slow_request_seconds >= 0.0 &&
      elapsed >= options_.slow_request_seconds) {
    DBSCOUT_LOG(kWarning) << "slow request verb=" << VerbLabel(request.verb)
                          << " collection=" << request.collection
                          << " trace="
                          << StrFormat("%016llx",
                                       static_cast<unsigned long long>(
                                           trace_id))
                          << " seconds=" << elapsed
                          << " status=" << response.status.ToString();
  }
  return response;
}

Response DetectionService::DoMetrics() {
  Response response;
  response.verb = Verb::kMetrics;
  RefreshProcessGauges();  // scrapes always carry fresh self-gauges
  response.metrics.text = registry_->Expose();
  return response;
}

Response DetectionService::DoTrace(const Request& request) {
  Response response;
  response.verb = Verb::kTrace;
  if (trace_ == nullptr) {
    response.status = Status::FailedPrecondition(
        "tracing is not enabled on this server");
    return response;
  }
  obs::TraceFilter filter;
  filter.scope = request.collection;  // empty = every collection
  filter.name = request.trace_name_filter;
  filter.trace_id = request.trace_id_filter;
  filter.limit = request.trace_limit;
  response.trace.json = trace_->ToChromeJson(filter);
  response.trace.spans_retained = trace_->size();
  response.trace.spans_dropped = trace_->dropped();
  if (response.trace.json.size() > kMaxFramePayload / 2) {
    // The filtered dump must still fit a response frame (with headroom
    // for the envelope); the client narrows with --trace-limit.
    response.trace.json.clear();
    response.status = Status::FailedPrecondition(
        "trace dump too large for one frame; narrow with a filter or "
        "limit");
  }
  return response;
}

Response DetectionService::DoHealth() {
  Response response;
  response.verb = Verb::kHealth;
  HealthAnswer& health = response.health;
  health.recovery = recovery_state_.load(std::memory_order_relaxed);
  health.uptime_seconds = UptimeSeconds();
  {
    MutexLock lock(collections_mu_);
    health.collections = collections_.size();
  }
  RefreshProcessGauges();
  health.rss_bytes = static_cast<uint64_t>(process_rss_bytes_->Value());
  health.open_fds = static_cast<uint64_t>(process_open_fds_->Value());
  health.threads = static_cast<uint64_t>(process_threads_->Value());

  if (health.recovery == RecoveryState::kRecovering) {
    health.state = HealthState::kNotReady;
    health.reason = "startup recovery in progress";
    return response;
  }
  if (health.recovery == RecoveryState::kFailed) {
    health.state = HealthState::kNotReady;
    health.reason =
        StrFormat("startup recovery failed: %s",
                  std::string(recovery_status_.message()).c_str());
    return response;
  }
  const uint64_t wal_failures = wal_commit_failures_total_->Value();
  if (wal_failures > 0) {
    health.state = HealthState::kDegraded;
    health.reason = StrFormat(
        "%llu apply passes failed their WAL commit",
        static_cast<unsigned long long>(wal_failures));
    return response;
  }
  size_t depth = 0;
  {
    MutexLock lock(mu_);
    depth = queue_.size();
  }
  if (depth >= options_.max_pending_ingests) {
    health.state = HealthState::kDegraded;
    health.reason = StrFormat(
        "ingest queue at admission cap (%zu); shedding",
        options_.max_pending_ingests);
    return response;
  }
  health.state = HealthState::kReady;
  return response;
}

void DetectionService::RefreshProcessGauges() {
  process_rss_bytes_->Set(static_cast<int64_t>(ReadProcRssBytes()));
  process_open_fds_->Set(static_cast<int64_t>(CountOpenFds()));
  process_threads_->Set(static_cast<int64_t>(CountThreads()));
}

DetectionService::Collection* DetectionService::FindCollection(
    const std::string& name) {
  MutexLock lock(collections_mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

Result<DetectionService::Collection*> DetectionService::CollectionForIngest(
    const std::string& name, uint16_t dims, size_t coords_size) {
  if (dims == 0) {
    return Status::InvalidArgument("ingest dims must be >= 1");
  }
  if (coords_size % dims != 0) {
    return Status::InvalidArgument(
        StrFormat("coordinate count %zu is not a multiple of dims %u",
                  coords_size, dims));
  }
  MutexLock lock(collections_mu_);
  auto it = collections_.find(name);
  if (it != collections_.end()) {
    Collection* collection = it->second.get();
    if (dims != collection->router.dims()) {
      return Status::InvalidArgument(
          StrFormat("collection '%s' has %zu dims, batch has %u",
                    name.c_str(), collection->router.dims(), dims));
    }
    return collection;
  }
  if (collections_.size() >= options_.max_collections) {
    return Status::FailedPrecondition(
        StrFormat("collection limit (%zu) reached",
                  options_.max_collections));
  }
  DBSCOUT_ASSIGN_OR_RETURN(
      ShardRouter router,
      ShardRouter::Create(name, dims, options_.params, options_.num_shards,
                          registry_));
  auto collection = std::make_unique<Collection>(name, std::move(router));
  collection->router.AttachTrace(trace_, name);
  // Publish the epoch-0 snapshot right away so reads on a collection whose
  // first batch is still queued get a well-defined (empty) answer. The
  // apply loop cannot know this collection yet, so the coordinator-thread
  // contract of PublishableSnapshot() holds trivially.
  collection->snapshot.store(collection->router.PublishableSnapshot(),
                             std::memory_order_release);
  collection->ttl_seconds.store(options_.ttl_seconds,
                                std::memory_order_relaxed);
  collection->depth_gauge = registry_->GetGauge(
      "dbscout_pending_batches",
      "Ingest batches waiting in the apply queue, by collection",
      {{"collection", name}});
  if (!options_.data_dir.empty()) {
    storage::RecoveredCollection recovered;
    DBSCOUT_ASSIGN_OR_RETURN(collection->store, OpenStore(name, &recovered));
    if (recovered.base.epoch != 0 || recovered.base.dims != 0 ||
        !recovered.suffix.empty()) {
      // A fresh collection must start from an empty directory; anything
      // else means startup recovery did not register it (e.g. recovery
      // failed) and ingesting would silently fork from the on-disk state.
      return Status::FailedPrecondition(StrFormat(
          "collection '%s' has unrecovered on-disk state; refusing to "
          "ingest over it",
          name.c_str()));
    }
    // The create record makes dims and the creation-time TTL recoverable
    // even before the first batch commits.
    storage::WalRecord create;
    create.type = storage::WalRecordType::kCreate;
    create.dims = dims;
    create.ttl_seconds = options_.ttl_seconds;
    DBSCOUT_RETURN_IF_ERROR(collection->store->LogRecord(create));
  }
  Collection* raw = collection.get();
  collections_.emplace(name, std::move(collection));
  collections_gauge_->Set(static_cast<int64_t>(collections_.size()));
  return raw;
}

Status DetectionService::Enqueue(Collection* collection,
                                 std::vector<double> coords,
                                 std::shared_ptr<Ticket> ticket,
                                 uint64_t trace_id) {
  MutexLock lock(mu_);
  if (stop_) {
    return Status::Unavailable("service is shutting down");
  }
  if (queue_.size() >= options_.max_pending_ingests) {
    admission_rejections_.fetch_add(1, std::memory_order_relaxed);
    shed_total_->Increment();
    return Status::Unavailable(
        StrFormat("ingest queue at admission cap (%zu); retry later",
                  options_.max_pending_ingests));
  }
  const bool was_empty = queue_.empty();
  const bool ticketed = ticket != nullptr;
  if (ticketed) {
    ++ticketed_pending_;
  }
  queue_.push_back(PendingIngest{collection, std::move(coords),
                                 std::move(ticket), MonotonicSeconds(),
                                 trace_id});
  ++enqueued_;
  collection->depth_gauge->Set(static_cast<int64_t>(
      collection->queue_depth.fetch_add(1, std::memory_order_relaxed) + 1));
  // Wake the loop when the queue transitions to non-empty, or when a
  // blocking caller just arrived (it cuts a coalescing window short).
  // Fire-and-forget batches landing on a non-empty queue stay silent: the
  // loop is already awake, and skipping the wakeup lets it coalesce them
  // instead of thrashing through one-batch passes.
  if (was_empty || ticketed) {
    queue_cv_.NotifyOne();
  }
  return Status::OK();
}

Response DetectionService::DoIngest(const Request& request,
                                    uint64_t trace_id) {
  Response response;
  response.verb = Verb::kIngest;
  auto found =
      CollectionForIngest(request.collection, request.dims,
                          request.coords.size());
  if (!found.ok()) {
    response.status = found.status();
    return response;
  }
  auto ticket = std::make_shared<Ticket>();
  response.status = Enqueue(*found, request.coords, ticket, trace_id);
  if (!response.status.ok()) {
    return response;
  }
  MutexLock lock(mu_);
  while (!ticket->done) {
    tickets_cv_.Wait(mu_);
  }
  response.status = ticket->status;
  response.epoch = ticket->epoch;
  return response;
}

Status DetectionService::IngestAsync(const std::string& collection,
                                     uint16_t dims,
                                     std::vector<double> coords) {
  DBSCOUT_ASSIGN_OR_RETURN(
      Collection * target,
      CollectionForIngest(collection, dims, coords.size()));
  return Enqueue(target, std::move(coords), nullptr);
}

Response DetectionService::DoQuery(const Request& request) {
  Response response;
  response.verb = Verb::kQuery;
  Collection* collection = FindCollection(request.collection);
  if (collection == nullptr) {
    response.status = Status::NotFound(
        StrFormat("no collection '%s'", request.collection.c_str()));
    return response;
  }
  const std::shared_ptr<const MergedSnapshot> snap =
      collection->snapshot.load(std::memory_order_acquire);
  WallTimer timer;
  uint64_t distance_comps = 0;
  response.query.epoch = snap->epoch();
  if (request.query_by_id) {
    if (request.query_id >= snap->epoch()) {
      response.status = Status::OutOfRange(
          StrFormat("point id %u >= snapshot epoch %llu", request.query_id,
                    static_cast<unsigned long long>(snap->epoch())));
      return response;
    }
    response.query.kind = snap->KindOf(request.query_id);
    if (request.want_score) {
      response.query.score =
          snap->NearestCoreDistance(request.query_id, &distance_comps);
      response.query.has_score = true;
    }
  } else {
    auto probe = snap->Classify(request.query_point, request.want_score);
    if (!probe.ok()) {
      response.status = probe.status();
      return response;
    }
    distance_comps = probe->distance_comps;
    response.query.kind = probe->kind;
    if (request.want_score) {
      response.query.score = probe->score;
      response.query.has_score = true;
    }
  }
  {
    MutexLock lock(collection->stats_mu);
    collection->recorder.Accumulate("query", timer.ElapsedSeconds(),
                                    distance_comps, 1);
  }
  return response;
}

Response DetectionService::DoStats(const Request& request) {
  Response response;
  response.verb = Verb::kStats;
  Collection* collection = FindCollection(request.collection);
  if (collection == nullptr) {
    response.status = Status::NotFound(
        StrFormat("no collection '%s'", request.collection.c_str()));
    return response;
  }
  const std::shared_ptr<const MergedSnapshot> snap =
      collection->snapshot.load(std::memory_order_acquire);
  StatsAnswer& stats = response.stats;
  stats.epoch = snap->epoch();
  stats.num_points = snap->epoch();
  stats.num_core = snap->num_core();
  stats.num_cells = snap->num_cells();
  stats.num_outliers = snap->num_outliers();
  stats.admission_rejections = admission_rejections();
  stats.uptime_seconds = UptimeSeconds();
  stats.live_points = snap->live_points();
  stats.window_begin =
      collection->window_begin.load(std::memory_order_relaxed);
  stats.queue_depth = collection->queue_depth.load(std::memory_order_relaxed);
  stats.ttl_seconds = collection->ttl_seconds.load(std::memory_order_relaxed);
  stats.shards = snap->num_shards();
  for (size_t s = 0; s < snap->num_shards(); ++s) {
    const core::IncrementalSnapshot& shard = snap->shard_view(s);
    stats.shard_rows.push_back(ShardStatsRow{
        static_cast<uint64_t>(s), shard.live_points(), shard.epoch(),
        collection->router.shard_queue_depth(s)});
  }
  {
    MutexLock lock(collection->stats_mu);
    for (const core::PhaseStats& row : collection->recorder.phases()) {
      stats.phases.push_back(StatsRow{row.name, row.seconds,
                                      row.distance_computations,
                                      row.records});
    }
    if (collection->ingest_errors > 0) {
      stats.phases.push_back(
          StatsRow{"ingest_errors", 0.0, 0, collection->ingest_errors});
    }
  }
  // Service-wide per-verb latency quantiles; verbs never dispatched are
  // omitted (count 0 carries no information).
  for (size_t v = 1; v < request_seconds_.size(); ++v) {
    obs::Histogram* histogram = request_seconds_[v];
    if (histogram == nullptr) {
      continue;
    }
    const obs::Histogram::Snapshot snap = histogram->Snap();
    if (snap.count == 0) {
      continue;
    }
    LatencyRow row;
    row.verb = VerbLabel(static_cast<Verb>(v));
    row.count = snap.count;
    row.p50_seconds = snap.Quantile(0.5);
    row.p99_seconds = snap.Quantile(0.99);
    row.p999_seconds = snap.Quantile(0.999);
    stats.latencies.push_back(std::move(row));
  }
  return response;
}

Response DetectionService::DoSnapshot(const Request& request) {
  Response response;
  response.verb = Verb::kSnapshot;
  Collection* collection = FindCollection(request.collection);
  if (collection == nullptr) {
    response.status = Status::NotFound(
        StrFormat("no collection '%s'", request.collection.c_str()));
    return response;
  }
  const std::shared_ptr<const MergedSnapshot> snap =
      collection->snapshot.load(std::memory_order_acquire);
  response.snapshot.epoch = snap->epoch();
  response.snapshot.num_core = snap->num_core();
  response.snapshot.num_cells = snap->num_cells();
  response.snapshot.kinds = snap->Kinds();
  response.snapshot.alive.reserve(snap->epoch());
  for (uint64_t i = 0; i < snap->epoch(); ++i) {
    response.snapshot.alive.push_back(
        snap->IsAlive(static_cast<uint32_t>(i)) ? 1 : 0);
  }
  return response;
}

Response DetectionService::DoConfigure(const Request& request) {
  Response response;
  response.verb = Verb::kConfigure;
  if (!std::isfinite(request.ttl_seconds) || request.ttl_seconds < 0.0) {
    response.status =
        Status::InvalidArgument("ttl_seconds must be finite and >= 0");
    return response;
  }
  Collection* collection = FindCollection(request.collection);
  if (collection == nullptr) {
    response.status = Status::NotFound(
        StrFormat("no collection '%s'", request.collection.c_str()));
    return response;
  }
  if (collection->store != nullptr) {
    // Durable first, visible second: a TTL the apply loop acts on is
    // always recoverable. LogConfigure syncs unconditionally (rare
    // control-plane write); the store's own mutex serializes this
    // caller-thread append with the apply loop's.
    response.status = collection->store->LogConfigure(request.ttl_seconds);
    if (!response.status.ok()) {
      return response;
    }
  }
  collection->ttl_seconds.store(request.ttl_seconds,
                                std::memory_order_relaxed);
  if (request.ttl_seconds > 0.0) {
    has_window_.store(true, std::memory_order_relaxed);
    // Wake the apply loop so it switches to periodic expiry wakeups.
    MutexLock lock(mu_);
    queue_cv_.NotifyAll();
  }
  response.configure.ttl_seconds = request.ttl_seconds;
  return response;
}

void DetectionService::Drain() {
  MutexLock lock(mu_);
  const uint64_t target = enqueued_;
  while (applied_ < target) {
    tickets_cv_.Wait(mu_);
  }
}

void DetectionService::SweepExpiredNow() {
  auto ticket = std::make_shared<Ticket>();
  {
    MutexLock lock(mu_);
    if (stop_) {
      return;
    }
    // Bypasses the admission cap: an expiry tick carries no points.
    ++ticketed_pending_;
    queue_.push_back(PendingIngest{nullptr, {}, ticket, MonotonicSeconds()});
    ++enqueued_;
    queue_cv_.NotifyOne();
  }
  MutexLock lock(mu_);
  while (!ticket->done) {
    tickets_cv_.Wait(mu_);
  }
}

void DetectionService::Stop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    queue_cv_.NotifyAll();
  }
  apply_pool_.WaitIdle();
}

void DetectionService::SetApplyPausedForTest(bool paused) {
  MutexLock lock(mu_);
  apply_paused_ = paused;
  queue_cv_.NotifyAll();
}

void DetectionService::ApplyLoop() {
  for (;;) {
    std::vector<PendingIngest> batch;
    bool expiry_tick = false;
    {
      MutexLock lock(mu_);
      // Stop overrides a test pause: shutdown always drains the queue.
      // While any collection has a TTL window, sleep in bounded slices so
      // expiry runs even with no traffic.
      for (;;) {
        if (stop_ || (!queue_.empty() && !apply_paused_)) {
          break;
        }
        if (has_window_.load(std::memory_order_relaxed)) {
          if (queue_cv_.WaitFor(mu_, std::chrono::milliseconds(100)) ==
              std::cv_status::timeout) {
            expiry_tick = true;
            break;
          }
        } else {
          queue_cv_.Wait(mu_);
        }
      }
      // Throughput coalescing: while everything queued is fire-and-forget
      // (no caller blocked on a ticket), linger in short slices as long as
      // the producer keeps the queue growing — bigger passes amortize the
      // per-pass snapshot, and nobody is waiting on the latency. The first
      // ticketed arrival notifies and cuts the window short; a stalled
      // producer ends it at the next slice boundary.
      if (!stop_ && !apply_paused_ && !queue_.empty() &&
          ticketed_pending_ == 0) {
        constexpr auto kCoalesceSlice = std::chrono::microseconds(200);
        constexpr int kMaxCoalesceSlices = 25;  // <= 5ms added latency
        for (int slice = 0; slice < kMaxCoalesceSlices; ++slice) {
          const size_t before = queue_.size();
          if (before >= options_.max_pending_ingests / 2) {
            break;  // half-full queue: apply before admission sheds
          }
          queue_cv_.WaitFor(mu_, kCoalesceSlice);
          if (stop_ || apply_paused_ || ticketed_pending_ > 0 ||
              queue_.size() == before) {
            break;
          }
        }
      }
      // Stop overrides a pause: shutdown always drains what is queued.
      const bool can_take = !queue_.empty() && (!apply_paused_ || stop_);
      if (!can_take) {
        if (stop_) {
          return;  // stop with an empty queue (pause never outlives stop)
        }
        if (!expiry_tick) {
          continue;
        }
        // Fall through with an empty batch: expiry-only pass.
      } else {
        // Coalesce: take everything queued so this pass runs one detector
        // apply and publishes one snapshot per touched collection no
        // matter how many batches piled up behind a slow apply.
        batch.reserve(queue_.size());
        while (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        ticketed_pending_ = 0;  // the take is all-or-nothing
      }
    }
    ApplyPass(std::move(batch));
  }
}

bool DetectionService::ComputeExpiry(Collection* collection, double now,
                                     uint64_t* begin, uint64_t* end) {
  *begin = *end = collection->window_begin.load(std::memory_order_relaxed);
  const double ttl = collection->ttl_seconds.load(std::memory_order_relaxed);
  if (ttl <= 0.0 || collection->stamps.empty()) {
    return false;
  }
  while (!collection->stamps.empty() &&
         now - collection->stamps.front().seconds >= ttl) {
    *end = collection->stamps.front().end_epoch;
    collection->stamps.pop_front();
  }
  if (*end == *begin) {
    return false;
  }
  // Advance the window before the removals execute: every id below *end
  // is already handed to the router pass, and window_begin must never
  // re-offer an id for expiry.
  collection->window_begin.store(*end, std::memory_order_relaxed);
  return true;
}

void DetectionService::ApplyPass(std::vector<PendingIngest> batch) {
  // ---- Group the pass's ops per collection, first-seen order, validating
  // each client batch up front: a malformed batch is rejected atomically
  // (its ticket carries the error) and never reaches the coalesced apply.
  struct OpShape {
    PendingIngest* op = nullptr;
    size_t points = 0;  // 0 when rejected
    Status status;
  };
  struct Work {
    Collection* collection = nullptr;
    PointSet coalesced{2};
    std::vector<OpShape> ops;
    double seconds = 0.0;
    uint64_t errors = 0;
    uint64_t expired = 0;
    double expire_seconds = 0.0;
    uint64_t expire_begin = 0;  // global-id range the router pass removes
    uint64_t expire_end = 0;
    /// First WAL append/commit error of this collection's pass; fails
    /// every ticket of the collection (durability barrier).
    Status wal_status;
    /// Trace id of the first traced op in this collection's pass: the
    /// coalesced pass's shard/ghost/WAL/publish spans are attributed to
    /// it (a pass serves many requests; one representative links the
    /// trace end-to-end).
    uint64_t trace_id = 0;
  };
  std::vector<Work> works;
  std::unordered_map<Collection*, size_t> work_of;

  WallTimer pass_timer;
  const double apply_start = MonotonicSeconds();
  const bool has_ops = !batch.empty();
  uint64_t real_ops = 0;

  for (PendingIngest& op : batch) {
    if (op.collection == nullptr) {
      continue;  // expiry tick: no points, completed with the pass
    }
    ++real_ops;
    Collection* collection = op.collection;
    collection->depth_gauge->Set(static_cast<int64_t>(
        collection->queue_depth.fetch_sub(1, std::memory_order_relaxed) - 1));
    const double wait_seconds = apply_start - op.enqueue_seconds;
    queue_wait_seconds_->Observe(wait_seconds);
    if (trace_ != nullptr && op.trace_id != 0) {
      // Ends (approximately) at apply_start, i.e. where the apply work
      // for this op begins — the gap the request spent queued.
      trace_->AddTracedSpan("queue_wait", "service", op.trace_id,
                            collection->name, wait_seconds);
    }
    auto [it, fresh] = work_of.try_emplace(collection, works.size());
    if (fresh) {
      works.emplace_back();
      works.back().collection = collection;
      works.back().coalesced = PointSet(collection->router.dims());
    }
    Work& work = works[it->second];
    if (work.trace_id == 0) {
      work.trace_id = op.trace_id;
    }
    const size_t dims = collection->router.dims();
    const size_t count = op.coords.size() / dims;
    OpShape shape;
    shape.op = &op;
    for (size_t i = 0; i < count; ++i) {
      const std::span<const double> row(op.coords.data() + i * dims, dims);
      shape.status = collection->router.ValidatePoint(row);
      if (!shape.status.ok()) {
        break;
      }
    }
    if (shape.status.ok()) {
      shape.points = count;
      for (size_t i = 0; i < count; ++i) {
        work.coalesced.Add(
            std::span<const double>(op.coords.data() + i * dims, dims));
      }
    }
    work.ops.push_back(std::move(shape));
  }

  // ---- Expiry sweep: every collection with a TTL window hands the
  // aged-out global-id ranges to its router pass below (also reached via
  // timer wakeups and SweepExpiredNow ticks with an empty/tick-only
  // batch). A stamp taken at `now` can never age out at `now` (ttl > 0),
  // so computing expiry before this pass's adds are stamped is equivalent
  // to the historical adds-then-sweep order. ----
  const double now = clock_();
  std::vector<Collection*> all;
  {
    MutexLock lock(collections_mu_);
    all.reserve(collections_.size());
    for (auto& [name, collection] : collections_) {
      all.push_back(collection.get());
    }
  }
  for (Collection* collection : all) {
    uint64_t begin = 0;
    uint64_t end = 0;
    if (!ComputeExpiry(collection, now, &begin, &end)) {
      continue;
    }
    auto [it, fresh] = work_of.try_emplace(collection, works.size());
    if (fresh) {
      works.emplace_back();
      works.back().collection = collection;
      works.back().coalesced = PointSet(collection->router.dims());
    }
    works[it->second].expire_begin = begin;
    works[it->second].expire_end = end;
  }

  // ---- One epoch-barriered router pass per touched collection: the
  // adds scatter to their home + halo regions, the expired ranges remove
  // home copies and ghost replicas, and the pass returns only after every
  // touched shard republished its snapshot. Collections run strictly one
  // after another so the (optional) shared wave pool is never contended
  // by two detectors. ----
  uint64_t pass_points = 0;
  uint64_t pass_errors = 0;
  for (Work& work : works) {
    Collection* collection = work.collection;
    const uint64_t base = collection->router.epoch();
    WallTimer timer;
    ShardRouter::PassStats rstats;
    Status apply_status = Status::OK();
    if (work.coalesced.size() > 0 || work.expire_end > work.expire_begin) {
      // The router stamps this id onto each shard's Work (shard_apply
      // spans) and its own ghost_exchange span. Set per pass, so an
      // untraced pass (id 0) never inherits the previous pass's id.
      collection->router.SetPassTraceId(work.trace_id);
      apply_status = collection->router.ApplyPass(
          work.coalesced, work.expire_begin, work.expire_end,
          shard_pool_.get(), &rstats);
    }
    work.seconds = timer.ElapsedSeconds();
    work.expired = rstats.expired;
    work.expire_seconds = rstats.expire_seconds;
    if (work.coalesced.size() > 0) {
      apply_shards_gauge_->Set(
          static_cast<int64_t>(rstats.apply_stats.shards));
      for (double shard_seconds : rstats.apply_stats.shard_seconds) {
        apply_shard_seconds_->Observe(shard_seconds);
      }
    }
    if (!apply_status.ok()) {
      // Pre-validation makes this unreachable short of detector-level
      // capacity errors; fail every op of the collection explicitly.
      DBSCOUT_LOG(kWarning) << "coalesced apply failed: "
                            << apply_status.message();
    }
    // ---- WAL: record what this pass just did, in replay order (plan,
    // then the expiry, then each batch). Appends only; the group commit
    // below makes them durable before any ticket completes. ----
    storage::CollectionStore* store = collection->store.get();
    if (store != nullptr && apply_status.ok()) {
      if (!collection->plan_logged && collection->router.plan() != nullptr) {
        storage::WalRecord rec;
        rec.type = storage::WalRecordType::kPlan;
        rec.halo = collection->router.plan()->halo();
        rec.stripes = collection->router.plan()->stripes();
        work.wal_status = store->LogRecord(rec);
        collection->plan_logged = work.wal_status.ok();
      }
      if (work.wal_status.ok() && work.expire_end > work.expire_begin) {
        // The decision is recorded, not recomputed: replay removes exactly
        // this range regardless of wall-clock at recovery time.
        storage::WalRecord rec;
        rec.type = storage::WalRecordType::kExpire;
        rec.expire_begin = work.expire_begin;
        rec.expire_end = work.expire_end;
        work.wal_status = store->LogRecord(rec);
      }
    }
    uint64_t cum = base;
    for (OpShape& shape : work.ops) {
      Status op_status =
          apply_status.ok() ? std::move(shape.status) : apply_status;
      if (op_status.ok()) {
        if (store != nullptr && shape.points > 0 && work.wal_status.ok()) {
          storage::WalRecord rec;
          rec.type = storage::WalRecordType::kIngest;
          rec.dims = static_cast<uint16_t>(collection->router.dims());
          rec.base_epoch = cum;  // replay cross-checks against its epoch
          rec.coords = std::move(shape.op->coords);
          work.wal_status = store->LogRecord(rec);
        }
        cum += shape.points;
        pass_points += shape.points;
      } else {
        ++work.errors;
        ++pass_errors;
      }
      if (shape.op->ticket != nullptr) {
        // Safe without mu_: the waiter only reads these after `done` flips
        // under mu_ below.
        shape.op->ticket->status = std::move(op_status);
        shape.op->ticket->epoch = cum;
      }
    }
    if (apply_status.ok() && cum > base) {
      collection->stamps.push_back(Collection::StampRange{cum, now});
    }
  }

  // ---- Durability barrier: one group commit per touched store before
  // any ticket completes, so an acknowledged batch is exactly as durable
  // as the fsync policy promises. A failed append or commit fails every
  // ticket of that collection this pass; the in-memory state may already
  // hold the batch, so a client retry re-ingests it, and restart recovers
  // only what the WAL holds. ----
  std::unordered_map<Collection*, Status> wal_failures;
  for (Work& work : works) {
    if (work.collection->store == nullptr) {
      continue;
    }
    Status durable = work.wal_status;
    if (durable.ok()) {
      durable = work.collection->store->Commit(work.trace_id);
    }
    if (!durable.ok()) {
      wal_commit_failures_total_->Increment();
      DBSCOUT_LOG(kError) << "wal commit failed: " << durable.message();
      wal_failures.emplace(work.collection, std::move(durable));
    }
  }

  // ---- Publish: one snapshot per touched collection, after all of this
  // pass's mutations. The release store pairs with readers' acquire. ----
  for (Work& work : works) {
    if (work.coalesced.size() == 0 && work.expired == 0 &&
        work.errors == 0) {
      continue;  // nothing happened to this collection
    }
    Collection* collection = work.collection;
    WallTimer publish_timer;
    collection->snapshot.store(collection->router.PublishableSnapshot(),
                               std::memory_order_release);
    if (trace_ != nullptr) {
      trace_->AddTracedSpan("snapshot_publish", "service", work.trace_id,
                            collection->name, publish_timer.ElapsedSeconds(),
                            work.coalesced.size());
    }
    const uint64_t total_comps = collection->router.distance_computations();
    MutexLock lock(collection->stats_mu);
    collection->recorder.Accumulate(
        "apply", work.seconds,
        total_comps - collection->last_distance_comps,
        work.coalesced.size());
    if (work.expired > 0) {
      collection->recorder.Accumulate("expire", work.expire_seconds, 0,
                                      work.expired);
    }
    collection->last_distance_comps = total_comps;
    collection->ingest_errors += work.errors;
  }

  if (has_ops) {
    apply_batch_size_->Observe(static_cast<double>(real_ops));
    ingest_batches_total_->Increment(real_ops);
    ingest_points_total_->Increment(pass_points);
    ingest_errors_total_->Increment(pass_errors);
    if (trace_ != nullptr) {
      // One span per coalesced apply pass, attributed to the apply thread
      // and (when any op was traced) to the first traced op's id.
      uint64_t pass_trace_id = 0;
      for (const Work& work : works) {
        if (work.trace_id != 0) {
          pass_trace_id = work.trace_id;
          break;
        }
      }
      trace_->AddTracedSpan("apply_pass", "service", pass_trace_id,
                            /*scope=*/"", pass_timer.ElapsedSeconds(),
                            pass_points);
    }
  }

  // Complete tickets only now, so the epoch a blocking INGEST returns is
  // already covered by a published snapshot.
  if (has_ops) {
    MutexLock lock(mu_);
    applied_ += batch.size();
    for (PendingIngest& op : batch) {
      if (op.ticket != nullptr) {
        if (op.collection != nullptr && !wal_failures.empty()) {
          const auto failed = wal_failures.find(op.collection);
          if (failed != wal_failures.end() && op.ticket->status.ok()) {
            op.ticket->status = failed->second;
          }
        }
        op.ticket->done = true;
      }
    }
    tickets_cv_.NotifyAll();
  }
}

// ---------------------------------------------------------------------------
// Durability: store plumbing and crash recovery

Result<std::unique_ptr<storage::CollectionStore>> DetectionService::OpenStore(
    const std::string& name, storage::RecoveredCollection* recovered) {
  storage::StoreOptions store_options;
  store_options.fsync = options_.wal_fsync;
  store_options.fsync_interval_seconds = options_.wal_fsync_interval_seconds;
  store_options.snapshot_interval_bytes = options_.snapshot_interval_bytes;
  store_options.clock = clock_;
  store_options.registry = registry_;
  store_options.trace = trace_;
  store_options.collection = name;
  return storage::CollectionStore::Open(
      options_.data_dir + "/" + storage::EncodeCollectionDirName(name),
      store_options, recovered);
}

Status DetectionService::RecoverCollections() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options_.data_dir, ec);
  if (ec) {
    return Status::IoError(StrFormat("create data dir %s: %s",
                                     options_.data_dir.c_str(),
                                     ec.message().c_str()));
  }
  std::vector<std::pair<std::string, std::string>> found;  // name -> dir
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options_.data_dir, ec)) {
    std::error_code type_ec;
    if (!entry.is_directory(type_ec) || type_ec) {
      continue;  // stray files in the data dir are not ours to interpret
    }
    const std::string dir_name = entry.path().filename().string();
    auto name = storage::DecodeCollectionDirName(dir_name);
    if (!name.ok()) {
      return Status::IoError(
          StrFormat("unrecognized entry '%s' in data dir %s: %s",
                    dir_name.c_str(), options_.data_dir.c_str(),
                    name.status().message().c_str()));
    }
    found.emplace_back(std::move(*name), entry.path().string());
  }
  if (ec) {
    return Status::IoError(StrFormat("scan data dir %s: %s",
                                     options_.data_dir.c_str(),
                                     ec.message().c_str()));
  }
  std::sort(found.begin(), found.end());  // deterministic recovery order
  for (const auto& [name, dir] : found) {
    DBSCOUT_RETURN_IF_ERROR(RecoverCollection(name, dir));
  }
  return Status::OK();
}

Status DetectionService::RecoverCollection(const std::string& name,
                                           const std::string& dir) {
  WallTimer timer;
  storage::RecoveredCollection recovered;
  std::unique_ptr<storage::CollectionStore> store;
  DBSCOUT_ASSIGN_OR_RETURN(store, OpenStore(name, &recovered));
  // Dims come from the snapshot when one exists, else the first CREATE or
  // INGEST record of the suffix.
  uint16_t dims = recovered.base.dims;
  if (dims == 0) {
    for (const storage::WalRecord& record : recovered.suffix) {
      if (record.type == storage::WalRecordType::kCreate ||
          record.type == storage::WalRecordType::kIngest) {
        dims = record.dims;
        break;
      }
    }
  }
  if (dims == 0) {
    // A crash before the create record became durable: nothing usable on
    // disk. The next ingest of this name re-creates the collection (and
    // reopens this directory, which recovers as empty again).
    DBSCOUT_LOG(kInfo) << "collection '" << name
                       << "': empty durability dir, nothing to recover";
    return store->Close();
  }
  DBSCOUT_ASSIGN_OR_RETURN(
      ShardRouter router,
      ShardRouter::Create(name, dims, options_.params, options_.num_shards,
                          registry_));
  auto collection = std::make_unique<Collection>(name, std::move(router));
  collection->router.AttachTrace(trace_, name);
  collection->store = std::move(store);
  collection->depth_gauge = registry_->GetGauge(
      "dbscout_pending_batches",
      "Ingest batches waiting in the apply queue, by collection",
      {{"collection", name}});
  Status replayed = ReplayCollection(collection.get(), recovered);
  if (!replayed.ok()) {
    return Status(replayed.code(),
                  StrFormat("recover collection '%s' from %s: %s",
                            name.c_str(), dir.c_str(),
                            replayed.message().c_str()));
  }
  replay_seconds_->Observe(timer.ElapsedSeconds());
  MutexLock lock(collections_mu_);
  collections_.emplace(name, std::move(collection));
  collections_gauge_->Set(static_cast<int64_t>(collections_.size()));
  return Status::OK();
}

Status DetectionService::ReplayCollection(
    Collection* collection, const storage::RecoveredCollection& recovered) {
  ShardRouter& router = collection->router;
  const size_t dims = router.dims();
  double ttl = recovered.base.ttl_seconds;
  uint64_t window_begin = recovered.base.window_begin;
  uint64_t replayed_records = 0;
  uint64_t replayed_points = 0;

  // The recorded region plan first, so every replayed point routes to the
  // region the live run chose. (The live plan was built from the first
  // coalesced batch, which replay batching cannot reconstruct.)
  if (recovered.base.has_plan) {
    DBSCOUT_RETURN_IF_ERROR(router.AdoptPlan(grid::RegionPlan::FromStripes(
        recovered.base.plan_stripes, recovered.base.plan_halo)));
    collection->plan_logged = true;  // durable in the snapshot already
  }

  // Base state: the snapshot keeps the coordinates of every id < epoch, so
  // one add pass plus one expiry pass over [0, window_begin) reproduces
  // its live set — through the exact same apply pipeline as live traffic.
  if (recovered.base.epoch > 0) {
    PointSet adds{dims};
    for (uint64_t i = 0; i < recovered.base.epoch; ++i) {
      adds.Add(std::span<const double>(
          recovered.base.coords.data() + i * dims, dims));
    }
    ShardRouter::PassStats stats;
    DBSCOUT_RETURN_IF_ERROR(
        router.ApplyPass(adds, 0, 0, shard_pool_.get(), &stats));
    if (window_begin > 0) {
      ShardRouter::PassStats expire_stats;
      DBSCOUT_RETURN_IF_ERROR(router.ApplyPass(PointSet{dims}, 0,
                                               window_begin,
                                               shard_pool_.get(),
                                               &expire_stats));
    }
    replayed_points += recovered.base.epoch;
  }

  // WAL suffix: every record becomes its own pass, in log order. Labels
  // are a function of the live point set (batching-independent), so the
  // replayed outlier set equals the pre-crash one at the durable epoch.
  for (const storage::WalRecord& record : recovered.suffix) {
    ++replayed_records;
    switch (record.type) {
      case storage::WalRecordType::kCreate: {
        if (record.dims != dims) {
          return Status::IoError(
              StrFormat("wal create record dims %u != collection dims %zu",
                        record.dims, dims));
        }
        ttl = record.ttl_seconds;
        break;
      }
      case storage::WalRecordType::kConfigure:
        ttl = record.ttl_seconds;
        break;
      case storage::WalRecordType::kPlan: {
        if (router.plan() == nullptr) {
          DBSCOUT_RETURN_IF_ERROR(router.AdoptPlan(
              grid::RegionPlan::FromStripes(record.stripes, record.halo)));
        }
        collection->plan_logged = true;
        break;
      }
      case storage::WalRecordType::kIngest: {
        if (record.dims != dims) {
          return Status::IoError(
              StrFormat("wal ingest record dims %u != collection dims %zu",
                        record.dims, dims));
        }
        if (record.base_epoch != router.epoch()) {
          return Status::IoError(StrFormat(
              "wal ingest record expects base epoch %llu but replay is at "
              "%llu (lost or reordered records)",
              static_cast<unsigned long long>(record.base_epoch),
              static_cast<unsigned long long>(router.epoch())));
        }
        const size_t count = record.coords.size() / dims;
        PointSet adds{dims};
        for (size_t i = 0; i < count; ++i) {
          adds.Add(std::span<const double>(record.coords.data() + i * dims,
                                           dims));
        }
        ShardRouter::PassStats stats;
        DBSCOUT_RETURN_IF_ERROR(
            router.ApplyPass(adds, 0, 0, shard_pool_.get(), &stats));
        replayed_points += count;
        break;
      }
      case storage::WalRecordType::kExpire: {
        if (record.expire_begin != window_begin ||
            record.expire_end > router.epoch()) {
          return Status::IoError(StrFormat(
              "wal expire record [%llu, %llu) does not extend window begin "
              "%llu at epoch %llu",
              static_cast<unsigned long long>(record.expire_begin),
              static_cast<unsigned long long>(record.expire_end),
              static_cast<unsigned long long>(window_begin),
              static_cast<unsigned long long>(router.epoch())));
        }
        if (record.expire_end > record.expire_begin) {
          ShardRouter::PassStats stats;
          DBSCOUT_RETURN_IF_ERROR(router.ApplyPass(
              PointSet{dims}, record.expire_begin, record.expire_end,
              shard_pool_.get(), &stats));
        }
        window_begin = record.expire_end;
        break;
      }
    }
  }

  collection->ttl_seconds.store(ttl, std::memory_order_relaxed);
  if (ttl > 0.0) {
    has_window_.store(true, std::memory_order_relaxed);
  }
  // window_begin only ever advances, and replay ends exactly where the
  // durable log ended: the epoch never rewinds across a restart.
  collection->window_begin.store(window_begin, std::memory_order_relaxed);
  if (router.epoch() > window_begin) {
    // Re-stamp the surviving range at recovery time: the WAL records no
    // wall-clock provenance, so recovered points live one more full TTL
    // from now (never less than they would have).
    collection->stamps.push_back(
        Collection::StampRange{router.epoch(), clock_()});
  }
  collection->snapshot.store(router.PublishableSnapshot(),
                             std::memory_order_release);
  replay_records_total_->Increment(replayed_records);
  replay_points_total_->Increment(replayed_points);
  return Status::OK();
}

Status DetectionService::CompactNow() {
  std::vector<Collection*> all;
  {
    MutexLock lock(collections_mu_);
    all.reserve(collections_.size());
    for (auto& [name, collection] : collections_) {
      all.push_back(collection.get());
    }
  }
  for (Collection* collection : all) {
    if (collection->store != nullptr) {
      DBSCOUT_RETURN_IF_ERROR(collection->store->CompactNow());
    }
  }
  return Status::OK();
}

}  // namespace dbscout::service

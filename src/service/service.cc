#include "service/service.h"

#include <span>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "common/timer.h"

namespace dbscout::service {
namespace {

const char* VerbLabel(Verb verb) {
  switch (verb) {
    case Verb::kIngest:
      return "ingest";
    case Verb::kQuery:
      return "query";
    case Verb::kStats:
      return "stats";
    case Verb::kSnapshot:
      return "snapshot";
    case Verb::kMetrics:
      return "metrics";
  }
  return "unknown";
}

}  // namespace

DetectionService::DetectionService(const ServiceOptions& options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::Registry::Global()),
      trace_(options.trace),
      apply_pool_(1) {
  ingest_batches_total_ = registry_->GetCounter(
      "dbscout_ingest_batches_total", "INGEST batches applied");
  ingest_points_total_ = registry_->GetCounter(
      "dbscout_ingest_points_total", "Points applied by the ingest loop");
  ingest_errors_total_ = registry_->GetCounter(
      "dbscout_ingest_errors_total",
      "INGEST batches rejected mid-apply (bad dims / non-finite values)");
  shed_total_ = registry_->GetCounter(
      "dbscout_ingest_shed_total",
      "INGEST requests shed by admission control");
  collections_gauge_ =
      registry_->GetGauge("dbscout_collections", "Live collections");
  queue_wait_seconds_ = registry_->GetHistogram(
      "dbscout_ingest_queue_wait_seconds",
      "Enqueue-to-apply wait of ingest batches",
      obs::HistogramLayout::Latency());
  apply_batch_size_ = registry_->GetHistogram(
      "dbscout_apply_batch_size",
      "Ingest batches coalesced into one apply pass",
      obs::HistogramLayout::Count());
  for (const Verb verb : {Verb::kIngest, Verb::kQuery, Verb::kStats,
                          Verb::kSnapshot, Verb::kMetrics}) {
    request_seconds_[static_cast<size_t>(verb)] = registry_->GetHistogram(
        "dbscout_request_seconds", "Dispatch latency by verb",
        obs::HistogramLayout::Latency(), {{"verb", VerbLabel(verb)}});
  }
  apply_pool_.Submit([this] { ApplyLoop(); });
}

DetectionService::~DetectionService() { Stop(); }

Response DetectionService::Dispatch(const Request& request) {
  WallTimer timer;
  Response response = [&] {
    // METRICS is service-wide: no collection name involved.
    if (request.verb == Verb::kMetrics) {
      return DoMetrics();
    }
    if (request.collection.empty() ||
        request.collection.size() > kMaxCollectionName) {
      Response bad;
      bad.verb = request.verb;
      bad.status = Status::InvalidArgument("bad collection name");
      return bad;
    }
    switch (request.verb) {
      case Verb::kIngest:
        return DoIngest(request);
      case Verb::kQuery:
        return DoQuery(request);
      case Verb::kStats:
        return DoStats(request);
      case Verb::kSnapshot:
        return DoSnapshot(request);
      case Verb::kMetrics:
        break;  // handled above
    }
    Response bad;
    bad.status = Status::InvalidArgument("unknown verb");
    return bad;
  }();
  const size_t verb_slot = static_cast<size_t>(request.verb);
  if (verb_slot < request_seconds_.size() &&
      request_seconds_[verb_slot] != nullptr) {
    request_seconds_[verb_slot]->Observe(timer.ElapsedSeconds());
  }
  return response;
}

Response DetectionService::DoMetrics() {
  Response response;
  response.verb = Verb::kMetrics;
  response.metrics.text = registry_->Expose();
  return response;
}

DetectionService::Collection* DetectionService::FindCollection(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(collections_mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

Result<DetectionService::Collection*> DetectionService::CollectionForIngest(
    const std::string& name, uint16_t dims, size_t coords_size) {
  if (dims == 0) {
    return Status::InvalidArgument("ingest dims must be >= 1");
  }
  if (coords_size % dims != 0) {
    return Status::InvalidArgument(
        StrFormat("coordinate count %zu is not a multiple of dims %u",
                  coords_size, dims));
  }
  std::lock_guard<std::mutex> lock(collections_mu_);
  auto it = collections_.find(name);
  if (it != collections_.end()) {
    Collection* collection = it->second.get();
    if (dims != collection->detector.dims()) {
      return Status::InvalidArgument(
          StrFormat("collection '%s' has %zu dims, batch has %u",
                    name.c_str(), collection->detector.dims(), dims));
    }
    return collection;
  }
  if (collections_.size() >= options_.max_collections) {
    return Status::FailedPrecondition(
        StrFormat("collection limit (%zu) reached",
                  options_.max_collections));
  }
  DBSCOUT_ASSIGN_OR_RETURN(
      core::IncrementalDetector detector,
      core::IncrementalDetector::Create(dims, options_.params));
  auto collection = std::make_unique<Collection>(std::move(detector));
  // Publish the epoch-0 snapshot right away so reads on a collection whose
  // first batch is still queued get a well-defined (empty) answer. The
  // apply loop cannot know this collection yet, so the writer-thread
  // contract of SnapshotNow() holds trivially.
  collection->snapshot.store(collection->detector.SnapshotNow(),
                             std::memory_order_release);
  Collection* raw = collection.get();
  collections_.emplace(name, std::move(collection));
  collections_gauge_->Set(static_cast<int64_t>(collections_.size()));
  return raw;
}

Status DetectionService::Enqueue(Collection* collection,
                                 std::vector<double> coords,
                                 std::shared_ptr<Ticket> ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) {
    return Status::Unavailable("service is shutting down");
  }
  if (queue_.size() >= options_.max_pending_ingests) {
    admission_rejections_.fetch_add(1, std::memory_order_relaxed);
    shed_total_->Increment();
    return Status::Unavailable(
        StrFormat("ingest queue at admission cap (%zu); retry later",
                  options_.max_pending_ingests));
  }
  queue_.push_back(PendingIngest{collection, std::move(coords),
                                 std::move(ticket), MonotonicSeconds()});
  ++enqueued_;
  queue_cv_.notify_one();
  return Status::OK();
}

Response DetectionService::DoIngest(const Request& request) {
  Response response;
  response.verb = Verb::kIngest;
  auto found =
      CollectionForIngest(request.collection, request.dims,
                          request.coords.size());
  if (!found.ok()) {
    response.status = found.status();
    return response;
  }
  auto ticket = std::make_shared<Ticket>();
  response.status = Enqueue(*found, request.coords, ticket);
  if (!response.status.ok()) {
    return response;
  }
  std::unique_lock<std::mutex> lock(mu_);
  tickets_cv_.wait(lock, [&] { return ticket->done; });
  response.status = ticket->status;
  response.epoch = ticket->epoch;
  return response;
}

Status DetectionService::IngestAsync(const std::string& collection,
                                     uint16_t dims,
                                     std::vector<double> coords) {
  DBSCOUT_ASSIGN_OR_RETURN(
      Collection * target,
      CollectionForIngest(collection, dims, coords.size()));
  return Enqueue(target, std::move(coords), nullptr);
}

Response DetectionService::DoQuery(const Request& request) {
  Response response;
  response.verb = Verb::kQuery;
  Collection* collection = FindCollection(request.collection);
  if (collection == nullptr) {
    response.status = Status::NotFound(
        StrFormat("no collection '%s'", request.collection.c_str()));
    return response;
  }
  const std::shared_ptr<const core::IncrementalSnapshot> snap =
      collection->snapshot.load(std::memory_order_acquire);
  WallTimer timer;
  uint64_t distance_comps = 0;
  response.query.epoch = snap->epoch();
  if (request.query_by_id) {
    if (request.query_id >= snap->epoch()) {
      response.status = Status::OutOfRange(
          StrFormat("point id %u >= snapshot epoch %llu", request.query_id,
                    static_cast<unsigned long long>(snap->epoch())));
      return response;
    }
    response.query.kind = snap->KindOf(request.query_id);
    if (request.want_score) {
      response.query.score =
          snap->NearestCoreDistance(request.query_id, &distance_comps);
      response.query.has_score = true;
    }
  } else {
    auto probe = snap->Classify(request.query_point, request.want_score);
    if (!probe.ok()) {
      response.status = probe.status();
      return response;
    }
    distance_comps = probe->distance_comps;
    response.query.kind = probe->kind;
    if (request.want_score) {
      response.query.score = probe->score;
      response.query.has_score = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(collection->stats_mu);
    collection->recorder.Accumulate("query", timer.ElapsedSeconds(),
                                    distance_comps, 1);
  }
  return response;
}

Response DetectionService::DoStats(const Request& request) {
  Response response;
  response.verb = Verb::kStats;
  Collection* collection = FindCollection(request.collection);
  if (collection == nullptr) {
    response.status = Status::NotFound(
        StrFormat("no collection '%s'", request.collection.c_str()));
    return response;
  }
  const std::shared_ptr<const core::IncrementalSnapshot> snap =
      collection->snapshot.load(std::memory_order_acquire);
  StatsAnswer& stats = response.stats;
  stats.epoch = snap->epoch();
  stats.num_points = snap->epoch();
  stats.num_core = snap->num_core();
  stats.num_cells = snap->num_cells();
  stats.num_outliers = snap->num_outliers();
  stats.admission_rejections = admission_rejections();
  stats.uptime_seconds = UptimeSeconds();
  {
    std::lock_guard<std::mutex> lock(collection->stats_mu);
    for (const core::PhaseStats& row : collection->recorder.phases()) {
      stats.phases.push_back(StatsRow{row.name, row.seconds,
                                      row.distance_computations,
                                      row.records});
    }
    if (collection->ingest_errors > 0) {
      stats.phases.push_back(
          StatsRow{"ingest_errors", 0.0, 0, collection->ingest_errors});
    }
  }
  return response;
}

Response DetectionService::DoSnapshot(const Request& request) {
  Response response;
  response.verb = Verb::kSnapshot;
  Collection* collection = FindCollection(request.collection);
  if (collection == nullptr) {
    response.status = Status::NotFound(
        StrFormat("no collection '%s'", request.collection.c_str()));
    return response;
  }
  const std::shared_ptr<const core::IncrementalSnapshot> snap =
      collection->snapshot.load(std::memory_order_acquire);
  response.snapshot.epoch = snap->epoch();
  response.snapshot.num_core = snap->num_core();
  response.snapshot.num_cells = snap->num_cells();
  response.snapshot.kinds = snap->Kinds();
  return response;
}

void DetectionService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = enqueued_;
  tickets_cv_.wait(lock, [&] { return applied_ >= target; });
}

void DetectionService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_cv_.notify_all();
  }
  apply_pool_.WaitIdle();
}

void DetectionService::SetApplyPausedForTest(bool paused) {
  std::lock_guard<std::mutex> lock(mu_);
  apply_paused_ = paused;
  queue_cv_.notify_all();
}

void DetectionService::ApplyLoop() {
  for (;;) {
    std::vector<PendingIngest> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Stop overrides a test pause: shutdown always drains the queue.
      queue_cv_.wait(lock, [this] {
        return stop_ || (!queue_.empty() && !apply_paused_);
      });
      if (queue_.empty()) {
        if (stop_) {
          return;
        }
        continue;
      }
      // Coalesce: take everything queued so this pass publishes one
      // snapshot per touched collection no matter how many batches piled
      // up behind a slow apply.
      batch.reserve(queue_.size());
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ApplyPass(std::move(batch));
  }
}

void DetectionService::ApplyPass(std::vector<PendingIngest> batch) {
  struct Touch {
    double seconds = 0.0;
    uint64_t records = 0;
    uint64_t errors = 0;
  };
  std::unordered_map<Collection*, Touch> touched;

  WallTimer pass_timer;
  apply_batch_size_->Observe(static_cast<double>(batch.size()));
  const double apply_start = MonotonicSeconds();
  uint64_t pass_points = 0;
  uint64_t pass_errors = 0;

  for (PendingIngest& op : batch) {
    Collection* collection = op.collection;
    queue_wait_seconds_->Observe(apply_start - op.enqueue_seconds);
    WallTimer timer;
    Status status;
    const size_t dims = collection->detector.dims();
    const size_t count = op.coords.size() / dims;
    size_t applied_points = 0;
    for (size_t i = 0; i < count; ++i) {
      const Result<uint32_t> added = collection->detector.Add(
          std::span<const double>(op.coords.data() + i * dims, dims));
      if (!added.ok()) {
        // The batch is applied up to the first invalid point; the rest is
        // dropped and the error reported on the ticket (and in STATS).
        status = added.status();
        break;
      }
      ++applied_points;
    }
    Touch& touch = touched[collection];
    touch.seconds += timer.ElapsedSeconds();
    touch.records += applied_points;
    pass_points += applied_points;
    if (!status.ok()) {
      ++touch.errors;
      ++pass_errors;
    }
    if (op.ticket != nullptr) {
      // Safe without mu_: the waiter only reads these after `done` flips
      // under mu_ below.
      op.ticket->status = std::move(status);
      op.ticket->epoch = collection->detector.epoch();
    }
  }

  // Publish: one snapshot per touched collection, after all of this pass's
  // mutations. The release store pairs with the acquire load in readers.
  for (auto& [collection, touch] : touched) {
    collection->snapshot.store(collection->detector.SnapshotNow(),
                               std::memory_order_release);
    const uint64_t total_comps = collection->detector.distance_computations();
    std::lock_guard<std::mutex> lock(collection->stats_mu);
    collection->recorder.Accumulate(
        "apply", touch.seconds,
        total_comps - collection->last_distance_comps, touch.records);
    collection->last_distance_comps = total_comps;
    collection->ingest_errors += touch.errors;
  }

  ingest_batches_total_->Increment(batch.size());
  ingest_points_total_->Increment(pass_points);
  ingest_errors_total_->Increment(pass_errors);
  if (trace_ != nullptr) {
    // One span per coalesced apply pass, attributed to the apply thread.
    trace_->AddSpanEndingNow("apply_pass", "service",
                             pass_timer.ElapsedSeconds(), /*distances=*/0,
                             pass_points);
  }

  // Complete tickets only now, so the epoch a blocking INGEST returns is
  // already covered by a published snapshot.
  {
    std::lock_guard<std::mutex> lock(mu_);
    applied_ += batch.size();
    for (PendingIngest& op : batch) {
      if (op.ticket != nullptr) {
        op.ticket->done = true;
      }
    }
    tickets_cv_.notify_all();
  }
}

}  // namespace dbscout::service

#ifndef DBSCOUT_SERVICE_SERVICE_H_
#define DBSCOUT_SERVICE_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/incremental.h"
#include "core/params.h"
#include "core/phases/phase_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/protocol.h"
#include "service/router.h"
#include "storage/store.h"

namespace dbscout::service {

struct ServiceOptions {
  /// Detection parameters applied to every collection the service creates.
  core::Params params;

  /// Admission cap: INGEST requests beyond this many queued batches are
  /// shed with kUnavailable instead of growing the queue without bound.
  size_t max_pending_ingests = 256;

  /// Collections are created implicitly by the first INGEST; this bounds
  /// how many a misbehaving client can create.
  size_t max_collections = 64;

  /// Worker threads the apply loop fans slab-block shard tasks out on
  /// (AddBatchParallel). 0 picks the hardware concurrency; 1 keeps each
  /// apply pass single-threaded (no worker pool at all). Only the
  /// single-detector configuration (num_shards == 1) uses this pool; with
  /// several detector shards each shard runs its waves serially on its
  /// own loop thread instead.
  size_t apply_shards = 0;

  /// Detector shards per collection: cell space is partitioned into this
  /// many contiguous dim-0 slab regions, each backed by its own
  /// IncrementalDetector and apply loop, with ghost-halo replication
  /// keeping the merged outlier set exactly equal to a single detector
  /// (see ShardRouter). 1 (or 0) keeps the pre-shard single-detector
  /// layout.
  size_t num_shards = 1;

  /// Sliding-window TTL (seconds) applied to every collection at creation;
  /// 0 means append-only. Points older than the TTL are expired by the
  /// apply loop at ingest-batch granularity. Per-collection override via
  /// the CONFIGURE verb.
  double ttl_seconds = 0.0;

  /// Monotonic clock (seconds) for TTL expiry; null uses
  /// MonotonicSeconds(). Tests inject a fake clock to drive expiry
  /// deterministically.
  std::function<double()> clock;

  /// Durability root. Empty keeps the service purely in-memory (the
  /// pre-durability behavior). When set, every collection gets a
  /// subdirectory under it with a write-ahead log and periodic snapshots
  /// (storage::CollectionStore), the apply loop gains a durability
  /// barrier (a ticket completes only after its WAL frames are committed
  /// under wal_fsync), and construction replays whatever the directory
  /// holds back through the normal apply pipeline. Check
  /// recovery_status() after construction.
  std::string data_dir;

  /// When WAL appends are fdatasync'd relative to ingest acknowledgement
  /// (see storage::FsyncPolicy for the loss contract per mode).
  storage::FsyncPolicy wal_fsync = storage::FsyncPolicy::kAlways;

  /// kInterval policy: max seconds between group fsyncs.
  double wal_fsync_interval_seconds = 0.05;

  /// Compact a collection's WAL into a snapshot once its active segment
  /// exceeds this many bytes (0 disables automatic compaction).
  uint64_t snapshot_interval_bytes = 64u << 20;

  /// Metrics registry the service publishes into (and the METRICS verb
  /// scrapes). Null selects obs::Registry::Global(); tests pass a local
  /// registry for isolation. Not owned.
  obs::Registry* registry = nullptr;

  /// When non-null, the apply loop emits one span per apply pass (and the
  /// per-collection detection work inherits it). Not owned.
  obs::TraceCollector* trace = nullptr;

  /// Requests whose Dispatch latency reaches this many seconds are logged
  /// as structured slow-request records (verb, collection, trace id,
  /// seconds). Negative disables the log; 0 logs every request.
  double slow_request_seconds = -1.0;

  /// When true, the constructor neither runs crash recovery nor starts
  /// the apply loop; the owner must call RunDeferredRecovery() exactly
  /// once (from the constructing thread, before any ingest). This lets a
  /// server bind its socket and answer HEALTH with kNotReady while a long
  /// WAL replay runs; collection verbs are refused with kUnavailable
  /// until recovery completes.
  bool defer_recovery = false;
};

/// The long-running detection service: one ShardRouter per named
/// collection (N region-partitioned detector shards; N == 1 is the plain
/// single-detector layout), maintained by a single-writer apply loop,
/// with lock-free snapshot reads.
///
/// Concurrency design:
///  - All mutations flow through one apply loop (a long-running task on a
///    private one-thread pool). Each pass swaps out the *entire* pending
///    queue, concatenates each collection's batches into one coalesced
///    router pass (scatter to the detector shards, ghost exchange, epoch
///    barrier), then publishes one fresh merged snapshot per touched
///    collection — so N queued batches cost one detector pass and one
///    snapshot, not N.
///  - Sliding windows: collections with a TTL expire ingest batches whose
///    stamp has aged past it. Expiry runs inside the apply loop (every
///    pass, plus periodic wakeups while any window is configured), so the
///    single-writer contract of the detector is preserved; removals use
///    the detector's exact Remove() re-derivation.
///  - QUERY / STATS / SNAPSHOT never touch the detectors: they read the
///    latest published MergedSnapshot through an atomic shared_ptr
///    (release store in the apply loop, acquire load here), so read
///    latency is independent of ingest bursts. The merged snapshot is
///    epoch-consistent: it is built only behind the router's epoch
///    barrier, never mid-scatter.
///  - Admission control: when the pending queue is at max_pending_ingests,
///    further INGESTs are refused with kUnavailable (explicit backpressure,
///    bounded memory). admission_rejections() counts the sheds.
///  - Stop() drains: everything queued at shutdown is applied and its
///    ticket completed before the loop exits; new ingests are refused.
///
/// Dispatch() is safe to call from any number of threads concurrently.
class DetectionService {
 public:
  explicit DetectionService(const ServiceOptions& options);
  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;
  ~DetectionService();

  /// Serves one request. INGEST blocks until the batch is applied AND its
  /// snapshot published, so the returned epoch is immediately queryable;
  /// reads return against the latest published snapshot without blocking.
  Response Dispatch(const Request& request);

  /// Fire-and-forget ingest: enqueues and returns without waiting for the
  /// apply loop. kUnavailable when the queue is at the admission cap.
  /// Used by overload tests and the throughput bench; batch-level errors
  /// (dims mismatch, non-finite coordinates) surface in STATS only.
  Status IngestAsync(const std::string& collection, uint16_t dims,
                     std::vector<double> coords);

  /// Blocks until every batch enqueued so far has been applied and
  /// published.
  void Drain() DBSCOUT_EXCLUDES(mu_);

  /// Forces one expiry sweep on the apply loop and blocks until its
  /// snapshots are published. Deterministic hook for tests and operators
  /// with an injected clock; the loop also sweeps on its own every
  /// ~100ms while any collection has a TTL window. Must not be called
  /// while the apply loop is paused for test.
  void SweepExpiredNow() DBSCOUT_EXCLUDES(mu_);

  /// Drains the queue, completes all tickets, and stops the apply loop.
  /// Further INGESTs are refused with kUnavailable; reads keep working
  /// against the last published snapshots. Idempotent.
  void Stop() DBSCOUT_EXCLUDES(mu_);

  /// INGESTs shed by admission control since construction.
  uint64_t admission_rejections() const {
    return admission_rejections_.load(std::memory_order_relaxed);
  }

  /// Seconds since construction (monotonic clock; STATS uptime_seconds).
  double UptimeSeconds() const { return uptime_.ElapsedSeconds(); }

  /// The registry this service publishes into (options_.registry or the
  /// global one). The METRICS verb serializes it.
  obs::Registry& registry() const { return *registry_; }

  /// Test hook: while paused the apply loop leaves the queue untouched, so
  /// tests can fill it to the admission cap deterministically. Stop()
  /// overrides a pause (shutdown still drains).
  void SetApplyPausedForTest(bool paused) DBSCOUT_EXCLUDES(mu_);

  /// Outcome of the constructor's crash recovery (OK when data_dir is
  /// empty or recovery replayed cleanly). A durable server should refuse
  /// to start on failure: serving on top of partial recovery would
  /// silently drop acknowledged data.
  const Status& recovery_status() const { return recovery_status_; }

  /// Runs the crash recovery the constructor skipped under
  /// options.defer_recovery, then starts the apply loop. Must be called
  /// exactly once when defer_recovery is set, before any ingest, from the
  /// constructing thread. recovery_status() holds the outcome.
  void RunDeferredRecovery();

  /// Where startup recovery stands (the HEALTH verb's recovery field).
  /// kNone when the service runs without a data_dir.
  RecoveryState recovery_state() const {
    return recovery_state_.load(std::memory_order_relaxed);
  }

  /// The span collector this service publishes into (null = tracing off).
  /// The server's frame-decode/reply-encode spans go here too.
  obs::TraceCollector* trace() const { return trace_; }

  /// Forces WAL-to-snapshot compaction on every durable collection
  /// (test/operator hook; no-op in-memory).
  Status CompactNow() DBSCOUT_EXCLUDES(collections_mu_);

 private:
  /// Per-collection state. The router (and through it every detector
  /// shard) is mutated only by the apply loop; `snapshot` is the
  /// publication point between that writer and all reader threads.
  struct Collection {
    std::string name;  // span scope + log context; immutable after create
    ShardRouter router;
    std::atomic<std::shared_ptr<const MergedSnapshot>> snapshot;

    /// Sliding-window TTL in seconds; 0 = append-only. Written by
    /// CONFIGURE, read by the apply loop.
    std::atomic<double> ttl_seconds{0.0};
    /// First epoch still inside the window (everything below is expired).
    /// Written by the apply loop, read by STATS.
    std::atomic<uint64_t> window_begin{0};
    /// Ingest batches of this collection currently in the apply queue.
    std::atomic<uint64_t> queue_depth{0};
    /// dbscout_pending_batches{collection=...}; mirrors queue_depth.
    obs::Gauge* depth_gauge = nullptr;

    /// Apply-loop-private expiry bookkeeping: each entry says "epochs
    /// [previous end, end_epoch) were applied at `seconds`". Batch
    /// granularity: a range expires as a unit once its stamp ages out.
    struct StampRange {
      uint64_t end_epoch = 0;
      double seconds = 0.0;
    };
    std::deque<StampRange> stamps;

    Mutex stats_mu;
    core::phases::PhaseRecorder recorder DBSCOUT_GUARDED_BY(stats_mu);
    uint64_t last_distance_comps DBSCOUT_GUARDED_BY(stats_mu) = 0;
    uint64_t ingest_errors DBSCOUT_GUARDED_BY(stats_mu) = 0;

    /// Durability engine; null when the service runs in-memory. The
    /// store has its own mutex (the apply loop appends/commits, service
    /// threads log CONFIGUREs).
    std::unique_ptr<storage::CollectionStore> store;
    /// Apply-loop-private: whether the router's region plan has been
    /// recorded in the WAL yet (set at replay when one was recovered).
    bool plan_logged = false;

    Collection(std::string n, ShardRouter r)
        : name(std::move(n)), router(std::move(r)) {}
  };

  /// Completion token a blocking INGEST waits on; signalled after the
  /// batch's snapshot is published. `done` flips under the service's mu_
  /// (not annotatable from a nested struct; the waiters' while-loops under
  /// mu_ are the contract).
  struct Ticket {
    bool done = false;  // guarded by mu_
    Status status;
    uint64_t epoch = 0;
  };

  struct PendingIngest {
    /// Null marks an expiry tick (SweepExpiredNow): the pass applies no
    /// points for it, but runs the expiry sweep and completes the ticket.
    Collection* collection = nullptr;
    std::vector<double> coords;  // row-major, collection's dims
    std::shared_ptr<Ticket> ticket;  // null for async ingests
    /// MonotonicSeconds() at enqueue; the apply loop observes the
    /// difference into the queue-wait histogram.
    double enqueue_seconds = 0.0;
    /// Request trace id (0 = untraced): the apply loop tags this op's
    /// queue_wait span and the pass's shard/WAL/publish spans with it.
    uint64_t trace_id = 0;
  };

  Response DoIngest(const Request& request, uint64_t trace_id);
  Response DoQuery(const Request& request);
  Response DoStats(const Request& request);
  Response DoSnapshot(const Request& request);
  Response DoMetrics();
  Response DoConfigure(const Request& request);
  Response DoTrace(const Request& request);
  Response DoHealth();

  /// Re-reads the process self-gauges (RSS, open fds, threads) from
  /// /proc/self; no-op values stay 0 on platforms without procfs.
  void RefreshProcessGauges();

  /// Looks up a collection (null when absent). Never creates.
  Collection* FindCollection(const std::string& name)
      DBSCOUT_EXCLUDES(collections_mu_);

  /// Opens `name`'s CollectionStore under data_dir (null options_.data_dir
  /// = null store). `recovered` receives the on-disk state to replay.
  Result<std::unique_ptr<storage::CollectionStore>> OpenStore(
      const std::string& name, storage::RecoveredCollection* recovered);

  /// Constructor-time crash recovery: scans data_dir, recreates every
  /// collection found there, and replays snapshot + WAL suffix through
  /// the normal apply pipeline. Runs before the apply loop starts, so the
  /// coordinator-thread contract holds.
  Status RecoverCollections() DBSCOUT_EXCLUDES(collections_mu_);
  Status RecoverCollection(const std::string& name,
                           const std::string& dir)
      DBSCOUT_EXCLUDES(collections_mu_);
  /// Replays one recovered collection: base state as one add pass plus
  /// one expiry pass, then each WAL suffix record as its own pass.
  Status ReplayCollection(Collection* collection,
                          const storage::RecoveredCollection& recovered);

  /// Validates the batch shape and returns the collection, creating it on
  /// first ingest (dims fixed by the first batch).
  Result<Collection*> CollectionForIngest(const std::string& name,
                                          uint16_t dims, size_t coords_size)
      DBSCOUT_EXCLUDES(collections_mu_);

  /// Enqueues under the admission cap, or sheds. `ticket` may be null;
  /// `trace_id` tags the op's apply-side spans (0 = untraced).
  Status Enqueue(Collection* collection, std::vector<double> coords,
                 std::shared_ptr<Ticket> ticket, uint64_t trace_id = 0)
      DBSCOUT_EXCLUDES(mu_);

  void ApplyLoop() DBSCOUT_EXCLUDES(mu_);
  /// One coalesced apply pass: groups `batch` per collection, folds each
  /// collection's adds plus its aged-out TTL ranges into one
  /// epoch-barriered router pass, then publishes one merged snapshot per
  /// touched collection. An empty `batch` is an expiry-only pass
  /// (periodic window wakeup).
  void ApplyPass(std::vector<PendingIngest> batch)
      DBSCOUT_EXCLUDES(mu_, collections_mu_);
  /// Pops `collection`'s aged-out stamp ranges and advances window_begin,
  /// returning true and the global-id range [*begin, *end) to remove
  /// (the router pass performs the actual removals). Apply loop only.
  bool ComputeExpiry(Collection* collection, double now, uint64_t* begin,
                     uint64_t* end);

  const ServiceOptions options_;
  std::function<double()> clock_;

  Mutex collections_mu_;
  std::unordered_map<std::string, std::unique_ptr<Collection>> collections_
      DBSCOUT_GUARDED_BY(collections_mu_);

  Mutex mu_;
  CondVar queue_cv_;    // apply loop wakeups
  CondVar tickets_cv_;  // ticket completion + drain
  std::deque<PendingIngest> queue_ DBSCOUT_GUARDED_BY(mu_);
  /// Queued ops somebody blocks on (ticketed). While zero, the apply loop
  /// may linger briefly to coalesce fire-and-forget batches into bigger
  /// passes; the first ticketed arrival cuts that window short.
  uint64_t ticketed_pending_ DBSCOUT_GUARDED_BY(mu_) = 0;
  uint64_t enqueued_ DBSCOUT_GUARDED_BY(mu_) = 0;  // batches ever enqueued
  uint64_t applied_ DBSCOUT_GUARDED_BY(mu_) = 0;   // batches published
  bool stop_ DBSCOUT_GUARDED_BY(mu_) = false;
  bool apply_paused_ DBSCOUT_GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> admission_rejections_{0};
  /// True once any collection has a TTL window; flips the apply loop from
  /// indefinite waits to periodic expiry wakeups. Never unset.
  std::atomic<bool> has_window_{false};

  /// Constructor-time recovery outcome (OK when data_dir is empty).
  Status recovery_status_;
  /// HEALTH-visible recovery progress. kRecovering while a deferred
  /// recovery is pending/running; collection verbs are refused meanwhile.
  std::atomic<RecoveryState> recovery_state_{RecoveryState::kNone};

  WallTimer uptime_;

  /// Resolved observability handles (cached once in the constructor; the
  /// hot paths below never touch the registry's map again).
  obs::Registry* registry_ = nullptr;
  obs::TraceCollector* trace_ = nullptr;
  obs::Counter* ingest_batches_total_ = nullptr;
  obs::Counter* ingest_points_total_ = nullptr;
  obs::Counter* ingest_errors_total_ = nullptr;
  obs::Counter* shed_total_ = nullptr;
  obs::Gauge* collections_gauge_ = nullptr;
  obs::Histogram* queue_wait_seconds_ = nullptr;
  obs::Histogram* apply_batch_size_ = nullptr;
  obs::Gauge* apply_shards_gauge_ = nullptr;
  obs::Histogram* apply_shard_seconds_ = nullptr;
  obs::Counter* replay_records_total_ = nullptr;
  obs::Counter* replay_points_total_ = nullptr;
  obs::Histogram* replay_seconds_ = nullptr;
  obs::Counter* wal_commit_failures_total_ = nullptr;
  obs::Gauge* process_rss_bytes_ = nullptr;
  obs::Gauge* process_open_fds_ = nullptr;
  obs::Gauge* process_threads_ = nullptr;
  /// Request latency by verb, indexed by Verb's numeric value.
  std::array<obs::Histogram*, kNumVerbSlots> request_seconds_{};

  /// Shard workers AddBatchParallel fans block tasks out on; null when the
  /// resolved apply_shards is 1 (serial apply). Only forwarded to
  /// single-detector (num_shards == 1) routers: AddBatchParallel's wave
  /// barriers WaitIdle() the pool, so it must never be shared by
  /// concurrently-applying detectors. Declared before apply_pool_ so the
  /// apply loop never outlives its workers.
  std::unique_ptr<ThreadPool> shard_pool_;

  /// Declared last so it is destroyed first: the apply-loop task has
  /// already exited by then (the destructor calls Stop()).
  ThreadPool apply_pool_;
};

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_SERVICE_H_

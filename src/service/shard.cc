#include "service/shard.h"

#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace dbscout::service {

DetectorShard::DetectorShard(size_t index, core::IncrementalDetector detector)
    : index_(index), detector_(std::move(detector)) {
  // The loop has no tasks yet, so the constructing thread owns the
  // detector; publish the epoch-0 snapshot before anyone can read it.
  snapshot_.store(detector_.SnapshotNow(), std::memory_order_release);
}

void DetectorShard::BeginApply(Work work, ThreadPool* inner_pool) {
  work_ = std::move(work);
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  // Submit() publishes work_ to the loop thread (the pool's queue mutex
  // provides the happens-before edge).
  loop_.Submit([this, inner_pool] { RunApply(inner_pool); });
}

const DetectorShard::Outcome& DetectorShard::AwaitApply() {
  loop_.WaitIdle();
  return outcome_;
}

void DetectorShard::RunApply(ThreadPool* inner_pool) {
  Outcome outcome;
  {
    WallTimer timer;
    for (const uint32_t id : work_.removals) {
      const Status removed = detector_.Remove(id);
      if (removed.ok()) {
        ++outcome.removed;
      } else {
        ++outcome.remove_failures;
        DBSCOUT_LOG(kWarning) << "shard " << index_ << ": remove id=" << id
                              << " failed: " << removed.ToString();
      }
    }
    outcome.remove_seconds = timer.ElapsedSeconds();
  }
  if (work_.adds.size() > 0) {
    WallTimer timer;
    outcome.status = detector_.AddBatchParallel(work_.adds, inner_pool,
                                                &outcome.apply_stats);
    outcome.apply_seconds = timer.ElapsedSeconds();
  }
  // One span per pass with real work, timed on this (the shard loop)
  // thread so the trace shows the shards' true overlap. The span name
  // carries no shard number; tid + the records arg distinguish shards.
  if (trace_ != nullptr &&
      (work_.adds.size() > 0 || !work_.removals.empty())) {
    trace_->AddTracedSpan("shard_apply", "shard", work_.trace_id,
                          trace_scope_,
                          outcome.apply_seconds + outcome.remove_seconds,
                          work_.adds.size());
  }
  snapshot_.store(detector_.SnapshotNow(), std::memory_order_release);
  outcome_ = outcome;
  queue_depth_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace dbscout::service

#ifndef DBSCOUT_SERVICE_SHARD_H_
#define DBSCOUT_SERVICE_SHARD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/incremental.h"
#include "data/point_set.h"
#include "obs/trace.h"

namespace dbscout::service {

/// One detector shard: an IncrementalDetector plus its own single-thread
/// apply loop. A ShardRouter owns N of these and partitions cell space
/// between them; each shard holds the points homed in its region plus
/// ghost replicas of every point within grid::HaloSlabs(d) slabs of its
/// owned range, which makes its labels for owned points exact (DESIGN.md
/// section 14).
///
/// Threading contract (no locks — the barrier IS the synchronization):
///   - The coordinator (the service apply thread) is the only caller of
///     BeginApply()/AwaitApply(), and alternates them: one BeginApply,
///     then one AwaitApply, per shard per pass.
///   - BeginApply() hands the work to the shard's private loop thread;
///     AwaitApply() blocks on ThreadPool::WaitIdle(), which establishes a
///     happens-before edge from everything the loop thread wrote. After
///     AwaitApply() returns, the coordinator may freely read outcome()
///     and detector() until the next BeginApply().
///   - snapshot() may be called from any thread at any time; the shard
///     publishes each new snapshot with a release store and readers load
///     with acquire (the same discipline as the service's collection
///     snapshot pointer).
class DetectorShard {
 public:
  /// One pass worth of work for this shard. Removals are shard-local ids
  /// (owned points and ghost replicas alike) and are applied before the
  /// adds; labels are an order-independent function of the live set, so
  /// the order only affects constants. Local insertion ids are assigned
  /// in `adds` row order, continuing from the shard detector's epoch.
  struct Work {
    PointSet adds{1};
    std::vector<uint32_t> removals;
    /// Request trace id this pass is attributed to (0 = untraced). Set by
    /// the router from the pass context; the shard loop tags its
    /// shard_apply span with it.
    uint64_t trace_id = 0;
  };

  /// What one pass did, read by the coordinator after AwaitApply().
  struct Outcome {
    Status status;             // first add-path failure, else OK
    double apply_seconds = 0;  // the AddBatchParallel segment
    double remove_seconds = 0;
    uint64_t removed = 0;
    uint64_t remove_failures = 0;
    core::ApplyStats apply_stats;
  };

  DetectorShard(size_t index, core::IncrementalDetector detector);

  DetectorShard(const DetectorShard&) = delete;
  DetectorShard& operator=(const DetectorShard&) = delete;

  /// Attaches a span sink (null detaches). The shard loop emits one
  /// shard_apply span per pass with nonzero work, timed on the loop thread
  /// itself — the true per-shard apply segment, not the coordinator's view
  /// of it. Coordinator only, while the shard is quiescent; `scope` is the
  /// owning collection's name.
  void AttachTrace(obs::TraceCollector* trace, std::string scope) {
    trace_ = trace;
    trace_scope_ = std::move(scope);
  }

  /// Enqueues one pass on the shard loop. `inner_pool` parallelizes the
  /// detector's slab-block waves and must be null when several shards run
  /// concurrently: AddBatchParallel's wave barriers use WaitIdle() on the
  /// inner pool, so a pool shared across concurrently-applying detectors
  /// would barrier on each other's work.
  void BeginApply(Work work, ThreadPool* inner_pool);

  /// Blocks until the shard loop drains (the epoch barrier), then returns
  /// the pass outcome. Also safe to call when no pass is in flight.
  const Outcome& AwaitApply();

  /// Latest published snapshot (acquire load; callable from any thread).
  std::shared_ptr<const core::IncrementalSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Pending + in-flight passes on the shard loop (0 or 1 under the
  /// coordinator's alternation contract). Any thread.
  uint64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// Validates dims/finiteness against the detector's immutable geometry.
  /// Reads only construction-time state, so it is safe concurrently with
  /// an in-flight pass.
  Status ValidatePoint(std::span<const double> point) const {
    return detector_.ValidatePoint(point);
  }

  /// The underlying detector. Coordinator only, and only while the shard
  /// is quiescent (between AwaitApply() and the next BeginApply()).
  const core::IncrementalDetector& detector() const { return detector_; }

  size_t index() const { return index_; }

 private:
  void RunApply(ThreadPool* inner_pool);

  const size_t index_;
  obs::TraceCollector* trace_ = nullptr;  // written while quiescent only
  std::string trace_scope_;
  core::IncrementalDetector detector_;  // mutated on loop_ thread only
  Work work_;     // handoff slot: written by BeginApply, read by RunApply
  Outcome outcome_;  // written by RunApply, read after AwaitApply
  std::atomic<std::shared_ptr<const core::IncrementalSnapshot>> snapshot_;
  std::atomic<uint64_t> queue_depth_{0};
  ThreadPool loop_{1};  // declared last: drains before members destruct
};

}  // namespace dbscout::service

#endif  // DBSCOUT_SERVICE_SHARD_H_

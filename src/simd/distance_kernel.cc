// Batched one-point-vs-block distance kernels with runtime CPU dispatch.
//
// Bit-exactness contract: every variant evaluates, per point, the same
// ascending-k sum of (a[k]-b[k])^2 with separate multiply and add roundings.
// The AVX2 variants therefore use mul+add rather than FMA (a fused
// multiply-add rounds once and can flip <= eps2 decisions on boundary
// points), and this translation unit is compiled with -ffp-contract=off so
// the scalar reference cannot be contracted either. The SIMD variants
// vectorize across *points* (one point per lane), which keeps each lane's
// accumulation order identical to the scalar loop.
#include "simd/distance_kernel.h"

#include <atomic>
#include <limits>
#include <utility>

#if defined(__x86_64__) || defined(_M_X64)
#define DBSCOUT_SIMD_X86 1
#include <immintrin.h>
#endif

namespace dbscout::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference.
// ---------------------------------------------------------------------------

template <size_t D>
inline double SqDist(const double* a, const double* b) {
  double sum = 0.0;
  for (size_t k = 0; k < D; ++k) {
    const double diff = a[k] - b[k];
    sum += diff * diff;
  }
  return sum;
}

template <size_t D>
uint32_t CountScalar(const double* query, const double* block, size_t count,
                     double eps2, uint32_t cap) {
  uint32_t hits = 0;
  size_t i = 0;
  for (; i + kKernelBatch <= count; i += kKernelBatch) {
    for (size_t j = 0; j < kKernelBatch; ++j) {
      hits += SqDist<D>(query, block + (i + j) * D) <= eps2 ? 1u : 0u;
    }
    // kernel-cap: batch-boundary (contract: cap may only be consulted here,
    // between kKernelBatch-sized batches, so all variants do identical work)
    if (cap != 0 && hits >= cap) {
      return hits;
    }
  }
  for (; i < count; ++i) {
    hits += SqDist<D>(query, block + i * D) <= eps2 ? 1u : 0u;
  }
  return hits;
}

template <size_t D>
bool AnyScalar(const double* query, const double* block, size_t count,
               double eps2) {
  for (size_t i = 0; i < count; ++i) {
    if (SqDist<D>(query, block + i * D) <= eps2) {
      return true;
    }
  }
  return false;
}

template <size_t D>
double MinScalar(const double* query, const double* block, size_t count) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < count; ++i) {
    const double d2 = SqDist<D>(query, block + i * D);
    best = d2 < best ? d2 : best;
  }
  return best;
}

template <size_t D>
uint32_t FlagsScalar(const double* query, const double* block, size_t count,
                     double eps2, uint8_t* flags) {
  uint32_t hits = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint8_t within = SqDist<D>(query, block + i * D) <= eps2 ? 1 : 0;
    flags[i] = within;
    hits += within;
  }
  return hits;
}

#if DBSCOUT_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 (baseline on x86-64): two points per vector, cap checked every
// kKernelBatch (= 4) points.
// ---------------------------------------------------------------------------

template <size_t D>
inline __m128d SqDist2(const double* query, const double* p) {
  __m128d acc = _mm_setzero_pd();
  for (size_t k = 0; k < D; ++k) {
    const __m128d v = _mm_setr_pd(p[k], p[D + k]);
    const __m128d diff = _mm_sub_pd(v, _mm_set1_pd(query[k]));
    acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
  }
  return acc;
}

template <size_t D>
uint32_t CountSse2(const double* query, const double* block, size_t count,
                   double eps2, uint32_t cap) {
  const __m128d eps2v = _mm_set1_pd(eps2);
  uint32_t hits = 0;
  size_t i = 0;
  for (; i + kKernelBatch <= count; i += kKernelBatch) {
    const __m128d a = SqDist2<D>(query, block + i * D);
    const __m128d b = SqDist2<D>(query, block + (i + 2) * D);
    hits += static_cast<uint32_t>(
        __builtin_popcount(_mm_movemask_pd(_mm_cmple_pd(a, eps2v))) +
        __builtin_popcount(_mm_movemask_pd(_mm_cmple_pd(b, eps2v))));
    // kernel-cap: batch-boundary (contract: cap may only be consulted here,
    // between kKernelBatch-sized batches, so all variants do identical work)
    if (cap != 0 && hits >= cap) {
      return hits;
    }
  }
  for (; i < count; ++i) {
    hits += SqDist<D>(query, block + i * D) <= eps2 ? 1u : 0u;
  }
  return hits;
}

template <size_t D>
bool AnySse2(const double* query, const double* block, size_t count,
             double eps2) {
  const __m128d eps2v = _mm_set1_pd(eps2);
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128d a = SqDist2<D>(query, block + i * D);
    if (_mm_movemask_pd(_mm_cmple_pd(a, eps2v)) != 0) {
      return true;
    }
  }
  for (; i < count; ++i) {
    if (SqDist<D>(query, block + i * D) <= eps2) {
      return true;
    }
  }
  return false;
}

template <size_t D>
double MinSse2(const double* query, const double* block, size_t count) {
  __m128d bestv = _mm_set1_pd(std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    bestv = _mm_min_pd(bestv, SqDist2<D>(query, block + i * D));
  }
  double lanes[2];
  _mm_storeu_pd(lanes, bestv);
  double best = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  for (; i < count; ++i) {
    const double d2 = SqDist<D>(query, block + i * D);
    best = d2 < best ? d2 : best;
  }
  return best;
}

template <size_t D>
uint32_t FlagsSse2(const double* query, const double* block, size_t count,
                   double eps2, uint8_t* flags) {
  const __m128d eps2v = _mm_set1_pd(eps2);
  uint32_t hits = 0;
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const int mask =
        _mm_movemask_pd(_mm_cmple_pd(SqDist2<D>(query, block + i * D), eps2v));
    flags[i] = static_cast<uint8_t>(mask & 1);
    flags[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
    hits += static_cast<uint32_t>(__builtin_popcount(mask));
  }
  for (; i < count; ++i) {
    const uint8_t within = SqDist<D>(query, block + i * D) <= eps2 ? 1 : 0;
    flags[i] = within;
    hits += within;
  }
  return hits;
}

#if defined(DBSCOUT_SIMD_ENABLE_AVX2) && defined(__GNUC__)
#define DBSCOUT_SIMD_HAVE_AVX2 1

// ---------------------------------------------------------------------------
// AVX2: four points per vector (one kKernelBatch per iteration). Compiled
// for the avx2 target only (not fma — see the bit-exactness contract) and
// selected at runtime via __builtin_cpu_supports.
// ---------------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx2")

template <size_t D>
inline __m256d SqDist4(const double* query, const double* p) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t k = 0; k < D; ++k) {
    const __m256d v =
        _mm256_setr_pd(p[k], p[D + k], p[2 * D + k], p[3 * D + k]);
    const __m256d diff = _mm256_sub_pd(v, _mm256_set1_pd(query[k]));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  return acc;
}

template <size_t D>
uint32_t CountAvx2(const double* query, const double* block, size_t count,
                   double eps2, uint32_t cap) {
  const __m256d eps2v = _mm256_set1_pd(eps2);
  uint32_t hits = 0;
  size_t i = 0;
  for (; i + kKernelBatch <= count; i += kKernelBatch) {
    const __m256d d2 = SqDist4<D>(query, block + i * D);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, eps2v, _CMP_LE_OQ));
    hits += static_cast<uint32_t>(__builtin_popcount(mask));
    // kernel-cap: batch-boundary (contract: cap may only be consulted here,
    // between kKernelBatch-sized batches, so all variants do identical work)
    if (cap != 0 && hits >= cap) {
      return hits;
    }
  }
  for (; i < count; ++i) {
    hits += SqDist<D>(query, block + i * D) <= eps2 ? 1u : 0u;
  }
  return hits;
}

template <size_t D>
bool AnyAvx2(const double* query, const double* block, size_t count,
             double eps2) {
  const __m256d eps2v = _mm256_set1_pd(eps2);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d d2 = SqDist4<D>(query, block + i * D);
    if (_mm256_movemask_pd(_mm256_cmp_pd(d2, eps2v, _CMP_LE_OQ)) != 0) {
      return true;
    }
  }
  for (; i < count; ++i) {
    if (SqDist<D>(query, block + i * D) <= eps2) {
      return true;
    }
  }
  return false;
}

template <size_t D>
double MinAvx2(const double* query, const double* block, size_t count) {
  __m256d bestv = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    bestv = _mm256_min_pd(bestv, SqDist4<D>(query, block + i * D));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, bestv);
  double best = lanes[0];
  for (int l = 1; l < 4; ++l) {
    best = lanes[l] < best ? lanes[l] : best;
  }
  for (; i < count; ++i) {
    const double d2 = SqDist<D>(query, block + i * D);
    best = d2 < best ? d2 : best;
  }
  return best;
}

template <size_t D>
uint32_t FlagsAvx2(const double* query, const double* block, size_t count,
                   double eps2, uint8_t* flags) {
  const __m256d eps2v = _mm256_set1_pd(eps2);
  uint32_t hits = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d d2 = SqDist4<D>(query, block + i * D);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, eps2v, _CMP_LE_OQ));
    flags[i] = static_cast<uint8_t>(mask & 1);
    flags[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
    flags[i + 2] = static_cast<uint8_t>((mask >> 2) & 1);
    flags[i + 3] = static_cast<uint8_t>((mask >> 3) & 1);
    hits += static_cast<uint32_t>(__builtin_popcount(mask));
  }
  for (; i < count; ++i) {
    const uint8_t within = SqDist<D>(query, block + i * D) <= eps2 ? 1 : 0;
    flags[i] = within;
    hits += within;
  }
  return hits;
}

#pragma GCC pop_options

#endif  // DBSCOUT_SIMD_ENABLE_AVX2 && __GNUC__
#endif  // DBSCOUT_SIMD_X86

// ---------------------------------------------------------------------------
// Table construction and runtime dispatch.
// ---------------------------------------------------------------------------

template <template <size_t> class Tag, size_t... Ds>
void FillTable(DistanceKernels* table, std::index_sequence<Ds...>) {
  ((table->count_within[Ds] = Tag<Ds>::kCount,
    table->any_within[Ds] = Tag<Ds>::kAny,
    table->min_sqdist[Ds] = Tag<Ds>::kMin,
    table->within_flags[Ds] = Tag<Ds>::kFlags),
   ...);
}

template <size_t D>
struct ScalarTag {
  static constexpr CountWithinFn kCount = &CountScalar<D>;
  static constexpr AnyWithinFn kAny = &AnyScalar<D>;
  static constexpr MinSqDistFn kMin = &MinScalar<D>;
  static constexpr WithinFlagsFn kFlags = &FlagsScalar<D>;
};

DistanceKernels MakeScalarTable() {
  DistanceKernels table{};
  table.name = "scalar";
  FillTable<ScalarTag>(&table,
                       std::make_index_sequence<kKernelMaxDims + 1>());
  return table;
}

#if DBSCOUT_SIMD_X86

template <size_t D>
struct Sse2Tag {
  static constexpr CountWithinFn kCount = &CountSse2<D>;
  static constexpr AnyWithinFn kAny = &AnySse2<D>;
  static constexpr MinSqDistFn kMin = &MinSse2<D>;
  static constexpr WithinFlagsFn kFlags = &FlagsSse2<D>;
};

DistanceKernels MakeSse2Table() {
  DistanceKernels table{};
  table.name = "sse2";
  FillTable<Sse2Tag>(&table, std::make_index_sequence<kKernelMaxDims + 1>());
  return table;
}

#if defined(DBSCOUT_SIMD_HAVE_AVX2)

template <size_t D>
struct Avx2Tag {
  static constexpr CountWithinFn kCount = &CountAvx2<D>;
  static constexpr AnyWithinFn kAny = &AnyAvx2<D>;
  static constexpr MinSqDistFn kMin = &MinAvx2<D>;
  static constexpr WithinFlagsFn kFlags = &FlagsAvx2<D>;
};

DistanceKernels MakeAvx2Table() {
  DistanceKernels table{};
  table.name = "avx2";
  FillTable<Avx2Tag>(&table, std::make_index_sequence<kKernelMaxDims + 1>());
  return table;
}

#endif  // DBSCOUT_SIMD_HAVE_AVX2
#endif  // DBSCOUT_SIMD_X86

const DistanceKernels& NativeKernels() {
  static const DistanceKernels* const best = [] {
#if defined(DBSCOUT_SIMD_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2")) {
      static const DistanceKernels avx2 = MakeAvx2Table();
      return &avx2;
    }
#endif
#if DBSCOUT_SIMD_X86
    static const DistanceKernels sse2 = MakeSse2Table();
    return &sse2;
#else
    return &ScalarKernels();
#endif
  }();
  return *best;
}

std::atomic<bool> g_force_scalar{
#if defined(DBSCOUT_FORCE_SCALAR_KERNELS)
    true
#else
    false
#endif
};

}  // namespace

const DistanceKernels& ScalarKernels() {
  static const DistanceKernels table = MakeScalarTable();
  return table;
}

const DistanceKernels& DispatchedKernels() {
  return g_force_scalar.load(std::memory_order_relaxed) ? ScalarKernels()
                                                        : NativeKernels();
}

void ForceScalarKernels(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ScalarKernelsForced() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

}  // namespace dbscout::simd

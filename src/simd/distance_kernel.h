#ifndef DBSCOUT_SIMD_DISTANCE_KERNEL_H_
#define DBSCOUT_SIMD_DISTANCE_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace dbscout::simd {

/// Highest dimensionality with a fixed-dim kernel instantiation; matches
/// dbscout::kMaxDims (the grid machinery's cap). Index 0 is also valid
/// (degenerate: every squared distance is 0).
inline constexpr size_t kKernelMaxDims = 9;

/// Early-exit granularity, in points. Kernels that take a `cap` process the
/// block in batches of this size and check the cap only between batches, so
/// every variant (scalar, SSE2, AVX2) performs the same, deterministic
/// amount of work and returns the same value. This is the paper's
/// grouped-join early termination (SS III-G2) mapped onto block granularity.
inline constexpr size_t kKernelBatch = 4;

/// One-point-vs-block primitives over a contiguous row-major block of
/// `count` points with a fixed dimensionality (the array index into
/// DistanceKernels). All variants are bit-identical: they accumulate
/// (a[k]-b[k])^2 in ascending-k order with separate multiply and add
/// roundings (no FMA contraction), so `scalar` and the dispatched SIMD
/// table agree exactly, including on eps boundaries.
///
/// CountWithinFn: number of block points with squared distance <= eps2
/// from `query`. When cap > 0, returns as soon as the running count
/// reaches cap at a batch boundary; the result is then >= cap and <= the
/// true count (callers only test `result >= cap`).
using CountWithinFn = uint32_t (*)(const double* query, const double* block,
                                   size_t count, double eps2, uint32_t cap);
/// True when any block point has squared distance <= eps2 from `query`.
using AnyWithinFn = bool (*)(const double* query, const double* block,
                             size_t count, double eps2);
/// Minimum squared distance from `query` to the block; +infinity when the
/// block is empty. Exact (min is order-independent for finite inputs).
using MinSqDistFn = double (*)(const double* query, const double* block,
                               size_t count);
/// Per-point membership: writes flags[i] = 1 when block point i has squared
/// distance <= eps2 from `query`, else 0, and returns the number of hits.
/// No early exit (callers need every flag), so all variants always evaluate
/// the full block. `flags` must have `count` writable bytes.
using WithinFlagsFn = uint32_t (*)(const double* query, const double* block,
                                   size_t count, double eps2, uint8_t* flags);

/// A full kernel set: one function pointer per primitive per dimensionality,
/// indexed by dims in [0, kKernelMaxDims]. The fixed-dim instantiations keep
/// the per-point inner loop fully unrolled.
struct DistanceKernels {
  const char* name;  // "scalar", "sse2", or "avx2"
  CountWithinFn count_within[kKernelMaxDims + 1];
  AnyWithinFn any_within[kKernelMaxDims + 1];
  MinSqDistFn min_sqdist[kKernelMaxDims + 1];
  WithinFlagsFn within_flags[kKernelMaxDims + 1];
};

/// The scalar reference table (always available; the oracle in tests).
const DistanceKernels& ScalarKernels();

/// The best table for this CPU, chosen once at first use by runtime
/// dispatch (AVX2 when the CPU and build support it, else SSE2 on x86-64,
/// else scalar), unless scalar kernels are forced.
const DistanceKernels& DispatchedKernels();

/// Overrides DispatchedKernels() to return the scalar table (for tests and
/// benchmarking). Defaults to the DBSCOUT_FORCE_SCALAR_KERNELS build option.
void ForceScalarKernels(bool force);
bool ScalarKernelsForced();

// --- Convenience wrappers taking dims at runtime. ---

inline uint32_t CountWithinEps2(const double* query, const double* block,
                                size_t count, size_t dims, double eps2,
                                uint32_t cap) {
  return DispatchedKernels().count_within[dims](query, block, count, eps2,
                                                cap);
}

inline bool AnyWithinEps2(const double* query, const double* block,
                          size_t count, size_t dims, double eps2) {
  return DispatchedKernels().any_within[dims](query, block, count, eps2);
}

inline double MinSquaredDistance(const double* query, const double* block,
                                 size_t count, size_t dims) {
  return DispatchedKernels().min_sqdist[dims](query, block, count);
}

inline uint32_t WithinFlagsEps2(const double* query, const double* block,
                                size_t count, size_t dims, double eps2,
                                uint8_t* flags) {
  return DispatchedKernels().within_flags[dims](query, block, count, eps2,
                                                flags);
}

}  // namespace dbscout::simd

#endif  // DBSCOUT_SIMD_DISTANCE_KERNEL_H_

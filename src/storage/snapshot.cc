#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/str_util.h"

namespace dbscout::storage {
namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::IoError(
      StrFormat("%s %s: %s", what, path.c_str(), std::strerror(errno)));
}

Status WriteAll(int fd, const uint8_t* data, size_t len,
                const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("write", path);
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// fsync the directory containing `path`, making the rename durable.
Status SyncParentDir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Errno("open dir", dir);
  }
  Status status = Status::OK();
  if (::fsync(fd) != 0) {
    status = Errno("fsync dir", dir);
  }
  ::close(fd);
  return status;
}

}  // namespace

Status ApplyRecordToState(const WalRecord& record, CollectionState* state) {
  switch (record.type) {
    case WalRecordType::kCreate:
      if (state->epoch != 0) {
        return Status::IoError("wal create record after ingests");
      }
      state->dims = record.dims;
      state->ttl_seconds = record.ttl_seconds;
      return Status::OK();
    case WalRecordType::kIngest: {
      if (state->dims == 0) {
        state->dims = record.dims;
      }
      if (record.dims != state->dims) {
        return Status::IoError(
            StrFormat("wal ingest record dims %u != collection dims %u",
                      record.dims, state->dims));
      }
      if (record.base_epoch != state->epoch) {
        return Status::IoError(StrFormat(
            "wal ingest record at epoch %llu but collection is at %llu "
            "(lost or reordered records)",
            static_cast<unsigned long long>(record.base_epoch),
            static_cast<unsigned long long>(state->epoch)));
      }
      state->coords.insert(state->coords.end(), record.coords.begin(),
                           record.coords.end());
      state->epoch += record.coords.size() / state->dims;
      return Status::OK();
    }
    case WalRecordType::kExpire:
      // Prefix-only expiry: the window never rewinds, and ranges arrive
      // in order, so `end` monotonically advances window_begin.
      if (record.expire_end > state->epoch) {
        return Status::IoError("wal expire record past the epoch");
      }
      if (record.expire_begin != state->window_begin) {
        return Status::IoError("wal expire record does not extend the "
                               "expired prefix");
      }
      state->window_begin = record.expire_end;
      return Status::OK();
    case WalRecordType::kConfigure:
      state->ttl_seconds = record.ttl_seconds;
      return Status::OK();
    case WalRecordType::kPlan:
      state->has_plan = true;
      state->plan_halo = record.halo;
      state->plan_stripes = record.stripes;
      return Status::OK();
  }
  return Status::IoError("unknown wal record type");
}

Status WriteSnapshotFile(const std::string& path,
                         const CollectionState& state) {
  std::vector<uint8_t> payload;
  Put<uint16_t>(&payload, state.dims);
  Put<uint64_t>(&payload, state.epoch);
  Put<uint64_t>(&payload, state.window_begin);
  Put<double>(&payload, state.ttl_seconds);
  Put<uint8_t>(&payload, state.has_plan ? 1 : 0);
  if (state.has_plan) {
    Put<int64_t>(&payload, state.plan_halo);
    Put<uint32_t>(&payload, static_cast<uint32_t>(state.plan_stripes.size()));
    for (const grid::Stripe& stripe : state.plan_stripes) {
      Put<int64_t>(&payload, stripe.slab_lo);
      Put<int64_t>(&payload, stripe.slab_hi);
    }
  }
  Put<uint64_t>(&payload, static_cast<uint64_t>(state.coords.size()));
  PutDoubles(&payload, state.coords);

  std::vector<uint8_t> file;
  file.reserve(payload.size() + 20);
  Put<uint32_t>(&file, kSnapshotMagic);
  Put<uint32_t>(&file, kSnapshotVersion);
  Put<uint64_t>(&file, static_cast<uint64_t>(payload.size()));
  const size_t old_size = file.size();
  file.resize(old_size + payload.size());
  if (!payload.empty()) {
    std::memcpy(file.data() + old_size, payload.data(), payload.size());
  }
  Put<uint32_t>(&file, Crc32c(payload));

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Errno("create snapshot", tmp);
  }
  Status status = WriteAll(fd, file.data(), file.size(), tmp);
  if (status.ok() && ::fdatasync(fd) != 0) {
    status = Errno("fdatasync snapshot", tmp);
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Errno("close snapshot", tmp);
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Errno("rename snapshot", path);
    ::unlink(tmp.c_str());
    return status;
  }
  return SyncParentDir(path);
}

Result<CollectionState> ReadSnapshotFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Errno("open snapshot", path);
  }
  std::vector<uint8_t> data;
  uint8_t buf[1u << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const Status status = Errno("read snapshot", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      break;
    }
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);

  ByteReader outer(data);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_len = 0;
  {
    auto m = outer.Read<uint32_t>();
    auto v = outer.Read<uint32_t>();
    auto l = outer.Read<uint64_t>();
    if (!m.ok() || !v.ok() || !l.ok()) {
      return Status::IoError(
          StrFormat("%s: truncated snapshot header", path.c_str()));
    }
    magic = *m;
    version = *v;
    payload_len = *l;
  }
  if (magic != kSnapshotMagic) {
    return Status::IoError(
        StrFormat("%s: not a snapshot (bad magic)", path.c_str()));
  }
  if (version != kSnapshotVersion) {
    return Status::IoError(StrFormat("%s: unsupported snapshot version %u",
                                     path.c_str(), version));
  }
  if (data.size() < 16 || data.size() - 16 < payload_len + 4) {
    return Status::IoError(
        StrFormat("%s: truncated snapshot", path.c_str()));
  }
  const std::span<const uint8_t> payload(data.data() + 16, payload_len);
  uint32_t crc = 0;
  std::memcpy(&crc, data.data() + 16 + payload_len, 4);
  if (Crc32c(payload) != crc) {
    return Status::IoError(
        StrFormat("%s: snapshot crc mismatch", path.c_str()));
  }
  if (data.size() - 16 != payload_len + 4) {
    return Status::IoError(
        StrFormat("%s: trailing bytes after snapshot", path.c_str()));
  }

  ByteReader reader(payload);
  CollectionState state;
  DBSCOUT_ASSIGN_OR_RETURN(state.dims, reader.Read<uint16_t>());
  DBSCOUT_ASSIGN_OR_RETURN(state.epoch, reader.Read<uint64_t>());
  DBSCOUT_ASSIGN_OR_RETURN(state.window_begin, reader.Read<uint64_t>());
  DBSCOUT_ASSIGN_OR_RETURN(state.ttl_seconds, reader.Read<double>());
  DBSCOUT_ASSIGN_OR_RETURN(const uint8_t has_plan, reader.Read<uint8_t>());
  if (has_plan > 1) {
    return Status::IoError(
        StrFormat("%s: malformed snapshot plan flag", path.c_str()));
  }
  state.has_plan = has_plan == 1;
  if (state.has_plan) {
    DBSCOUT_ASSIGN_OR_RETURN(state.plan_halo, reader.Read<int64_t>());
    DBSCOUT_ASSIGN_OR_RETURN(const uint32_t count, reader.Read<uint32_t>());
    state.plan_stripes.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      grid::Stripe stripe;
      DBSCOUT_ASSIGN_OR_RETURN(stripe.slab_lo, reader.Read<int64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(stripe.slab_hi, reader.Read<int64_t>());
      state.plan_stripes.push_back(stripe);
    }
  }
  DBSCOUT_ASSIGN_OR_RETURN(const uint64_t ncoords, reader.Read<uint64_t>());
  DBSCOUT_ASSIGN_OR_RETURN(state.coords, reader.ReadDoubles(ncoords));
  if (!reader.AtEnd()) {
    return Status::IoError(
        StrFormat("%s: trailing bytes in snapshot payload", path.c_str()));
  }
  if (state.dims != 0 && state.coords.size() / state.dims != state.epoch) {
    return Status::IoError(
        StrFormat("%s: snapshot coords do not match epoch", path.c_str()));
  }
  if (state.window_begin > state.epoch) {
    return Status::IoError(
        StrFormat("%s: snapshot window past epoch", path.c_str()));
  }
  return state;
}

}  // namespace dbscout::storage

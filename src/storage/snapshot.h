#ifndef DBSCOUT_STORAGE_SNAPSHOT_H_
#define DBSCOUT_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "grid/regions.h"
#include "storage/wal.h"

namespace dbscout::storage {

/// Logical state of one collection, as reconstructible from disk: the
/// compaction unit. Coordinates are kept for EVERY global id in
/// [0, epoch) — expired ids included — because detector global ids are
/// dense insertion indices that must be preserved across restart (the
/// router's id->shard table and the prefix-only alive mask both index
/// from 0). Replay re-adds all of them and then expires [0, window_begin)
/// in one pass. Compacting the dead prefix out of the id space is future
/// work (it needs an id-remap epoch in the protocol).
struct CollectionState {
  uint16_t dims = 0;
  uint64_t epoch = 0;         // points ever ingested
  uint64_t window_begin = 0;  // ids below are expired (alive mask is 0*1*)
  double ttl_seconds = 0.0;
  bool has_plan = false;
  int64_t plan_halo = 0;
  std::vector<grid::Stripe> plan_stripes;
  std::vector<double> coords;  // row-major, epoch * dims doubles
};

/// Folds one WAL record into the state — the shared definition of replay
/// used by compaction (file-level merge) and wal_inspect. Validates
/// continuity: an ingest record whose base_epoch is not the current epoch
/// means a lost or reordered record and fails.
Status ApplyRecordToState(const WalRecord& record, CollectionState* state);

/// Snapshot files:
///
///   [u32 magic "DBSP"][u32 version][u64 payload_len][payload][u32 crc]
///
/// with the payload in codec encoding (dims, epoch, window_begin, ttl,
/// optional plan, then the coordinate block — the same row-major double
/// layout as the DBSC point-stream format). The trailing CRC32C covers
/// the payload; a mismatch or short file rejects the snapshot so recovery
/// falls back to the previous generation.
inline constexpr uint32_t kSnapshotMagic = 0x50534244;  // "DBSP" LE
inline constexpr uint32_t kSnapshotVersion = 1;

/// Writes atomically: tmp file + fdatasync + rename + directory fsync.
/// A crash mid-write leaves the previous snapshot untouched.
Status WriteSnapshotFile(const std::string& path,
                         const CollectionState& state);

/// Reads and validates (magic, version, length, CRC). IoError on any
/// mismatch — the caller treats that as "this generation is unusable",
/// not as data loss, as long as an older generation + WAL suffix exists.
Result<CollectionState> ReadSnapshotFile(const std::string& path);

}  // namespace dbscout::storage

#endif  // DBSCOUT_STORAGE_SNAPSHOT_H_

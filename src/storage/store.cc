#include "storage/store.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "common/timer.h"

namespace dbscout::storage {
namespace {

namespace fs = std::filesystem;

/// Parses "<prefix>NNNNNN<suffix>" into its sequence number; nullopt for
/// anything else (foreign files in the directory are ignored).
std::optional<uint64_t> ParseSeq(const std::string& name,
                                 const std::string& prefix,
                                 const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size() ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return std::nullopt;
  }
  uint64_t seq = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
      return std::nullopt;
    }
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq == 0 ? std::nullopt : std::optional<uint64_t>(seq);
}

struct DirListing {
  std::map<uint64_t, std::string> segments;   // seq -> path
  std::map<uint64_t, std::string> snapshots;  // seq -> path
};

Result<DirListing> ListDir(const std::string& dir) {
  DirListing listing;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto seq = ParseSeq(name, "wal-", ".log")) {
      listing.segments[*seq] = entry.path().string();
    } else if (const auto seq = ParseSeq(name, "snap-", ".snap")) {
      listing.snapshots[*seq] = entry.path().string();
    }
  }
  if (ec) {
    return Status::IoError(StrFormat("list %s: %s", dir.c_str(),
                                     ec.message().c_str()));
  }
  return listing;
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") {
    return FsyncPolicy::kAlways;
  }
  if (name == "interval") {
    return FsyncPolicy::kInterval;
  }
  if (name == "never") {
    return FsyncPolicy::kNever;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown fsync policy '%s' (always|interval|never)", name.c_str()));
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

std::string EncodeCollectionDirName(const std::string& name) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) || c == '_' || c == '-') {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

Result<std::string> DecodeCollectionDirName(const std::string& dir_name) {
  std::string out;
  out.reserve(dir_name.size());
  for (size_t i = 0; i < dir_name.size(); ++i) {
    if (dir_name[i] != '%') {
      out.push_back(dir_name[i]);
      continue;
    }
    if (i + 2 >= dir_name.size()) {
      return Status::InvalidArgument(
          StrFormat("bad collection dir name '%s'", dir_name.c_str()));
    }
    unsigned value = 0;
    for (int k = 1; k <= 2; ++k) {
      const char c = dir_name[i + k];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Status::InvalidArgument(
            StrFormat("bad collection dir name '%s'", dir_name.c_str()));
      }
    }
    out.push_back(static_cast<char>(value));
    i += 2;
  }
  return out;
}

std::string CollectionStore::SegmentPath(uint64_t seq) const {
  return StrFormat("%s/wal-%06llu.log", dir_.c_str(),
                   static_cast<unsigned long long>(seq));
}

std::string CollectionStore::SnapshotPath(uint64_t seq) const {
  return StrFormat("%s/snap-%06llu.snap", dir_.c_str(),
                   static_cast<unsigned long long>(seq));
}

Result<std::unique_ptr<CollectionStore>> CollectionStore::Open(
    const std::string& dir, const StoreOptions& options,
    RecoveredCollection* recovered) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError(
        StrFormat("mkdir %s: %s", dir.c_str(), ec.message().c_str()));
  }
  std::unique_ptr<CollectionStore> store(new CollectionStore(dir));
  store->collection_ = options.collection;
  store->trace_ = options.trace;
  store->fsync_ = options.fsync;
  store->fsync_interval_seconds_ = options.fsync_interval_seconds;
  store->snapshot_interval_bytes_ = options.snapshot_interval_bytes;
  store->clock_ =
      options.clock ? options.clock : [] { return MonotonicSeconds(); };

  obs::Registry* registry = options.registry != nullptr
                                ? options.registry
                                : &obs::Registry::Global();
  const obs::Labels labels = {{"collection", options.collection}};
  store->wal_appends_total_ = registry->GetCounter(
      "dbscout_wal_appends_total", "WAL record frames appended", labels);
  store->wal_bytes_total_ = registry->GetCounter(
      "dbscout_wal_bytes_total", "WAL bytes appended (frames + headers)",
      labels);
  store->wal_frame_bytes_ = registry->GetHistogram(
      "dbscout_wal_frame_bytes", "Payload size of appended WAL frames",
      obs::HistogramLayout::Bytes(), labels);
  store->fsync_total_ = registry->GetCounter(
      "dbscout_wal_fsync_total", "WAL fsync calls", labels);
  store->fsync_seconds_ = registry->GetHistogram(
      "dbscout_wal_fsync_seconds", "WAL fsync latency",
      obs::HistogramLayout::Latency(), labels);
  store->compactions_total_ = registry->GetCounter(
      "dbscout_snapshot_compactions_total",
      "WAL-to-snapshot compaction cycles", labels);
  store->snapshot_bytes_ = registry->GetGauge(
      "dbscout_snapshot_bytes", "Size of the newest snapshot file", labels);

  // ---- Recovery. ----
  DBSCOUT_ASSIGN_OR_RETURN(DirListing listing, ListDir(dir));

  // Newest snapshot that validates wins; a torn or corrupt generation
  // falls back to the previous one (retention keeps the segments that
  // generation needs).
  *recovered = RecoveredCollection();
  for (auto it = listing.snapshots.rbegin(); it != listing.snapshots.rend();
       ++it) {
    auto state = ReadSnapshotFile(it->second);
    if (state.ok()) {
      recovered->base = *std::move(state);
      store->base_seq_ = it->first;
      store->snapshot_bytes_->Set(
          static_cast<int64_t>(fs::file_size(it->second, ec)));
      break;
    }
    DBSCOUT_LOG(kWarning) << "snapshot " << it->second
                          << " rejected: " << state.status().message()
                          << "; falling back";
  }

  // Contiguous segment run after the snapshot. A gap means a deleted or
  // lost segment: replaying past it would silently drop acknowledged
  // writes, so fail loudly instead.
  std::vector<std::pair<uint64_t, std::string>> replayable;
  for (const auto& [seq, path] : listing.segments) {
    if (seq > store->base_seq_) {
      replayable.emplace_back(seq, path);
    }
  }
  for (size_t i = 0; i < replayable.size(); ++i) {
    const uint64_t expect = store->base_seq_ + 1 + i;
    if (replayable[i].first != expect) {
      return Status::IoError(StrFormat(
          "%s: missing wal segment %llu (found %llu); cannot replay",
          dir.c_str(), static_cast<unsigned long long>(expect),
          static_cast<unsigned long long>(replayable[i].first)));
    }
  }

  uint64_t tail_valid_bytes = 0;
  for (size_t i = 0; i < replayable.size(); ++i) {
    const auto& [seq, path] = replayable[i];
    DBSCOUT_ASSIGN_OR_RETURN(WalScan scan, ScanWalFile(path));
    if (scan.valid_bytes >= kWalHeaderBytes && scan.seq != seq) {
      return Status::IoError(StrFormat(
          "%s: segment header seq %llu does not match filename",
          path.c_str(), static_cast<unsigned long long>(scan.seq)));
    }
    const bool last = i + 1 == replayable.size();
    if (scan.torn && !last) {
      return Status::IoError(StrFormat(
          "%s: torn tail in a sealed segment; cannot replay", path.c_str()));
    }
    for (const std::vector<uint8_t>& frame : scan.frames) {
      DBSCOUT_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(frame));
      recovered->suffix.push_back(std::move(record));
    }
    if (last) {
      tail_valid_bytes = scan.valid_bytes;
    }
  }

  // Reopen the tail segment for append (truncating any torn tail), or
  // start a fresh one.
  if (!replayable.empty()) {
    store->active_seq_ = replayable.back().first;
    const std::string& path = replayable.back().second;
    if (tail_valid_bytes < kWalHeaderBytes) {
      // Header itself was torn: the segment is empty; recreate it.
      fs::remove(path, ec);
      DBSCOUT_ASSIGN_OR_RETURN(
          WalWriter writer, WalWriter::Create(path, store->active_seq_));
      store->writer_ = std::move(writer);
    } else {
      DBSCOUT_ASSIGN_OR_RETURN(
          WalWriter writer, WalWriter::OpenForAppend(path, tail_valid_bytes));
      store->writer_ = std::move(writer);
    }
  } else {
    store->active_seq_ = store->base_seq_ + 1;
    DBSCOUT_ASSIGN_OR_RETURN(
        WalWriter writer,
        WalWriter::Create(store->SegmentPath(store->active_seq_),
                          store->active_seq_));
    store->writer_ = std::move(writer);
  }
  store->last_sync_seconds_ = store->clock_();
  return store;
}

CollectionStore::~CollectionStore() {
  const Status status = Close();
  if (!status.ok()) {
    DBSCOUT_LOG(kWarning) << "closing store " << dir_ << ": "
                          << status.message();
  }
}

Status CollectionStore::AppendLocked(const WalRecord& record) {
  if (closed_) {
    return Status::FailedPrecondition("store is closed");
  }
  const std::vector<uint8_t> payload = EncodeWalRecord(record);
  const uint64_t before = writer_->bytes();
  DBSCOUT_RETURN_IF_ERROR(writer_->Append(payload));
  dirty_since_sync_ = true;
  wal_appends_total_->Increment();
  wal_bytes_total_->Increment(writer_->bytes() - before);
  wal_frame_bytes_->Observe(static_cast<double>(payload.size()));
  return Status::OK();
}

Status CollectionStore::SyncLocked() {
  WallTimer timer;
  DBSCOUT_RETURN_IF_ERROR(writer_->Sync());
  fsync_seconds_->Observe(timer.ElapsedSeconds());
  fsync_total_->Increment();
  dirty_since_sync_ = false;
  last_sync_seconds_ = clock_();
  return Status::OK();
}

Status CollectionStore::LogRecord(const WalRecord& record) {
  MutexLock lock(mu_);
  return AppendLocked(record);
}

Status CollectionStore::LogConfigure(double ttl_seconds) {
  WalRecord record;
  record.type = WalRecordType::kConfigure;
  record.ttl_seconds = ttl_seconds;
  MutexLock lock(mu_);
  DBSCOUT_RETURN_IF_ERROR(AppendLocked(record));
  return SyncLocked();
}

Status CollectionStore::Commit(uint64_t trace_id) {
  WallTimer timer;
  Status status = [&]() -> Status {
    MutexLock lock(mu_);
    if (closed_) {
      return Status::FailedPrecondition("store is closed");
    }
    if (dirty_since_sync_) {
      switch (fsync_) {
        case FsyncPolicy::kAlways:
          DBSCOUT_RETURN_IF_ERROR(SyncLocked());
          break;
        case FsyncPolicy::kInterval:
          if (clock_() - last_sync_seconds_ >= fsync_interval_seconds_) {
            DBSCOUT_RETURN_IF_ERROR(SyncLocked());
          }
          break;
        case FsyncPolicy::kNever:
          break;
      }
    }
    if (snapshot_interval_bytes_ > 0 &&
        writer_->bytes() > snapshot_interval_bytes_) {
      return CompactLocked();
    }
    return Status::OK();
  }();
  // The span is emitted outside mu_ so a TRACE dump never serializes
  // behind an in-flight fsync.
  if (trace_ != nullptr) {
    trace_->AddTracedSpan("wal_commit", "storage", trace_id, collection_,
                          timer.ElapsedSeconds());
  }
  return status;
}

Status CollectionStore::CompactNow() {
  MutexLock lock(mu_);
  if (closed_) {
    return Status::FailedPrecondition("store is closed");
  }
  return CompactLocked();
}

Status CollectionStore::CompactLocked() {
  // 1. Seal the active segment (final sync + close).
  const uint64_t sealed = active_seq_;
  DBSCOUT_RETURN_IF_ERROR(writer_->Close());

  // 2. Open the next active segment BEFORE writing the snapshot: if the
  // snapshot write crashes, recovery still finds snapshot base_seq_ plus
  // a contiguous segment run.
  DBSCOUT_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::Create(SegmentPath(sealed + 1), sealed + 1));
  writer_ = std::move(writer);
  active_seq_ = sealed + 1;
  dirty_since_sync_ = false;

  // 3. File-level merge: previous snapshot + sealed segments -> state.
  CollectionState state;
  if (base_seq_ > 0) {
    DBSCOUT_ASSIGN_OR_RETURN(state, ReadSnapshotFile(SnapshotPath(base_seq_)));
  }
  for (uint64_t seq = base_seq_ + 1; seq <= sealed; ++seq) {
    DBSCOUT_ASSIGN_OR_RETURN(WalScan scan, ScanWalFile(SegmentPath(seq)));
    if (scan.torn) {
      return Status::IoError(StrFormat(
          "%s: torn tail in a sealed segment during compaction",
          SegmentPath(seq).c_str()));
    }
    for (const std::vector<uint8_t>& frame : scan.frames) {
      DBSCOUT_ASSIGN_OR_RETURN(const WalRecord record,
                               DecodeWalRecord(frame));
      DBSCOUT_RETURN_IF_ERROR(ApplyRecordToState(record, &state));
    }
  }
  DBSCOUT_RETURN_IF_ERROR(WriteSnapshotFile(SnapshotPath(sealed), state));
  compactions_total_->Increment();
  std::error_code ec;
  snapshot_bytes_->Set(
      static_cast<int64_t>(fs::file_size(SnapshotPath(sealed), ec)));

  // 4. Retention: keep this generation and the previous one (fallback),
  // drop everything the previous generation no longer needs.
  const uint64_t prev = base_seq_;
  base_seq_ = sealed;
  DBSCOUT_ASSIGN_OR_RETURN(const DirListing listing, ListDir(dir_));
  for (const auto& [seq, path] : listing.snapshots) {
    if (seq < prev || (prev == 0 && seq < sealed)) {
      fs::remove(path, ec);
    }
  }
  for (const auto& [seq, path] : listing.segments) {
    if (seq <= prev) {
      fs::remove(path, ec);
    }
  }
  return Status::OK();
}

Status CollectionStore::Close() {
  MutexLock lock(mu_);
  if (closed_) {
    return Status::OK();
  }
  closed_ = true;
  if (!writer_.has_value()) {
    // Open failed before the WAL writer was engaged; the partially
    // constructed store has nothing to flush.
    return Status::OK();
  }
  return writer_->Close();
}

uint64_t CollectionStore::active_wal_bytes() {
  MutexLock lock(mu_);
  return writer_->bytes();
}

}  // namespace dbscout::storage

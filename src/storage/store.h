#ifndef DBSCOUT_STORAGE_STORE_H_
#define DBSCOUT_STORAGE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace dbscout::storage {

/// When appended WAL frames become durable (fdatasync) relative to the
/// acknowledgement of the writes they record. See DESIGN.md section 15
/// for the full loss contract; in short:
///  - kAlways: fsync before every acknowledgement — no acknowledged write
///    is ever lost, even on power failure.
///  - kInterval: group fsync at most every fsync_interval_seconds —
///    process crashes (kill -9) lose nothing acknowledged (the page cache
///    survives the process), power/kernel failures lose up to the
///    interval of acknowledged writes.
///  - kNever: fsync only on clean close/rotation — same kill -9 safety,
///    unbounded power-loss exposure.
enum class FsyncPolicy {
  kAlways = 0,
  kInterval = 1,
  kNever = 2,
};

/// Parses "always" | "interval" | "never" (the --wal-fsync flag values).
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);
const char* FsyncPolicyName(FsyncPolicy policy);

struct StoreOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// kInterval: maximum seconds between fsyncs, piggybacked on commits
  /// (no background timer thread; Close() always syncs).
  double fsync_interval_seconds = 0.05;
  /// Compact the WAL into a snapshot once the active segment exceeds this
  /// many bytes (checked at commit). 0 disables automatic compaction.
  uint64_t snapshot_interval_bytes = 64u << 20;
  /// Monotonic clock (seconds) for the interval policy; null uses
  /// MonotonicSeconds(). Tests inject a fake clock.
  std::function<double()> clock;
  /// Metrics registry (null = obs::Registry::Global()). Not owned.
  obs::Registry* registry = nullptr;
  /// Span sink for wal_commit spans (null = no tracing). Not owned; must
  /// outlive the store.
  obs::TraceCollector* trace = nullptr;
  /// Collection name, used as the metrics label and span scope.
  std::string collection;
};

/// What Open() recovered from disk: the newest valid snapshot (empty
/// state when none) plus the decoded WAL records of every segment after
/// it, in log order. The service replays `suffix` through its normal
/// apply pipeline.
struct RecoveredCollection {
  CollectionState base;
  std::vector<WalRecord> suffix;
};

/// Durability engine for one collection directory:
///
///   <dir>/wal-NNNNNN.log   append-only WAL segments, seq ascending
///   <dir>/snap-NNNNNN.snap snapshot = state after segments 1..N
///
/// Write path (apply loop, plus CONFIGURE from service threads): Log*
/// appends frames to the active segment; Commit() is the group-commit
/// point — one fsync per apply pass under the policy — and triggers
/// compaction when the active segment outgrows the threshold.
///
/// Compaction seals the active segment, opens the next one, then merges
/// the previous snapshot with the sealed segments into a new snapshot
/// (pure file-level merge: ingest records carry the coordinates, so the
/// live detector is never consulted) and applies retention: the newest
/// two snapshot generations and every segment after the older one are
/// kept, so recovery can fall back one generation if the newest snapshot
/// is torn or corrupt.
///
/// Recovery (in Open): pick the newest snapshot that passes its CRC,
/// demand a contiguous run of segments after it, scan them (a torn tail
/// is allowed only in the final segment and is truncated; a bad CRC on a
/// complete frame anywhere is an error — corrupt points are never
/// loaded), and reopen the final segment for append.
class CollectionStore {
 public:
  /// Opens (creating the directory if needed) and recovers. `recovered`
  /// receives the replayable state; it is required.
  static Result<std::unique_ptr<CollectionStore>> Open(
      const std::string& dir, const StoreOptions& options,
      RecoveredCollection* recovered);

  CollectionStore(const CollectionStore&) = delete;
  CollectionStore& operator=(const CollectionStore&) = delete;
  ~CollectionStore();

  /// Appends one record frame (no sync; Commit() makes it durable).
  Status LogRecord(const WalRecord& record) DBSCOUT_EXCLUDES(mu_);

  /// Appends a CONFIGURE record and syncs unconditionally: TTL changes
  /// are rare control-plane writes, always made durable immediately.
  Status LogConfigure(double ttl_seconds) DBSCOUT_EXCLUDES(mu_);

  /// Group-commit point, called once per apply pass after its appends:
  /// fsync per policy, then compact if the active segment is past the
  /// threshold. `trace_id` (nonzero, with a trace collector configured)
  /// tags the emitted wal_commit span with the request that triggered
  /// the pass.
  Status Commit(uint64_t trace_id = 0) DBSCOUT_EXCLUDES(mu_);

  /// Forces a compaction cycle now (test/operator hook).
  Status CompactNow() DBSCOUT_EXCLUDES(mu_);

  /// Final sync + close of the active segment. Idempotent; the
  /// destructor calls it best-effort.
  Status Close() DBSCOUT_EXCLUDES(mu_);

  uint64_t active_wal_bytes() DBSCOUT_EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }

 private:
  explicit CollectionStore(std::string dir) : dir_(std::move(dir)) {}

  Status AppendLocked(const WalRecord& record) DBSCOUT_REQUIRES(mu_);
  Status SyncLocked() DBSCOUT_REQUIRES(mu_);
  Status CompactLocked() DBSCOUT_REQUIRES(mu_);
  std::string SegmentPath(uint64_t seq) const;
  std::string SnapshotPath(uint64_t seq) const;

  const std::string dir_;
  std::string collection_;
  obs::TraceCollector* trace_ = nullptr;
  FsyncPolicy fsync_ = FsyncPolicy::kAlways;
  double fsync_interval_seconds_ = 0.05;
  uint64_t snapshot_interval_bytes_ = 64u << 20;
  std::function<double()> clock_;

  /// Guards the writer and the segment/snapshot bookkeeping: the apply
  /// loop (Log*/Commit) and service threads (LogConfigure) both write.
  Mutex mu_;
  std::optional<WalWriter> writer_ DBSCOUT_GUARDED_BY(mu_);
  uint64_t active_seq_ DBSCOUT_GUARDED_BY(mu_) = 1;
  /// Newest durable snapshot generation (0 = none yet).
  uint64_t base_seq_ DBSCOUT_GUARDED_BY(mu_) = 0;
  double last_sync_seconds_ DBSCOUT_GUARDED_BY(mu_) = 0.0;
  bool dirty_since_sync_ DBSCOUT_GUARDED_BY(mu_) = false;
  bool closed_ DBSCOUT_GUARDED_BY(mu_) = false;

  // Resolved metric handles (wait-free; safe outside mu_).
  obs::Counter* wal_appends_total_ = nullptr;
  obs::Counter* wal_bytes_total_ = nullptr;
  obs::Histogram* wal_frame_bytes_ = nullptr;
  obs::Counter* fsync_total_ = nullptr;
  obs::Histogram* fsync_seconds_ = nullptr;
  obs::Counter* compactions_total_ = nullptr;
  obs::Gauge* snapshot_bytes_ = nullptr;
};

/// Filesystem-safe encoding of a collection name as a directory name:
/// [A-Za-z0-9_-] pass through, every other byte becomes %XX. The decode
/// side inverts it exactly, so names round-trip through restart.
std::string EncodeCollectionDirName(const std::string& name);
Result<std::string> DecodeCollectionDirName(const std::string& dir_name);

}  // namespace dbscout::storage

#endif  // DBSCOUT_STORAGE_STORE_H_

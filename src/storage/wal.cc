#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/str_util.h"

namespace dbscout::storage {
namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::IoError(
      StrFormat("%s %s: %s", what, path.c_str(), std::strerror(errno)));
}

/// Full write() loop: short writes only split frames on signals/ENOSPC,
/// and a partial frame at EOF is exactly the torn tail the scanner
/// truncates, so retrying the remainder is always safe.
Status WriteAll(int fd, const uint8_t* data, size_t len,
                const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("write", path);
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeSegmentHeader(uint64_t seq) {
  std::vector<uint8_t> out;
  Put<uint32_t>(&out, kWalMagic);
  Put<uint32_t>(&out, kWalVersion);
  Put<uint64_t>(&out, seq);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Records

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record) {
  std::vector<uint8_t> out;
  Put<uint8_t>(&out, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kCreate:
      Put<uint16_t>(&out, record.dims);
      Put<double>(&out, record.ttl_seconds);
      break;
    case WalRecordType::kIngest: {
      Put<uint16_t>(&out, record.dims);
      Put<uint64_t>(&out, record.base_epoch);
      const uint32_t count =
          record.dims == 0
              ? 0
              : static_cast<uint32_t>(record.coords.size() / record.dims);
      Put<uint32_t>(&out, count);
      PutDoubles(&out, record.coords);
      break;
    }
    case WalRecordType::kExpire:
      Put<uint64_t>(&out, record.expire_begin);
      Put<uint64_t>(&out, record.expire_end);
      break;
    case WalRecordType::kConfigure:
      Put<double>(&out, record.ttl_seconds);
      break;
    case WalRecordType::kPlan:
      Put<int64_t>(&out, record.halo);
      Put<uint32_t>(&out, static_cast<uint32_t>(record.stripes.size()));
      for (const grid::Stripe& stripe : record.stripes) {
        Put<int64_t>(&out, stripe.slab_lo);
        Put<int64_t>(&out, stripe.slab_hi);
      }
      break;
  }
  return out;
}

Result<WalRecord> DecodeWalRecord(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  WalRecord record;
  DBSCOUT_ASSIGN_OR_RETURN(const uint8_t raw, reader.Read<uint8_t>());
  if (raw < static_cast<uint8_t>(WalRecordType::kCreate) ||
      raw > static_cast<uint8_t>(WalRecordType::kPlan)) {
    return Status::InvalidArgument(
        StrFormat("unknown wal record type %u", raw));
  }
  record.type = static_cast<WalRecordType>(raw);
  switch (record.type) {
    case WalRecordType::kCreate: {
      DBSCOUT_ASSIGN_OR_RETURN(record.dims, reader.Read<uint16_t>());
      DBSCOUT_ASSIGN_OR_RETURN(record.ttl_seconds, reader.Read<double>());
      break;
    }
    case WalRecordType::kIngest: {
      DBSCOUT_ASSIGN_OR_RETURN(record.dims, reader.Read<uint16_t>());
      DBSCOUT_ASSIGN_OR_RETURN(record.base_epoch, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(const uint32_t count, reader.Read<uint32_t>());
      DBSCOUT_ASSIGN_OR_RETURN(
          record.coords,
          reader.ReadDoubles(static_cast<uint64_t>(count) * record.dims));
      break;
    }
    case WalRecordType::kExpire: {
      DBSCOUT_ASSIGN_OR_RETURN(record.expire_begin, reader.Read<uint64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(record.expire_end, reader.Read<uint64_t>());
      if (record.expire_end < record.expire_begin) {
        return Status::InvalidArgument("wal expire record: end < begin");
      }
      break;
    }
    case WalRecordType::kConfigure: {
      DBSCOUT_ASSIGN_OR_RETURN(record.ttl_seconds, reader.Read<double>());
      break;
    }
    case WalRecordType::kPlan: {
      DBSCOUT_ASSIGN_OR_RETURN(record.halo, reader.Read<int64_t>());
      DBSCOUT_ASSIGN_OR_RETURN(const uint32_t count, reader.Read<uint32_t>());
      if (count > kMaxWalPayload / 16) {
        return Status::InvalidArgument("wal plan record: oversized");
      }
      record.stripes.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        grid::Stripe stripe;
        DBSCOUT_ASSIGN_OR_RETURN(stripe.slab_lo, reader.Read<int64_t>());
        DBSCOUT_ASSIGN_OR_RETURN(stripe.slab_hi, reader.Read<int64_t>());
        record.stripes.push_back(stripe);
      }
      break;
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("malformed wal record: trailing bytes");
  }
  return record;
}

// ---------------------------------------------------------------------------
// WalWriter

Result<WalWriter> WalWriter::Create(const std::string& path, uint64_t seq) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd < 0) {
    return Errno("create wal segment", path);
  }
  WalWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  const std::vector<uint8_t> header = EncodeSegmentHeader(seq);
  const Status status = WriteAll(fd, header.data(), header.size(), path);
  if (!status.ok()) {
    return status;
  }
  writer.bytes_ = header.size();
  return writer;
}

Result<WalWriter> WalWriter::OpenForAppend(const std::string& path,
                                           uint64_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    return Errno("open wal segment", path);
  }
  // Truncate the torn tail (if any) before appending: the next frame must
  // start at the last valid offset, not after garbage.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    const Status status = Errno("truncate wal segment", path);
    ::close(fd);
    return status;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status status = Errno("seek wal segment", path);
    ::close(fd);
    return status;
  }
  WalWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  writer.bytes_ = valid_bytes;
  return writer;
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      bytes_(other.bytes_),
      path_(std::move(other.path_)) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
    bytes_ = other.bytes_;
    path_ = std::move(other.path_);
  }
  return *this;
}

WalWriter::~WalWriter() {
  // Best-effort close; owners that care about the final sync call Close().
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status WalWriter::Append(std::span<const uint8_t> payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  if (payload.size() > kMaxWalPayload) {
    return Status::InvalidArgument(
        StrFormat("wal frame payload %zu exceeds cap %u", payload.size(),
                  kMaxWalPayload));
  }
  std::vector<uint8_t> frame;
  frame.reserve(8 + payload.size());
  Put<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  Put<uint32_t>(&frame, Crc32c(payload));
  const size_t old_size = frame.size();
  frame.resize(old_size + payload.size());
  if (!payload.empty()) {
    std::memcpy(frame.data() + old_size, payload.data(), payload.size());
  }
  DBSCOUT_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size(), path_));
  bytes_ += frame.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  if (::fdatasync(fd_) != 0) {
    return Errno("fdatasync wal segment", path_);
  }
  return Status::OK();
}

Status WalWriter::Close() {
  if (fd_ < 0) {
    return Status::OK();
  }
  Status status = Status::OK();
  if (::fdatasync(fd_) != 0) {
    status = Errno("fdatasync wal segment", path_);
  }
  if (::close(fd_) != 0 && status.ok()) {
    status = Errno("close wal segment", path_);
  }
  fd_ = -1;
  return status;
}

// ---------------------------------------------------------------------------
// Scanning

Result<WalScan> ScanWalFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Errno("open wal segment", path);
  }
  std::vector<uint8_t> data;
  uint8_t buf[1u << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const Status status = Errno("read wal segment", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      break;
    }
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);

  WalScan scan;
  if (data.size() < kWalHeaderBytes) {
    // A header torn by a crash at creation time: an empty segment.
    scan.torn = !data.empty();
    return scan;
  }
  ByteReader header(std::span<const uint8_t>(data.data(), kWalHeaderBytes));
  DBSCOUT_ASSIGN_OR_RETURN(const uint32_t magic, header.Read<uint32_t>());
  DBSCOUT_ASSIGN_OR_RETURN(const uint32_t version, header.Read<uint32_t>());
  DBSCOUT_ASSIGN_OR_RETURN(scan.seq, header.Read<uint64_t>());
  if (magic != kWalMagic) {
    return Status::IoError(
        StrFormat("%s: not a wal segment (bad magic)", path.c_str()));
  }
  if (version != kWalVersion) {
    return Status::IoError(
        StrFormat("%s: unsupported wal version %u", path.c_str(), version));
  }

  size_t pos = kWalHeaderBytes;
  scan.valid_bytes = pos;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      scan.torn = true;  // frame header cut short at EOF
      return scan;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, data.data() + pos, 4);
    std::memcpy(&crc, data.data() + pos + 4, 4);
    if (len > kMaxWalPayload) {
      return Status::IoError(
          StrFormat("%s: corrupt wal frame at offset %zu: length %u "
                    "exceeds cap",
                    path.c_str(), pos, len));
    }
    if (data.size() - pos - 8 < len) {
      scan.torn = true;  // payload cut short at EOF
      return scan;
    }
    const std::span<const uint8_t> payload(data.data() + pos + 8, len);
    if (Crc32c(payload) != crc) {
      return Status::IoError(
          StrFormat("%s: corrupt wal frame at offset %zu: crc mismatch",
                    path.c_str(), pos));
    }
    scan.frames.emplace_back(payload.begin(), payload.end());
    pos += 8 + len;
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace dbscout::storage

#ifndef DBSCOUT_STORAGE_WAL_H_
#define DBSCOUT_STORAGE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "grid/regions.h"

namespace dbscout::storage {

/// On-disk write-ahead log for one collection, one file per segment:
///
///   [16-byte segment header][frame][frame]...
///
/// Segment header: magic "DBWL", u32 version, u64 segment sequence number
/// (also encoded in the filename; a mismatch flags a mis-renamed file).
///
/// Each frame is the service protocol's discipline with a checksum:
///
///   [u32 payload_len][u32 crc32c(payload)][payload]
///
/// all little-endian. Appends are single write() calls on an append-only
/// fd, so a crash leaves at most one torn frame at the tail — a frame cut
/// short by EOF. Torn tails are normal recovery input (truncate to the
/// last complete frame); a COMPLETE frame whose CRC mismatches is
/// corruption and fails the scan with a clean error so replay never loads
/// corrupt points.
inline constexpr uint32_t kWalMagic = 0x4C574244;  // "DBWL" little-endian
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderBytes = 16;
/// Frame payload cap, same bound as the service protocol: any length
/// field above it (e.g. a high-bit flip) is corruption, not a frame.
inline constexpr uint32_t kMaxWalPayload = 64u << 20;

/// The mutation records the detection service logs. Replay feeds them
/// back through the normal apply pipeline in log order, which reproduces
/// the exact detector state: labels are an order-independent function of
/// the live point set, and expiry ranges are recorded (not recomputed
/// from a clock), so recovery is deterministic.
enum class WalRecordType : uint8_t {
  /// Collection created: fixes dims (and the creation-time TTL) so a
  /// collection is recoverable even before its first ingest record.
  kCreate = 1,
  /// One validated INGEST batch: `count` points appended at global ids
  /// [base_epoch, base_epoch + count). base_epoch makes gaps detectable.
  kIngest = 2,
  /// Sliding-window expiry of global ids [expire_begin, expire_end).
  kExpire = 3,
  /// CONFIGURE: the collection's TTL changed.
  kConfigure = 4,
  /// The shard router planned its region partition (first non-empty
  /// coalesced batch). Recorded so sharded replay adopts the identical
  /// grid::RegionPlan instead of re-planning from differently-batched
  /// replay input.
  kPlan = 5,
};

/// One decoded WAL record; `type` selects the meaningful fields.
struct WalRecord {
  WalRecordType type = WalRecordType::kCreate;

  // kCreate / kIngest.
  uint16_t dims = 0;

  // kCreate / kConfigure.
  double ttl_seconds = 0.0;

  // kIngest.
  uint64_t base_epoch = 0;
  std::vector<double> coords;  // row-major, count * dims

  // kExpire.
  uint64_t expire_begin = 0;
  uint64_t expire_end = 0;

  // kPlan.
  int64_t halo = 0;
  std::vector<grid::Stripe> stripes;
};

/// Serializes one record into a frame payload (no frame header; the
/// writer adds length + CRC).
std::vector<uint8_t> EncodeWalRecord(const WalRecord& record);

/// Parses a frame payload. Fails with InvalidArgument on malformed bytes;
/// never reads out of bounds, never trusts embedded lengths.
Result<WalRecord> DecodeWalRecord(std::span<const uint8_t> payload);

/// Append-only writer over one segment file. Not thread-safe; the owner
/// (CollectionStore) serializes access under its mutex.
class WalWriter {
 public:
  /// Creates a fresh segment (fails if the file exists) and writes its
  /// header. The header is counted in bytes().
  static Result<WalWriter> Create(const std::string& path, uint64_t seq);

  /// Reopens an existing segment for append after a scan validated it;
  /// `valid_bytes` (the scan's result) truncates any torn tail first.
  static Result<WalWriter> OpenForAppend(const std::string& path,
                                         uint64_t valid_bytes);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one frame in a single write() call (so a crash tears at
  /// most the tail). Durability is separate: call Sync().
  Status Append(std::span<const uint8_t> payload);

  /// fdatasync. The group-commit point; policy lives in CollectionStore.
  Status Sync();

  /// Final sync + close. Further Appends fail. Idempotent.
  Status Close();

  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter() = default;

  int fd_ = -1;
  uint64_t bytes_ = 0;
  std::string path_;
};

/// Result of scanning one segment file.
struct WalScan {
  uint64_t seq = 0;  // from the segment header
  std::vector<std::vector<uint8_t>> frames;
  /// Header plus all complete, CRC-valid frames. When `torn`, the bytes
  /// past this offset are an incomplete tail frame to truncate away.
  uint64_t valid_bytes = 0;
  bool torn = false;
};

/// Reads every frame of a segment. Returns OK with torn=true when the
/// file ends inside a frame (the normal post-crash state on an
/// append-only file); returns IoError when a complete frame fails its
/// CRC or a length field exceeds the cap (real corruption — the caller
/// must not replay past it).
Result<WalScan> ScanWalFile(const std::string& path);

}  // namespace dbscout::storage

#endif  // DBSCOUT_STORAGE_WAL_H_

#include "analysis/auc.h"

#include <gtest/gtest.h>

#include "baselines/lof.h"
#include "testutil.h"

namespace dbscout::analysis {
namespace {

TEST(RocAucTest, PerfectSeparation) {
  const std::vector<uint8_t> truth = {0, 0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(RocAuc(truth, scores), 1.0);
}

TEST(RocAucTest, PerfectlyWrong) {
  const std::vector<uint8_t> truth = {1, 1, 0, 0};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(RocAuc(truth, scores), 0.0);
}

TEST(RocAucTest, AllTiedScoresGiveHalf) {
  const std::vector<uint8_t> truth = {0, 1, 0, 1};
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(RocAuc(truth, scores), 0.5);
}

TEST(RocAucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(
      RocAuc(std::vector<uint8_t>{0, 0}, std::vector<double>{1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(
      RocAuc(std::vector<uint8_t>{1, 1}, std::vector<double>{1, 2}), 0.5);
}

TEST(RocAucTest, PartialOverlap) {
  // Positives at scores {2, 4}, negatives at {1, 3}: pairs won 3 of 4.
  const std::vector<uint8_t> truth = {0, 1, 0, 1};
  const std::vector<double> scores = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RocAuc(truth, scores), 0.75);
}

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  const std::vector<uint8_t> truth = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(AveragePrecision(truth, scores), 1.0);
}

TEST(AveragePrecisionTest, KnownMixedRanking) {
  // Ranking by score desc: P, N, P, N -> AP = (1/1 + 2/3) / 2 = 5/6.
  const std::vector<uint8_t> truth = {1, 0, 1, 0};
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  EXPECT_NEAR(AveragePrecision(truth, scores), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(
      AveragePrecision(std::vector<uint8_t>{0, 0},
                       std::vector<double>{1, 2}),
      0.0);
}

TEST(AucIntegrationTest, LofScoresSeparateObviousOutliers) {
  Rng rng(55);
  PointSet ps(2);
  std::vector<uint8_t> truth;
  for (int i = 0; i < 300; ++i) {
    ps.Add({rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0)});
    truth.push_back(0);
  }
  for (int i = 0; i < 6; ++i) {
    ps.Add({rng.Uniform(15, 25), rng.Uniform(15, 25)});
    truth.push_back(1);
  }
  auto lof = baselines::Lof(ps, 6);
  ASSERT_TRUE(lof.ok());
  EXPECT_GT(RocAuc(truth, lof->scores), 0.95);
  EXPECT_GT(AveragePrecision(truth, lof->scores), 0.8);
}

}  // namespace
}  // namespace dbscout::analysis

#include "analysis/compare.h"

#include <gtest/gtest.h>

namespace dbscout::analysis {
namespace {

TEST(CompareTest, IdenticalSets) {
  const std::vector<uint32_t> ref = {1, 5, 9};
  const auto diff = CompareOutlierSets(ref, ref);
  EXPECT_EQ(diff.tp, 3u);
  EXPECT_EQ(diff.fp, 0u);
  EXPECT_EQ(diff.fn, 0u);
}

TEST(CompareTest, DisjointSets) {
  const std::vector<uint32_t> ref = {1, 3};
  const std::vector<uint32_t> cand = {2, 4, 6};
  const auto diff = CompareOutlierSets(ref, cand);
  EXPECT_EQ(diff.tp, 0u);
  EXPECT_EQ(diff.fp, 3u);
  EXPECT_EQ(diff.fn, 2u);
}

TEST(CompareTest, SupersetCandidate) {
  // The RP-DBSCAN signature: candidate = reference plus false positives.
  const std::vector<uint32_t> ref = {10, 20, 30};
  const std::vector<uint32_t> cand = {5, 10, 20, 25, 30, 35};
  const auto diff = CompareOutlierSets(ref, cand);
  EXPECT_EQ(diff.tp, 3u);
  EXPECT_EQ(diff.fp, 3u);
  EXPECT_EQ(diff.fn, 0u);
}

TEST(CompareTest, EmptySides) {
  const std::vector<uint32_t> some = {1, 2};
  auto diff = CompareOutlierSets({}, some);
  EXPECT_EQ(diff.tp, 0u);
  EXPECT_EQ(diff.fp, 2u);
  diff = CompareOutlierSets(some, {});
  EXPECT_EQ(diff.fn, 2u);
  diff = CompareOutlierSets({}, {});
  EXPECT_EQ(diff.tp + diff.fp + diff.fn, 0u);
}

TEST(CompareTest, IdentityTpPlusFnEqualsReferenceSize) {
  const std::vector<uint32_t> ref = {0, 2, 4, 6, 8};
  const std::vector<uint32_t> cand = {1, 2, 3, 4};
  const auto diff = CompareOutlierSets(ref, cand);
  EXPECT_EQ(diff.tp + diff.fn, ref.size());
  EXPECT_EQ(diff.tp + diff.fp, cand.size());
}

}  // namespace
}  // namespace dbscout::analysis

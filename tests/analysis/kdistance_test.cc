#include "analysis/kdistance.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "datasets/synthetic.h"
#include "testutil.h"

namespace dbscout::analysis {
namespace {

TEST(KDistanceTest, RejectsInvalidInputs) {
  PointSet ps(2);
  ps.Add({0, 0});
  EXPECT_FALSE(ComputeKDistance(ps, 1).ok());  // fewer than 2 points
  ps.Add({1, 1});
  EXPECT_FALSE(ComputeKDistance(ps, 0).ok());
  EXPECT_FALSE(ComputeKDistance(ps, 2).ok());  // k >= n
}

TEST(KDistanceTest, CurveIsSortedDescending) {
  Rng rng(41);
  const PointSet ps = testing::ClusteredPoints(&rng, 500, 2, 3, 0.1);
  auto curve = ComputeKDistance(ps, 5);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->distances.size(), ps.size());
  EXPECT_TRUE(std::is_sorted(curve->distances.begin(),
                             curve->distances.end(),
                             std::greater<double>()));
}

TEST(KDistanceTest, SamplingLimitsCurveSize) {
  Rng rng(43);
  const PointSet ps = testing::ClusteredPoints(&rng, 800, 2, 3, 0.1);
  auto curve = ComputeKDistance(ps, 5, /*sample=*/100);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->distances.size(), 100u);
}

TEST(KDistanceTest, SuggestedEpsSeparatesClusterFromNoiseScale) {
  // Tight clusters plus sparse noise: the elbow eps must land well above
  // the intra-cluster spacing and well below the noise spacing.
  Rng rng(45);
  PointSet ps(2);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 200; ++i) {
      ps.Add({rng.Gaussian(c * 50.0, 0.5), rng.Gaussian(0.0, 0.5)});
    }
  }
  for (int i = 0; i < 30; ++i) {
    ps.Add({rng.Uniform(-100, 250), rng.Uniform(50, 200)});
  }
  auto curve = ComputeKDistance(ps, 5);
  ASSERT_TRUE(curve.ok());
  const double eps = curve->SuggestEps();
  EXPECT_GT(eps, 0.05);
  EXPECT_LT(eps, 30.0);
}

TEST(KDistanceTest, SuggestedEpsYieldsSaneDetection) {
  // End-to-end parameter selection: run DBSCOUT at the suggested eps and
  // check the detected outliers roughly match the injected contamination.
  const auto ds = datasets::Blobs(2000, 0.02, 51);
  auto curve = ComputeKDistance(ds.points, 5);
  ASSERT_TRUE(curve.ok());
  core::Params params;
  params.eps = curve->SuggestEps();
  params.min_pts = 5;
  auto detection = core::DetectSequential(ds.points, params);
  ASSERT_TRUE(detection.ok());
  const double detected_fraction =
      static_cast<double>(detection->outliers.size()) /
      static_cast<double>(ds.points.size());
  EXPECT_GT(detected_fraction, 0.002);
  EXPECT_LT(detected_fraction, 0.15);
}

TEST(KDistanceTest, UpperSuggestionSitsAboveTheKnee) {
  Rng rng(47);
  const PointSet ps = testing::ClusteredPoints(&rng, 600, 2, 3, 0.1);
  auto curve = ComputeKDistance(ps, 5);
  ASSERT_TRUE(curve.ok());
  const double knee = curve->SuggestEps();
  EXPECT_GT(curve->SuggestEpsUpper(), knee);
  EXPECT_DOUBLE_EQ(curve->SuggestEpsUpper(1.0), knee);
  EXPECT_DOUBLE_EQ(curve->SuggestEpsUpper(2.0), 2.0 * knee);
}

TEST(KDistanceTest, DegenerateCurves) {
  KDistanceCurve curve;
  EXPECT_DOUBLE_EQ(curve.SuggestEps(), 0.0);
  curve.distances = {2.0};
  EXPECT_DOUBLE_EQ(curve.SuggestEps(), 2.0);
  curve.distances = {2.0, 1.0};
  EXPECT_DOUBLE_EQ(curve.SuggestEps(), 1.0);
  // Flat curve: any value is fine, must not crash (zero y-span).
  curve.distances = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(curve.SuggestEps(), 1.0);
}

}  // namespace
}  // namespace dbscout::analysis

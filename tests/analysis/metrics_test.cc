#include "analysis/metrics.h"

#include <gtest/gtest.h>

namespace dbscout::analysis {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<uint8_t> truth = {0, 1, 0, 1, 0};
  const std::vector<uint32_t> predicted = {1, 3};
  const auto c = ConfusionFromIndices(truth, predicted);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fp, 0u);
  EXPECT_EQ(c.fn, 0u);
  EXPECT_EQ(c.tn, 3u);
  EXPECT_DOUBLE_EQ(c.F1(), 1.0);
}

TEST(MetricsTest, MixedPrediction) {
  const std::vector<uint8_t> truth = {0, 1, 1, 0, 0, 0};
  const std::vector<uint32_t> predicted = {1, 3, 4};  // one TP, two FP
  const auto c = ConfusionFromIndices(truth, predicted);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 2u);
  EXPECT_DOUBLE_EQ(c.Precision(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.5);
  EXPECT_NEAR(c.F1(), 0.4, 1e-12);
}

TEST(MetricsTest, EmptyPredictionGivesZeroF1WhenOutliersExist) {
  const std::vector<uint8_t> truth = {1, 0};
  const auto c = ConfusionFromIndices(truth, {});
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
  EXPECT_EQ(c.fn, 1u);
}

TEST(MetricsTest, NoOutliersAnywhere) {
  const std::vector<uint8_t> truth = {0, 0, 0};
  const auto c = ConfusionFromIndices(truth, {});
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
  EXPECT_EQ(c.tn, 3u);
}

TEST(MetricsTest, DuplicatePredictedIndicesCountOnce) {
  const std::vector<uint8_t> truth = {1, 0};
  const std::vector<uint32_t> predicted = {0, 0, 0};
  const auto c = ConfusionFromIndices(truth, predicted);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 0u);
}

TEST(MetricsTest, OutOfRangeIndicesIgnored) {
  const std::vector<uint8_t> truth = {1, 0};
  const std::vector<uint32_t> predicted = {0, 99};
  const auto c = ConfusionFromIndices(truth, predicted);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 0u);
}

TEST(MetricsTest, LabelOverloadAgrees) {
  const std::vector<uint8_t> truth = {0, 1, 1, 0};
  const std::vector<uint8_t> predicted = {1, 1, 0, 0};
  const auto c = ConfusionFromLabels(truth, predicted);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
}

}  // namespace
}  // namespace dbscout::analysis

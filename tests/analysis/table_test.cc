#include "analysis/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dbscout::analysis {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table table({"Dataset", "Time (s)"});
  table.AddRow({"Geolife", "40.0"});
  table.AddRow({"OpenStreetMap (1%)", "104.6"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Dataset            | Time (s) |"), std::string::npos);
  EXPECT_NE(out.find("| Geolife            | 40.0     |"), std::string::npos);
  EXPECT_NE(out.find("|--------------------|----------|"), std::string::npos);
}

TEST(TableTest, EmptyTableStillPrintsHeader) {
  Table table({"A"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| A |"), std::string::npos);
}

TEST(TableTest, WideCellGrowsColumn) {
  Table table({"x"});
  table.AddRow({"longvalue"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| longvalue |"), std::string::npos);
}

}  // namespace
}  // namespace dbscout::analysis

#include "baselines/dbscan.h"

#include <set>

#include <gtest/gtest.h>

#include "core/dbscout.h"
#include "testutil.h"

namespace dbscout::baselines {
namespace {

TEST(DbscanTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  EXPECT_FALSE(Dbscan(ps, 0.0, 5).ok());
  EXPECT_FALSE(Dbscan(ps, 1.0, 0).ok());
}

TEST(DbscanTest, TwoWellSeparatedClusters) {
  Rng rng(2);
  PointSet ps(2);
  for (int i = 0; i < 30; ++i) {
    ps.Add({rng.Gaussian(0, 0.2), rng.Gaussian(0, 0.2)});
  }
  for (int i = 0; i < 30; ++i) {
    ps.Add({rng.Gaussian(20, 0.2), rng.Gaussian(20, 0.2)});
  }
  ps.Add({10.0, 10.0});  // noise between the clusters
  auto r = Dbscan(ps, 1.0, 5);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_clusters, 2u);
  EXPECT_EQ(r->Noise(), (std::vector<uint32_t>{60}));
  // All points of one blob share one cluster id.
  std::set<int32_t> first_blob;
  std::set<int32_t> second_blob;
  for (int i = 0; i < 30; ++i) {
    first_blob.insert(r->cluster[i]);
    second_blob.insert(r->cluster[30 + i]);
  }
  EXPECT_EQ(first_blob.size(), 1u);
  EXPECT_EQ(second_blob.size(), 1u);
  EXPECT_NE(*first_blob.begin(), *second_blob.begin());
}

TEST(DbscanTest, NoiseEqualsDbscoutOutliers) {
  // The foundational claim of the paper: DBSCAN noise (Definition 3) is
  // exactly what DBSCOUT extracts, without building the clusters.
  Rng rng(44);
  const PointSet ps = testing::ClusteredPoints(&rng, 700, 2, 5, 0.25);
  for (double eps : {0.8, 1.5, 3.0}) {
    for (int min_pts : {3, 8, 20}) {
      auto dbscan = Dbscan(ps, eps, min_pts);
      ASSERT_TRUE(dbscan.ok());
      core::Params params;
      params.eps = eps;
      params.min_pts = min_pts;
      auto dbscout = core::DetectSequential(ps, params);
      ASSERT_TRUE(dbscout.ok());
      EXPECT_EQ(dbscan->Noise(), dbscout->outliers)
          << "eps=" << eps << " minPts=" << min_pts;
      EXPECT_EQ(dbscan->num_core, dbscout->num_core);
    }
  }
}

TEST(DbscanTest, AllNoiseWhenMinPtsUnreachable) {
  Rng rng(3);
  const PointSet ps = testing::UniformPoints(&rng, 50, 2, -100, 100);
  auto r = Dbscan(ps, 0.001, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_clusters, 0u);
  EXPECT_EQ(r->Noise().size(), 50u);
}

TEST(DbscanTest, SingleClusterWhenEpsHuge) {
  Rng rng(4);
  const PointSet ps = testing::UniformPoints(&rng, 50, 2, -1, 1);
  auto r = Dbscan(ps, 100.0, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_clusters, 1u);
  EXPECT_TRUE(r->Noise().empty());
}

TEST(DbscanTest, BorderPointAssignedToSomeCluster) {
  PointSet ps(1);
  for (int i = 0; i < 7; ++i) {
    ps.Add({0.0});
  }
  ps.Add({0.95});  // core (reaches the stack)
  ps.Add({1.9});   // border of the cluster via the bridge point
  auto r = Dbscan(ps, 1.0, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_clusters, 1u);
  EXPECT_EQ(r->cluster[8], r->cluster[0]);
  EXPECT_TRUE(r->Noise().empty());
}

TEST(DbscanTest, EmptyInput) {
  PointSet ps(3);
  auto r = Dbscan(ps, 1.0, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_clusters, 0u);
  EXPECT_TRUE(r->cluster.empty());
}

}  // namespace
}  // namespace dbscout::baselines

#include "baselines/ddlof.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/lof.h"
#include "testutil.h"

namespace dbscout::baselines {
namespace {

TEST(DdlofTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  DdlofParams params;
  params.k = 0;
  EXPECT_FALSE(Ddlof(ps, params).ok());
  params.k = 6;
  params.num_partitions = 0;
  EXPECT_FALSE(Ddlof(ps, params).ok());
}

TEST(DdlofTest, TrivialInputs) {
  PointSet ps(2);
  DdlofParams params;
  auto r = Ddlof(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->scores.empty());

  ps.Add({1, 1});
  r = Ddlof(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scores.size(), 1u);
}

TEST(DdlofTest, MatchesCentralizedLofOnSeparatedData) {
  // With partitions far apart relative to k-distances, the distributed
  // computation is exact: scores must match plain LOF.
  Rng rng(21);
  PointSet ps(2);
  for (int i = 0; i < 150; ++i) {
    ps.Add({rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0)});
  }
  for (int i = 0; i < 150; ++i) {
    ps.Add({rng.Gaussian(1000, 1.0), rng.Gaussian(0, 1.0)});
  }
  DdlofParams params;
  params.k = 6;
  params.num_partitions = 2;
  auto distributed = Ddlof(ps, params);
  ASSERT_TRUE(distributed.ok());
  auto centralized = Lof(ps, 6);
  ASSERT_TRUE(centralized.ok());
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_NEAR(distributed->scores[i], centralized->scores[i], 1e-9)
        << "point " << i;
  }
}

TEST(DdlofTest, RanksObviousOutlierHighest) {
  Rng rng(22);
  PointSet ps(2);
  for (int i = 0; i < 300; ++i) {
    ps.Add({rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0)});
  }
  ps.Add({15.0, 0.0});
  DdlofParams params;
  params.k = 6;
  params.num_partitions = 4;
  auto r = Ddlof(ps, params);
  ASSERT_TRUE(r.ok());
  const auto top = r->TopFraction(1.0 / 301.0);
  EXPECT_EQ(top, (std::vector<uint32_t>{300}));
}

TEST(DdlofTest, SkewInflatesReplication) {
  // The failure mode the paper observes on Geolife: skewed data forces a
  // wide support margin, so replication (and the biggest partition's load)
  // explodes relative to balanced data of the same size.
  Rng rng(23);
  PointSet balanced = testing::UniformPoints(&rng, 2000, 2, 0.0, 100.0);
  PointSet skewed(2);
  for (int i = 0; i < 1960; ++i) {
    skewed.Add({rng.Gaussian(50, 0.5), rng.Gaussian(50, 0.5)});
  }
  for (int i = 0; i < 40; ++i) {
    skewed.Add({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  DdlofParams params;
  params.k = 6;
  params.num_partitions = 16;
  auto r_balanced = Ddlof(balanced, params);
  auto r_skewed = Ddlof(skewed, params);
  ASSERT_TRUE(r_balanced.ok());
  ASSERT_TRUE(r_skewed.ok());
  EXPECT_GT(r_skewed->max_partition_load, r_balanced->max_partition_load);
}

}  // namespace
}  // namespace dbscout::baselines

#include "baselines/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace dbscout::baselines {
namespace {

TEST(IsolationForestTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  IsolationForestParams params;
  params.num_trees = 0;
  EXPECT_FALSE(IsolationForest(ps, params).ok());
  params.num_trees = 10;
  params.subsample = 1;
  EXPECT_FALSE(IsolationForest(ps, params).ok());
}

TEST(IsolationForestTest, ScoresAreInUnitInterval) {
  Rng rng(18);
  const PointSet ps = testing::ClusteredPoints(&rng, 400, 2, 3, 0.1);
  IsolationForestParams params;
  auto r = IsolationForest(ps, params);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->scores.size(), ps.size());
  for (double s : r->scores) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(IsolationForestTest, IsolatedPointScoresHighest) {
  Rng rng(19);
  PointSet ps(2);
  for (int i = 0; i < 500; ++i) {
    ps.Add({rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0)});
  }
  ps.Add({40.0, -40.0});
  IsolationForestParams params;
  auto r = IsolationForest(ps, params);
  ASSERT_TRUE(r.ok());
  const auto max_it = std::max_element(r->scores.begin(), r->scores.end());
  EXPECT_EQ(std::distance(r->scores.begin(), max_it), 500);
  EXPECT_GT(*max_it, 0.6);
}

TEST(IsolationForestTest, DeterministicForFixedSeed) {
  Rng rng(20);
  const PointSet ps = testing::UniformPoints(&rng, 200, 2, -5, 5);
  IsolationForestParams params;
  params.seed = 99;
  auto a = IsolationForest(ps, params);
  auto b = IsolationForest(ps, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->scores, b->scores);
}

TEST(IsolationForestTest, TopFractionSizeAndOrder) {
  Rng rng(24);
  const PointSet ps = testing::ClusteredPoints(&rng, 300, 2, 2, 0.2);
  IsolationForestParams params;
  auto r = IsolationForest(ps, params);
  ASSERT_TRUE(r.ok());
  const auto top = r->TopFraction(0.1);
  EXPECT_EQ(top.size(), 30u);
  EXPECT_TRUE(std::is_sorted(top.begin(), top.end()));
}

TEST(IsolationForestTest, HandlesDuplicatesAndTinyInputs) {
  PointSet ps(2);
  for (int i = 0; i < 10; ++i) {
    ps.Add({1.0, 1.0});
  }
  IsolationForestParams params;
  auto r = IsolationForest(ps, params);
  ASSERT_TRUE(r.ok());
  for (double s : r->scores) {
    EXPECT_TRUE(std::isfinite(s));
  }

  PointSet single(2);
  single.Add({0, 0});
  r = IsolationForest(single, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scores.size(), 1u);
}

}  // namespace
}  // namespace dbscout::baselines

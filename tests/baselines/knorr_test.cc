#include "baselines/knorr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace dbscout::baselines {
namespace {

/// Brute-force DB(fraction, radius) with the same threshold semantics as
/// the implementation.
std::vector<uint32_t> BruteKnorr(const PointSet& points,
                                 const KnorrParams& params) {
  const size_t n = points.size();
  const uint64_t threshold = static_cast<uint64_t>(
      std::floor((1.0 - params.fraction) * static_cast<double>(n)));
  const double r2 = params.radius * params.radius;
  std::vector<uint32_t> outliers;
  for (size_t i = 0; i < n; ++i) {
    uint64_t count = 0;
    for (size_t j = 0; j < n; ++j) {
      count += i != j && points.SquaredDistance(i, j) <= r2;
    }
    if (count <= threshold) {
      outliers.push_back(static_cast<uint32_t>(i));
    }
  }
  return outliers;
}

TEST(KnorrTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  KnorrParams params;
  params.radius = 0.0;
  EXPECT_FALSE(KnorrOutliers(ps, params).ok());
  params.radius = 1.0;
  params.fraction = 1.0;
  EXPECT_FALSE(KnorrOutliers(ps, params).ok());
  params.fraction = 0.0;
  EXPECT_FALSE(KnorrOutliers(ps, params).ok());
}

TEST(KnorrTest, EmptyInput) {
  PointSet ps(2);
  KnorrParams params;
  auto r = KnorrOutliers(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->outliers.empty());
}

TEST(KnorrTest, FindsIsolatedPoint) {
  Rng rng(66);
  PointSet ps(2);
  for (int i = 0; i < 200; ++i) {
    ps.Add({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)});
  }
  ps.Add({40.0, 40.0});
  KnorrParams params;
  params.radius = 2.0;
  params.fraction = 0.95;
  auto r = KnorrOutliers(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outliers, (std::vector<uint32_t>{200}));
}

TEST(KnorrTest, MatchesBruteForceAcrossParameters) {
  Rng rng(67);
  const PointSet ps = testing::ClusteredPoints(&rng, 500, 2, 4, 0.2);
  for (double radius : {0.8, 1.5, 4.0}) {
    for (double fraction : {0.9, 0.97, 0.995}) {
      KnorrParams params;
      params.radius = radius;
      params.fraction = fraction;
      auto r = KnorrOutliers(ps, params);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->outliers, BruteKnorr(ps, params))
          << "radius=" << radius << " fraction=" << fraction;
    }
  }
}

TEST(KnorrTest, DenseCellShortcutAgreesWithBruteForce) {
  // Many duplicates force the dense-cell shortcut path.
  PointSet ps(2);
  for (int i = 0; i < 100; ++i) {
    ps.Add({1.0, 1.0});
  }
  ps.Add({50.0, 50.0});
  KnorrParams params;
  params.radius = 1.0;
  params.fraction = 0.9;
  auto r = KnorrOutliers(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outliers, BruteKnorr(ps, params));
  EXPECT_EQ(r->outliers, (std::vector<uint32_t>{100}));
}

TEST(KnorrTest, HigherDimensionalData) {
  Rng rng(68);
  const PointSet ps = testing::ClusteredPoints(&rng, 300, 4, 2, 0.2);
  KnorrParams params;
  params.radius = 3.0;
  params.fraction = 0.95;
  auto r = KnorrOutliers(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outliers, BruteKnorr(ps, params));
}

}  // namespace
}  // namespace dbscout::baselines

#include "baselines/lof.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "testutil.h"

namespace dbscout::baselines {
namespace {

TEST(LofTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  ps.Add({1, 1});
  EXPECT_FALSE(Lof(ps, 0).ok());
  EXPECT_FALSE(Lof(ps, 2).ok());  // k must be < n
}

TEST(LofTest, UniformGridScoresNearOne) {
  // On a perfectly regular lattice every point has the same local density:
  // LOF ~ 1 for interior points.
  const PointSet ps = testing::LatticePoints(10, 2, 1.0);
  auto r = Lof(ps, 4);
  ASSERT_TRUE(r.ok());
  for (double score : r->scores) {
    EXPECT_GT(score, 0.5);
    EXPECT_LT(score, 2.0);
  }
}

TEST(LofTest, IsolatedPointGetsTheTopScore) {
  Rng rng(8);
  PointSet ps(2);
  for (int i = 0; i < 100; ++i) {
    ps.Add({rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0)});
  }
  ps.Add({30.0, 30.0});
  auto r = Lof(ps, 6);
  ASSERT_TRUE(r.ok());
  const auto max_it = std::max_element(r->scores.begin(), r->scores.end());
  EXPECT_EQ(std::distance(r->scores.begin(), max_it), 100);
  EXPECT_GT(*max_it, 2.0);
}

TEST(LofTest, TopFractionSelectsHighestScores) {
  Rng rng(9);
  PointSet ps(2);
  for (int i = 0; i < 98; ++i) {
    ps.Add({rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0)});
  }
  ps.Add({25.0, 25.0});
  ps.Add({-25.0, 25.0});
  auto r = Lof(ps, 6);
  ASSERT_TRUE(r.ok());
  const auto top = r->TopFraction(0.02);
  EXPECT_EQ(top, (std::vector<uint32_t>{98, 99}));
}

TEST(LofTest, AboveThresholdIsConsistent) {
  Rng rng(10);
  PointSet ps(2);
  for (int i = 0; i < 50; ++i) {
    ps.Add({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)});
  }
  ps.Add({100.0, 100.0});
  auto r = Lof(ps, 5);
  ASSERT_TRUE(r.ok());
  for (uint32_t i : r->AboveThreshold(1.5)) {
    EXPECT_GT(r->scores[i], 1.5);
  }
}

TEST(LofTest, HandlesDuplicateHeavyData) {
  PointSet ps(2);
  for (int i = 0; i < 40; ++i) {
    ps.Add({1.0, 1.0});
  }
  ps.Add({9.0, 9.0});
  auto r = Lof(ps, 5);
  ASSERT_TRUE(r.ok());
  for (double score : r->scores) {
    EXPECT_TRUE(std::isfinite(score));
  }
  // The isolated point still ranks highest.
  const auto top = r->TopFraction(1.0 / 41.0);
  EXPECT_EQ(top, (std::vector<uint32_t>{40}));
}

TEST(LofTest, EmptyInput) {
  PointSet ps(2);
  auto r = Lof(ps, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->scores.empty());
}

}  // namespace
}  // namespace dbscout::baselines

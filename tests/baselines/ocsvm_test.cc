#include "baselines/ocsvm.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "datasets/synthetic.h"
#include "testutil.h"

namespace dbscout::baselines {
namespace {

TEST(OneClassSvmTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  OneClassSvmParams params;
  params.nu = 0.0;
  EXPECT_FALSE(OneClassSvm(ps, params).ok());
  params.nu = 1.5;
  EXPECT_FALSE(OneClassSvm(ps, params).ok());
  params.nu = 0.1;
  params.num_features = 0;
  EXPECT_FALSE(OneClassSvm(ps, params).ok());
  params.num_features = 64;
  params.epochs = 0;
  EXPECT_FALSE(OneClassSvm(ps, params).ok());
}

TEST(OneClassSvmTest, EmptyInput) {
  PointSet ps(2);
  OneClassSvmParams params;
  auto r = OneClassSvm(ps, params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->decision.empty());
}

TEST(OneClassSvmTest, NuControlsTrainingOutlierFraction) {
  Rng rng(25);
  const PointSet ps = testing::ClusteredPoints(&rng, 500, 2, 2, 0.0);
  OneClassSvmParams params;
  params.nu = 0.1;
  auto r = OneClassSvm(ps, params);
  ASSERT_TRUE(r.ok());
  const size_t flagged = r->Outliers().size();
  // The rho calibration pins the flagged fraction to ~nu.
  EXPECT_NEAR(static_cast<double>(flagged) / 500.0, 0.1, 0.03);
}

TEST(OneClassSvmTest, FarOutlierGetsMostNegativeDecision) {
  Rng rng(26);
  PointSet ps(2);
  for (int i = 0; i < 400; ++i) {
    ps.Add({rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0)});
  }
  ps.Add({20.0, 20.0});
  OneClassSvmParams params;
  params.nu = 0.01;
  auto r = OneClassSvm(ps, params);
  ASSERT_TRUE(r.ok());
  const auto min_it =
      std::min_element(r->decision.begin(), r->decision.end());
  EXPECT_EQ(std::distance(r->decision.begin(), min_it), 400);
}

TEST(OneClassSvmTest, DeterministicForFixedSeed) {
  Rng rng(27);
  const PointSet ps = testing::UniformPoints(&rng, 150, 2, -2, 2);
  OneClassSvmParams params;
  auto a = OneClassSvm(ps, params);
  auto b = OneClassSvm(ps, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->decision, b->decision);
}

TEST(OneClassSvmTest, ReasonableF1OnBlobs) {
  // On the easiest Table III dataset the detector must beat a random
  // labeling by a wide margin (the paper reports ~0.75 F1 for OC-SVM).
  const auto ds = datasets::Blobs(2000, 0.02, 31);
  OneClassSvmParams params;
  params.nu = ds.Contamination();
  auto r = OneClassSvm(ds.points, params);
  ASSERT_TRUE(r.ok());
  const auto predicted = r->BottomFraction(ds.Contamination());
  const auto confusion =
      analysis::ConfusionFromIndices(ds.labels, predicted);
  EXPECT_GT(confusion.F1(), 0.4);
}

}  // namespace
}  // namespace dbscout::baselines

#include "baselines/rp_dbscan.h"

#include <gtest/gtest.h>

#include "analysis/compare.h"
#include "core/dbscout.h"
#include "testutil.h"

namespace dbscout::baselines {
namespace {

RpDbscanParams MakeParams(double eps, int min_pts, double rho = 0.05,
                          size_t partitions = 4) {
  RpDbscanParams params;
  params.eps = eps;
  params.min_pts = min_pts;
  params.rho = rho;
  params.num_partitions = partitions;
  return params;
}

TEST(RpDbscanTest, RejectsInvalidParams) {
  PointSet ps(2);
  ps.Add({0, 0});
  EXPECT_FALSE(RpDbscan(ps, MakeParams(0.0, 5)).ok());
  EXPECT_FALSE(RpDbscan(ps, MakeParams(1.0, 0)).ok());
  EXPECT_FALSE(RpDbscan(ps, MakeParams(1.0, 5, 0.0)).ok());
  EXPECT_FALSE(RpDbscan(ps, MakeParams(1.0, 5, 1.5)).ok());
  auto p = MakeParams(1.0, 5);
  p.num_partitions = 0;
  EXPECT_FALSE(RpDbscan(ps, p).ok());
}

TEST(RpDbscanTest, EmptyInput) {
  PointSet ps(2);
  auto r = RpDbscan(ps, MakeParams(1.0, 5));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->outliers.empty());
}

TEST(RpDbscanTest, FindsObviousOutlier) {
  Rng rng(12);
  PointSet ps(2);
  for (int i = 0; i < 200; ++i) {
    ps.Add({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)});
  }
  ps.Add({50.0, 50.0});
  auto r = RpDbscan(ps, MakeParams(1.0, 10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->is_outlier[200], 1);
  EXPECT_GE(r->num_clusters, 1u);
}

TEST(RpDbscanTest, ApproximationYieldsSupersetTendency) {
  // The paper's Tables IV-V: RP-DBSCAN produces mostly a superset of the
  // exact outliers — noticeable false positives, very few false negatives.
  Rng rng(13);
  const PointSet ps = testing::ClusteredPoints(&rng, 4000, 2, 6, 0.15);
  const double eps = 1.0;
  const int min_pts = 20;
  core::Params exact_params;
  exact_params.eps = eps;
  exact_params.min_pts = min_pts;
  auto exact = core::DetectSequential(ps, exact_params);
  ASSERT_TRUE(exact.ok());
  auto approx = RpDbscan(ps, MakeParams(eps, min_pts, 0.05, 4));
  ASSERT_TRUE(approx.ok());
  const auto diff =
      analysis::CompareOutlierSets(exact->outliers, approx->outliers);
  // Recovers nearly all true outliers (FN rate tiny)...
  EXPECT_GT(exact->outliers.size(), 50u);  // test is meaningful
  EXPECT_LT(static_cast<double>(diff.fn),
            0.05 * static_cast<double>(exact->outliers.size()));
  // ...and never undershoots badly: candidate is approximately a superset.
  EXPECT_GE(approx->outliers.size() + diff.fn, exact->outliers.size());
}

TEST(RpDbscanTest, ExactOnDenseCells) {
  // Points in dense cells are classified exactly, so a tight cluster well
  // above minPts can never produce outliers.
  Rng rng(14);
  PointSet ps(2);
  for (int i = 0; i < 500; ++i) {
    ps.Add({rng.Gaussian(0, 0.05), rng.Gaussian(0, 0.05)});
  }
  auto r = RpDbscan(ps, MakeParams(1.0, 50));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->outliers.empty());
}

TEST(RpDbscanTest, MergedEntriesGrowWithPartitions) {
  // The structural cause of RP-DBSCAN's poor partition scaling (Fig. 13):
  // the same sub-cell appears in many per-partition dictionaries.
  Rng rng(15);
  const PointSet ps = testing::ClusteredPoints(&rng, 3000, 2, 4, 0.1);
  auto few = RpDbscan(ps, MakeParams(1.0, 20, 0.05, 2));
  auto many = RpDbscan(ps, MakeParams(1.0, 20, 0.05, 32));
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_GT(many->merged_entries, few->merged_entries);
  EXPECT_EQ(many->num_subcells, few->num_subcells);  // merge result agrees
}

TEST(RpDbscanTest, FinerRhoImprovesAgreementWithExact) {
  Rng rng(16);
  const PointSet ps = testing::ClusteredPoints(&rng, 2500, 2, 4, 0.2);
  const double eps = 1.2;
  const int min_pts = 15;
  core::Params exact_params;
  exact_params.eps = eps;
  exact_params.min_pts = min_pts;
  auto exact = core::DetectSequential(ps, exact_params);
  ASSERT_TRUE(exact.ok());
  uint64_t errors_coarse = 0;
  uint64_t errors_fine = 0;
  {
    auto r = RpDbscan(ps, MakeParams(eps, min_pts, 0.5, 4));
    ASSERT_TRUE(r.ok());
    const auto diff = analysis::CompareOutlierSets(exact->outliers,
                                                   r->outliers);
    errors_coarse = diff.fp + diff.fn;
  }
  {
    auto r = RpDbscan(ps, MakeParams(eps, min_pts, 0.01, 4));
    ASSERT_TRUE(r.ok());
    const auto diff = analysis::CompareOutlierSets(exact->outliers,
                                                   r->outliers);
    errors_fine = diff.fp + diff.fn;
  }
  EXPECT_LE(errors_fine, errors_coarse);
}

}  // namespace
}  // namespace dbscout::baselines

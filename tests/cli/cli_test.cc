#include "cli/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/io.h"
#include "testutil.h"

namespace dbscout::cli {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun RunTool(std::vector<std::string> args) {
  std::vector<const char*> argv = {"dbscout"};
  for (const auto& arg : args) {
    argv.push_back(arg.c_str());
  }
  std::ostringstream out;
  std::ostringstream err;
  CliRun run;
  run.code =
      RunCli(static_cast<int>(argv.size()), argv.data(), out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliTest, HelpPrintsUsage) {
  const CliRun run = RunTool({"help"});
  EXPECT_EQ(run.code, 0);
  EXPECT_NE(run.out.find("usage: dbscout"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  const CliRun run = RunTool({"frobnicate"});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, MissingFlagsAreReported) {
  const CliRun run = RunTool({"detect", "--eps=1"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("--input"), std::string::npos);
}

TEST(CliTest, GenerateDetectEvaluateRoundTrip) {
  const std::string data = TempPath("cli_blobs.dbsc");
  const std::string labels = TempPath("cli_labels.txt");
  const std::string predicted = TempPath("cli_predicted.txt");

  CliRun run = RunTool({"generate", "--dataset=blobs", "--n=2000",
                    "--contamination=0.02", "--seed=5",
                    "--output=" + data, "--labels=" + labels});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("wrote 2000 points"), std::string::npos);

  run = RunTool({"detect", "--input=" + data, "--eps=0.7", "--min-pts=5",
             "--output=" + predicted});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("outliers"), std::string::npos);

  // compare predicted against the ground-truth outlier indices.
  run = RunTool({"compare", "--reference=" + labels,
             "--candidate=" + predicted});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("TP="), std::string::npos);

  std::remove(data.c_str());
  std::remove(labels.c_str());
  std::remove(predicted.c_str());
}

TEST(CliTest, DetectCsvInputAndEngines) {
  Rng rng(81);
  PointSet ps(2);
  for (int i = 0; i < 100; ++i) {
    ps.Add({rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3)});
  }
  ps.Add({50.0, 50.0});
  const std::string csv = TempPath("cli_points.csv");
  ASSERT_TRUE(SavePointsCsv(csv, ps).ok());
  for (const char* engine : {"sequential", "parallel", "shared",
                             "incremental"}) {
    const CliRun run =
        RunTool({"detect", "--input=" + csv, "--eps=1", "--min-pts=5",
                 std::string("--engine=") + engine});
    EXPECT_EQ(run.code, 0) << engine << ": " << run.err;
    EXPECT_NE(run.out.find("1 outliers"), std::string::npos) << engine;
  }
  const CliRun bad = RunTool({"detect", "--input=" + csv, "--eps=1",
                          "--min-pts=5", "--engine=quantum"});
  EXPECT_EQ(bad.code, 1);
  std::remove(csv.c_str());
}

TEST(CliTest, DetectExternalEngineMatchesSequential) {
  Rng rng(82);
  const PointSet ps = testing::ClusteredPoints(&rng, 1500, 2, 3, 0.2);
  const std::string data = TempPath("cli_ext.dbsc");
  ASSERT_TRUE(SavePointsBinary(data, ps).ok());
  const std::string seq_out = TempPath("cli_seq.txt");
  const std::string ext_out = TempPath("cli_ext.txt");
  CliRun run = RunTool({"detect", "--input=" + data, "--eps=1.2", "--min-pts=8",
                    "--output=" + seq_out});
  ASSERT_EQ(run.code, 0) << run.err;
  run = RunTool({"detect", "--input=" + data, "--eps=1.2", "--min-pts=8",
             "--engine=external", "--stripe-points=200",
             "--output=" + ext_out});
  ASSERT_EQ(run.code, 0) << run.err;
  std::ifstream a(seq_out);
  std::ifstream b(ext_out);
  const std::string seq_text((std::istreambuf_iterator<char>(a)),
                             std::istreambuf_iterator<char>());
  const std::string ext_text((std::istreambuf_iterator<char>(b)),
                             std::istreambuf_iterator<char>());
  EXPECT_EQ(seq_text, ext_text);
  std::remove(data.c_str());
  std::remove(seq_out.c_str());
  std::remove(ext_out.c_str());
}

TEST(CliTest, DetectIncrementalEngineMatchesSequential) {
  Rng rng(84);
  const PointSet ps = testing::ClusteredPoints(&rng, 800, 2, 3, 0.2);
  const std::string data = TempPath("cli_inc.dbsc");
  ASSERT_TRUE(SavePointsBinary(data, ps).ok());
  const std::string seq_out = TempPath("cli_inc_seq.txt");
  const std::string inc_out = TempPath("cli_inc_out.txt");
  CliRun run = RunTool({"detect", "--input=" + data, "--eps=1.2",
                        "--min-pts=8", "--output=" + seq_out});
  ASSERT_EQ(run.code, 0) << run.err;
  run = RunTool({"detect", "--input=" + data, "--eps=1.2", "--min-pts=8",
                 "--engine=incremental", "--output=" + inc_out});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("incremental:"), std::string::npos);
  std::ifstream a(seq_out);
  std::ifstream b(inc_out);
  const std::string seq_text((std::istreambuf_iterator<char>(a)),
                             std::istreambuf_iterator<char>());
  const std::string inc_text((std::istreambuf_iterator<char>(b)),
                             std::istreambuf_iterator<char>());
  EXPECT_EQ(seq_text, inc_text);
  std::remove(data.c_str());
  std::remove(seq_out.c_str());
  std::remove(inc_out.c_str());
}

TEST(CliTest, KdistSuggestsEps) {
  Rng rng(83);
  const PointSet ps = testing::ClusteredPoints(&rng, 800, 2, 3, 0.1);
  const std::string data = TempPath("cli_kdist.dbsc");
  ASSERT_TRUE(SavePointsBinary(data, ps).ok());
  const CliRun run = RunTool({"kdist", "--input=" + data, "--k=5"});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("suggested eps"), std::string::npos);
  std::remove(data.c_str());
}

TEST(CliTest, DetectScoresPrintsRanking) {
  Rng rng(84);
  PointSet ps(2);
  for (int i = 0; i < 200; ++i) {
    ps.Add({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)});
  }
  ps.Add({30.0, 30.0});
  const std::string csv = TempPath("cli_scores.csv");
  ASSERT_TRUE(SavePointsCsv(csv, ps).ok());
  const CliRun run = RunTool({"detect", "--input=" + csv, "--eps=1",
                          "--min-pts=5", "--scores"});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("top outliers by core distance"),
            std::string::npos);
  std::remove(csv.c_str());
}

TEST(CliTest, GenerateRejectsLabelsForUnlabeledDatasets) {
  const std::string data = TempPath("cli_osm.dbsc");
  const CliRun run = RunTool({"generate", "--dataset=osm", "--n=100",
                          "--output=" + data,
                          "--labels=" + TempPath("cli_osm_labels.txt")});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("no ground-truth labels"), std::string::npos);
  std::remove(data.c_str());
}

TEST(CliTest, EvaluateScoresAgainstLabelColumn) {
  const std::string labels = TempPath("cli_truth.csv");
  std::ofstream(labels) << "0\n1\n0\n1\n0\n";
  const std::string predicted = TempPath("cli_pred.txt");
  std::ofstream(predicted) << "1\n3\n";
  const CliRun run = RunTool(
      {"evaluate", "--labels=" + labels, "--predicted=" + predicted});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("F1=1.00000"), std::string::npos);
  std::remove(labels.c_str());
  std::remove(predicted.c_str());
}

TEST(CliTest, TypoInFlagIsCaught) {
  const CliRun run = RunTool({"kdist", "--input=x", "--k=5", "--samle=10"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("--samle"), std::string::npos);
}

}  // namespace
}  // namespace dbscout::cli

#include "cli/flags.h"

#include <gtest/gtest.h>

namespace dbscout::cli {
namespace {

Result<Flags> ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "dbscout");
  return Flags::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, ParsesCommandAndFlags) {
  auto flags = ParseArgs({"detect", "--eps=1.5", "--min-pts=5", "--scores"});
  ASSERT_TRUE(flags.ok()) << flags.status();
  EXPECT_EQ(flags->command(), "detect");
  EXPECT_TRUE(flags->Has("eps"));
  EXPECT_TRUE(flags->GetBool("scores"));
  EXPECT_FALSE(flags->GetBool("missing"));
  EXPECT_DOUBLE_EQ(*flags->GetDouble("eps", 0.0), 1.5);
  EXPECT_EQ(*flags->GetUint("min-pts", 0), 5u);
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  auto flags = ParseArgs({"detect"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("engine", "sequential"), "sequential");
  EXPECT_DOUBLE_EQ(*flags->GetDouble("eps", 2.5), 2.5);
  EXPECT_EQ(*flags->GetUint("k", 7), 7u);
}

TEST(FlagsTest, RejectsMissingCommand) {
  const char* argv[] = {"dbscout"};
  EXPECT_FALSE(Flags::Parse(1, argv).ok());
}

TEST(FlagsTest, RejectsPositionalArguments) {
  auto flags = ParseArgs({"detect", "input.csv"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, RejectsMalformedValues) {
  auto flags = ParseArgs({"detect", "--eps=abc", "--min-pts=1.5"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->GetDouble("eps", 0.0).ok());
  EXPECT_FALSE(flags->GetUint("min-pts", 0).ok());
}

TEST(FlagsTest, ValueWithEqualsSign) {
  auto flags = ParseArgs({"generate", "--output=a=b.csv"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("output"), "a=b.csv");
}

TEST(FlagsTest, CheckAllowedCatchesTypos) {
  auto flags = ParseArgs({"detect", "--epz=1"});
  ASSERT_TRUE(flags.ok());
  const Status status = flags->CheckAllowed({"eps", "min-pts"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--epz"), std::string::npos);
}

TEST(FlagsTest, CheckRequiredNamesTheMissingFlag) {
  auto flags = ParseArgs({"detect", "--eps=1"});
  ASSERT_TRUE(flags.ok());
  const Status status = flags->CheckRequired({"eps", "input"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--input"), std::string::npos);
}

}  // namespace
}  // namespace dbscout::cli

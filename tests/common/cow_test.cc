#include "common/cow.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace dbscout {
namespace {

TEST(CowChunkedVectorTest, PushAndRead) {
  CowChunkedVector<uint32_t> v;
  EXPECT_TRUE(v.empty());
  for (uint32_t i = 0; i < 3000; ++i) {
    v.PushBack(i * 7);
  }
  EXPECT_EQ(v.size(), 3000u);
  for (uint32_t i = 0; i < 3000; ++i) {
    ASSERT_EQ(v[i], i * 7);
  }
}

TEST(CowChunkedVectorTest, SetOverwrites) {
  CowChunkedVector<int> v;
  for (int i = 0; i < 100; ++i) {
    v.PushBack(i);
  }
  v.Set(0, -1);
  v.Set(99, -2);
  EXPECT_EQ(v[0], -1);
  EXPECT_EQ(v[99], -2);
  EXPECT_EQ(v[50], 50);
}

TEST(CowChunkedVectorTest, FrozenViewKeepsPreFreezeContents) {
  CowChunkedVector<int> v;
  // Span three chunks so Set() hits both a shared middle chunk and the
  // shared tail chunk.
  const size_t n = 2 * CowChunkedVector<int>::kChunkSize + 17;
  for (size_t i = 0; i < n; ++i) {
    v.PushBack(static_cast<int>(i));
  }
  auto frozen = v.Freeze();
  ASSERT_EQ(frozen.size(), n);

  v.Set(3, -3);                                           // first chunk
  v.Set(CowChunkedVector<int>::kChunkSize + 5, -5);       // middle chunk
  v.Set(n - 1, -7);                                       // tail chunk
  EXPECT_EQ(frozen[3], 3);
  EXPECT_EQ(frozen[CowChunkedVector<int>::kChunkSize + 5],
            static_cast<int>(CowChunkedVector<int>::kChunkSize + 5));
  EXPECT_EQ(frozen[n - 1], static_cast<int>(n - 1));
  // The writer sees its own updates.
  EXPECT_EQ(v[3], -3);
  EXPECT_EQ(v[n - 1], -7);
}

TEST(CowChunkedVectorTest, AppendsAfterFreezeInvisibleToView) {
  CowChunkedVector<int> v;
  for (int i = 0; i < 10; ++i) {
    v.PushBack(i);
  }
  auto frozen = v.Freeze();
  for (int i = 0; i < 5000; ++i) {
    v.PushBack(1000 + i);  // same chunk first, then fresh chunks
  }
  EXPECT_EQ(frozen.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(frozen[i], i);
  }
  EXPECT_EQ(v.size(), 5010u);
}

TEST(CowChunkedVectorTest, SecondWriteToClonedChunkDoesNotCloneAgain) {
  // After the first post-freeze Set clones a chunk, the writer owns it:
  // further writes land in place and older frozen views stay intact.
  CowChunkedVector<int> v;
  for (int i = 0; i < 8; ++i) {
    v.PushBack(i);
  }
  auto f1 = v.Freeze();
  v.Set(1, 100);
  v.Set(2, 200);
  auto f2 = v.Freeze();
  v.Set(1, 111);
  EXPECT_EQ(f1[1], 1);
  EXPECT_EQ(f1[2], 2);
  EXPECT_EQ(f2[1], 100);
  EXPECT_EQ(f2[2], 200);
  EXPECT_EQ(v[1], 111);
}

TEST(CowChunkedVectorTest, ManyGenerationsStayIndependent) {
  CowChunkedVector<int> v;
  v.PushBack(0);
  std::vector<CowChunkedVector<int>::Frozen> views;
  for (int gen = 1; gen <= 20; ++gen) {
    views.push_back(v.Freeze());
    v.Set(0, gen);
  }
  for (int gen = 1; gen <= 20; ++gen) {
    ASSERT_EQ(views[gen - 1][0], gen - 1) << "generation " << gen;
  }
  EXPECT_EQ(v[0], 20);
}

TEST(CowChunkedVectorTest, MoveTransfersContentsAndViewsSurvive) {
  CowChunkedVector<int> v;
  for (int i = 0; i < 2000; ++i) {
    v.PushBack(i);
  }
  auto frozen = v.Freeze();
  v.Set(7, -7);
  CowChunkedVector<int> moved = std::move(v);
  EXPECT_EQ(moved.size(), 2000u);
  EXPECT_EQ(moved[7], -7);
  EXPECT_EQ(moved[1500], 1500);
  moved.Set(8, -8);
  moved.PushBack(9999);
  EXPECT_EQ(moved[2000], 9999);
  EXPECT_EQ(frozen[7], 7);
  EXPECT_EQ(frozen[8], 8);
}

TEST(CowChunkedVectorTest, DisjointConcurrentSetsLandAndViewsStayIntact) {
  // The sharded apply pipeline's contract: between structural operations,
  // worker threads may Set/read disjoint index ranges concurrently. Every
  // chunk here is shared with a frozen view, so first-touch clones race on
  // the clone mutex; all writes must land and the view must be unchanged.
  constexpr size_t kThreads = 4;
  constexpr size_t kChunks = 8;
  constexpr size_t kN = kChunks * CowChunkedVector<uint32_t>::kChunkSize;
  CowChunkedVector<uint32_t> v;
  for (size_t i = 0; i < kN; ++i) {
    v.PushBack(static_cast<uint32_t>(i));
  }
  auto frozen = v.Freeze();

  ThreadPool pool(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.Submit([&v, t] {
      // Stride across chunks so every thread touches every chunk and the
      // first-touch clone path is contended.
      for (size_t i = t; i < kN; i += kThreads) {
        v.Set(i, static_cast<uint32_t>(i) * 3 + 1);
        // Read back an index this thread owns (racing only with clones).
        if (v[i] != static_cast<uint32_t>(i) * 3 + 1) {
          ADD_FAILURE() << "lost write at " << i;
          return;
        }
      }
    });
  }
  pool.WaitIdle();

  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(v[i], static_cast<uint32_t>(i) * 3 + 1) << "index " << i;
    ASSERT_EQ(frozen[i], static_cast<uint32_t>(i)) << "index " << i;
  }
  // Structural ops still work after the concurrent phase, and the next
  // freeze observes the new contents.
  auto frozen2 = v.Freeze();
  v.Set(0, 42);
  EXPECT_EQ(frozen2[0], 1u);
  EXPECT_EQ(v[0], 42u);
}

TEST(ChunkedRowsTest, RowsRoundTrip) {
  ChunkedRows rows(3);
  EXPECT_EQ(rows.width(), 3u);
  for (size_t i = 0; i < 2000; ++i) {
    const double row[] = {static_cast<double>(i), i + 0.5, -1.0 * i};
    rows.PushBack({row, 3});
  }
  ASSERT_EQ(rows.size(), 2000u);
  for (size_t i = 0; i < 2000; ++i) {
    auto row = rows[i];
    ASSERT_EQ(row.size(), 3u);
    ASSERT_EQ(row[0], static_cast<double>(i));
    ASSERT_EQ(row[1], i + 0.5);
    ASSERT_EQ(row[2], -1.0 * i);
  }
}

TEST(ChunkedRowsTest, FrozenViewSharesRowsAndIgnoresAppends) {
  ChunkedRows rows(2);
  const double a[] = {1.0, 2.0};
  rows.PushBack({a, 2});
  auto frozen = rows.Freeze();
  const double b[] = {3.0, 4.0};
  for (int i = 0; i < 3000; ++i) {
    rows.PushBack({b, 2});
  }
  ASSERT_EQ(frozen.size(), 1u);
  EXPECT_EQ(frozen.width(), 2u);
  EXPECT_EQ(frozen[0][0], 1.0);
  EXPECT_EQ(frozen[0][1], 2.0);
  EXPECT_EQ(rows.size(), 3001u);
}

}  // namespace
}  // namespace dbscout

// CRC32C (Castagnoli) against published check vectors, plus the
// incremental-extend identity the WAL framing relies on.

#include "common/crc32c.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

uint32_t CrcOfString(const std::string& text) {
  return Crc32c(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix / every CRC
  // catalog): crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(CrcOfString("123456789"), 0xE3069283u);
  // Empty input: the identity.
  EXPECT_EQ(Crc32c(std::span<const uint8_t>()), 0u);
  // 32 zero bytes (iSCSI test pattern).
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(std::span<const uint8_t>(zeros.data(), zeros.size())),
            0x8A9136AAu);
  // 32 0xFF bytes.
  const std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(std::span<const uint8_t>(ones.data(), ones.size())),
            0x62A8AB43u);
}

TEST(Crc32cTest, ExtendChainsLikeOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  const auto* bytes = reinterpret_cast<const uint8_t*>(text.data());
  const uint32_t whole = CrcOfString(text);
  for (size_t split = 0; split <= text.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, bytes, split);
    crc = Crc32cExtend(crc, bytes + split, text.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 37);
  }
  const uint32_t clean =
      Crc32c(std::span<const uint8_t>(data.data(), data.size()));
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(std::span<const uint8_t>(data.data(), data.size())),
                clean)
          << "flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace dbscout

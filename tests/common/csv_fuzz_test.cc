// Randomized round-trips and a malformed-input corpus for the CSV parser:
// the parser must never accept garbage silently and must round-trip every
// representable table losslessly.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace dbscout {
namespace {

TEST(CsvFuzzTest, RandomRoundTripsAreLossless) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t rows = 1 + rng.NextBounded(40);
    const size_t cols = 1 + rng.NextBounded(6);
    std::vector<double> values(rows * cols);
    for (auto& v : values) {
      switch (rng.NextBounded(5)) {
        case 0:
          v = rng.Uniform(-1e12, 1e12);
          break;
        case 1:
          v = rng.Gaussian(0, 1e-9);
          break;
        case 2:
          v = static_cast<double>(rng.NextU64() >> 11);
          break;
        case 3:
          v = 0.0;
          break;
        default:
          v = rng.Uniform(-1.0, 1.0);
          break;
      }
    }
    // Serialize with the writer's format, parse back.
    std::string text;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (c) {
          text += ',';
        }
        text += StrFormat("%.17g", values[r * cols + c]);
      }
      text += '\n';
    }
    auto parsed = ParseNumericCsv(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    EXPECT_EQ(parsed->rows, rows);
    EXPECT_EQ(parsed->cols, cols);
    EXPECT_EQ(parsed->values, values) << "trial " << trial;
  }
}

class CsvMalformedTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CsvMalformedTest, RejectsWithInvalidArgument) {
  auto parsed = ParseNumericCsv(GetParam());
  ASSERT_FALSE(parsed.ok()) << "accepted: " << GetParam();
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CsvMalformedTest,
    ::testing::Values("1,2\n3\n",              // ragged
                      "1,2\n3,four\n",         // word
                      "1,2\n3,4x\n",           // trailing garbage
                      "1,,3\n",                // empty field
                      "1;2\n",                 // wrong separator
                      "1,2\n3,4,5\n",          // growing row
                      "nan_,1\n",              // malformed nan
                      "1,2\n,\n",              // all-empty fields
                      "--3,4\n"),              // double sign
    [](const auto& info) {
      return "case" + std::to_string(info.index);
    });

TEST(CsvFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(321);
  const char alphabet[] = "0123456789.,-+eE \t\r\nxyz;";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const size_t len = rng.NextBounded(120);
    for (size_t i = 0; i < len; ++i) {
      text += alphabet[rng.NextBounded(sizeof(alphabet) - 1)];
    }
    // Must either parse or fail cleanly — no crashes, no UB (run under
    // the sanitizers of a debug build to get full value from this).
    auto parsed = ParseNumericCsv(text);
    if (parsed.ok()) {
      EXPECT_EQ(parsed->values.size(), parsed->rows * parsed->cols);
    }
  }
}

TEST(CsvFuzzTest, HexIsRejectedDespiteStrtod) {
  // strtod accepts "0x10"; the parser must too ("0x10" is a valid strtod
  // double) — pin the actual behavior: full-token parse means 0x10 = 16.
  auto parsed = ParseNumericCsv("0x10,2\n");
  // Documented behavior: strtod consumes the full token "0x10" -> valid.
  // The corpus above uses "0x10,2" with a trailing comma field... this
  // test pins whichever way the platform strtod goes, asserting only that
  // a verdict is reached consistently.
  if (parsed.ok()) {
    EXPECT_DOUBLE_EQ(parsed->values[0], 16.0);
  }
}

}  // namespace
}  // namespace dbscout

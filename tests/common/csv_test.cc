#include "common/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

TEST(ParseNumericCsvTest, ParsesSimpleTable) {
  auto r = ParseNumericCsv("1,2\n3,4\n5,6\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows, 3u);
  EXPECT_EQ(r->cols, 2u);
  EXPECT_EQ(r->values, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(ParseNumericCsvTest, HandlesNoTrailingNewlineAndCrLf) {
  auto r = ParseNumericCsv("1,2\r\n3,4");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows, 2u);
  EXPECT_EQ(r->values, (std::vector<double>{1, 2, 3, 4}));
}

TEST(ParseNumericCsvTest, SkipsHeaderRows) {
  CsvOptions options;
  options.skip_rows = 1;
  auto r = ParseNumericCsv("x,y\n1,2\n", options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows, 1u);
}

TEST(ParseNumericCsvTest, SkipsBlankLines) {
  auto r = ParseNumericCsv("1,2\n\n3,4\n\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows, 2u);
}

TEST(ParseNumericCsvTest, RejectsRaggedRows) {
  auto r = ParseNumericCsv("1,2\n3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ParseNumericCsvTest, RejectsMalformedNumbers) {
  auto r = ParseNumericCsv("1,2\n3,oops\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ParseNumericCsvTest, CustomSeparator) {
  CsvOptions options;
  options.separator = ';';
  auto r = ParseNumericCsv("1;2\n", options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->cols, 2u);
}

TEST(ReadNumericCsvTest, MissingFileIsIoError) {
  auto r = ReadNumericCsv("/nonexistent/path/data.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvRoundTripTest, WriteThenReadIsLossless) {
  const std::string path =
      ::testing::TempDir() + "/dbscout_csv_roundtrip.csv";
  const std::vector<double> values = {1.0 / 3.0, -2.5e-17, 3.0, 4.0};
  ASSERT_TRUE(WriteNumericCsv(path, values.data(), 2, 2).ok());
  auto r = ReadNumericCsv(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows, 2u);
  EXPECT_EQ(r->values, values);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbscout

#include "common/logging.h"

#include <gtest/gtest.h>

namespace dbscout {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, BelowThresholdMessagesAreNotEvaluated) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  DBSCOUT_LOG(kDebug) << "dropped " << expensive();
  DBSCOUT_LOG(kInfo) << "dropped " << expensive();
  EXPECT_EQ(evaluations, 0);
  DBSCOUT_LOG(kError) << "emitted " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  DBSCOUT_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ DBSCOUT_CHECK(false) << "boom"; }, "Check failed: false");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ DBSCOUT_LOG(kFatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace dbscout

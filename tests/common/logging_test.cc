#include "common/logging.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsInfo) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, BelowThresholdMessagesAreNotEvaluated) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  DBSCOUT_LOG(kDebug) << "dropped " << expensive();
  DBSCOUT_LOG(kInfo) << "dropped " << expensive();
  EXPECT_EQ(evaluations, 0);
  DBSCOUT_LOG(kError) << "emitted " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  DBSCOUT_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

class LogSinkGuard {
 public:
  ~LogSinkGuard() { SetLogSink(nullptr); }
};

TEST(LoggingTest, SinkCapturesStructuredRecords) {
  LogLevelGuard level_guard;
  LogSinkGuard sink_guard;
  SetLogLevel(LogLevel::kInfo);
  std::vector<LogRecord> records;
  SetLogSink([&records](const LogRecord& r) { records.push_back(r); });
  DBSCOUT_LOG(kWarning) << "captured " << 42;
  const int line = __LINE__ - 1;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].level, LogLevel::kWarning);
  EXPECT_EQ(records[0].message, "captured 42");
  EXPECT_STREQ(records[0].file, "logging_test.cc");  // basename only
  EXPECT_EQ(records[0].line, line);
  EXPECT_EQ(records[0].thread_id, CurrentThreadId());
}

TEST(LoggingTest, SinkTimestampsAreMonotonic) {
  LogLevelGuard level_guard;
  LogSinkGuard sink_guard;
  SetLogLevel(LogLevel::kInfo);
  std::vector<double> stamps;
  SetLogSink([&stamps](const LogRecord& r) {
    stamps.push_back(r.mono_seconds);
  });
  for (int i = 0; i < 5; ++i) {
    DBSCOUT_LOG(kInfo) << "tick " << i;
  }
  ASSERT_EQ(stamps.size(), 5u);
  for (size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_GE(stamps[i], stamps[i - 1]);
  }
  EXPECT_GE(stamps.front(), 0.0);
}

TEST(LoggingTest, SinkSeesDistinctThreadIds) {
  LogLevelGuard level_guard;
  LogSinkGuard sink_guard;
  SetLogLevel(LogLevel::kInfo);
  std::vector<uint32_t> ids;
  SetLogSink([&ids](const LogRecord& r) { ids.push_back(r.thread_id); });
  DBSCOUT_LOG(kInfo) << "from main";
  std::thread other([] { DBSCOUT_LOG(kInfo) << "from worker"; });  // lint:allow(raw-thread) thread-id semantics need a bare OS thread
  other.join();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], ids[1]);
}

TEST(LoggingTest, NullSinkRestoresStderr) {
  LogLevelGuard level_guard;
  SetLogLevel(LogLevel::kInfo);
  int captured = 0;
  SetLogSink([&captured](const LogRecord&) { ++captured; });
  DBSCOUT_LOG(kInfo) << "one";
  SetLogSink(nullptr);
  DBSCOUT_LOG(kInfo) << "not captured";  // goes to stderr, not the old sink
  EXPECT_EQ(captured, 1);
}

TEST(LoggingTest, CurrentThreadIdIsStablePerThread) {
  const uint32_t a = CurrentThreadId();
  const uint32_t b = CurrentThreadId();
  EXPECT_EQ(a, b);
  uint32_t worker_id = a;
  std::thread other([&worker_id] { worker_id = CurrentThreadId(); });  // lint:allow(raw-thread) thread-id semantics need a bare OS thread
  other.join();
  EXPECT_NE(worker_id, a);
}

TEST(LoggingDeathTest, ConcurrentFatalMessagesDoNotInterleave) {
  // Two threads hitting kFatal at once: the abort happens while the emit
  // lock is held, so whichever thread loses the race can never splice its
  // message into the winner's line. The death output must contain the
  // complete message of the aborting thread.
  EXPECT_DEATH(
      {
        std::thread racer([] {  // lint:allow(raw-thread) thread-id semantics need a bare OS thread
          DBSCOUT_LOG(kFatal) << "racer-fatal-message-alpha";
        });
        DBSCOUT_LOG(kFatal) << "main-fatal-message-omega";
        racer.join();
      },
      "(racer-fatal-message-alpha|main-fatal-message-omega)");
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ DBSCOUT_CHECK(false) << "boom"; }, "Check failed: false");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ DBSCOUT_LOG(kFatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace dbscout

#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsNormalizedToInternal) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return x;
}

Result<int> Doubled(int x) {
  DBSCOUT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> err = Doubled(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dbscout

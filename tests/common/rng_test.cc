#include "common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeWithoutBias) {
  Rng rng(11);
  int histogram[5] = {0};
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t v = rng.NextBounded(5);
    ASSERT_LT(v, 5u);
    ++histogram[v];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, draws / 5, draws / 50);  // within 10% of uniform
  }
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Split();
  // The child must differ from a same-seed parent continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += parent.NextU64() == child.NextU64();
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(rng.NextU64());
  }
  EXPECT_GT(seen.size(), 95u);
}

}  // namespace
}  // namespace dbscout

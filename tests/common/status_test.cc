#include "common/status.h"

#include <gtest/gtest.h>

namespace dbscout {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad eps");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eps");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

Status FailingStep() { return Status::IoError("disk"); }

Status UsesReturnIfError() {
  DBSCOUT_RETURN_IF_ERROR(Status::OK());
  DBSCOUT_RETURN_IF_ERROR(FailingStep());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError(), Status::IoError("disk"));
}

}  // namespace
}  // namespace dbscout

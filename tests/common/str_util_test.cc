#include "common/str_util.h"

#include <gtest/gtest.h>

namespace dbscout {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingSeparator) {
  const auto parts = Split("x;", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e-3 "), -1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1 2").ok());
}

TEST(ParseUint64Test, ParsesAndRejects) {
  EXPECT_EQ(*ParseUint64("123"), 123u);
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("1.5").ok());
}

TEST(HumanCountTest, PicksSuffix) {
  EXPECT_EQ(HumanCount(950), "950.00");
  EXPECT_EQ(HumanCount(1500), "1.50k");
  EXPECT_EQ(HumanCount(2.5e6), "2.50M");
  EXPECT_EQ(HumanCount(27e9), "27.00B");
}

}  // namespace
}  // namespace dbscout

#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForChunkedCoversRangeContiguously) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelForChunked(1000, [&hits](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, WaitIdleThenReuse) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace dbscout

#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace dbscout {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForChunkedCoversRangeContiguously) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelForChunked(1000, [&hits](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ParallelForDynamicCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t chunk : {size_t{0}, size_t{1}, size_t{7}, size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1777);
    pool.ParallelForDynamic(hits.size(), chunk,
                            [&hits](size_t begin, size_t end) {
                              ASSERT_LE(begin, end);
                              for (size_t i = begin; i < end; ++i) {
                                hits[i].fetch_add(1);
                              }
                            });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "chunk " << chunk << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForDynamicZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelForDynamic(
      0, 4, [](size_t, size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForDynamicBalancesSkewedWork) {
  // One giant index plus many tiny ones: every index must still run once,
  // and a worker stuck on the giant chunk must not strand the rest.
  ThreadPool pool(4);
  std::atomic<long> benchmark_sink{0};
  std::vector<std::atomic<int>> hits(256);
  pool.ParallelForDynamic(hits.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (i == 0) {
        for (int spin = 0; spin < 100000; ++spin) {
          benchmark_sink.fetch_add(1, std::memory_order_relaxed);
        }
      }
      hits[i].fetch_add(1);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForDynamicRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelForDynamic(4, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelForDynamic(4, 1, [&](size_t b, size_t e) {
        counter.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, ParallelForDynamicSingleThreadRunsWholeRange) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelForDynamic(hits.size(), 8, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, WaitIdleThenReuse) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // nothing submitted: must not block
}

TEST(ThreadPoolTest, DestructorDrainsPendingQueue) {
  // Shutdown contract: tasks still queued when the destructor runs are
  // executed, not dropped.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolDeathTest, ThrowingTaskAbortsProcess) {
  // The library is exception-free: a task that throws escapes WorkerLoop
  // and must terminate the process rather than corrupt the pool.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Submit([] { throw 42; });
        pool.WaitIdle();
      },
      "");
}

TEST(ThreadPoolTest, ParallelForDynamicSingleItem) {
  // count == 1 <= any chunk size: runs inline on the caller thread.
  ThreadPool pool(4);
  int calls = 0;
  size_t seen_begin = 99, seen_end = 99;
  pool.ParallelForDynamic(1, 0, [&](size_t begin, size_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 1u);
}

TEST(ThreadPoolTest, ParallelForDynamicMoreChunksThanThreads) {
  // 100 chunks over 2 workers: workers must loop back to the claim counter
  // until the range is exhausted, covering every index exactly once.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> invocations{0};
  pool.ParallelForDynamic(hits.size(), 1, [&](size_t begin, size_t end) {
    invocations.fetch_add(1);
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(invocations.load(), 100);
}

TEST(ThreadPoolTest, ParallelForDynamicChunkLargerThanCountRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);
  pool.ParallelForDynamic(hits.size(), 64, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

}  // namespace
}  // namespace dbscout
